//! Integration tests asserting the *shape* of the paper's headline results
//! (who wins, not absolute numbers) on a reduced 2-fold protocol so the test
//! suite stays fast.
//!
//! The full 4-fold reproduction of every table and figure is run by
//! `cargo run --release -p eval --bin all_experiments` (see EXPERIMENTS.md).

use datasets::Dataset;
use eval::crossval::{evaluate_system_with_folds, SystemKind};
use templar_core::TemplarConfig;

/// Templar augmentation must improve Pipeline's full-query accuracy on the
/// Yelp benchmark (Table III shape).
#[test]
fn pipeline_plus_beats_pipeline_on_yelp() {
    let dataset = Dataset::yelp();
    let config = TemplarConfig::paper_defaults();
    let baseline = evaluate_system_with_folds(&dataset, SystemKind::Pipeline, &config, 2);
    let augmented = evaluate_system_with_folds(&dataset, SystemKind::PipelinePlus, &config, 2);
    assert!(
        augmented.fq_percent() > baseline.fq_percent(),
        "Pipeline+ ({:.1}%) should beat Pipeline ({:.1}%)",
        augmented.fq_percent(),
        baseline.fq_percent()
    );
    assert!(
        augmented.kw_percent() >= baseline.kw_percent(),
        "Pipeline+ KW ({:.1}%) should be at least Pipeline KW ({:.1}%)",
        augmented.kw_percent(),
        baseline.kw_percent()
    );
}

/// Log-driven join inference (Table IV) must not hurt, and should help, on
/// the MAS benchmark where the gold join paths are longer than the shortest.
#[test]
fn log_joins_help_on_mas() {
    let dataset = Dataset::mas();
    let with = TemplarConfig::paper_defaults().with_log_joins(true);
    let without = TemplarConfig::paper_defaults().with_log_joins(false);
    let acc_with = evaluate_system_with_folds(&dataset, SystemKind::PipelinePlus, &with, 2);
    let acc_without = evaluate_system_with_folds(&dataset, SystemKind::PipelinePlus, &without, 2);
    assert!(
        acc_with.fq_percent() > acc_without.fq_percent(),
        "LogJoin=Y ({:.1}%) should beat LogJoin=N ({:.1}%)",
        acc_with.fq_percent(),
        acc_without.fq_percent()
    );
}

/// λ → 1 disables the log evidence and accuracy must drop sharply
/// (Figure 6 shape).
#[test]
fn lambda_one_hurts_accuracy_on_imdb() {
    let dataset = Dataset::imdb();
    let tuned = TemplarConfig::paper_defaults().with_lambda(0.8);
    let similarity_only = TemplarConfig::paper_defaults().with_lambda(1.0);
    let acc_tuned = evaluate_system_with_folds(&dataset, SystemKind::PipelinePlus, &tuned, 2);
    let acc_sim =
        evaluate_system_with_folds(&dataset, SystemKind::PipelinePlus, &similarity_only, 2);
    assert!(
        acc_tuned.fq_percent() > acc_sim.fq_percent(),
        "lambda=0.8 ({:.1}%) should beat lambda=1.0 ({:.1}%)",
        acc_tuned.fq_percent(),
        acc_sim.fq_percent()
    );
}

/// κ = 5 (the paper's choice) must be at least as good as κ = 1
/// (Figure 5 shape: accuracy rises then plateaus).
#[test]
fn kappa_five_beats_kappa_one_on_yelp() {
    let dataset = Dataset::yelp();
    let k5 = TemplarConfig::paper_defaults().with_kappa(5);
    let k1 = TemplarConfig::paper_defaults().with_kappa(1);
    let acc5 = evaluate_system_with_folds(&dataset, SystemKind::PipelinePlus, &k5, 2);
    let acc1 = evaluate_system_with_folds(&dataset, SystemKind::PipelinePlus, &k1, 2);
    assert!(
        acc5.fq_percent() >= acc1.fq_percent(),
        "kappa=5 ({:.1}%) should be at least kappa=1 ({:.1}%)",
        acc5.fq_percent(),
        acc1.fq_percent()
    );
}
