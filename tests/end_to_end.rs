//! Cross-crate integration tests: the paper's running examples executed end
//! to end (NLQ → keywords → configurations → join path → SQL) on the full
//! MAS benchmark dataset.

use datasets::Dataset;
use nlidb::{NlidbSystem, PipelineSystem};
use sqlparse::{canon, parse_query};
use templar_core::TemplarConfig;

fn find_case<'a>(dataset: &'a Dataset, needle: &str) -> &'a datasets::BenchmarkCase {
    dataset
        .cases
        .iter()
        .find(|c| c.nlq.text.contains(needle))
        .unwrap_or_else(|| panic!("no benchmark case contains '{needle}'"))
}

#[test]
fn example_1_to_3_domain_query_needs_the_log() {
    // "Find papers in the Databases domain": the baseline picks a shorter but
    // unintended interpretation; Templar recovers the keyword join path.
    let dataset = Dataset::mas();
    let log = dataset.full_log();
    let case = find_case(&dataset, "papers in the Databases domain");

    let augmented =
        PipelineSystem::augmented(dataset.db.clone(), &log, TemplarConfig::paper_defaults())
            .unwrap();
    let results = augmented.translate(&case.nlq).unwrap();
    assert!(!results.is_empty());
    assert!(
        canon::equivalent(&results[0].query, &case.gold_sql),
        "Pipeline+ produced {} instead of {}",
        results[0].query,
        case.gold_sql
    );
    // The gold join path goes through the keyword relation (Example 1).
    let sql = results[0].query.to_string().to_lowercase();
    assert!(sql.contains("publication_keyword"));
    assert!(!sql.contains("conference"));
}

#[test]
fn example_4_papers_after_2000() {
    let dataset = Dataset::mas();
    let log = dataset.full_log();
    let case = find_case(&dataset, "published after 2000");
    let augmented =
        PipelineSystem::augmented(dataset.db.clone(), &log, TemplarConfig::paper_defaults())
            .unwrap();
    let results = augmented.translate(&case.nlq).unwrap();
    let gold = parse_query("SELECT p.title FROM publication p WHERE p.year > 2000").unwrap();
    assert!(canon::equivalent(&results[0].query, &gold));
}

#[test]
fn example_7_self_join_is_produced() {
    let dataset = Dataset::mas();
    let log = dataset.full_log();
    let case = find_case(&dataset, "written by both");
    let augmented =
        PipelineSystem::augmented(dataset.db.clone(), &log, TemplarConfig::paper_defaults())
            .unwrap();
    let results = augmented.translate(&case.nlq).unwrap();
    assert!(!results.is_empty());
    let top = &results[0].query;
    // Two author instances and two writes instances.
    let authors = top.from.iter().filter(|t| t.table == "author").count();
    let writes = top.from.iter().filter(|t| t.table == "writes").count();
    assert_eq!(authors, 2, "expected a self-join over author: {top}");
    assert_eq!(writes, 2, "expected two writes instances: {top}");
    assert!(canon::equivalent(top, &case.gold_sql), "got {top}");
}

#[test]
fn augmentation_never_requires_changing_the_host_interface() {
    // The same Nlq value is accepted by baseline and augmented systems alike;
    // augmentation is purely additive (Section III-E).
    let dataset = Dataset::yelp();
    let log = dataset.full_log();
    let case = &dataset.cases[0];
    let baseline = PipelineSystem::baseline(dataset.db.clone()).unwrap();
    let augmented =
        PipelineSystem::augmented(dataset.db.clone(), &log, TemplarConfig::paper_defaults())
            .unwrap();
    let a = baseline.translate(&case.nlq).unwrap();
    let b = augmented.translate(&case.nlq).unwrap();
    assert!(!a.is_empty());
    assert!(!b.is_empty());
}

#[test]
fn translations_are_deterministic_across_runs() {
    let dataset = Dataset::imdb();
    let log = dataset.full_log();
    let augmented =
        PipelineSystem::augmented(dataset.db.clone(), &log, TemplarConfig::paper_defaults())
            .unwrap();
    for case in dataset.cases.iter().take(10) {
        let first = augmented.translate(&case.nlq).unwrap_or_default();
        let second = augmented.translate(&case.nlq).unwrap_or_default();
        let render =
            |rs: &[nlidb::RankedSql]| rs.iter().map(|r| r.query.to_string()).collect::<Vec<_>>();
        assert_eq!(render(&first), render(&second), "case {}", case.id);
    }
}
