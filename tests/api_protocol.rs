//! Cross-crate integration tests for the typed, explainable, multi-tenant
//! translation API: the JSON line protocol routed through a two-tenant
//! [`TenantRegistry`], the `ApiError` taxonomy for every failure surface,
//! and the reproducibility of the Section IV λ-blend from each candidate's
//! `Explanation`.

use nlidb::translate_with_config;
use proptest::prelude::*;
use relational::{DataType, Database, Schema};
use sqlparse::BinOp;
use std::sync::Arc;
use std::time::Duration;
use templar_api::{
    decode_response, encode_request, ApiError, RequestBody, RequestEnvelope, ResponseBody,
    TranslateRequest, PROTOCOL_VERSION,
};
use templar_core::{Keyword, KeywordMetadata, QueryLog, Templar, TemplarConfig, TemplarError};
use templar_service::{RegistryClient, ServiceConfig, TemplarService, TenantRegistry};

/// Tolerance of the acceptance criterion: the blended score must equal the
/// λ-weighted sum of its `Explanation` components within this bound.
const TOLERANCE: f64 = 1e-9;

fn academic_db() -> Arc<Database> {
    let schema = Schema::builder("academic")
        .relation(
            "publication",
            &[
                ("pid", DataType::Integer),
                ("title", DataType::Text),
                ("year", DataType::Integer),
                ("jid", DataType::Integer),
            ],
            Some("pid"),
        )
        .relation(
            "journal",
            &[("jid", DataType::Integer), ("name", DataType::Text)],
            Some("jid"),
        )
        .foreign_key("publication", "jid", "journal", "jid")
        .build();
    let mut db = Database::new(schema);
    db.insert(
        "publication",
        vec![1.into(), "Query Processing".into(), 2003.into(), 1.into()],
    )
    .unwrap();
    db.insert(
        "publication",
        vec![2.into(), "Data Integration".into(), 1997.into(), 2.into()],
    )
    .unwrap();
    db.insert("journal", vec![1.into(), "TKDE".into()]).unwrap();
    db.insert("journal", vec![2.into(), "TMC".into()]).unwrap();
    Arc::new(db)
}

fn store_db() -> Arc<Database> {
    let schema = Schema::builder("store")
        .relation(
            "product",
            &[
                ("prid", DataType::Integer),
                ("label", DataType::Text),
                ("price", DataType::Integer),
                ("vid", DataType::Integer),
            ],
            Some("prid"),
        )
        .relation(
            "vendor",
            &[("vid", DataType::Integer), ("brand", DataType::Text)],
            Some("vid"),
        )
        .foreign_key("product", "vid", "vendor", "vid")
        .build();
    let mut db = Database::new(schema);
    db.insert(
        "product",
        vec![1.into(), "Espresso Machine".into(), 420.into(), 1.into()],
    )
    .unwrap();
    db.insert(
        "product",
        vec![2.into(), "Filter Grinder".into(), 80.into(), 2.into()],
    )
    .unwrap();
    db.insert("vendor", vec![1.into(), "Gustatory".into()])
        .unwrap();
    db.insert("vendor", vec![2.into(), "Crema Labs".into()])
        .unwrap();
    Arc::new(db)
}

fn academic_log() -> QueryLog {
    QueryLog::from_sql([
        "SELECT p.title FROM publication p WHERE p.year > 1995",
        "SELECT p.title FROM publication p WHERE p.year > 2010",
        "SELECT p.title FROM publication p, journal j WHERE j.name = 'TKDE' AND p.jid = j.jid",
    ])
    .0
}

fn store_log() -> QueryLog {
    QueryLog::from_sql([
        "SELECT pr.label FROM product pr WHERE pr.price > 100",
        "SELECT pr.label FROM product pr, vendor v WHERE v.brand = 'Gustatory' AND pr.vid = v.vid",
    ])
    .0
}

fn academic_keywords() -> Vec<(Keyword, KeywordMetadata)> {
    vec![
        (Keyword::new("papers"), KeywordMetadata::select()),
        (
            Keyword::new("after 2000"),
            KeywordMetadata::filter_with_op(BinOp::Gt),
        ),
    ]
}

fn store_keywords() -> Vec<(Keyword, KeywordMetadata)> {
    vec![
        (Keyword::new("products"), KeywordMetadata::select()),
        (
            Keyword::new("over 100"),
            KeywordMetadata::filter_with_op(BinOp::Gt),
        ),
    ]
}

/// A registry hosting the paper-style multi-tenant deployment: two
/// databases, each with its own service, log and snapshot cycle.
fn two_tenant_registry() -> TenantRegistry {
    let registry = TenantRegistry::new();
    registry.register(
        "academic",
        TemplarService::spawn(
            academic_db(),
            &academic_log(),
            TemplarConfig::paper_defaults(),
            ServiceConfig::default(),
        )
        .unwrap(),
    );
    registry.register(
        "store",
        TemplarService::spawn(
            store_db(),
            &store_log(),
            TemplarConfig::paper_defaults(),
            ServiceConfig::default(),
        )
        .unwrap(),
    );
    registry
}

/// The acceptance round-trip: a `TranslateRequest` serialized to the JSON
/// line protocol, routed through a two-tenant registry, returns a
/// `TranslateResponse` whose top candidate's blended score equals the
/// λ-weighted sum of its `Explanation` components (within 1e-9).
#[test]
fn protocol_round_trip_across_two_tenants() {
    let registry = two_tenant_registry();
    assert_eq!(registry.tenant_ids(), vec!["academic", "store"]);

    for (tenant, keywords, expected_fragment) in [
        ("academic", academic_keywords(), "publication"),
        ("store", store_keywords(), "product"),
    ] {
        let request = TranslateRequest::new(tenant, "demo", keywords);
        let line = encode_request(&RequestEnvelope::new(77, RequestBody::Translate(request)));
        let response_line = registry.handle_line(&line);

        let envelope = decode_response(&response_line).expect("response line decodes");
        assert_eq!(envelope.version, PROTOCOL_VERSION);
        assert_eq!(envelope.id, 77, "correlation id must be echoed");
        let ResponseBody::Translated(response) = envelope.into_result().expect("translates") else {
            panic!("expected a Translated body");
        };
        assert_eq!(response.tenant, tenant);
        let top = response.best().expect("at least one candidate");
        assert!(
            top.sql.to_lowercase().contains(expected_fragment),
            "tenant {tenant} answered from the wrong database: {}",
            top.sql
        );

        // The λ-blend of Section IV is reproducible from the response alone.
        let e = &top.explanation;
        let qfg = if e.qfg_pairs == 0 {
            e.log_popularity
        } else {
            e.dice_cooccurrence
        };
        let blended = e.lambda * e.sigma_score + (1.0 - e.lambda) * qfg;
        assert!(
            (blended - e.config_score).abs() < TOLERANCE,
            "blend not reproducible for {tenant}: {blended} vs {}",
            e.config_score
        );
        assert!((e.recompute_final() - top.score).abs() < TOLERANCE);
        assert!(e.is_consistent(TOLERANCE));
    }
}

#[test]
fn per_request_lambda_override_changes_the_blend_and_is_reported() {
    let registry = two_tenant_registry();
    let client = RegistryClient::new(&registry);

    let default_run = client
        .translate(TranslateRequest::new(
            "academic",
            "demo",
            academic_keywords(),
        ))
        .unwrap();
    let overridden = client
        .translate(
            TranslateRequest::new("academic", "demo", academic_keywords())
                .with_lambda(0.2)
                .with_top_k(1),
        )
        .unwrap();

    assert_eq!(default_run.best().unwrap().explanation.lambda, 0.8);
    assert_eq!(overridden.best().unwrap().explanation.lambda, 0.2);
    assert_eq!(overridden.candidates.len(), 1, "top_k bounds the response");
    assert!(overridden
        .best()
        .unwrap()
        .explanation
        .is_consistent(TOLERANCE));
}

#[test]
fn unknown_tenant_is_a_typed_error() {
    let registry = two_tenant_registry();
    let client = RegistryClient::new(&registry);
    let err = client
        .translate(TranslateRequest::new(
            "warehouse",
            "demo",
            academic_keywords(),
        ))
        .unwrap_err();
    assert_eq!(
        err,
        ApiError::UnknownTenant {
            tenant: "warehouse".to_string()
        }
    );
}

#[test]
fn metrics_flow_over_the_wire_per_tenant() {
    let registry = two_tenant_registry();
    let client = RegistryClient::new(&registry);

    // Serve one translation and feed one malformed + one good SQL line, so
    // the counters have something to show.
    client
        .translate(TranslateRequest::new(
            "academic",
            "papers after 2000",
            academic_keywords(),
        ))
        .unwrap();
    client
        .submit_sql("academic", "SELECT j.name FROM journal j")
        .unwrap();
    registry.get("academic").unwrap().flush();

    let academic = client.metrics("academic").unwrap();
    assert_eq!(academic.translations_served, 1);
    assert_eq!(academic.ingest_applied, 1);
    assert!(academic.qfg_queries >= 1);
    // The columnar data plane is visible over the wire: a published
    // snapshot is compacted (no pending deltas) and the CSR carries every
    // live edge.
    assert_eq!(academic.qfg_pending_deltas, 0);
    assert_eq!(academic.qfg_csr_edges, academic.qfg_edges);
    assert!(academic.qfg_interned_fragments >= academic.qfg_fragments);
    assert!(academic.qfg_compactions >= 1);

    // Tenants do not bleed into each other.
    let store = client.metrics("store").unwrap();
    assert_eq!(store.translations_served, 0);

    // Unknown tenants surface the usual typed error.
    assert_eq!(
        client.metrics("warehouse").unwrap_err(),
        ApiError::UnknownTenant {
            tenant: "warehouse".to_string()
        }
    );
}

/// The learning loop closes through the wire: a client reports accepted SQL
/// with a `Feedback` request, the entry rides the same ingest path as
/// `SubmitSql`, sharpens subsequent translations, and is counted separately
/// in the tenant's metrics.
#[test]
fn feedback_closes_the_learning_loop_over_the_wire() {
    let registry = two_tenant_registry();
    let client = RegistryClient::new(&registry);

    client
        .feedback(
            "academic",
            "SELECT p.title FROM publication p WHERE p.year > 1995",
        )
        .unwrap();
    client
        .submit_sql("academic", "SELECT j.name FROM journal j")
        .unwrap();
    registry.get("academic").unwrap().flush();

    let metrics = client.metrics("academic").unwrap();
    assert_eq!(metrics.feedback_accepted, 1, "feedback counted separately");
    assert_eq!(
        metrics.ingest_applied, 2,
        "feedback and plain submissions share the ingest path"
    );
    assert!(metrics.qfg_queries >= 2);

    // Unknown tenants surface the usual typed error.
    assert_eq!(
        client.feedback("warehouse", "SELECT 1 FROM t").unwrap_err(),
        ApiError::UnknownTenant {
            tenant: "warehouse".to_string()
        }
    );
}

#[test]
fn version_mismatched_and_malformed_envelopes_are_rejected() {
    let registry = two_tenant_registry();

    let wrong_version = r#"{"version": 1, "id": 5, "body": {"SubmitSql": {"tenant": "academic", "sql": "SELECT j.name FROM journal j"}}}"#;
    let envelope = decode_response(&registry.handle_line(wrong_version)).unwrap();
    assert_eq!(
        envelope.into_result(),
        Err(ApiError::VersionMismatch {
            expected: PROTOCOL_VERSION,
            found: 1
        })
    );

    let envelope = decode_response(&registry.handle_line("{ not json")).unwrap();
    assert!(matches!(
        envelope.into_result(),
        Err(ApiError::MalformedEnvelope { .. })
    ));

    let bad_body = r#"{"version": 5, "id": 9, "body": {"Nonsense": true}}"#;
    let envelope = decode_response(&registry.handle_line(bad_body)).unwrap();
    assert_eq!(envelope.id, 9, "recoverable ids are echoed on errors");
    assert!(matches!(
        envelope.into_result(),
        Err(ApiError::MalformedEnvelope { .. })
    ));
}

#[test]
fn invalid_overrides_are_rejected_before_translation() {
    let registry = two_tenant_registry();
    let client = RegistryClient::new(&registry);
    let err = client
        .translate(TranslateRequest::new("academic", "demo", academic_keywords()).with_lambda(3.0))
        .unwrap_err();
    assert!(
        matches!(err, ApiError::InvalidRequest { .. }),
        "got {err:?}"
    );

    let err = client
        .translate(TranslateRequest::new("academic", "demo", vec![]))
        .unwrap_err();
    assert!(
        matches!(err, ApiError::InvalidRequest { .. }),
        "got {err:?}"
    );
}

#[test]
fn queue_full_backpressure_reaches_the_wire_as_a_typed_error() {
    let registry = TenantRegistry::new();
    registry.register(
        "academic",
        TemplarService::spawn(
            academic_db(),
            &QueryLog::new(),
            TemplarConfig::paper_defaults(),
            // A one-slot queue and a sleepy worker: sustained submission must
            // observe QueueFull, which the API maps to Backpressure.
            ServiceConfig::default()
                .with_queue_capacity(1)
                .with_refresh_interval(Duration::from_millis(50)),
        )
        .unwrap(),
    );
    let client = RegistryClient::new(&registry);

    let mut backpressure = None;
    for _ in 0..100_000 {
        match client.submit_sql("academic", "SELECT j.name FROM journal j") {
            Ok(()) => continue,
            Err(err) => {
                backpressure = Some(err);
                break;
            }
        }
    }
    assert_eq!(
        backpressure,
        Some(ApiError::Backpressure),
        "a one-slot queue under sustained submission must exert backpressure"
    );
}

#[test]
fn obscurity_mismatch_is_an_err_not_a_panic() {
    // The old construction path asserted; the typed path returns the
    // mismatch as a value that projects onto the wire taxonomy.
    let config = TemplarConfig::paper_defaults(); // NoConstOp
    let qfg =
        templar_core::QueryFragmentGraph::build(&academic_log(), templar_core::Obscurity::Full);
    let result = Templar::from_parts(
        academic_db(),
        qfg,
        nlp::TextSimilarity::new(),
        config.clone(),
    );
    let Err(err) = result else {
        panic!("mismatched obscurity must be rejected");
    };
    assert_eq!(
        err,
        TemplarError::ObscurityMismatch {
            expected: templar_core::Obscurity::NoConstOp,
            found: templar_core::Obscurity::Full,
        }
    );
    let api: ApiError = err.into();
    assert!(matches!(api, ApiError::Construction { .. }));
}

proptest! {
    /// Explanation-consistency property: for any λ and any log-joins
    /// setting, every candidate's blended score is recomputable from its
    /// `Explanation` components within 1e-9.
    #[test]
    fn explanations_recompute_under_arbitrary_overrides(
        lambda_steps in 0u32..101,
        use_log_joins in proptest::any::<bool>(),
        keyword_pick in 0usize..3,
    ) {
        let lambda = f64::from(lambda_steps) / 100.0;
        let templar = Templar::new(
            academic_db(),
            &academic_log(),
            TemplarConfig::paper_defaults(),
        )
        .unwrap();
        let keywords = match keyword_pick {
            0 => academic_keywords(),
            1 => vec![(Keyword::new("papers"), KeywordMetadata::select())],
            _ => vec![
                (Keyword::new("papers"), KeywordMetadata::select()),
                (Keyword::new("TKDE"), KeywordMetadata::filter()),
            ],
        };
        let config = TemplarConfig::paper_defaults()
            .with_lambda(lambda)
            .with_log_joins(use_log_joins);
        let ranked = translate_with_config(&templar, &keywords, &config).unwrap();
        prop_assert!(!ranked.is_empty());
        for r in &ranked {
            prop_assert!((r.explanation.lambda - lambda).abs() < 1e-12);
            prop_assert!(
                r.explanation.is_consistent(TOLERANCE),
                "inconsistent explanation at lambda={lambda}: {:?}",
                r.explanation
            );
            prop_assert!((r.explanation.recompute_final() - r.score).abs() < TOLERANCE);
        }
    }
}

/// The observability acceptance round-trip: a traced MAS-style translation
/// over the wire returns a per-stage breakdown whose stage durations sum to
/// within the measured end-to-end latency, the slow-query ring captures the
/// request, and the Prometheus exposition parses as text format.
#[test]
fn traced_translation_slow_queries_and_prometheus_over_the_wire() {
    let registry = two_tenant_registry();
    let client = RegistryClient::new(&registry);

    // An untraced request ships no breakdown.
    let plain = client
        .translate(TranslateRequest::new(
            "academic",
            "papers after 2000",
            academic_keywords(),
        ))
        .unwrap();
    assert!(plain.trace.is_none());

    // A traced request ships the per-stage breakdown.  The repeat question
    // bypasses the translation cache so the trace covers a real computation
    // (a cache-served repeat ships a minimal, `cache_hit`-marked trace).
    let traced = client
        .translate(
            TranslateRequest::new("academic", "papers after 2000", academic_keywords())
                .with_trace()
                .with_bypass_cache(),
        )
        .unwrap();
    assert_eq!(
        traced.candidates, plain.candidates,
        "tracing must not change results"
    );
    let report = traced.trace.expect("requested trace must be present");
    let breakdown = &report.breakdown;
    assert!(breakdown.total_nanos > 0);
    assert!(
        breakdown.stage_sum_nanos() <= breakdown.total_nanos,
        "stage sum {} must fit inside the end-to-end total {}",
        breakdown.stage_sum_nanos(),
        breakdown.total_nanos
    );
    assert_eq!(breakdown.stages.len(), templar_core::STAGE_COUNT);
    assert!(breakdown.stages.iter().all(|s| s.calls > 0));
    assert!(report.search.tuples_scored > 0);

    // Both requests were traced server-side: the slow-query ring holds them.
    let slow = client.slow_queries("academic").unwrap();
    assert_eq!(slow.len(), 2);
    assert!(slow[0].total_us >= slow[1].total_us, "slowest first");
    assert!(slow
        .iter()
        .all(|s| s.question == "papers after 2000" && s.ok));
    assert!(slow
        .iter()
        .all(|s| s.trace.stage_sum_nanos() <= s.trace.total_nanos));

    // Per-tenant exposition carries the stage histograms.
    let text = client.prometheus(Some("academic")).unwrap();
    assert!(text.contains("templar_translations_total{tenant=\"academic\"} 2"));
    assert!(text.contains("# TYPE templar_stage_latency_microseconds histogram"));
    for line in text.lines().filter(|l| !l.starts_with('#')) {
        let (_, value) = line.rsplit_once(' ').expect("sample line has a value");
        value.parse::<u64>().expect("sample values are integers");
    }

    // The all-tenant exposition declares each family once, samples both.
    let all = client.prometheus(None).unwrap();
    assert_eq!(
        all.matches("# TYPE templar_translations_total counter")
            .count(),
        1
    );
    assert!(all.contains("tenant=\"academic\""));
    assert!(all.contains("tenant=\"store\""));

    // Unknown tenants still surface as typed errors.
    assert!(matches!(
        client.slow_queries("nope"),
        Err(ApiError::UnknownTenant { .. })
    ));
}
