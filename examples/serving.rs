//! Serving: running Templar as a long-lived, incrementally-learning service.
//!
//! The quickstart example drives `Templar` in the paper's batch setting: the
//! query log is fixed up front.  This example runs the production-shaped
//! loop instead — a `TemplarService` serves translations from an immutable
//! snapshot while newly-logged SQL flows back in through a bounded queue,
//! sharpening subsequent translations without a restart:
//!
//! 1. start a service over a database with an *empty* query log,
//! 2. translate "Return the papers after 2000",
//! 3. feed the service the SQL its users' sessions logged,
//! 4. watch the refreshed snapshot change the evidence (QFG size, metrics),
//! 5. persist a snapshot and restore a second service from it instantly.
//!
//! Run with: `cargo run --release --example serving`

use std::sync::Arc;
use std::time::Duration;

use nlidb::{NlidbSystem, Nlq, PipelineSystem};
use relational::{DataType, Database, Schema};
use sqlparse::BinOp;
use templar_core::{Keyword, KeywordMetadata, QueryLog, TemplarConfig};
use templar_service::{ServiceConfig, TemplarService};

fn main() {
    // 1. The miniature academic database of the quickstart.
    let schema = Schema::builder("academic")
        .relation(
            "publication",
            &[
                ("pid", DataType::Integer),
                ("title", DataType::Text),
                ("year", DataType::Integer),
                ("jid", DataType::Integer),
            ],
            Some("pid"),
        )
        .relation(
            "journal",
            &[("jid", DataType::Integer), ("name", DataType::Text)],
            Some("jid"),
        )
        .foreign_key("publication", "jid", "journal", "jid")
        .build();
    let mut db = Database::new(schema);
    db.insert("journal", vec![1.into(), "TKDE".into()]).unwrap();
    db.insert("journal", vec![2.into(), "TMC".into()]).unwrap();
    db.insert(
        "publication",
        vec![
            1.into(),
            "Scalable Query Processing".into(),
            2003.into(),
            1.into(),
        ],
    )
    .unwrap();
    db.insert(
        "publication",
        vec![
            2.into(),
            "Natural Language Interfaces".into(),
            2008.into(),
            2.into(),
        ],
    )
    .unwrap();
    let db = Arc::new(db);

    // 2. A service with an EMPTY log: refresh aggressively so this demo sees
    //    ingests almost immediately.
    let service = TemplarService::spawn(
        Arc::clone(&db),
        &QueryLog::new(),
        TemplarConfig::paper_defaults(),
        ServiceConfig::default()
            .with_refresh_every(2)
            .with_refresh_interval(Duration::from_millis(10)),
    )
    .expect("service starts at a consistent obscurity");

    let nlq = Nlq::new(
        "Return the papers after 2000",
        vec![
            (Keyword::new("papers"), KeywordMetadata::select()),
            (
                Keyword::new("after 2000"),
                KeywordMetadata::filter_with_op(BinOp::Gt),
            ),
        ],
        vec![],
    );

    let before = service
        .translate(&nlq)
        .expect("cold service still translates");
    println!("Cold service (no log evidence):");
    println!("  top translation: {}", before[0].query);
    println!(
        "  QFG: {} queries, {} fragments\n",
        service.metrics().qfg_queries,
        service.metrics().qfg_fragments
    );

    // 3. User sessions log SQL; the service ingests it live.
    for sql in [
        "SELECT p.title FROM publication p WHERE p.year > 1995",
        "SELECT p.title FROM publication p WHERE p.year > 2010",
        "SELECT p.title FROM publication p, journal j WHERE j.name = 'TKDE' AND p.jid = j.jid",
        "SELECT p.title FROM publication p, journal j WHERE j.name = 'TMC' AND p.jid = j.jid",
        "SELECT j.name FROM journal j",
    ] {
        service.submit_sql(sql).expect("queue accepts the entry");
    }
    service.flush(); // deterministic for the demo; a real deployment never waits

    // 4. Same service object, fresher evidence.
    let after = service.translate(&nlq).expect("warm service translates");
    let metrics = service.metrics();
    println!("After ingesting 5 logged queries (no restart):");
    println!("  top translation: {}", after[0].query);
    println!(
        "  QFG: {} queries, {} fragments, {} edges",
        metrics.qfg_queries, metrics.qfg_fragments, metrics.qfg_edges
    );
    println!(
        "  service: {} translations served, {} snapshot swaps, ingest lag {}",
        metrics.translations_served, metrics.snapshot_swaps, metrics.ingest_lag
    );

    // Host systems ride the same live handle.
    let live_system = PipelineSystem::serving(service.handle());
    let ranked = live_system.translate(&nlq).expect("live system translates");
    println!(
        "\n{} (through the serving handle): {}",
        live_system.name(),
        ranked[0].query
    );

    // 5. Persist and restore: the new service starts with the full QFG, no
    //    log replay.
    let path = std::env::temp_dir().join("templar-serving-example.snap");
    service.save_snapshot(&path).expect("snapshot written");
    let restored = TemplarService::spawn_from_snapshot(
        db,
        &path,
        TemplarConfig::paper_defaults(),
        ServiceConfig::default(),
    )
    .expect("snapshot accepted");
    println!(
        "\nRestored from {} — QFG has {} queries again",
        path.display(),
        restored.metrics().qfg_queries
    );
    std::fs::remove_file(&path).ok();
}
