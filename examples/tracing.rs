//! End-to-end request tracing: per-stage spans, slow-query capture, and
//! Prometheus-style exposition.
//!
//! Every translation a `TemplarService` serves is traced: the pipeline's
//! stages — candidate pruning, configuration search, join inference, SQL
//! construction, ranking — report non-overlapping wall-clock spans, so a
//! latency regression in any one stage is attributable instead of vanishing
//! into a single end-to-end histogram.  This example walks the three
//! consumer surfaces that tracing feeds:
//!
//! 1. the opt-in `trace` flag on a `TranslateRequest`, returning the
//!    per-stage breakdown (and search counters) with the response,
//! 2. the slow-query ring: the top-N slowest translations with their full
//!    breakdowns, fetched over the wire,
//! 3. the Prometheus text exposition: counters, gauges, and real latency
//!    histograms (end-to-end and per-stage), single- or all-tenant.
//!
//! Run with: `cargo run --release --example tracing`

use datasets::Dataset;
use templar_api::TranslateRequest;
use templar_core::TemplarConfig;
use templar_service::{RegistryClient, ServiceConfig, TemplarService, TenantRegistry};

fn main() {
    let registry = TenantRegistry::new();
    let mas = Dataset::mas();
    let service = TemplarService::spawn(
        mas.db.clone(),
        &mas.full_log(),
        TemplarConfig::paper_defaults(),
        ServiceConfig::default().with_slow_query_capacity(8),
    )
    .expect("dataset and configuration share an obscurity level");
    registry.register("mas", service);
    let client = RegistryClient::new(&registry);

    // 1. Traced translation: the response carries the per-stage breakdown.
    let case = &mas.cases[0];
    println!("NLQ: {}", case.nlq.text);
    let response = client
        .translate(
            TranslateRequest::new("mas", case.nlq.text.clone(), case.nlq.keywords.clone())
                .with_trace(),
        )
        .expect("benchmark NLQs translate");
    println!("top SQL: {}", response.best().expect("candidates").sql);

    let report = response.trace.as_ref().expect("trace was requested");
    let breakdown = &report.breakdown;
    println!(
        "\nper-stage breakdown of {} µs (search: {} tuples scored, {} pruned):",
        breakdown.total_us(),
        report.search.tuples_scored,
        report.search.tuples_pruned,
    );
    for span in &breakdown.stages {
        println!(
            "  {:<18} {:>8.1} µs across {} call(s)",
            span.stage,
            span.nanos as f64 / 1_000.0,
            span.calls
        );
    }
    let attributed = breakdown.stage_sum_nanos();
    assert!(
        attributed <= breakdown.total_nanos,
        "spans are non-overlapping, so they sum to at most the total"
    );
    println!(
        "  {:<18} {:>8.1} µs (glue: snapshot load, scoring bookkeeping)",
        "unattributed",
        (breakdown.total_nanos - attributed) as f64 / 1_000.0
    );
    println!(
        "  search workers burned {:.1} µs of CPU across {} worker(s)",
        breakdown.search_worker_nanos as f64 / 1_000.0,
        breakdown.search_workers
    );

    // Warm the histograms and the slow-query ring with the whole benchmark.
    for case in &mas.cases {
        let _ = client.translate(TranslateRequest::new(
            "mas",
            case.nlq.text.clone(),
            case.nlq.keywords.clone(),
        ));
    }

    // 2. The slow-query ring: the slowest requests, with their breakdowns.
    let slow = client.slow_queries("mas").expect("tenant exists");
    println!(
        "\nslowest {} of {} translations:",
        slow.len(),
        1 + mas.cases.len()
    );
    for entry in slow.iter().take(3) {
        let dominant = entry
            .trace
            .stages
            .iter()
            .max_by_key(|s| s.nanos)
            .expect("five stages");
        println!(
            "  #{:<3} {:>6} µs  (dominant: {} at {:.1} µs)  {}",
            entry.seq,
            entry.total_us,
            dominant.stage,
            dominant.nanos as f64 / 1_000.0,
            entry.question,
        );
    }

    // 3. Prometheus text exposition, straight off the wire.
    let text = client.prometheus(Some("mas")).expect("tenant exists");
    println!("\nPrometheus exposition (histogram families):");
    for line in text
        .lines()
        .filter(|l| l.contains("templar_translate_latency_microseconds"))
        .take(12)
    {
        println!("  {line}");
    }
    let samples = text.lines().filter(|l| !l.starts_with('#')).count();
    println!("  … {samples} samples total");
}
