//! Serving over real sockets: the TCP plane in front of the registry.
//!
//! Boots a [`TemplarServer`] over the miniature academic database, then
//! demonstrates both wire codecs against it from loopback clients:
//!
//! 1. build a tenant registry and put the epoll reactor in front of it,
//! 2. translate over a bare JSON-lines connection (what `nc` speaks),
//! 3. negotiate the length-prefixed binary codec and pipeline requests,
//! 4. overload a one-slot tenant quota and watch typed `Backpressure`
//!    come back with the shed counters in the Prometheus exposition,
//! 5. print the serving-plane stats and shut down cleanly.
//!
//! Run with: `cargo run --release --example server`
//!
//! Every operational knob is settable from the environment:
//!
//! | variable                     | default       | controls                          |
//! |------------------------------|---------------|-----------------------------------|
//! | `TEMPLAR_BIND`               | `127.0.0.1:0` | listen address                    |
//! | `TEMPLAR_WORKERS`            | `4`           | worker threads                    |
//! | `TEMPLAR_MAX_CONNECTIONS`    | `1024`        | accept-time connection cap        |
//! | `TEMPLAR_GLOBAL_INFLIGHT`    | `256`         | server-wide in-flight cap         |
//! | `TEMPLAR_TENANT_INFLIGHT`    | `256`         | per-tenant in-flight quota        |
//! | `TEMPLAR_MAX_PIPELINE`       | `128`         | per-connection pipeline depth     |
//! | `TEMPLAR_GREETING_TIMEOUT_MS`| `5000`        | close never-greeting connections  |
//! | `TEMPLAR_IDLE_TIMEOUT_MS`    | `300000`      | close fully idle connections      |
//! | `TEMPLAR_QUEUE_CAPACITY`     | `1024`        | ingest queue bound                |
//! | `TEMPLAR_SLOW_QUERY_CAPACITY`| `32`          | slow-query log capacity           |
//! | `TEMPLAR_FORCE_POLL`         | unset         | `1` forces the `poll` backend     |
//! | `TEMPLAR_SERVE_FOREVER`      | unset         | `1` keeps serving until killed    |
//!
//! With `TEMPLAR_SERVE_FOREVER=1` the demo clients are skipped and the
//! process blocks on the listener — point `nc <addr> <port>` at it and
//! paste a request line from the README's Serving section.

use std::sync::Arc;

use relational::{DataType, Database, Schema};
use templar_api::{RequestBody, TranslateRequest};
use templar_core::{Keyword, KeywordMetadata, QueryLog, TemplarConfig};
use templar_server::{ClientError, ServerConfig, TcpClient, TemplarServer};
use templar_service::{ServiceConfig, TemplarService, TenantRegistry};

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_flag(name: &str) -> bool {
    std::env::var(name).is_ok_and(|v| v == "1" || v.eq_ignore_ascii_case("true"))
}

fn academic_db() -> Arc<Database> {
    let schema = Schema::builder("academic")
        .relation(
            "publication",
            &[
                ("pid", DataType::Integer),
                ("title", DataType::Text),
                ("year", DataType::Integer),
                ("jid", DataType::Integer),
            ],
            Some("pid"),
        )
        .relation(
            "journal",
            &[("jid", DataType::Integer), ("name", DataType::Text)],
            Some("jid"),
        )
        .foreign_key("publication", "jid", "journal", "jid")
        .build();
    let mut db = Database::new(schema);
    db.insert("journal", vec![1.into(), "TKDE".into()]).unwrap();
    db.insert(
        "publication",
        vec![
            1.into(),
            "Scalable Query Processing".into(),
            2003.into(),
            1.into(),
        ],
    )
    .unwrap();
    Arc::new(db)
}

fn papers_request() -> TranslateRequest {
    TranslateRequest::new(
        "academic",
        "return the papers",
        vec![(Keyword::new("papers"), KeywordMetadata::select())],
    )
}

fn main() {
    // 1. A registry with one tenant, every service knob env-tunable.
    let service_config = ServiceConfig::default()
        .with_queue_capacity(env_usize("TEMPLAR_QUEUE_CAPACITY", 1024))
        .with_slow_query_capacity(env_usize("TEMPLAR_SLOW_QUERY_CAPACITY", 32))
        .with_max_inflight(env_usize("TEMPLAR_TENANT_INFLIGHT", 256));
    let registry = Arc::new(TenantRegistry::new());
    let service = TemplarService::spawn(
        academic_db(),
        &QueryLog::new(),
        TemplarConfig::paper_defaults(),
        service_config,
    )
    .expect("service starts");
    registry.register("academic", service);

    let server_config = ServerConfig::default()
        .with_addr(std::env::var("TEMPLAR_BIND").unwrap_or_else(|_| "127.0.0.1:0".into()))
        .with_workers(env_usize("TEMPLAR_WORKERS", 4))
        .with_max_connections(env_usize("TEMPLAR_MAX_CONNECTIONS", 1024))
        .with_max_global_inflight(env_usize("TEMPLAR_GLOBAL_INFLIGHT", 256))
        .with_max_pipeline(env_usize("TEMPLAR_MAX_PIPELINE", 128))
        .with_greeting_timeout_ms(env_usize("TEMPLAR_GREETING_TIMEOUT_MS", 5_000) as u64)
        .with_idle_timeout_ms(env_usize("TEMPLAR_IDLE_TIMEOUT_MS", 300_000) as u64)
        .with_force_poll(env_flag("TEMPLAR_FORCE_POLL"));
    let mut server =
        TemplarServer::start(Arc::clone(&registry), server_config).expect("server binds");
    let addr = server.local_addr();
    println!(
        "Serving tenant \"academic\" on {addr} ({} backend)",
        if server.is_poll_fallback() {
            "poll"
        } else {
            "epoll"
        }
    );

    if env_flag("TEMPLAR_SERVE_FOREVER") {
        println!("TEMPLAR_SERVE_FOREVER=1 — try from another terminal:");
        println!(
            "  echo '{{\"version\":3,\"id\":1,\"body\":{{\"Metrics\":{{\"tenant\":\"academic\"}}}}}}' | nc {} {}",
            addr.ip(),
            addr.port()
        );
        loop {
            std::thread::park();
        }
    }

    // 2. A bare JSON-lines session: no handshake, netcat-compatible.
    let mut json = TcpClient::connect_json(addr).expect("connects");
    let response = json.translate(papers_request()).expect("translates");
    println!("\nJSON-lines client:");
    println!("  top translation: {}", response.candidates[0].sql);

    // 3. A negotiated binary session, pipelining 8 requests before
    //    collecting any response (newest first — correlation ids do the
    //    matching).
    let mut binary = TcpClient::connect_binary(addr).expect("negotiates");
    let ids: Vec<u64> = (0..8)
        .map(|_| {
            binary
                .send(RequestBody::Translate(papers_request()))
                .expect("sends")
        })
        .collect();
    let mut answered = 0;
    for id in ids.iter().rev() {
        binary.recv(*id).expect("each response lands on its id");
        answered += 1;
    }
    println!("Binary client: pipelined 8 requests, collected {answered} out of order");

    // 4. Overload: fill the tenant quota from the side and watch the wire
    //    shed with a *typed* error while observability stays readable.
    let service = registry.get("academic").expect("registered");
    let permits: Vec<_> = std::iter::from_fn(|| service.try_admit()).collect();
    println!(
        "\nQuota filled ({} slots held) — next request sheds:",
        permits.len()
    );
    match binary.submit_sql("academic", "SELECT p.title FROM publication p") {
        Err(ClientError::Api(err)) => println!("  typed error over the wire: {err}"),
        other => panic!("expected Backpressure, got {other:?}"),
    }
    drop(permits);
    let prom = binary.prometheus(Some("academic")).expect("exposition");
    for line in prom.lines().filter(|l| l.contains("admission")) {
        println!("  {line}");
    }

    // 5. Transport-level counters, then a clean shutdown.
    let stats = server.stats();
    println!("\nServing-plane stats:");
    println!(
        "  connections: {} accepted, {} rejected",
        stats.connections_accepted, stats.connections_rejected
    );
    println!(
        "  requests: {} served ({} json, {} binary), {} shed globally",
        stats.requests_served, stats.json_requests, stats.binary_requests, stats.global_sheds
    );
    println!(
        "  bytes: {} in, {} out",
        stats.bytes_read, stats.bytes_written
    );
    server.shutdown();
    println!("Shut down cleanly.");
}
