//! Business-review scenario: runs the four evaluated systems (NaLIR, NaLIR+,
//! Pipeline, Pipeline+) over one cross-validation fold of the Yelp benchmark
//! and reports their full-query accuracy, reproducing a single cell of
//! Table III interactively.
//!
//! Run with: `cargo run --release --example yelp_reviews`

use datasets::Dataset;
use eval::crossval::{evaluate_system_with_folds, SystemKind};
use templar_core::TemplarConfig;

fn main() {
    let dataset = Dataset::yelp();
    let config = TemplarConfig::paper_defaults();
    println!(
        "Yelp benchmark: {} queries over {} relations (2-fold demo run)\n",
        dataset.cases.len(),
        dataset.db.schema().relations.len()
    );
    println!("{:<12} {:>8} {:>8}", "System", "KW (%)", "FQ (%)");
    for system in SystemKind::ALL {
        let acc = evaluate_system_with_folds(&dataset, system, &config, 2);
        println!(
            "{:<12} {:>8.1} {:>8.1}",
            system.name(),
            acc.kw_percent(),
            acc.fq_percent()
        );
    }
    println!(
        "\nThe augmented systems use the SQL query log of the training fold; \
         the baselines never see the log."
    );
}
