//! Walks through the paper's running examples (Examples 1-7) on the full MAS
//! benchmark dataset: keyword-mapping ambiguity ("papers" vs journal /
//! publication), join-path ambiguity (domain via conference vs via keyword),
//! and the self-join of Example 7 — showing how the vanilla Pipeline baseline
//! and the Templar-augmented Pipeline+ differ on each.
//!
//! Run with: `cargo run --release --example academic_search`

use datasets::Dataset;
use nlidb::{NlidbSystem, PipelineSystem};
use sqlparse::canon;
use templar_core::TemplarConfig;

fn main() {
    let dataset = Dataset::mas();
    println!(
        "MAS dataset: {} relations, {} benchmark queries\n",
        dataset.db.schema().relations.len(),
        dataset.cases.len()
    );

    // The query log is the benchmark's own gold SQL (as in the paper's
    // cross-validation protocol we would hold out the test fold; for the demo
    // we use the full log).
    let log = dataset.full_log();
    let baseline = PipelineSystem::baseline(dataset.db.clone()).expect("baseline builds");
    let augmented =
        PipelineSystem::augmented(dataset.db.clone(), &log, TemplarConfig::paper_defaults())
            .expect("augmented system builds");

    // Pick the paper's flagship scenarios from the benchmark.
    let scenarios = [
        "Find papers in the Databases domain",    // Examples 1-3
        "Return the papers published after 2000", // Example 4
        "Find papers published in TKDE",          // Example 5 (journal value)
        "Find papers written by both John Smith and Hugo Martin", // Example 7 self-join
    ];

    for wanted in scenarios {
        let Some(case) = dataset
            .cases
            .iter()
            .find(|c| c.nlq.text.contains(wanted) || wanted.contains(&c.nlq.text))
        else {
            // Fall back to substring search over the benchmark.
            continue;
        };
        println!("NLQ : {}", case.nlq.text);
        println!("gold: {}", case.gold_sql);
        for (name, system) in [("Pipeline ", &baseline), ("Pipeline+", &augmented)] {
            let results = system.translate(&case.nlq).unwrap_or_default();
            match results.first() {
                Some(top) => {
                    let correct = canon::equivalent(&top.query, &case.gold_sql);
                    println!(
                        "{name}: {} {}",
                        if correct {
                            "[correct]  "
                        } else {
                            "[incorrect]"
                        },
                        top.query
                    );
                }
                None => println!("{name}: <no translation>"),
            }
        }
        println!();
    }
}
