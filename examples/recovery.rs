//! Durability: crash-safe ingest with the write-ahead journal.
//!
//! The serving example shows the learning loop; this one shows the loop
//! *surviving a crash*.  A durable service journals every accepted entry
//! (CRC-framed, fsync-batched segments) **before** applying it, and
//! checkpoints record the covered sequence number — the watermark — in the
//! snapshot header.  Recovery is always the same move: load the latest valid
//! snapshot, replay the journal tail above the watermark, truncate a torn
//! final record if the crash interrupted an append.
//!
//! 1. bootstrap a durable service (`TemplarService::recover` on an empty
//!    directory),
//! 2. stream SQL in through the wire — half as plain log shipping, half as
//!    accepted-translation `Feedback`,
//! 3. checkpoint (snapshot + watermark + journal GC),
//! 4. ingest a tail of entries *after* the checkpoint,
//! 5. `kill -9`: copy the durable directory at this instant and recover a
//!    second service from the copy — the tail replays from the journal and
//!    the recovered service answers byte-identically.
//!
//! Run with: `cargo run --release --example recovery`

use std::fs;
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

use nlidb::Nlq;
use relational::{DataType, Database, Schema};
use sqlparse::BinOp;
use templar_core::{Keyword, KeywordMetadata, TemplarConfig};
use templar_service::{RegistryClient, ServiceConfig, TemplarService, TenantRegistry};

fn academic_db() -> Arc<Database> {
    let schema = Schema::builder("academic")
        .relation(
            "publication",
            &[
                ("pid", DataType::Integer),
                ("title", DataType::Text),
                ("year", DataType::Integer),
                ("jid", DataType::Integer),
            ],
            Some("pid"),
        )
        .relation(
            "journal",
            &[("jid", DataType::Integer), ("name", DataType::Text)],
            Some("jid"),
        )
        .foreign_key("publication", "jid", "journal", "jid")
        .build();
    let mut db = Database::new(schema);
    db.insert("journal", vec![1.into(), "TKDE".into()]).unwrap();
    db.insert(
        "publication",
        vec![
            1.into(),
            "Scalable Query Processing".into(),
            2003.into(),
            1.into(),
        ],
    )
    .unwrap();
    Arc::new(db)
}

/// Copy the durable directory byte-for-byte — the on-disk image a `kill -9`
/// at this instant would leave behind.
fn copy_dir(src: &Path, dst: &Path) {
    fs::create_dir_all(dst).expect("create image dir");
    for entry in fs::read_dir(src).expect("read durable dir") {
        let entry = entry.expect("dir entry");
        let to = dst.join(entry.file_name());
        if entry.file_type().expect("file type").is_dir() {
            copy_dir(&entry.path(), &to);
        } else {
            fs::copy(entry.path(), &to).expect("copy file");
        }
    }
}

fn main() {
    let dir = std::env::temp_dir().join("templar-recovery-example");
    let image = std::env::temp_dir().join("templar-recovery-example-crash");
    fs::remove_dir_all(&dir).ok();
    fs::remove_dir_all(&image).ok();

    // 1. Bootstrap: `recover` on an empty directory starts a fresh durable
    //    service — every start goes through the same path a crash would.
    let config = ServiceConfig::default()
        .with_refresh_every(2)
        .with_refresh_interval(Duration::from_millis(10))
        .with_wal_fsync_every(1); // demo: every record durable immediately
    let service = TemplarService::recover(
        academic_db(),
        &dir,
        TemplarConfig::paper_defaults(),
        config.clone(),
    )
    .expect("durable bootstrap");
    let registry = TenantRegistry::new();
    let service = registry.register("academic", service);
    let client = RegistryClient::new(&registry);

    // 2. The log streams in over the wire; `Feedback` marks SQL a user
    //    accepted, closing the learning loop through the same durable path.
    client
        .submit_sql(
            "academic",
            "SELECT p.title FROM publication p WHERE p.year > 1995",
        )
        .expect("log shipping accepted");
    client
        .feedback(
            "academic",
            "SELECT p.title FROM publication p WHERE p.year > 2010",
        )
        .expect("feedback accepted");
    service.flush();
    let m = client.metrics("academic").expect("metrics");
    println!("After 2 durable ingests (1 plain, 1 feedback):");
    println!(
        "  wal: {} appended, {} fsyncs, applied seq {}; feedback accepted: {}",
        m.wal_appended, m.wal_fsyncs, m.wal_applied_seq, m.feedback_accepted
    );

    // 3. Checkpoint: snapshot + watermark, journal segments below it GC'd.
    let watermark = service.checkpoint().expect("checkpoint");
    println!("\nCheckpoint taken at watermark {watermark}");

    // 4. A tail of entries lands *after* the checkpoint — covered only by
    //    the journal.
    client
        .feedback(
            "academic",
            "SELECT p.title FROM publication p, journal j \
             WHERE j.name = 'TKDE' AND p.jid = j.jid",
        )
        .expect("tail feedback accepted");
    service.flush();

    let nlq = Nlq::new(
        "Return the papers after 2000",
        vec![
            (Keyword::new("papers"), KeywordMetadata::select()),
            (
                Keyword::new("after 2000"),
                KeywordMetadata::filter_with_op(BinOp::Gt),
            ),
        ],
        vec![],
    );
    let before = service.translate(&nlq).expect("live translation");
    println!(
        "\nLive service (3 ingested queries): top translation\n  {} (score {:.6})",
        before[0].query, before[0].score
    );

    // 5. kill -9: freeze the on-disk state mid-flight and recover from it.
    copy_dir(&dir, &image);
    let recovered = TemplarService::recover(
        academic_db(),
        &image,
        TemplarConfig::paper_defaults(),
        config,
    )
    .expect("crash recovery");
    let rm = recovered.metrics();
    println!(
        "\nRecovered from the crash image: snapshot covered seq {watermark}, \
         journal replayed {} record(s), QFG has {} queries",
        rm.wal_replayed, rm.qfg_queries
    );
    let after = recovered.translate(&nlq).expect("recovered translation");
    println!(
        "Recovered service: top translation\n  {} (score {:.6})",
        after[0].query, after[0].score
    );
    assert_eq!(before[0].query.to_string(), after[0].query.to_string());
    assert_eq!(before[0].score.to_bits(), after[0].score.to_bits());
    println!("\nByte-identical to the uninterrupted service. Nothing was forgotten.");

    fs::remove_dir_all(&dir).ok();
    fs::remove_dir_all(&image).ok();
}
