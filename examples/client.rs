//! Multi-tenant API client: two databases behind one registry, addressed by
//! tenant id through the versioned JSON line protocol.
//!
//! The serving example (`examples/serving.rs`) runs ONE `TemplarService`; a
//! production deployment hosts MANY — one per database (the paper evaluates
//! three: MAS, IMDB, Yelp).  This example walks that deployment shape:
//!
//! 1. register two datasets (MAS and Yelp) in a `TenantRegistry`,
//! 2. translate the same session against both tenants through the
//!    `RegistryClient`, which round-trips every call through the JSON wire
//!    encoding a remote client would send,
//! 3. read each candidate's `Explanation` — the λ-blend of Section IV is
//!    reproducible from the response alone,
//! 4. re-ask with a per-request λ override (log-heavy scoring) without
//!    touching the tenant's configuration,
//! 5. hit the typed error taxonomy: an unknown tenant is a value, not a
//!    panic.
//!
//! Run with: `cargo run --release --example client`

use datasets::Dataset;
use templar_api::{ApiError, TranslateRequest};
use templar_core::TemplarConfig;
use templar_service::{RegistryClient, ServiceConfig, TemplarService, TenantRegistry};

fn main() {
    // 1. One service per database, routed by tenant id.
    let registry = TenantRegistry::new();
    for dataset in [Dataset::mas(), Dataset::yelp()] {
        let log = dataset.full_log();
        let service = TemplarService::spawn(
            dataset.db.clone(),
            &log,
            TemplarConfig::paper_defaults(),
            ServiceConfig::default(),
        )
        .expect("dataset and configuration share an obscurity level");
        registry.register(dataset.name.clone(), service);
    }
    println!("registry hosts tenants: {:?}\n", registry.tenant_ids());

    // 2. The client speaks the JSON line protocol, in process.
    let client = RegistryClient::new(&registry);

    // One NLQ per tenant, taken from each benchmark's hand parse.
    let mas = Dataset::mas();
    let yelp = Dataset::yelp();
    let sessions = [("MAS", &mas.cases[0]), ("Yelp", &yelp.cases[0])];

    for (tenant, case) in sessions {
        println!("[{tenant}] NLQ: {}", case.nlq.text);
        let response = client
            .translate(TranslateRequest::new(
                tenant,
                case.nlq.text.clone(),
                case.nlq.keywords.clone(),
            ))
            .expect("benchmark NLQs translate");
        let top = response.best().expect("at least one candidate");
        let e = &top.explanation;
        println!("  top SQL : {}", top.sql);
        println!(
            "  score {:.3} = (λ={:.1})·σ {:.3} + (1−λ)·QFG {:.3}, × join {:.3} ({} edges, log-weighted: {})",
            top.score,
            e.lambda,
            e.sigma_score,
            e.qfg_score,
            e.join.score,
            e.join.edges,
            e.join.used_log_weights,
        );
        assert!(e.is_consistent(1e-9), "the blend must be reproducible");

        // 4. Per-request override: trust the query log far more than word
        //    similarity for this one request (λ = 0.2), and only the best
        //    candidate.  The tenant's own configuration is untouched.
        let overridden = client
            .translate(
                TranslateRequest::new(tenant, case.nlq.text.clone(), case.nlq.keywords.clone())
                    .with_lambda(0.2)
                    .with_top_k(1),
            )
            .expect("override run translates");
        let log_heavy = overridden.best().expect("one candidate");
        println!(
            "  λ=0.2 override: score {:.3} → {}",
            log_heavy.score, log_heavy.sql
        );
        println!();
    }

    // 5. Failures are typed values from the same taxonomy wire clients see.
    let err = client
        .translate(TranslateRequest::new(
            "warehouse",
            "who sells espresso machines",
            mas.cases[0].nlq.keywords.clone(),
        ))
        .expect_err("tenant does not exist");
    assert_eq!(
        err,
        ApiError::UnknownTenant {
            tenant: "warehouse".to_string()
        }
    );
    println!("unknown tenant is a typed error: {err}");
}
