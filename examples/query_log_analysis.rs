//! Query-log analysis: builds the Query Fragment Graph of the IMDB benchmark
//! log at each obscurity level and prints the most frequent fragments, their
//! co-occurrence strengths (Dice), and the resulting log-driven join edge
//! weights — the raw material behind Sections IV-VI of the paper.
//!
//! Run with: `cargo run --release --example query_log_analysis`

use datasets::Dataset;
use templar_core::{Obscurity, QueryFragment, QueryFragmentGraph};

fn main() {
    let dataset = Dataset::imdb();
    let log = dataset.full_log();
    println!("IMDB query log: {} queries\n", log.len());

    for level in Obscurity::ALL {
        let qfg = QueryFragmentGraph::build(&log, level);
        println!(
            "Obscurity {:<10} -> {} distinct fragments, {} co-occurrence edges",
            level.name(),
            qfg.fragment_count(),
            qfg.edge_count()
        );
    }

    let qfg = QueryFragmentGraph::build(&log, Obscurity::NoConstOp);
    println!("\nTop fragments (NoConstOp):");
    for (fragment, count) in qfg.top_fragments(8) {
        println!("  {count:>4}x  {fragment}");
    }

    // Which fragments co-occur with a director-name predicate?
    let director_pred = QueryFragment {
        expr: "director.name ?op ?val".into(),
        context: templar_core::QueryContext::Where,
    };
    let movie_title = QueryFragment {
        expr: "movie.title".into(),
        context: templar_core::QueryContext::Select,
    };
    let actor_name = QueryFragment {
        expr: "actor.name".into(),
        context: templar_core::QueryContext::Select,
    };
    println!(
        "\nDice(director.name ?op ?val, movie.title SELECT) = {:.3}",
        qfg.dice(&director_pred, &movie_title)
    );
    println!(
        "Dice(director.name ?op ?val, actor.name SELECT)  = {:.3}",
        qfg.dice(&director_pred, &actor_name)
    );

    // Log-driven join edge weights: frequently co-queried relations get
    // cheaper edges (w_L = 1 - Dice).
    println!("\nLog-driven join edge weights (lower = preferred):");
    for (a, b) in [
        ("movie", "cast"),
        ("movie", "directed_by"),
        ("movie", "tags"),
        ("cast", "tv_series"),
    ] {
        println!(
            "  w_L({a:<12},{b:<12}) = {:.3}",
            1.0 - qfg.relation_dice(a, b)
        );
    }
}
