//! Quickstart: augmenting an NLIDB with Templar on a tiny academic database.
//!
//! Builds a small database and query log by hand, asks Templar to map
//! keywords and infer a join path (the two interface calls of Figure 2 in the
//! paper), and prints the resulting SQL.
//!
//! Run with: `cargo run --release --example quickstart`

use std::sync::Arc;

use nlidb::{construct_query, NlidbSystem, Nlq, PipelineSystem};
use relational::{DataType, Database, Schema};
use sqlparse::BinOp;
use templar_core::{BagItem, Keyword, KeywordMetadata, QueryLog, Templar, TemplarConfig};

fn main() {
    // 1. A miniature academic database (publication + journal).
    let schema = Schema::builder("academic")
        .relation(
            "publication",
            &[
                ("pid", DataType::Integer),
                ("title", DataType::Text),
                ("year", DataType::Integer),
                ("jid", DataType::Integer),
            ],
            Some("pid"),
        )
        .relation(
            "journal",
            &[("jid", DataType::Integer), ("name", DataType::Text)],
            Some("jid"),
        )
        .foreign_key("publication", "jid", "journal", "jid")
        .build();
    let mut db = Database::new(schema);
    db.insert("journal", vec![1.into(), "TKDE".into()]).unwrap();
    db.insert("journal", vec![2.into(), "TMC".into()]).unwrap();
    db.insert(
        "publication",
        vec![
            1.into(),
            "Scalable Query Processing".into(),
            2003.into(),
            1.into(),
        ],
    )
    .unwrap();
    db.insert(
        "publication",
        vec![
            2.into(),
            "Natural Language Interfaces".into(),
            2008.into(),
            2.into(),
        ],
    )
    .unwrap();
    let db = Arc::new(db);

    // 2. A SQL query log: previous users mostly asked for publication titles.
    let (log, _) = QueryLog::from_sql([
        "SELECT p.title FROM publication p WHERE p.year > 2000",
        "SELECT p.title FROM publication p, journal j WHERE j.name = 'TKDE' AND p.jid = j.jid",
        "SELECT p.title FROM publication p, journal j WHERE j.name = 'TMC' AND p.jid = j.jid",
        "SELECT j.name FROM journal j",
    ]);

    // 3. Templar with the paper's default parameters (NoConstOp, kappa=5,
    //    lambda=0.8).
    let templar = Templar::new(Arc::clone(&db), &log, TemplarConfig::paper_defaults())
        .expect("QFG and configuration share an obscurity level");

    // 4. The NLQ "Return the papers after 2000", hand-parsed into keywords
    //    and metadata exactly as a host NLIDB would do (Example 4).
    let keywords = vec![
        (Keyword::new("papers"), KeywordMetadata::select()),
        (
            Keyword::new("after 2000"),
            KeywordMetadata::filter_with_op(BinOp::Gt),
        ),
    ];

    // 5. Interface call #1: keyword mapping.
    let configurations = templar.map_keywords(&keywords);
    println!("Top configurations for 'Return the papers after 2000':");
    for config in configurations.iter().take(3) {
        let fragments: Vec<String> = config
            .mappings
            .iter()
            .map(|m| format!("{:?}", m.element))
            .collect();
        println!("  score {:.3}: {}", config.score, fragments.join("; "));
    }

    // 6. Interface call #2: join path inference for the best configuration.
    let best = &configurations[0];
    let bag: Vec<BagItem> = best
        .attribute_bag()
        .into_iter()
        .map(BagItem::Attribute)
        .collect();
    let inference = templar.infer_joins(&bag).expect("relations are connected");
    let path = &inference.best().expect("at least one join path").path;
    println!(
        "\nBest join path covers relations: {:?}",
        path.relation_names(&inference.graph)
    );

    // 7. The host NLIDB assembles the final SQL.
    let sql = construct_query(best, &inference, path).expect("construction succeeds");
    println!("Final SQL: {sql}");

    // 8. Or simply use the ready-made Pipeline+ system end to end.
    let system = PipelineSystem::augmented(db, &log, TemplarConfig::paper_defaults())
        .expect("system builds");
    let nlq = Nlq::new("Return the papers after 2000", keywords, vec![]);
    let ranked = system.translate(&nlq).expect("the NLQ translates");
    println!("\nPipeline+ top translation: {}", ranked[0].query);
}
