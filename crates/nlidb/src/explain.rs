//! Per-candidate score explanations.
//!
//! Every ranked SQL candidate carries an [`Explanation`] that decomposes its
//! final score into the components of Section IV's λ-blend — the
//! word-similarity score, the log-popularity and co-occurrence/Dice parts of
//! `Score_QFG` — and its join path into schema distance versus log-evidence
//! weight.  The decomposition is *complete*: [`Explanation::recompute_final`]
//! reproduces the blended score from the components alone, so a wire client
//! can audit any ranking decision without access to the database, the QFG or
//! the similarity model.

use serde::{Deserialize, Serialize};
use templar_core::Configuration;

/// The share of the final score contributed by the configuration versus the
/// join path: `final = config_score · (JOIN_BLEND_BASE + JOIN_BLEND_WEIGHT ·
/// join_score)`.  The configuration score carries the keyword-mapping
/// evidence; the join-path score only modulates it, so a popular-but-
/// irrelevant join edge can never override a clearly better keyword mapping.
pub const JOIN_BLEND_BASE: f64 = 0.75;
/// See [`JOIN_BLEND_BASE`].
pub const JOIN_BLEND_WEIGHT: f64 = 0.25;

/// How a join path's score was derived: its schema distance (edge count) and
/// total edge weight, which is log-evidence-driven (`w_L = 1 − Dice`) when
/// `used_log_weights` is set and plain unit schema distance otherwise.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JoinExplanation {
    /// Number of join edges (the schema-distance component).
    pub edges: usize,
    /// Total edge weight of the join tree (the log-evidence component when
    /// `used_log_weights`; equal to `edges` under unit weights).
    pub total_weight: f64,
    /// Whether edge weights came from query-log Dice evidence.
    pub used_log_weights: bool,
    /// The resulting join-path score `Score_j ∈ (0, 1]`.
    pub score: f64,
}

impl JoinExplanation {
    /// Recompute `score` from `edges` and `total_weight` — the same
    /// definition [`schemagraph::JoinPath::score`] ranks paths with, so an
    /// explanation can never drift from the ranking arithmetic.
    pub fn recompute_score(&self) -> f64 {
        schemagraph::join_path_score(self.total_weight, self.edges)
    }
}

/// A complete decomposition of one candidate's final score.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Explanation {
    /// The λ the candidate was scored under (per-request overridable).
    pub lambda: f64,
    /// Word-similarity score `Score_σ` (geometric mean of mapping σ's).
    pub sigma_score: f64,
    /// Log-popularity component of `Score_QFG`: mean normalised occurrence
    /// frequency of the configuration's non-relation fragments.
    pub log_popularity: f64,
    /// Co-occurrence component of `Score_QFG`: smoothed geometric
    /// aggregation of pairwise Dice coefficients.
    pub dice_cooccurrence: f64,
    /// Number of fragment pairs behind `dice_cooccurrence`; when 0 the
    /// log-popularity fallback is the effective `Score_QFG`.
    pub qfg_pairs: usize,
    /// The effective `Score_QFG` used in the blend.
    pub qfg_score: f64,
    /// The blended configuration score `λ·Score_σ + (1−λ)·Score_QFG`.
    pub config_score: f64,
    /// The join-path decomposition.
    pub join: JoinExplanation,
    /// The candidate's final score
    /// `config_score · (JOIN_BLEND_BASE + JOIN_BLEND_WEIGHT · join.score)`.
    pub final_score: f64,
    /// True when the best-first configuration search hit its
    /// `TemplarConfig::search_budget` before proving the ranking exact:
    /// this candidate came from the best configurations found within the
    /// budget, and a better mapping may exist outside it.  False means the
    /// ranking is provably identical to exhaustively scoring every
    /// configuration.
    pub search_budget_exhausted: bool,
}

impl Explanation {
    /// Assemble an explanation from a scored configuration, its join
    /// path's characteristics and the configuration search's outcome.
    pub fn from_parts(
        config: &Configuration,
        join: JoinExplanation,
        final_score: f64,
        search_budget_exhausted: bool,
    ) -> Self {
        Explanation {
            lambda: config.lambda,
            sigma_score: config.sigma_score,
            log_popularity: config.log_popularity,
            dice_cooccurrence: config.dice_cooccurrence,
            qfg_pairs: config.qfg_pairs,
            qfg_score: config.qfg_score,
            config_score: config.score,
            join,
            final_score,
            search_budget_exhausted,
        }
    }

    /// The effective `Score_QFG` implied by the components.
    pub fn recompute_qfg_score(&self) -> f64 {
        if self.qfg_pairs == 0 {
            self.log_popularity
        } else {
            self.dice_cooccurrence
        }
    }

    /// The blended configuration score implied by the components.
    pub fn recompute_config_score(&self) -> f64 {
        self.lambda * self.sigma_score + (1.0 - self.lambda) * self.recompute_qfg_score()
    }

    /// The final score implied by the components — the λ-blend of Section IV
    /// modulated by the join-path score.
    pub fn recompute_final(&self) -> f64 {
        self.recompute_config_score()
            * (JOIN_BLEND_BASE + JOIN_BLEND_WEIGHT * self.join.recompute_score())
    }

    /// True when every stored aggregate matches its recomputation within
    /// `tolerance` — i.e. the explanation is self-consistent and the blend
    /// is reproducible from the response alone.
    pub fn is_consistent(&self, tolerance: f64) -> bool {
        (self.recompute_qfg_score() - self.qfg_score).abs() <= tolerance
            && (self.recompute_config_score() - self.config_score).abs() <= tolerance
            && (self.join.recompute_score() - self.join.score).abs() <= tolerance
            && (self.recompute_final() - self.final_score).abs() <= tolerance
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Explanation {
        let join = JoinExplanation {
            edges: 2,
            total_weight: 0.8,
            used_log_weights: true,
            score: 0.0,
        };
        let join = JoinExplanation {
            score: join.recompute_score(),
            ..join
        };
        let mut e = Explanation {
            lambda: 0.8,
            sigma_score: 0.7,
            log_popularity: 0.2,
            dice_cooccurrence: 0.45,
            qfg_pairs: 1,
            qfg_score: 0.45,
            config_score: 0.0,
            join,
            final_score: 0.0,
            search_budget_exhausted: false,
        };
        e.config_score = e.recompute_config_score();
        e.final_score = e.recompute_final();
        e
    }

    #[test]
    fn consistent_explanations_recompute_exactly() {
        let e = sample();
        assert!(e.is_consistent(1e-12));
        assert!((e.config_score - (0.8 * 0.7 + 0.2 * 0.45)).abs() < 1e-12);
    }

    #[test]
    fn tampered_explanations_fail_the_consistency_check() {
        let mut e = sample();
        e.final_score += 0.05;
        assert!(!e.is_consistent(1e-9));
        let mut e = sample();
        e.qfg_pairs = 0; // switches the QFG component to log-popularity
        assert!(!e.is_consistent(1e-9));
    }

    #[test]
    fn trivial_join_path_scores_one() {
        let j = JoinExplanation {
            edges: 0,
            total_weight: 0.0,
            used_log_weights: false,
            score: 1.0,
        };
        assert_eq!(j.recompute_score(), 1.0);
    }

    #[test]
    fn explanations_round_trip_through_serde() {
        let e = sample();
        let json = serde_json::to_string(&e).unwrap();
        let back: Explanation = serde_json::from_str(&json).unwrap();
        assert_eq!(back, e);
    }
}
