//! The Pipeline baseline and its Templar-augmented variant (Pipeline+).
//!
//! Pipeline implements the keyword mapping and join path inference steps of
//! SQLizer \[41\] without the hand-written repair rules (Section VII-A.2 of
//! the paper): keyword mappings are ranked purely by normalised
//! word-embedding similarity, and join paths are always the minimum-length
//! ones.  Pipeline+ keeps the same NLQ handling and SQL construction but
//! defers keyword mapping and join path inference to Templar.
//!
//! Both are expressed as instances of the same translation driver over a
//! [`Templar`] facade: the baseline simply runs Templar with `λ = 1`
//! (similarity-only configuration scores), an empty query log and unit join
//! weights, which makes it behave exactly as the SQLizer-style pipeline the
//! paper describes.

use crate::construct::construct_query;
use crate::explain::{Explanation, JoinExplanation, JOIN_BLEND_BASE, JOIN_BLEND_WEIGHT};
use crate::system::{NlidbSystem, Nlq, RankedSql, TemplarSource, TranslateError};
use relational::Database;
use sqlparse::canonicalize;
use std::collections::BTreeSet;
use std::sync::Arc;
use templar_core::{
    BagItem, CandidateMemo, Configuration, Keyword, KeywordMetadata, MappedElement, QueryLog,
    SearchStats, SharedTemplar, Stage, Templar, TemplarConfig, TemplarError, TraceCtx,
};

/// How many of the top configurations are expanded into SQL candidates.
const CONFIGS_PER_QUERY: usize = 6;

/// A pipeline-style NLIDB (baseline, Templar-augmented, or live-serving).
pub struct PipelineSystem {
    name: String,
    source: TemplarSource,
}

impl PipelineSystem {
    /// The vanilla Pipeline baseline: similarity-only keyword mapping and
    /// minimum-length join paths (no query-log information at all).
    pub fn baseline(db: Arc<Database>) -> Result<Self, TemplarError> {
        let config = TemplarConfig::default()
            .with_lambda(1.0)
            .with_log_joins(false);
        let templar = Templar::new(db, &QueryLog::new(), config)?;
        Ok(PipelineSystem {
            name: "Pipeline".to_string(),
            source: TemplarSource::Fixed(Arc::new(templar)),
        })
    }

    /// Pipeline+ — the baseline augmented with Templar using the given query
    /// log and configuration.
    pub fn augmented(
        db: Arc<Database>,
        log: &QueryLog,
        config: TemplarConfig,
    ) -> Result<Self, TemplarError> {
        let templar = Templar::new(db, log, config)?;
        Ok(PipelineSystem {
            name: "Pipeline+".to_string(),
            source: TemplarSource::Fixed(Arc::new(templar)),
        })
    }

    /// Build from an existing Templar instance under a custom display name
    /// (used by parameter-sweep experiments).
    pub fn with_templar(name: impl Into<String>, templar: Arc<Templar>) -> Self {
        PipelineSystem {
            name: name.into(),
            source: TemplarSource::Fixed(templar),
        }
    }

    /// Pipeline+ over a live serving handle (`TemplarService::handle()`):
    /// every translation runs against the service's newest published
    /// snapshot, so ingested log entries sharpen subsequent translations
    /// without rebuilding the system.
    pub fn serving(handle: SharedTemplar) -> Self {
        PipelineSystem {
            name: "Pipeline+live".to_string(),
            source: TemplarSource::Shared(handle),
        }
    }

    /// The Templar facade used for the next translation (the current
    /// snapshot, in the serving variant).
    pub fn templar(&self) -> Arc<Templar> {
        self.source.current()
    }

    /// The keywords this system feeds to keyword mapping.  Pipeline receives
    /// the gold hand parse (Section VII-A.4).
    fn parse(&self, nlq: &Nlq) -> Vec<(Keyword, KeywordMetadata)> {
        nlq.keywords.clone()
    }
}

/// Shared translation driver: map keywords, infer joins for the top
/// configurations, construct SQL, and rank.  Public so the serving layer
/// (`templar-service`) can drive translations against a snapshot directly.
pub fn translate_with(
    templar: &Templar,
    keywords: &[(Keyword, KeywordMetadata)],
) -> Result<Vec<RankedSql>, TranslateError> {
    translate_with_config(templar, keywords, templar.config())
}

/// [`translate_with`] under an explicit configuration.  The serving layer
/// uses this to apply per-request overrides (λ, `use_log_joins`) against an
/// immutable snapshot; the override-aware join cache keeps inferences from
/// different configurations from aliasing.
pub fn translate_with_config(
    templar: &Templar,
    keywords: &[(Keyword, KeywordMetadata)],
    config: &TemplarConfig,
) -> Result<Vec<RankedSql>, TranslateError> {
    translate_with_config_stats(templar, keywords, config).0
}

/// [`translate_with_config`] plus the [`SearchStats`] of the best-first
/// configuration search behind the translation — returned even when the
/// translation fails downstream of keyword mapping, so the serving layer's
/// counters always see the search work that was actually spent.
pub fn translate_with_config_stats(
    templar: &Templar,
    keywords: &[(Keyword, KeywordMetadata)],
    config: &TemplarConfig,
) -> (Result<Vec<RankedSql>, TranslateError>, SearchStats) {
    translate_traced(templar, keywords, config, TraceCtx::disabled())
}

/// [`translate_with_config_stats`] recording per-stage spans into `trace`:
/// candidate pruning and the configuration search inside keyword mapping,
/// then join inference, SQL construction and final ranking here.  Spans are
/// non-overlapping on this thread, so their durations sum to at most the
/// caller's measured end-to-end latency; [`TraceCtx::disabled`] (what the
/// untraced entry points pass) makes the whole path identical to the
/// pre-tracing build.
pub fn translate_traced(
    templar: &Templar,
    keywords: &[(Keyword, KeywordMetadata)],
    config: &TemplarConfig,
    trace: TraceCtx<'_>,
) -> (Result<Vec<RankedSql>, TranslateError>, SearchStats) {
    translate_traced_memo(templar, keywords, config, trace, None)
}

/// [`translate_traced`] consulting an optional cross-request
/// [`CandidateMemo`] for pruned candidate lists — the serving layer's
/// batched-scoring hook.  `None` is the identical solo path; a memo must be
/// scoped to this exact snapshot (the memo trait docs spell out why the
/// lists are override-independent and therefore shareable).
pub fn translate_traced_memo(
    templar: &Templar,
    keywords: &[(Keyword, KeywordMetadata)],
    config: &TemplarConfig,
    trace: TraceCtx<'_>,
    memo: Option<&dyn CandidateMemo>,
) -> (Result<Vec<RankedSql>, TranslateError>, SearchStats) {
    if keywords.is_empty() {
        return (Err(TranslateError::NoKeywords), SearchStats::default());
    }
    let (configurations, stats) = templar.map_keywords_traced_memo(keywords, config, trace, memo);
    (
        rank_configurations(templar, config, configurations, &stats, trace),
        stats,
    )
}

/// Expand the top configurations into ranked SQL candidates.
fn rank_configurations(
    templar: &Templar,
    config: &TemplarConfig,
    configurations: Vec<Configuration>,
    stats: &SearchStats,
    trace: TraceCtx<'_>,
) -> Result<Vec<RankedSql>, TranslateError> {
    if configurations.is_empty() {
        return Err(TranslateError::NoMappings);
    }
    let mut results: Vec<RankedSql> = Vec::new();
    let mut seen: BTreeSet<String> = BTreeSet::new();
    let mut any_join_path = false;
    for configuration in configurations.into_iter().take(CONFIGS_PER_QUERY) {
        let bag = bag_of(&configuration);
        if bag.is_empty() {
            continue;
        }
        let Ok(inference) = templar.infer_joins_traced(&bag, config, trace) else {
            continue;
        };
        any_join_path = true;
        for scored_path in inference.paths.iter().take(2) {
            let construct_span = trace.span(Stage::SqlConstruction);
            let Some(query) = construct_query(&configuration, &inference, &scored_path.path) else {
                continue;
            };
            let canonical = canonicalize(&query).to_string();
            drop(construct_span);
            if !seen.insert(canonical) {
                continue;
            }
            // The configuration score carries the keyword-mapping evidence;
            // the join-path score only modulates it.  Blending (rather than
            // multiplying outright) keeps a popular-but-irrelevant join edge
            // from overriding a clearly better keyword mapping.
            let score =
                configuration.score * (JOIN_BLEND_BASE + JOIN_BLEND_WEIGHT * scored_path.score);
            let join = JoinExplanation {
                edges: scored_path.path.edges.len(),
                total_weight: scored_path.path.total_weight,
                used_log_weights: inference.used_log_weights,
                score: scored_path.score,
            };
            results.push(RankedSql {
                explanation: Explanation::from_parts(
                    &configuration,
                    join,
                    score,
                    stats.budget_exhausted,
                ),
                query,
                score,
                configuration: Some(configuration.clone()),
            });
        }
    }
    if results.is_empty() {
        return Err(if any_join_path {
            TranslateError::NoSql
        } else {
            TranslateError::NoJoinPath
        });
    }
    let _span = trace.span(Stage::Ranking);
    results.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.query.to_string().cmp(&b.query.to_string()))
    });
    Ok(results)
}

/// The bag of relations/attributes implied by a configuration, handed to
/// `INFERJOINS`.
pub(crate) fn bag_of(config: &Configuration) -> Vec<BagItem> {
    config
        .mappings
        .iter()
        .map(|m| match &m.element {
            MappedElement::Relation(r) => BagItem::Relation(r.clone()),
            MappedElement::Attribute { attr, .. } | MappedElement::Predicate { attr, .. } => {
                BagItem::Attribute(attr.clone())
            }
        })
        .collect()
}

impl NlidbSystem for PipelineSystem {
    fn name(&self) -> &str {
        &self.name
    }

    fn translate(&self, nlq: &Nlq) -> Result<Vec<RankedSql>, TranslateError> {
        let keywords = self.parse(nlq);
        translate_with(&self.source.current(), &keywords)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relational::{DataType, Schema};
    use sqlparse::{canon, parse_query, BinOp};
    use templar_core::QueryContext;

    fn academic_db() -> Arc<Database> {
        let schema = Schema::builder("academic")
            .relation(
                "publication",
                &[
                    ("pid", DataType::Integer),
                    ("title", DataType::Text),
                    ("year", DataType::Integer),
                    ("jid", DataType::Integer),
                ],
                Some("pid"),
            )
            .relation(
                "journal",
                &[("jid", DataType::Integer), ("name", DataType::Text)],
                Some("jid"),
            )
            .foreign_key("publication", "jid", "journal", "jid")
            .build();
        let mut db = Database::new(schema);
        db.insert(
            "publication",
            vec![1.into(), "Query Processing".into(), 2003.into(), 1.into()],
        )
        .unwrap();
        db.insert(
            "publication",
            vec![2.into(), "Data Integration".into(), 1997.into(), 2.into()],
        )
        .unwrap();
        db.insert("journal", vec![1.into(), "TKDE".into()]).unwrap();
        db.insert("journal", vec![2.into(), "TMC".into()]).unwrap();
        Arc::new(db)
    }

    fn papers_after_2000() -> Nlq {
        Nlq::new(
            "Return the papers after 2000",
            vec![
                (
                    Keyword::new("papers"),
                    KeywordMetadata {
                        context: QueryContext::Select,
                        op: None,
                        aggregates: vec![],
                        group_by: false,
                    },
                ),
                (
                    Keyword::new("after 2000"),
                    KeywordMetadata {
                        context: QueryContext::Where,
                        op: Some(BinOp::Gt),
                        aggregates: vec![],
                        group_by: false,
                    },
                ),
            ],
            vec![],
        )
    }

    fn log() -> QueryLog {
        QueryLog::from_sql([
            "SELECT p.title FROM publication p WHERE p.year > 1995",
            "SELECT p.title FROM publication p WHERE p.year > 2010",
            "SELECT p.title FROM publication p, journal j WHERE j.name = 'TKDE' AND p.jid = j.jid",
        ])
        .0
    }

    #[test]
    fn baseline_translates_a_simple_query() {
        let system = PipelineSystem::baseline(academic_db()).unwrap();
        assert_eq!(system.name(), "Pipeline");
        let results = system.translate(&papers_after_2000()).unwrap();
        assert!(!results.is_empty());
        // Ranked best-first with scores in descending order.
        for w in results.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }

    #[test]
    fn augmented_system_produces_the_intended_translation() {
        let system =
            PipelineSystem::augmented(academic_db(), &log(), TemplarConfig::default()).unwrap();
        assert_eq!(system.name(), "Pipeline+");
        let results = system.translate(&papers_after_2000()).unwrap();
        assert!(!results.is_empty());
        let gold = parse_query("SELECT p.title FROM publication p WHERE p.year > 2000").unwrap();
        assert!(
            canon::equivalent(&results[0].query, &gold),
            "top-1 was: {}",
            results[0].query
        );
    }

    #[test]
    fn duplicate_translations_are_deduplicated() {
        let system = PipelineSystem::baseline(academic_db()).unwrap();
        let results = system.translate(&papers_after_2000()).unwrap();
        let mut canon_forms: Vec<String> = results
            .iter()
            .map(|r| canonicalize(&r.query).to_string())
            .collect();
        let before = canon_forms.len();
        canon_forms.sort();
        canon_forms.dedup();
        assert_eq!(before, canon_forms.len());
    }

    #[test]
    fn empty_keywords_are_a_typed_error() {
        let system = PipelineSystem::baseline(academic_db()).unwrap();
        let nlq = Nlq::new("gibberish", vec![], vec![]);
        assert!(matches!(
            system.translate(&nlq),
            Err(TranslateError::NoKeywords)
        ));
    }

    #[test]
    fn traced_translation_attributes_stages_within_the_total() {
        use std::time::Instant;
        use templar_core::{Stage, TraceCtx, TraceSpans};

        let system =
            PipelineSystem::augmented(academic_db(), &log(), TemplarConfig::default()).unwrap();
        let templar = system.templar();
        let keywords = papers_after_2000().keywords;

        let spans = TraceSpans::new();
        let started = Instant::now();
        let (results, stats) = translate_traced(
            &templar,
            &keywords,
            templar.config(),
            TraceCtx::enabled(&spans),
        );
        let trace = spans.finish(started.elapsed());
        assert!(!results.unwrap().is_empty());
        assert!(stats.tuples_scored > 0);

        // Every stage ran at least once, and the non-overlapping spans must
        // sum to at most the measured end-to-end latency.
        for span in &trace.stages {
            assert!(span.calls > 0, "stage {} never recorded a call", span.stage);
        }
        assert!(trace.stage_nanos(Stage::CandidatePruning) > 0);
        assert!(
            trace.stage_sum_nanos() <= trace.total_nanos,
            "stage sum {} exceeds end-to-end total {}",
            trace.stage_sum_nanos(),
            trace.total_nanos
        );

        // Tracing must not change the translation itself.
        let (untraced, _) = translate_with_config_stats(&templar, &keywords, templar.config());
        let (traced, _) = translate_traced(
            &templar,
            &keywords,
            templar.config(),
            TraceCtx::enabled(&TraceSpans::new()),
        );
        let queries = |rs: Vec<RankedSql>| -> Vec<String> {
            rs.into_iter().map(|r| r.query.to_string()).collect()
        };
        assert_eq!(queries(untraced.unwrap()), queries(traced.unwrap()));
    }

    #[test]
    fn every_candidate_carries_a_consistent_explanation() {
        let system =
            PipelineSystem::augmented(academic_db(), &log(), TemplarConfig::default()).unwrap();
        let results = system.translate(&papers_after_2000()).unwrap();
        for r in &results {
            assert!(
                r.explanation.is_consistent(1e-9),
                "explanation must recompute the blended score: {:?}",
                r.explanation
            );
            assert!((r.explanation.final_score - r.score).abs() < 1e-12);
        }
    }
}
