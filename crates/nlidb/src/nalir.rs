//! The NaLIR baseline and its Templar-augmented variant (NaLIR+).
//!
//! NaLIR \[22\] parses the NLQ with a dependency parser, maps parse-tree
//! nodes to schema elements with WordNet similarity, and joins relations
//! using manually preset schema-graph edge weights.  The paper runs it in its
//! non-interactive setting and reports that its accuracy is dominated by
//! parser errors on NLQs with explicit relation references or nested
//! structure (Section VII-C).
//!
//! Re-implementing the Stanford dependency parser is far outside the scope of
//! this reproduction, so NaLIR's front end is modelled as the gold hand parse
//! passed through a **deterministic noise model**: NLQs flagged
//! `hard_for_parser` lose part of their keyword metadata exactly the way the
//! paper describes (a relation-reference keyword swallowed by the parse, an
//! aggregate misread).  The back end uses a lexicon-only similarity model
//! (standing in for WordNet) and unit edge weights (standing in for NaLIR's
//! preset weights).  NaLIR+ keeps the same noisy front end but defers keyword
//! mapping and join inference to Templar, as in the paper.

use crate::pipeline::translate_with;
use crate::system::{NlidbSystem, Nlq, RankedSql, TemplarSource, TranslateError};
use nlp::{SynonymLexicon, TextSimilarity, WordModel};
use relational::Database;
use std::sync::Arc;
use templar_core::{
    Keyword, KeywordMetadata, QueryContext, QueryLog, SharedTemplar, Templar, TemplarConfig,
    TemplarError,
};

/// A NaLIR-style NLIDB (baseline, Templar-augmented, or live-serving).
pub struct NaLirSystem {
    name: String,
    source: TemplarSource,
}

impl NaLirSystem {
    /// The vanilla NaLIR baseline: lexicon (WordNet-style) similarity, preset
    /// (unit) join weights, no query-log information, noisy parser.
    pub fn baseline(db: Arc<Database>) -> Result<Self, TemplarError> {
        let config = TemplarConfig::default()
            .with_lambda(1.0)
            .with_log_joins(false);
        let similarity =
            TextSimilarity::with_model(WordModel::with_lexicon(SynonymLexicon::builtin()));
        let templar = Templar::with_similarity(db, &QueryLog::new(), config, similarity)?;
        Ok(NaLirSystem {
            name: "NaLIR".to_string(),
            source: TemplarSource::Fixed(Arc::new(templar)),
        })
    }

    /// NaLIR+ — the same noisy parser, with keyword mapping and join path
    /// inference deferred to Templar.
    pub fn augmented(
        db: Arc<Database>,
        log: &QueryLog,
        config: TemplarConfig,
    ) -> Result<Self, TemplarError> {
        let templar = Templar::new(db, log, config)?;
        Ok(NaLirSystem {
            name: "NaLIR+".to_string(),
            source: TemplarSource::Fixed(Arc::new(templar)),
        })
    }

    /// NaLIR+ over a live serving handle (`TemplarService::handle()`): the
    /// same noisy parser, but keyword mapping and join inference run against
    /// the service's newest published snapshot.
    pub fn serving(handle: SharedTemplar) -> Self {
        NaLirSystem {
            name: "NaLIR+live".to_string(),
            source: TemplarSource::Shared(handle),
        }
    }

    /// The Templar facade used for the next translation (the current
    /// snapshot, in the serving variant).
    pub fn templar(&self) -> Arc<Templar> {
        self.source.current()
    }

    /// NaLIR's parse of the NLQ: the gold keywords, degraded by the
    /// deterministic noise model for NLQs in the hard class.
    pub fn parse(&self, nlq: &Nlq) -> Vec<(Keyword, KeywordMetadata)> {
        nalir_parse(nlq)
    }
}

/// The deterministic parser-noise model shared by NaLIR and NaLIR+.
///
/// For `hard_for_parser` NLQs the parse degrades in one of three ways chosen
/// by a stable hash of the NLQ text, reproducing the failure modes of
/// Section VII-C:
///
/// 1. an explicit relation-reference keyword is dropped from the parse,
/// 2. a projection keyword is misread as a value filter (losing its
///    aggregates), or
/// 3. grouping/aggregation metadata is lost.
pub fn nalir_parse(nlq: &Nlq) -> Vec<(Keyword, KeywordMetadata)> {
    let mut keywords = nlq.keywords.clone();
    if !nlq.hard_for_parser || keywords.is_empty() {
        return keywords;
    }
    let mode = stable_hash(&nlq.text) % 3;
    match mode {
        0 => {
            // Drop one keyword (the parser attached it to the wrong subtree).
            let idx = (stable_hash(&nlq.text) / 3) as usize % keywords.len();
            keywords.remove(idx);
        }
        1 => {
            // Misread the first projection keyword as a filter.
            if let Some((_, meta)) = keywords
                .iter_mut()
                .find(|(_, m)| m.context == QueryContext::Select)
            {
                meta.context = QueryContext::Where;
                meta.aggregates.clear();
            } else {
                let idx = (stable_hash(&nlq.text) / 3) as usize % keywords.len();
                keywords.remove(idx);
            }
        }
        _ => {
            // Lose aggregation / grouping metadata.
            let mut changed = false;
            for (_, meta) in keywords.iter_mut() {
                if !meta.aggregates.is_empty() || meta.group_by {
                    meta.aggregates.clear();
                    meta.group_by = false;
                    changed = true;
                }
            }
            if !changed {
                let idx = (stable_hash(&nlq.text) / 3) as usize % keywords.len();
                keywords.remove(idx);
            }
        }
    }
    keywords
}

/// FNV-1a over the NLQ text: stable across runs and platforms.
fn stable_hash(text: &str) -> u64 {
    let mut hash: u64 = 0xcbf29ce484222325;
    for b in text.as_bytes() {
        hash ^= u64::from(*b);
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash
}

impl NlidbSystem for NaLirSystem {
    fn name(&self) -> &str {
        &self.name
    }

    fn translate(&self, nlq: &Nlq) -> Result<Vec<RankedSql>, TranslateError> {
        let keywords = self.parse(nlq);
        if keywords.is_empty() {
            return Err(TranslateError::NoKeywords);
        }
        translate_with(&self.source.current(), &keywords)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relational::{DataType, Schema};
    use sqlparse::BinOp;

    fn db() -> Arc<Database> {
        let schema = Schema::builder("academic")
            .relation(
                "publication",
                &[
                    ("pid", DataType::Integer),
                    ("title", DataType::Text),
                    ("year", DataType::Integer),
                ],
                Some("pid"),
            )
            .build();
        let mut db = Database::new(schema);
        db.insert(
            "publication",
            vec![1.into(), "Deep Joins".into(), 2005.into()],
        )
        .unwrap();
        Arc::new(db)
    }

    fn easy_nlq() -> Nlq {
        Nlq::new(
            "Return the papers after 2000",
            vec![
                (Keyword::new("papers"), KeywordMetadata::select()),
                (
                    Keyword::new("after 2000"),
                    KeywordMetadata::filter_with_op(BinOp::Gt),
                ),
            ],
            vec![],
        )
    }

    #[test]
    fn easy_nlqs_keep_their_gold_parse() {
        let nlq = easy_nlq();
        assert_eq!(nalir_parse(&nlq), nlq.keywords);
    }

    #[test]
    fn hard_nlqs_get_a_degraded_parse() {
        let nlq = easy_nlq().with_parser_difficulty(true);
        let parsed = nalir_parse(&nlq);
        assert_ne!(parsed, nlq.keywords, "hard NLQs must be degraded");
    }

    #[test]
    fn noise_model_is_deterministic() {
        let nlq = easy_nlq().with_parser_difficulty(true);
        assert_eq!(nalir_parse(&nlq), nalir_parse(&nlq));
    }

    #[test]
    fn baseline_and_augmented_report_their_names() {
        let base = NaLirSystem::baseline(db()).unwrap();
        let plus =
            NaLirSystem::augmented(db(), &QueryLog::new(), TemplarConfig::default()).unwrap();
        assert_eq!(base.name(), "NaLIR");
        assert_eq!(plus.name(), "NaLIR+");
    }

    #[test]
    fn baseline_still_translates_easy_queries() {
        let system = NaLirSystem::baseline(db()).unwrap();
        let results = system.translate(&easy_nlq()).unwrap();
        assert!(!results.is_empty());
    }
}
