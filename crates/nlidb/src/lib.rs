//! Baseline NLIDB systems and their Templar-augmented variants.
//!
//! The paper evaluates Templar by plugging it into two host systems
//! (Section VII-A.2):
//!
//! * **Pipeline** — an implementation of the keyword mapping and join path
//!   inference steps of SQLizer \[41\] without the hand-written repair rules:
//!   keyword mappings are ranked purely by (normalised) word-embedding
//!   similarity and join paths are always the minimum-length paths.
//!   **Pipeline+** defers both steps to Templar.
//! * **NaLIR** — a parse-tree-based NLIDB whose keyword mapping uses a
//!   WordNet-style lexicon and whose join paths use preset edge weights.  Its
//!   accuracy in the paper is limited primarily by its parser
//!   (Section VII-C); we reproduce that with an explicit, deterministic
//!   parser-noise model instead of re-implementing the Stanford parser (see
//!   DESIGN.md).  **NaLIR+** keeps the same noisy parser but defers keyword
//!   mapping and join inference to Templar.
//!
//! Both hosts share the same SQL construction code ([`construct`]), which
//! assembles the final query from a keyword-mapping configuration and an
//! inferred join path — the responsibility the paper assigns to the NLIDB
//! rather than to Templar.

pub mod construct;
pub mod explain;
pub mod nalir;
pub mod pipeline;
pub mod system;

pub use construct::construct_query;
pub use explain::{Explanation, JoinExplanation, JOIN_BLEND_BASE, JOIN_BLEND_WEIGHT};
pub use nalir::NaLirSystem;
pub use pipeline::{
    translate_traced, translate_traced_memo, translate_with, translate_with_config,
    translate_with_config_stats, PipelineSystem,
};
pub use system::{NlidbSystem, Nlq, RankedSql, TemplarSource, TranslateError};
