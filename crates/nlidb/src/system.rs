//! The common interface of all NLIDB systems under evaluation.

use crate::explain::Explanation;
use serde::{Deserialize, Serialize};
use sqlparse::Query;
use std::fmt;
use std::sync::Arc;
use templar_core::{
    Configuration, Keyword, KeywordMetadata, MappedElement, SharedTemplar, Templar,
};

/// Where a host system gets its Templar facade from.
///
/// * [`TemplarSource::Fixed`] — the batch setting of the paper: one
///   immutable facade for the system's lifetime.
/// * [`TemplarSource::Shared`] — the serving setting: a
///   [`SharedTemplar`] handle (as produced by `templar_service::
///   TemplarService::handle`) whose snapshot is re-loaded per translation,
///   so the system picks up every published ingest epoch without rebuilds
///   or locks on the translation path.
pub enum TemplarSource {
    Fixed(Arc<Templar>),
    Shared(SharedTemplar),
}

impl TemplarSource {
    /// The facade to use for one translation.  O(1) in both variants.
    pub fn current(&self) -> Arc<Templar> {
        match self {
            TemplarSource::Fixed(templar) => Arc::clone(templar),
            TemplarSource::Shared(handle) => handle.load(),
        }
    }
}

/// A natural-language query together with its gold-standard hand parse.
///
/// The paper hand-parses each benchmark NLQ into keywords and metadata for
/// the Pipeline systems (Section VII-A.4) and feeds the raw NLQ to NaLIR.  A
/// benchmark case therefore carries both the raw text and the gold parse; the
/// NaLIR systems run the gold parse through a noise model that reproduces the
/// parser failure modes reported in the paper's error analysis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Nlq {
    /// The natural-language question.
    pub text: String,
    /// Gold keywords with their parser metadata (the hand parse).
    pub keywords: Vec<(Keyword, KeywordMetadata)>,
    /// Gold keyword-to-element mappings, aligned with `keywords`.  Used by
    /// the evaluation harness for the KW metric.
    pub gold_mappings: Vec<MappedElement>,
    /// True when the NLQ belongs to the class NaLIR's parser struggles with
    /// (explicit relation references, nested structure, aggregates over
    /// groups); see Section VII-C.
    pub hard_for_parser: bool,
}

impl Nlq {
    /// Construct an NLQ case.
    pub fn new(
        text: impl Into<String>,
        keywords: Vec<(Keyword, KeywordMetadata)>,
        gold_mappings: Vec<MappedElement>,
    ) -> Self {
        Nlq {
            text: text.into(),
            keywords,
            gold_mappings,
            hard_for_parser: false,
        }
    }

    /// Mark the NLQ as hard for NaLIR's parser.
    pub fn with_parser_difficulty(mut self, hard: bool) -> Self {
        self.hard_for_parser = hard;
        self
    }
}

/// One ranked SQL translation produced by a system.
#[derive(Debug, Clone)]
pub struct RankedSql {
    /// The produced SQL query.
    pub query: Query,
    /// The system's confidence score (larger is better).
    pub score: f64,
    /// The keyword-mapping configuration behind the query, when the system
    /// exposes one (used for the KW accuracy metric).
    pub configuration: Option<Configuration>,
    /// The complete decomposition of `score` into its λ-blend components
    /// (Section IV) and join-path characteristics.
    pub explanation: Explanation,
}

/// Why a translation produced no SQL, as a typed value instead of an empty
/// vector.  Ordered roughly by how far the pipeline got before failing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TranslateError {
    /// The parse handed to keyword mapping contained no keywords.
    NoKeywords,
    /// Keyword mapping produced no candidate configurations.
    NoMappings,
    /// No configuration's relation bag could be connected by a join path.
    NoJoinPath,
    /// Join paths were found but SQL construction failed for every
    /// configuration/path pair.
    NoSql,
}

impl fmt::Display for TranslateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TranslateError::NoKeywords => write!(f, "the parse contained no keywords"),
            TranslateError::NoMappings => {
                write!(f, "keyword mapping produced no candidate configurations")
            }
            TranslateError::NoJoinPath => {
                write!(f, "no configuration's relations could be joined")
            }
            TranslateError::NoSql => {
                write!(f, "SQL construction failed for every candidate")
            }
        }
    }
}

impl std::error::Error for TranslateError {}

/// A natural-language interface to a database.
pub trait NlidbSystem {
    /// The display name used in experiment tables (`Pipeline`, `Pipeline+`,
    /// `NaLIR`, `NaLIR+`).
    fn name(&self) -> &str;

    /// Translate an NLQ into a ranked list of SQL queries (best first).
    /// Failure to produce any translation is a typed [`TranslateError`];
    /// a successful result is never empty.
    fn translate(&self, nlq: &Nlq) -> Result<Vec<RankedSql>, TranslateError>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use templar_core::QueryContext;

    #[test]
    fn nlq_builder_sets_fields() {
        let nlq = Nlq::new(
            "Return the papers after 2000",
            vec![(
                Keyword::new("papers"),
                KeywordMetadata {
                    context: QueryContext::Select,
                    op: None,
                    aggregates: vec![],
                    group_by: false,
                },
            )],
            vec![],
        )
        .with_parser_difficulty(true);
        assert!(nlq.hard_for_parser);
        assert_eq!(nlq.keywords.len(), 1);
        assert_eq!(nlq.text, "Return the papers after 2000");
    }
}
