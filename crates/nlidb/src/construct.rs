//! SQL construction from a keyword-mapping configuration and a join path.
//!
//! Constructing the final SQL query is the host NLIDB's responsibility
//! (Section III-E of the paper): Templar returns ranked configurations and
//! join paths, and the NLIDB assembles `SELECT` / `FROM` / `WHERE` /
//! `GROUP BY` from them.  Both Pipeline and NaLIR share this implementation.

use schemagraph::{JoinPath, NodeId};
use sqlparse::{ColumnRef, Expr, Literal, Predicate, Query, SelectItem, TableRef};
use std::collections::{BTreeMap, HashMap};
use templar_core::{Configuration, JoinInference, MappedElement};

/// Assemble the final SQL query for a configuration and one of its inferred
/// join paths.
///
/// Returns `None` when an element of the configuration references a relation
/// that the join path does not cover (which would produce invalid SQL).
pub fn construct_query(
    config: &Configuration,
    inference: &JoinInference,
    path: &JoinPath,
) -> Option<Query> {
    let graph = &inference.graph;
    // Relation instances used by the join path, grouped per relation and
    // ordered by node id so that alias assignment is deterministic.
    let mut instances: BTreeMap<String, Vec<NodeId>> = BTreeMap::new();
    for &node in &path.nodes {
        instances
            .entry(graph.node(node).relation.to_lowercase())
            .or_default()
            .push(node);
    }
    for nodes in instances.values_mut() {
        nodes.sort_unstable();
    }
    // Deterministic aliases: relation name initial(s) plus a positional index.
    let aliases: HashMap<NodeId, String> = path
        .nodes
        .iter()
        .enumerate()
        .map(|(i, &node)| (node, format!("t{}", i + 1)))
        .collect();

    // Assign each mapped element to a relation instance.  Repeated references
    // to the same attribute are spread over successive instances (self-joins,
    // Example 7); everything else uses the first instance of its relation.
    let mut attr_seen: HashMap<(String, String), usize> = HashMap::new();
    let mut assignments: Vec<(usize, NodeId)> = Vec::new();
    for (idx, mapping) in config.mappings.iter().enumerate() {
        let rel = mapping.element.relation().to_lowercase();
        let nodes = instances.get(&rel)?;
        let node = match &mapping.element {
            MappedElement::Relation(_) => nodes[0],
            MappedElement::Attribute { attr, .. } | MappedElement::Predicate { attr, .. } => {
                let key = (rel.clone(), attr.attribute.to_lowercase());
                let occurrence = attr_seen.entry(key).or_insert(0);
                let node = nodes[(*occurrence).min(nodes.len() - 1)];
                *occurrence += 1;
                node
            }
        };
        assignments.push((idx, node));
    }

    let mut query = Query::new();
    // FROM: every relation instance of the join path.
    for &node in &path.nodes {
        query.from.push(TableRef::aliased(
            graph.node(node).relation.clone(),
            aliases[&node].clone(),
        ));
    }
    // SELECT, WHERE and GROUP BY from the mapped elements.
    for (idx, node) in &assignments {
        let alias = aliases[node].clone();
        match &config.mappings[*idx].element {
            MappedElement::Relation(_) => {}
            MappedElement::Attribute {
                attr,
                aggregates,
                group_by,
            } => {
                let col = ColumnRef::qualified(alias.clone(), attr.attribute.clone());
                let expr = match aggregates.first() {
                    Some(func) => Expr::Aggregate {
                        func: *func,
                        distinct: false,
                        arg: Some(col.clone()),
                    },
                    None => Expr::Column(col.clone()),
                };
                query.select.push(SelectItem::Expr(expr));
                if *group_by {
                    query.group_by.push(col);
                }
            }
            MappedElement::Predicate { attr, op, value } => {
                query.predicates.push(Predicate::Compare {
                    left: Expr::Column(ColumnRef::qualified(alias, attr.attribute.clone())),
                    op: *op,
                    right: Expr::Literal(value.clone()),
                });
            }
        }
    }
    if query.select.is_empty() {
        // A configuration with no projection keyword still needs a SELECT
        // list; project everything from the first terminal relation.
        query.select.push(SelectItem::Wildcard);
    }
    // Join conditions from the join path.
    for cond in path.join_conditions(graph) {
        query.predicates.push(Predicate::Compare {
            left: Expr::Column(ColumnRef::qualified(
                aliases[&cond.fk_node].clone(),
                cond.fk_attr.clone(),
            )),
            op: sqlparse::BinOp::Eq,
            right: Expr::Column(ColumnRef::qualified(
                aliases[&cond.pk_node].clone(),
                cond.pk_attr.clone(),
            )),
        });
    }
    Some(query)
}

/// Literal helper used by tests in this module and downstream crates.
pub fn string_literal(s: &str) -> Literal {
    Literal::String(s.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use relational::{AttributeRef, DataType, Schema};
    use schemagraph::SchemaGraph;
    use sqlparse::{canon, parse_query, Aggregate, BinOp};
    use templar_core::{
        infer_joins, BagItem, Keyword, MappedElement, MappingCandidate, TemplarConfig,
    };

    fn academic_schema() -> Schema {
        Schema::builder("academic")
            .relation(
                "author",
                &[("aid", DataType::Integer), ("name", DataType::Text)],
                Some("aid"),
            )
            .relation(
                "writes",
                &[("aid", DataType::Integer), ("pid", DataType::Integer)],
                None,
            )
            .relation(
                "publication",
                &[
                    ("pid", DataType::Integer),
                    ("title", DataType::Text),
                    ("year", DataType::Integer),
                    ("jid", DataType::Integer),
                ],
                Some("pid"),
            )
            .relation(
                "journal",
                &[("jid", DataType::Integer), ("name", DataType::Text)],
                Some("jid"),
            )
            .foreign_key("writes", "aid", "author", "aid")
            .foreign_key("writes", "pid", "publication", "pid")
            .foreign_key("publication", "jid", "journal", "jid")
            .build()
    }

    fn mapping(element: MappedElement) -> MappingCandidate {
        MappingCandidate {
            keyword: Keyword::new("k"),
            element,
            score: 1.0,
        }
    }

    fn config_of(elements: Vec<MappedElement>) -> Configuration {
        Configuration {
            mappings: elements.into_iter().map(mapping).collect(),
            sigma_score: 1.0,
            qfg_score: 1.0,
            log_popularity: 1.0,
            dice_cooccurrence: 0.0,
            qfg_pairs: 0,
            lambda: 1.0,
            score: 1.0,
        }
    }

    fn bag_of(config: &Configuration) -> Vec<BagItem> {
        config
            .mappings
            .iter()
            .map(|m| match &m.element {
                MappedElement::Relation(r) => BagItem::Relation(r.clone()),
                MappedElement::Attribute { attr, .. } | MappedElement::Predicate { attr, .. } => {
                    BagItem::Attribute(attr.clone())
                }
            })
            .collect()
    }

    fn build(config: &Configuration) -> Query {
        let sg = SchemaGraph::from_schema(&academic_schema());
        let tconfig = TemplarConfig::default().with_log_joins(false);
        let inference = infer_joins(&sg, None, &tconfig, &bag_of(config)).unwrap();
        let best = inference.best().unwrap().path.clone();
        construct_query(config, &inference, &best).unwrap()
    }

    #[test]
    fn constructs_example_4_query() {
        // papers -> publication.title, after 2000 -> publication.year > 2000.
        let config = config_of(vec![
            MappedElement::Attribute {
                attr: AttributeRef::new("publication", "title"),
                aggregates: vec![],
                group_by: false,
            },
            MappedElement::Predicate {
                attr: AttributeRef::new("publication", "year"),
                op: BinOp::Gt,
                value: Literal::Number(2000.0),
            },
        ]);
        let q = build(&config);
        let gold = parse_query("SELECT title FROM publication WHERE year > 2000").unwrap();
        assert!(canon::equivalent(&q, &gold), "constructed: {q}");
    }

    #[test]
    fn constructs_join_query_across_two_relations() {
        let config = config_of(vec![
            MappedElement::Attribute {
                attr: AttributeRef::new("journal", "name"),
                aggregates: vec![],
                group_by: false,
            },
            MappedElement::Predicate {
                attr: AttributeRef::new("publication", "year"),
                op: BinOp::Gt,
                value: Literal::Number(2000.0),
            },
        ]);
        let q = build(&config);
        let gold = parse_query(
            "SELECT j.name FROM journal j, publication p WHERE p.year > 2000 AND p.jid = j.jid",
        )
        .unwrap();
        assert!(canon::equivalent(&q, &gold), "constructed: {q}");
    }

    #[test]
    fn constructs_self_join_for_example_7() {
        let config = config_of(vec![
            MappedElement::Attribute {
                attr: AttributeRef::new("publication", "title"),
                aggregates: vec![],
                group_by: false,
            },
            MappedElement::Predicate {
                attr: AttributeRef::new("author", "name"),
                op: BinOp::Eq,
                value: string_literal("John"),
            },
            MappedElement::Predicate {
                attr: AttributeRef::new("author", "name"),
                op: BinOp::Eq,
                value: string_literal("Jane"),
            },
        ]);
        let q = build(&config);
        let gold = parse_query(
            "SELECT p.title FROM author a1, author a2, publication p, writes w1, writes w2 \
             WHERE a1.name = 'John' AND a2.name = 'Jane' \
             AND a1.aid = w1.aid AND a2.aid = w2.aid AND p.pid = w1.pid AND p.pid = w2.pid",
        )
        .unwrap();
        assert!(canon::equivalent(&q, &gold), "constructed: {q}");
    }

    #[test]
    fn constructs_aggregate_with_group_by() {
        let config = config_of(vec![
            MappedElement::Attribute {
                attr: AttributeRef::new("author", "name"),
                aggregates: vec![],
                group_by: true,
            },
            MappedElement::Attribute {
                attr: AttributeRef::new("publication", "pid"),
                aggregates: vec![Aggregate::Count],
                group_by: false,
            },
        ]);
        let q = build(&config);
        let gold = parse_query(
            "SELECT a.name, COUNT(p.pid) FROM author a, writes w, publication p \
             WHERE a.aid = w.aid AND w.pid = p.pid GROUP BY a.name",
        )
        .unwrap();
        assert!(canon::equivalent(&q, &gold), "constructed: {q}");
    }

    #[test]
    fn configuration_without_projection_selects_wildcard() {
        let config = config_of(vec![MappedElement::Predicate {
            attr: AttributeRef::new("journal", "name"),
            op: BinOp::Eq,
            value: string_literal("TKDE"),
        }]);
        let q = build(&config);
        assert!(q.select.contains(&SelectItem::Wildcard));
        assert_eq!(q.from.len(), 1);
    }

    #[test]
    fn element_outside_the_join_path_fails_construction() {
        let sg = SchemaGraph::from_schema(&academic_schema());
        let tconfig = TemplarConfig::default().with_log_joins(false);
        // Join path over publication only...
        let pub_bag = vec![BagItem::Attribute(AttributeRef::new(
            "publication",
            "title",
        ))];
        let inference = infer_joins(&sg, None, &tconfig, &pub_bag).unwrap();
        let best = inference.best().unwrap().path.clone();
        // ...but the configuration references journal.name.
        let config = config_of(vec![MappedElement::Attribute {
            attr: AttributeRef::new("journal", "name"),
            aggregates: vec![],
            group_by: false,
        }]);
        assert!(construct_query(&config, &inference, &best).is_none());
    }
}
