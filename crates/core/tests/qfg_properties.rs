//! Property-based tests for the Query Fragment Graph's mutation model
//! (following the pattern of `crates/nlp/tests/properties.rs`):
//!
//! * incremental `ingest` over a shuffled log ≡ batch `build`,
//! * `remove` is the exact inverse of `ingest`,
//! * Dice-coefficient edge cases (self-co-occurrence, zero-count fragments).

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use templar_core::{Obscurity, QueryFragment, QueryFragmentGraph, QueryLog};

/// Tables and columns of the miniature academic schema used to generate
/// random-but-parsable SQL.
const TABLES: [(&str, &str, [&str; 2]); 3] = [
    ("publication", "p", ["title", "year"]),
    ("journal", "j", ["name", "jid"]),
    ("author", "a", ["name", "aid"]),
];

const OPS: [&str; 4] = [">", "<", "=", ">="];

/// One random single-table query: `SELECT t.c FROM t [WHERE t.c op n]`.
fn single_table_query() -> impl Strategy<Value = String> {
    (
        0usize..TABLES.len(),
        0usize..2,
        proptest::option::of((0usize..2, 0usize..OPS.len(), 0i64..40)),
    )
        .prop_map(|(t, c, pred)| {
            let (table, alias, cols) = TABLES[t];
            let mut sql = format!("SELECT {alias}.{} FROM {table} {alias}", cols[c]);
            if let Some((pc, op, v)) = pred {
                sql.push_str(&format!(" WHERE {alias}.{} {} {v}", cols[pc], OPS[op]));
            }
            sql
        })
}

/// One random join query over publication × journal.
fn join_query() -> impl Strategy<Value = String> {
    (0usize..2, proptest::option::of(0i64..40)).prop_map(|(c, year)| {
        let select = ["p.title", "j.name"][c];
        let mut sql = format!("SELECT {select} FROM publication p, journal j WHERE p.jid = j.jid");
        if let Some(y) = year {
            sql.push_str(&format!(" AND p.year > {y}"));
        }
        sql
    })
}

/// A random log of up to 24 queries.
fn log_strategy() -> impl Strategy<Value = Vec<String>> {
    proptest::collection::vec(prop_oneof![single_table_query(), join_query()], 1..24)
}

fn parse_log(sqls: &[String]) -> QueryLog {
    let (log, skipped) = QueryLog::from_sql(sqls.iter().map(String::as_str));
    assert_eq!(skipped, 0, "generated SQL must parse: {sqls:?}");
    log
}

proptest! {
    /// Ingesting every query of a log — in any order — into an empty graph
    /// yields exactly the graph a batch build produces, at every obscurity
    /// level.
    #[test]
    fn shuffled_ingest_equals_batch_build(sqls in log_strategy(), seed in any::<u64>()) {
        let log = parse_log(&sqls);
        for obscurity in Obscurity::ALL {
            let batch = QueryFragmentGraph::build(&log, obscurity);

            let mut shuffled: Vec<_> = log.queries().iter().cloned().collect();
            StdRng::seed_from_u64(seed).shuffle(&mut shuffled);

            let mut incremental = QueryFragmentGraph::empty(obscurity);
            for query in &shuffled {
                incremental.ingest(query);
            }
            prop_assert_eq!(
                &batch, &incremental,
                "ingest-from-empty must equal build at {:?}", obscurity
            );
        }
    }

    /// `remove` exactly inverts `ingest`: adding a batch of extra queries
    /// and removing them again restores the original graph, including the
    /// pruning of zero-count vertices and edges.
    #[test]
    fn remove_inverts_ingest(base in log_strategy(), extra in log_strategy()) {
        let base_log = parse_log(&base);
        let extra_log = parse_log(&extra);
        let original = QueryFragmentGraph::build(&base_log, Obscurity::NoConstOp);

        let mut graph = original.clone();
        for query in extra_log.queries() {
            graph.ingest(query);
        }
        for query in extra_log.queries() {
            prop_assert!(graph.remove(query), "removing an ingested query must succeed");
        }
        prop_assert_eq!(&graph, &original);
    }

    /// Removing every query leaves a completely empty graph — no stale
    /// zero-count entries keep memory alive.
    #[test]
    fn removing_all_queries_empties_the_graph(sqls in log_strategy()) {
        let log = parse_log(&sqls);
        let mut graph = QueryFragmentGraph::build(&log, Obscurity::NoConst);
        for query in log.queries() {
            prop_assert!(graph.remove(query));
        }
        prop_assert_eq!(graph.fragment_count(), 0);
        prop_assert_eq!(graph.edge_count(), 0);
        prop_assert_eq!(graph.query_count(), 0);
    }

    /// Dice stays within [0, 1] for arbitrary fragment pairs drawn from the
    /// graph, and is symmetric.
    #[test]
    fn dice_is_bounded_and_symmetric(sqls in log_strategy(), i in 0usize..64, j in 0usize..64) {
        let log = parse_log(&sqls);
        let graph = QueryFragmentGraph::build(&log, Obscurity::NoConstOp);
        let fragments: Vec<QueryFragment> =
            graph.fragments().map(|(f, _)| f.clone()).collect();
        prop_assert!(!fragments.is_empty(), "a non-empty log always yields fragments");
        let a = &fragments[i % fragments.len()];
        let b = &fragments[j % fragments.len()];
        let d = graph.dice(a, b);
        prop_assert!((0.0..=1.0).contains(&d));
        prop_assert_eq!(d, graph.dice(b, a));
    }
}

// ---------------------------------------------------------------------------
// Dice edge cases (deterministic)
// ---------------------------------------------------------------------------

fn sample_graph() -> QueryFragmentGraph {
    let (log, skipped) = QueryLog::from_sql([
        "SELECT p.title FROM publication p WHERE p.year > 2000",
        "SELECT p.title FROM publication p",
        "SELECT j.name FROM journal j",
    ]);
    assert_eq!(skipped, 0);
    QueryFragmentGraph::build(&log, Obscurity::NoConstOp)
}

#[test]
fn self_co_occurrence_equals_occurrence_count() {
    let graph = sample_graph();
    let title = QueryFragment {
        expr: "publication.title".to_string(),
        context: templar_core::QueryContext::Select,
    };
    assert_eq!(graph.occurrences(&title), 2);
    // n_e(c, c) is defined as n_v(c): a fragment always co-occurs with
    // itself, which is what makes Dice(c, c) = 1.
    assert_eq!(graph.co_occurrences(&title, &title), 2);
    assert!((graph.dice(&title, &title) - 1.0).abs() < 1e-12);
}

#[test]
fn zero_count_fragments_have_zero_dice_everywhere() {
    let graph = sample_graph();
    let unknown = QueryFragment {
        expr: "business.stars ?op ?val".to_string(),
        context: templar_core::QueryContext::Where,
    };
    let title = QueryFragment {
        expr: "publication.title".to_string(),
        context: templar_core::QueryContext::Select,
    };
    assert_eq!(graph.occurrences(&unknown), 0);
    assert_eq!(graph.co_occurrences(&unknown, &title), 0);
    assert_eq!(graph.dice(&unknown, &title), 0.0);
    // Dice of two unknown fragments must not divide by zero.
    assert_eq!(graph.dice(&unknown, &unknown), 0.0);
}

#[test]
fn removal_updates_dice_evidence() {
    let (log, _) = QueryLog::from_sql([
        "SELECT p.title FROM publication p WHERE p.year > 2000",
        "SELECT p.title FROM publication p WHERE p.year > 1995",
    ]);
    let mut graph = QueryFragmentGraph::build(&log, Obscurity::NoConstOp);
    let title = QueryFragment {
        expr: "publication.title".to_string(),
        context: templar_core::QueryContext::Select,
    };
    let pred = QueryFragment {
        expr: "publication.year ?op ?val".to_string(),
        context: templar_core::QueryContext::Where,
    };
    assert!((graph.dice(&title, &pred) - 1.0).abs() < 1e-12);
    assert!(graph.remove(&log.queries()[0]));
    // Still perfectly correlated, with halved counts.
    assert_eq!(graph.occurrences(&title), 1);
    assert!((graph.dice(&title, &pred) - 1.0).abs() < 1e-12);
    assert!(graph.remove(&log.queries()[1]));
    assert_eq!(graph.dice(&title, &pred), 0.0);
}

#[test]
fn remove_of_never_ingested_query_is_refused() {
    let mut graph = sample_graph();
    let stranger = sqlparse::parse_query("SELECT a.name FROM author a").unwrap();
    let before = graph.clone();
    assert!(!graph.remove(&stranger));
    assert_eq!(graph, before, "a refused remove must not corrupt counts");
}
