//! Property-based tests for the Query Fragment Graph's mutation model
//! (following the pattern of `crates/nlp/tests/properties.rs`):
//!
//! * incremental `ingest` over a shuffled log ≡ batch `build`,
//! * `remove` is the exact inverse of `ingest`,
//! * the interned/columnar graph is observationally equivalent to the
//!   reference map-based model it replaced (same occurrence, co-occurrence
//!   and Dice values within 1e-12) under arbitrary ingest/remove/compact
//!   sequences,
//! * Dice-coefficient edge cases (self-co-occurrence, zero-count fragments).

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use std::collections::HashMap;
use templar_core::{fragments_of_query, Obscurity, QueryFragment, QueryFragmentGraph, QueryLog};

/// Tables and columns of the miniature academic schema used to generate
/// random-but-parsable SQL.
const TABLES: [(&str, &str, [&str; 2]); 3] = [
    ("publication", "p", ["title", "year"]),
    ("journal", "j", ["name", "jid"]),
    ("author", "a", ["name", "aid"]),
];

const OPS: [&str; 4] = [">", "<", "=", ">="];

/// One random single-table query: `SELECT t.c FROM t [WHERE t.c op n]`.
fn single_table_query() -> impl Strategy<Value = String> {
    (
        0usize..TABLES.len(),
        0usize..2,
        proptest::option::of((0usize..2, 0usize..OPS.len(), 0i64..40)),
    )
        .prop_map(|(t, c, pred)| {
            let (table, alias, cols) = TABLES[t];
            let mut sql = format!("SELECT {alias}.{} FROM {table} {alias}", cols[c]);
            if let Some((pc, op, v)) = pred {
                sql.push_str(&format!(" WHERE {alias}.{} {} {v}", cols[pc], OPS[op]));
            }
            sql
        })
}

/// One random join query over publication × journal.
fn join_query() -> impl Strategy<Value = String> {
    (0usize..2, proptest::option::of(0i64..40)).prop_map(|(c, year)| {
        let select = ["p.title", "j.name"][c];
        let mut sql = format!("SELECT {select} FROM publication p, journal j WHERE p.jid = j.jid");
        if let Some(y) = year {
            sql.push_str(&format!(" AND p.year > {y}"));
        }
        sql
    })
}

/// A random log of up to 24 queries.
fn log_strategy() -> impl Strategy<Value = Vec<String>> {
    proptest::collection::vec(prop_oneof![single_table_query(), join_query()], 1..24)
}

fn parse_log(sqls: &[String]) -> QueryLog {
    let (log, skipped) = QueryLog::from_sql(sqls.iter().map(String::as_str));
    assert_eq!(skipped, 0, "generated SQL must parse: {sqls:?}");
    log
}

// ---------------------------------------------------------------------------
// Reference model: the map-based QFG the columnar graph replaced
// ---------------------------------------------------------------------------

/// The old representation, verbatim in behaviour: owned fragments as map
/// keys, unordered pairs keyed with the lexicographically smaller fragment
/// first, zero counts pruned.  Kept as the executable specification the
/// interned/columnar production graph is checked against.
#[derive(Default)]
struct ModelQfg {
    occurrences: HashMap<QueryFragment, u64>,
    co_occurrences: HashMap<(QueryFragment, QueryFragment), u64>,
    query_count: usize,
}

impl ModelQfg {
    fn pair_key(a: &QueryFragment, b: &QueryFragment) -> (QueryFragment, QueryFragment) {
        if a <= b {
            (a.clone(), b.clone())
        } else {
            (b.clone(), a.clone())
        }
    }

    fn distinct_fragments(
        query: &sqlparse::Query,
        obscurity: Obscurity,
    ) -> std::collections::BTreeSet<QueryFragment> {
        fragments_of_query(query, obscurity).into_iter().collect()
    }

    fn ingest(&mut self, query: &sqlparse::Query, obscurity: Obscurity) {
        self.query_count += 1;
        let fragments = Self::distinct_fragments(query, obscurity);
        for f in &fragments {
            *self.occurrences.entry(f.clone()).or_insert(0) += 1;
        }
        let list: Vec<&QueryFragment> = fragments.iter().collect();
        for i in 0..list.len() {
            for j in (i + 1)..list.len() {
                let key = Self::pair_key(list[i], list[j]);
                *self.co_occurrences.entry(key).or_insert(0) += 1;
            }
        }
    }

    fn remove(&mut self, query: &sqlparse::Query, obscurity: Obscurity) -> bool {
        if self.query_count == 0 {
            return false;
        }
        let fragments = Self::distinct_fragments(query, obscurity);
        for f in &fragments {
            if self.occurrences.get(f).copied().unwrap_or(0) == 0 {
                return false;
            }
        }
        let list: Vec<&QueryFragment> = fragments.iter().collect();
        for i in 0..list.len() {
            for j in (i + 1)..list.len() {
                let key = Self::pair_key(list[i], list[j]);
                if self.co_occurrences.get(&key).copied().unwrap_or(0) == 0 {
                    return false;
                }
            }
        }
        self.query_count -= 1;
        let mut died: Vec<QueryFragment> = Vec::new();
        for f in &fragments {
            if let Some(count) = self.occurrences.get_mut(f) {
                *count -= 1;
                if *count == 0 {
                    self.occurrences.remove(f);
                    died.push(f.clone());
                }
            }
        }
        for i in 0..list.len() {
            for j in (i + 1)..list.len() {
                let key = Self::pair_key(list[i], list[j]);
                if let Some(count) = self.co_occurrences.get_mut(&key) {
                    *count -= 1;
                    if *count == 0 {
                        self.co_occurrences.remove(&key);
                    }
                }
            }
        }
        // A fragment with zero occurrences co-occurs with nothing:
        // `n_e(c, x) ≤ n_v(c)` is part of the spec, so pairs stranded by an
        // over-removal (the fragment died while a pair from some *other*
        // query still referenced it) are dropped with the fragment — exactly
        // what the production graph's pre-release purge does.
        if !died.is_empty() {
            self.co_occurrences
                .retain(|(a, b), _| !died.contains(a) && !died.contains(b));
        }
        true
    }

    fn occurrences(&self, fragment: &QueryFragment) -> u64 {
        self.occurrences.get(fragment).copied().unwrap_or(0)
    }

    fn co_occurrences(&self, a: &QueryFragment, b: &QueryFragment) -> u64 {
        if a == b {
            return self.occurrences(a);
        }
        self.co_occurrences
            .get(&Self::pair_key(a, b))
            .copied()
            .unwrap_or(0)
    }

    fn dice(&self, a: &QueryFragment, b: &QueryFragment) -> f64 {
        let na = self.occurrences(a);
        let nb = self.occurrences(b);
        if na + nb == 0 {
            return 0.0;
        }
        let ne = self.co_occurrences(a, b);
        (2.0 * ne as f64) / ((na + nb) as f64)
    }

    /// The reference for the columnar graph's `max_dice` column: the maximum
    /// Dice coefficient between `a` and every *other* live fragment.
    fn max_dice(&self, a: &QueryFragment) -> f64 {
        self.occurrences
            .keys()
            .filter(|b| *b != a)
            .map(|b| self.dice(a, b))
            .fold(0.0, f64::max)
    }
}

/// Assert the columnar graph's per-fragment `max_dice` column against the
/// model: the clamped bound the search consumes is always admissible, and
/// after a compaction the column is exact.  (Both sides can exceed 1.0 in
/// the degenerate phantom-removal states `remove` tolerates, which is why
/// admissibility is stated on the clamped value the search actually uses.)
fn assert_max_dice_consistent(model: &ModelQfg, graph: &QueryFragmentGraph) {
    let mut compacted = graph.clone();
    compacted.compact();
    for fragment in model.occurrences.keys() {
        let expected = model.max_dice(fragment);
        let id = graph
            .lookup(fragment)
            .expect("live model fragment must be interned");
        assert!(
            graph.max_dice_by_id(id).min(1.0) >= expected.min(1.0) - 1e-12,
            "max_dice must stay an admissible upper bound for {fragment}: \
             column {} < true max {expected}",
            graph.max_dice_by_id(id)
        );
        let exact = compacted.max_dice_by_id(id);
        assert!(
            (exact - expected).abs() < 1e-12,
            "compacted max_dice must be exact for {fragment}: column {exact} vs model {expected}"
        );
    }
}

proptest! {
    /// Ingesting every query of a log — in any order — into an empty graph
    /// yields exactly the graph a batch build produces, at every obscurity
    /// level.
    #[test]
    fn shuffled_ingest_equals_batch_build(sqls in log_strategy(), seed in any::<u64>()) {
        let log = parse_log(&sqls);
        for obscurity in Obscurity::ALL {
            let batch = QueryFragmentGraph::build(&log, obscurity);

            let mut shuffled: Vec<_> = log.queries().iter().cloned().collect();
            StdRng::seed_from_u64(seed).shuffle(&mut shuffled);

            let mut incremental = QueryFragmentGraph::empty(obscurity);
            for query in &shuffled {
                incremental.ingest(query);
            }
            prop_assert_eq!(
                &batch, &incremental,
                "ingest-from-empty must equal build at {:?}", obscurity
            );
        }
    }

    /// `remove` exactly inverts `ingest`: adding a batch of extra queries
    /// and removing them again restores the original graph, including the
    /// pruning of zero-count vertices and edges.
    #[test]
    fn remove_inverts_ingest(base in log_strategy(), extra in log_strategy()) {
        let base_log = parse_log(&base);
        let extra_log = parse_log(&extra);
        let original = QueryFragmentGraph::build(&base_log, Obscurity::NoConstOp);

        let mut graph = original.clone();
        for query in extra_log.queries() {
            graph.ingest(query);
        }
        for query in extra_log.queries() {
            prop_assert!(graph.remove(query), "removing an ingested query must succeed");
        }
        prop_assert_eq!(&graph, &original);
    }

    /// Removing every query leaves a completely empty graph — no stale
    /// zero-count entries keep memory alive.
    #[test]
    fn removing_all_queries_empties_the_graph(sqls in log_strategy()) {
        let log = parse_log(&sqls);
        let mut graph = QueryFragmentGraph::build(&log, Obscurity::NoConst);
        for query in log.queries() {
            prop_assert!(graph.remove(query));
        }
        prop_assert_eq!(graph.fragment_count(), 0);
        prop_assert_eq!(graph.edge_count(), 0);
        prop_assert_eq!(graph.query_count(), 0);
    }

    /// The interned/columnar graph is observationally equivalent to the
    /// reference map-based model under an arbitrary interleaving of ingests,
    /// removes and compactions: every occurrence count, co-occurrence count
    /// and Dice coefficient agrees (counts exactly, Dice within 1e-12) at
    /// every step, at every obscurity level.
    #[test]
    fn columnar_graph_is_observationally_equivalent_to_the_map_model(
        base in log_strategy(),
        extra in log_strategy(),
        op_seed in any::<u64>(),
    ) {
        for obscurity in Obscurity::ALL {
            let base_log = parse_log(&base);
            let extra_log = parse_log(&extra);
            let mut model = ModelQfg::default();
            let mut graph = QueryFragmentGraph::empty(obscurity);
            // Deterministic op schedule: ingest the base, then interleave
            // ingest/remove/compact decisions drawn from the seed.
            let mut rng = StdRng::seed_from_u64(op_seed);
            for query in base_log.queries() {
                model.ingest(query, obscurity);
                graph.ingest(query);
            }
            for query in extra_log.queries() {
                match rng.next_u64() % 4 {
                    // Removing a base query exercises id release/recycling;
                    // both sides must agree on whether the removal applies.
                    0 => {
                        let victims: Vec<_> = base_log.queries().iter().cloned().collect();
                        let victim = &victims[(rng.next_u64() as usize) % victims.len()];
                        let model_removed = model.remove(victim, obscurity);
                        let graph_removed = graph.remove(victim);
                        prop_assert_eq!(model_removed, graph_removed);
                    }
                    // Compaction must be observation-neutral.
                    1 => graph.compact(),
                    _ => {
                        model.ingest(query, obscurity);
                        graph.ingest(query);
                    }
                }
                prop_assert_eq!(model.query_count, graph.query_count());
                prop_assert_eq!(model.occurrences.len(), graph.fragment_count());
                prop_assert_eq!(model.co_occurrences.len(), graph.edge_count());
                // The max-Dice column must stay an admissible upper bound at
                // every intermediate state and become exact on compaction.
                assert_max_dice_consistent(&model, &graph);
            }
            // Full observational sweep over the union of live fragments plus
            // a fragment neither side has seen.
            let mut fragments: Vec<QueryFragment> =
                model.occurrences.keys().cloned().collect();
            fragments.push(QueryFragment {
                expr: "never.seen ?op ?val".to_string(),
                context: templar_core::QueryContext::Where,
            });
            for a in &fragments {
                prop_assert_eq!(model.occurrences(a), graph.occurrences(a));
                for b in &fragments {
                    prop_assert_eq!(
                        model.co_occurrences(a, b),
                        graph.co_occurrences(a, b),
                        "co-occurrence mismatch for {} / {}", a, b
                    );
                    let d_model = model.dice(a, b);
                    let d_graph = graph.dice(a, b);
                    prop_assert!(
                        (d_model - d_graph).abs() < 1e-12,
                        "dice mismatch for {} / {}: model {} vs columnar {}",
                        a, b, d_model, d_graph
                    );
                }
            }
        }
    }

    /// Id-recycling audit (remove → compact-interleaved → re-intern): after
    /// removing *every* base query — releasing every fragment slot, with
    /// compactions interleaved at seed-chosen points so the cancelled
    /// baselines are folded away at different stages — re-ingesting a fresh
    /// log must intern new fragments into the recycled slots without
    /// inheriting stale occurrence counts or pending delta-log entries
    /// addressed to the slots' previous tenants.  The recycled graph is
    /// checked observation-for-observation against the map-based reference
    /// model (which has no ids to recycle) and against a from-scratch build
    /// of the second log.
    #[test]
    fn recycled_ids_never_inherit_stale_state(
        base in log_strategy(),
        extra in log_strategy(),
        compact_seed in any::<u64>(),
    ) {
        for obscurity in Obscurity::ALL {
            let base_log = parse_log(&base);
            let extra_log = parse_log(&extra);
            let mut graph = QueryFragmentGraph::build(&base_log, obscurity);
            let slots_before = graph.interned_len();

            // Remove everything, compacting at seed-chosen interleavings so
            // the release → compact → re-intern orderings all get exercised
            // across cases (including "no compaction at all" and
            // "compaction between every removal").
            let mut rng = StdRng::seed_from_u64(compact_seed);
            for query in base_log.queries() {
                prop_assert!(graph.remove(query));
                if rng.next_u64() % 3 == 0 {
                    graph.compact();
                }
            }
            prop_assert_eq!(graph.fragment_count(), 0);
            prop_assert_eq!(graph.edge_count(), 0);

            // Re-ingest a different log into the recycled slots, against the
            // reference model built fresh (the model never recycles —
            // fragments are its keys — so any inherited state diverges).
            let mut model = ModelQfg::default();
            for query in extra_log.queries() {
                model.ingest(query, obscurity);
                graph.ingest(query);
                if rng.next_u64() % 3 == 0 {
                    graph.compact();
                }
            }
            prop_assert!(
                graph.interned_len() >= slots_before.min(graph.fragment_count()),
                "the id table never shrinks"
            );
            prop_assert_eq!(model.query_count, graph.query_count());
            prop_assert_eq!(model.occurrences.len(), graph.fragment_count());
            prop_assert_eq!(model.co_occurrences.len(), graph.edge_count());
            let fragments: Vec<QueryFragment> = model.occurrences.keys().cloned().collect();
            for a in &fragments {
                prop_assert_eq!(
                    model.occurrences(a), graph.occurrences(a),
                    "recycled slot inherited a stale occurrence for {}", a
                );
                for b in &fragments {
                    prop_assert_eq!(
                        model.co_occurrences(a, b), graph.co_occurrences(a, b),
                        "recycled slot inherited a stale pair count for {} / {}", a, b
                    );
                    let (dm, dg) = (model.dice(a, b), graph.dice(a, b));
                    prop_assert!(
                        (dm - dg).abs() < 1e-12,
                        "dice diverged on recycled ids for {} / {}: {} vs {}", a, b, dm, dg
                    );
                }
            }
            // Recycled slots must not inherit the previous tenant's
            // max-Dice either.
            assert_max_dice_consistent(&model, &graph);
            // And the recycled graph is observationally the graph a clean
            // build of the second log produces.
            let rebuilt = QueryFragmentGraph::build(&extra_log, obscurity);
            prop_assert_eq!(&graph, &rebuilt);
        }
    }

    /// Tiered compaction is observation-neutral at *every* tier state: with
    /// a tiny run-fold threshold forcing deltas into sorted runs constantly,
    /// an arbitrary interleaving of ingests, removes, partial folds and full
    /// compactions stays observationally identical to the map-based model —
    /// and the runs always satisfy the geometric merge invariant, so
    /// publish-time compaction cost is bounded by recent churn.
    #[test]
    fn tiered_compaction_interleavings_match_the_model_at_any_tier_state(
        base in log_strategy(),
        extra in log_strategy(),
        threshold in 1usize..24,
        op_seed in any::<u64>(),
    ) {
        let obscurity = Obscurity::NoConstOp;
        let base_log = parse_log(&base);
        let extra_log = parse_log(&extra);
        let mut model = ModelQfg::default();
        let mut graph = QueryFragmentGraph::empty(obscurity);
        graph.set_run_fold_threshold(threshold);
        let mut rng = StdRng::seed_from_u64(op_seed);
        for query in base_log.queries() {
            model.ingest(query, obscurity);
            graph.ingest(query);
        }
        for query in extra_log.queries() {
            match rng.next_u64() % 5 {
                0 => {
                    let victims: Vec<_> = base_log.queries().iter().cloned().collect();
                    let victim = &victims[(rng.next_u64() as usize) % victims.len()];
                    prop_assert_eq!(model.remove(victim, obscurity), graph.remove(victim));
                }
                1 => graph.compact(),
                // Shrinking the threshold mid-stream forces an immediate
                // fold cascade on the next ingest; growing it lets the
                // mutable delta run long — both are legal tier states.
                2 => graph.set_run_fold_threshold((rng.next_u64() % 32) as usize + 1),
                _ => {
                    model.ingest(query, obscurity);
                    graph.ingest(query);
                }
            }
            prop_assert_eq!(model.query_count, graph.query_count());
            prop_assert_eq!(model.occurrences.len(), graph.fragment_count());
            prop_assert_eq!(model.co_occurrences.len(), graph.edge_count());
        }
        // Observational sweep at the final (arbitrary) tier state.
        let fragments: Vec<QueryFragment> = model.occurrences.keys().cloned().collect();
        for a in &fragments {
            prop_assert_eq!(model.occurrences(a), graph.occurrences(a));
            for b in &fragments {
                prop_assert_eq!(model.co_occurrences(a, b), graph.co_occurrences(a, b));
                prop_assert!((model.dice(a, b) - graph.dice(a, b)).abs() < 1e-12);
            }
        }
        // Full compaction from any tier state is observation-neutral and
        // leaves no pending work behind.
        let mut compacted = graph.clone();
        compacted.compact();
        prop_assert!(compacted.is_compacted());
        prop_assert_eq!(compacted.pending_delta_len(), 0);
        prop_assert_eq!(&compacted, &graph);
        prop_assert_eq!(model.query_count, compacted.query_count());
        prop_assert_eq!(model.co_occurrences.len(), compacted.edge_count());
    }

    /// A v3 sectioned export of the graph — at an arbitrary uncompacted
    /// tier state — reconstructs the *identical* graph, section for
    /// section: same interner slots, same occurrence column, same CSR, same
    /// pending runs, without forcing a compaction on either side.
    #[test]
    fn v3_sections_round_trip_any_tier_state_verbatim(
        base in log_strategy(),
        extra in log_strategy(),
        threshold in 1usize..16,
        op_seed in any::<u64>(),
    ) {
        let obscurity = Obscurity::NoConstOp;
        let base_log = parse_log(&base);
        let extra_log = parse_log(&extra);
        let mut graph = QueryFragmentGraph::build(&base_log, obscurity);
        graph.set_run_fold_threshold(threshold);
        let mut rng = StdRng::seed_from_u64(op_seed);
        for query in extra_log.queries() {
            if rng.next_u64() % 4 == 0 {
                let victims: Vec<_> = base_log.queries().iter().cloned().collect();
                let victim = &victims[(rng.next_u64() as usize) % victims.len()];
                graph.remove(victim);
            } else {
                graph.ingest(query);
            }
        }
        let back = QueryFragmentGraph::from_sections(
            obscurity,
            graph.query_count() as u64,
            &graph.fragments_section(),
            &graph.occurrences_section(),
            &graph.adjacency_section(),
            &graph.runs_section(),
        ).expect("self-exported sections must reconstruct");
        prop_assert_eq!(&back, &graph, "sectioned round-trip must be verbatim");
        prop_assert_eq!(back.pending_delta_len(), graph.pending_delta_len());
        // Both sides compact to the same canonical graph.
        let (mut a, mut b) = (graph.clone(), back);
        a.compact();
        b.compact();
        prop_assert_eq!(&a, &b);
    }

    /// Dice stays within [0, 1] for arbitrary fragment pairs drawn from the
    /// graph, and is symmetric.
    #[test]
    fn dice_is_bounded_and_symmetric(sqls in log_strategy(), i in 0usize..64, j in 0usize..64) {
        let log = parse_log(&sqls);
        let graph = QueryFragmentGraph::build(&log, Obscurity::NoConstOp);
        let fragments: Vec<QueryFragment> =
            graph.fragments().map(|(f, _)| f.clone()).collect();
        prop_assert!(!fragments.is_empty(), "a non-empty log always yields fragments");
        let a = &fragments[i % fragments.len()];
        let b = &fragments[j % fragments.len()];
        let d = graph.dice(a, b);
        prop_assert!((0.0..=1.0).contains(&d));
        prop_assert_eq!(d, graph.dice(b, a));
    }
}

// ---------------------------------------------------------------------------
// Dice edge cases (deterministic)
// ---------------------------------------------------------------------------

fn sample_graph() -> QueryFragmentGraph {
    let (log, skipped) = QueryLog::from_sql([
        "SELECT p.title FROM publication p WHERE p.year > 2000",
        "SELECT p.title FROM publication p",
        "SELECT j.name FROM journal j",
    ]);
    assert_eq!(skipped, 0);
    QueryFragmentGraph::build(&log, Obscurity::NoConstOp)
}

#[test]
fn self_co_occurrence_equals_occurrence_count() {
    let graph = sample_graph();
    let title = QueryFragment {
        expr: "publication.title".to_string(),
        context: templar_core::QueryContext::Select,
    };
    assert_eq!(graph.occurrences(&title), 2);
    // n_e(c, c) is defined as n_v(c): a fragment always co-occurs with
    // itself, which is what makes Dice(c, c) = 1.
    assert_eq!(graph.co_occurrences(&title, &title), 2);
    assert!((graph.dice(&title, &title) - 1.0).abs() < 1e-12);
}

#[test]
fn zero_count_fragments_have_zero_dice_everywhere() {
    let graph = sample_graph();
    let unknown = QueryFragment {
        expr: "business.stars ?op ?val".to_string(),
        context: templar_core::QueryContext::Where,
    };
    let title = QueryFragment {
        expr: "publication.title".to_string(),
        context: templar_core::QueryContext::Select,
    };
    assert_eq!(graph.occurrences(&unknown), 0);
    assert_eq!(graph.co_occurrences(&unknown, &title), 0);
    assert_eq!(graph.dice(&unknown, &title), 0.0);
    // Dice of two unknown fragments must not divide by zero.
    assert_eq!(graph.dice(&unknown, &unknown), 0.0);
}

#[test]
fn removal_updates_dice_evidence() {
    let (log, _) = QueryLog::from_sql([
        "SELECT p.title FROM publication p WHERE p.year > 2000",
        "SELECT p.title FROM publication p WHERE p.year > 1995",
    ]);
    let mut graph = QueryFragmentGraph::build(&log, Obscurity::NoConstOp);
    let title = QueryFragment {
        expr: "publication.title".to_string(),
        context: templar_core::QueryContext::Select,
    };
    let pred = QueryFragment {
        expr: "publication.year ?op ?val".to_string(),
        context: templar_core::QueryContext::Where,
    };
    assert!((graph.dice(&title, &pred) - 1.0).abs() < 1e-12);
    assert!(graph.remove(&log.queries()[0]));
    // Still perfectly correlated, with halved counts.
    assert_eq!(graph.occurrences(&title), 1);
    assert!((graph.dice(&title, &pred) - 1.0).abs() < 1e-12);
    assert!(graph.remove(&log.queries()[1]));
    assert_eq!(graph.dice(&title, &pred), 0.0);
}

#[test]
fn remove_of_never_ingested_query_is_refused() {
    let mut graph = sample_graph();
    let stranger = sqlparse::parse_query("SELECT a.name FROM author a").unwrap();
    let before = graph.clone();
    assert!(!graph.remove(&stranger));
    assert_eq!(graph, before, "a refused remove must not corrupt counts");
}
