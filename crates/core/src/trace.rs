//! Per-request pipeline tracing: cheap, thread-aware stage timers.
//!
//! Templar's ranking quality comes from a pipeline of distinct stages —
//! candidate retrieval/pruning, the best-first configuration search, join
//! inference, SQL construction and final ranking — and a latency regression
//! in any one of them is invisible to a single end-to-end histogram.  This
//! module is the vendored, zero-dependency substrate the serving layer
//! attributes latency with:
//!
//! * [`TraceSpans`] — the per-request collector: one atomic nanosecond
//!   accumulator and call counter per [`Stage`], safe to feed from the
//!   sharded search workers concurrently,
//! * [`TraceCtx`] — the `Copy` handle threaded through the pipeline.  The
//!   **disabled** context is the default everywhere in this crate and is a
//!   `None` check per stage: no clock is read, nothing is recorded, so the
//!   untraced fast path stays within noise of the pre-tracing build,
//! * [`SpanGuard`] — an RAII stage timer ([`TraceCtx::span`]); spans on the
//!   request thread are non-overlapping by construction, so their durations
//!   sum to at most the end-to-end latency,
//! * [`RequestTrace`] — the immutable, serializable breakdown exported once
//!   the request finishes, carried on the wire by `templar-api`.
//!
//! Worker threads of the sharded configuration search report their busy time
//! separately ([`RequestTrace::search_worker_nanos`]): wall-clock stage time
//! answers "where did this request's latency go", worker time answers "how
//! much CPU did the fan-out actually burn".

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Number of pipeline stages in [`Stage::ALL`].
pub const STAGE_COUNT: usize = 5;

/// The traced pipeline stages, in execution order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Keyword candidate retrieval (Algorithm 2) plus scoring and pruning
    /// (Algorithm 3): tokenization, lexicon/similarity lookups, full-text
    /// candidate generation.
    CandidatePruning = 0,
    /// The best-first configuration search over the pruned candidate lists,
    /// including fragment-id resolution and result materialization.
    ConfigSearch = 1,
    /// `INFERJOINS` over each top configuration's relation bag (cache hits
    /// included — a hit is a call with a near-zero duration).
    JoinInference = 2,
    /// SQL assembly from configuration + join path, plus canonicalization
    /// for deduplication.
    SqlConstruction = 3,
    /// The final cross-candidate sort of the λ-blended ranking.
    Ranking = 4,
}

impl Stage {
    /// Every stage, in execution order.
    pub const ALL: [Stage; STAGE_COUNT] = [
        Stage::CandidatePruning,
        Stage::ConfigSearch,
        Stage::JoinInference,
        Stage::SqlConstruction,
        Stage::Ranking,
    ];

    /// The stable wire/metrics name of the stage.
    pub fn name(self) -> &'static str {
        match self {
            Stage::CandidatePruning => "candidate_pruning",
            Stage::ConfigSearch => "config_search",
            Stage::JoinInference => "join_inference",
            Stage::SqlConstruction => "sql_construction",
            Stage::Ranking => "ranking",
        }
    }

    fn index(self) -> usize {
        self as usize
    }
}

/// The per-request span collector.  All counters are relaxed atomics so the
/// sharded search workers can report concurrently with the request thread.
#[derive(Debug, Default)]
pub struct TraceSpans {
    nanos: [AtomicU64; STAGE_COUNT],
    calls: [AtomicU64; STAGE_COUNT],
    search_worker_nanos: AtomicU64,
    search_workers: AtomicU64,
}

impl TraceSpans {
    /// A fresh, empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one timed call to a stage.
    pub fn add(&self, stage: Stage, nanos: u64) {
        let i = stage.index();
        self.nanos[i].fetch_add(nanos, Ordering::Relaxed);
        self.calls[i].fetch_add(1, Ordering::Relaxed);
    }

    /// Report one search worker's busy time.
    pub fn add_search_worker(&self, nanos: u64) {
        self.search_worker_nanos.fetch_add(nanos, Ordering::Relaxed);
        self.search_workers.fetch_add(1, Ordering::Relaxed);
    }

    /// Export the collected spans as an immutable breakdown.  `total` is the
    /// request's measured end-to-end latency, recorded alongside the stages
    /// so consumers can see both the attribution and the unattributed
    /// remainder.
    pub fn finish(&self, total: Duration) -> RequestTrace {
        let stages = Stage::ALL
            .iter()
            .map(|&stage| StageSpan {
                stage: stage.name().to_string(),
                nanos: self.nanos[stage.index()].load(Ordering::Relaxed),
                calls: self.calls[stage.index()].load(Ordering::Relaxed),
            })
            .collect();
        RequestTrace {
            total_nanos: total.as_nanos().min(u64::MAX as u128) as u64,
            stages,
            search_worker_nanos: self.search_worker_nanos.load(Ordering::Relaxed),
            search_workers: self.search_workers.load(Ordering::Relaxed),
        }
    }
}

/// The tracing handle threaded through the pipeline.  `Copy`, two words,
/// and inert when disabled: every instrumentation point is one `Option`
/// check, and the monotonic clock is only read for enabled contexts.
#[derive(Debug, Clone, Copy, Default)]
pub struct TraceCtx<'a> {
    spans: Option<&'a TraceSpans>,
}

impl<'a> TraceCtx<'a> {
    /// The inert context: records nothing, never reads the clock.
    pub const fn disabled() -> Self {
        TraceCtx { spans: None }
    }

    /// A context recording into `spans`.
    pub fn enabled(spans: &'a TraceSpans) -> Self {
        TraceCtx { spans: Some(spans) }
    }

    /// True when spans are being collected.
    pub fn is_enabled(&self) -> bool {
        self.spans.is_some()
    }

    /// Start a stage timer; the elapsed time is recorded when the returned
    /// guard drops.  On a disabled context this is a no-op that never reads
    /// the clock.
    pub fn span(self, stage: Stage) -> SpanGuard<'a> {
        SpanGuard {
            active: self.spans.map(|spans| (spans, stage, Instant::now())),
        }
    }

    /// Start a search-worker busy timer (`None` when disabled).  Pass the
    /// result to [`TraceCtx::finish_worker`] when the worker's shard is
    /// done.
    pub fn worker_start(self) -> Option<Instant> {
        self.spans.map(|_| Instant::now())
    }

    /// Record a search worker's busy time started by
    /// [`TraceCtx::worker_start`].
    pub fn finish_worker(self, started: Option<Instant>) {
        if let (Some(spans), Some(started)) = (self.spans, started) {
            spans.add_search_worker(started.elapsed().as_nanos().min(u64::MAX as u128) as u64);
        }
    }
}

/// RAII timer for one stage call; records on drop.
#[derive(Debug)]
pub struct SpanGuard<'a> {
    active: Option<(&'a TraceSpans, Stage, Instant)>,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let Some((spans, stage, started)) = self.active.take() {
            spans.add(
                stage,
                started.elapsed().as_nanos().min(u64::MAX as u128) as u64,
            );
        }
    }
}

/// One stage's accumulated time within a single request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageSpan {
    /// The stage's stable name ([`Stage::name`]).
    pub stage: String,
    /// Accumulated wall-clock nanoseconds across all calls of the stage.
    pub nanos: u64,
    /// How many timed calls the stage saw (e.g. one join inference per
    /// expanded configuration).
    pub calls: u64,
}

/// The per-stage breakdown of one finished request.  Stage spans are
/// measured on the request thread and never overlap, so
/// [`RequestTrace::stage_sum_nanos`] ≤ [`RequestTrace::total_nanos`]; the
/// remainder is un-attributed glue (snapshot load, scoring bookkeeping).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RequestTrace {
    /// Measured end-to-end latency of the request.
    pub total_nanos: u64,
    /// One entry per [`Stage`], in execution order (stages that never ran
    /// carry zero calls).
    pub stages: Vec<StageSpan>,
    /// Busy time summed across the sharded configuration-search workers —
    /// the CPU cost of the fan-out, as opposed to the wall-clock
    /// `config_search` span.
    pub search_worker_nanos: u64,
    /// Number of search workers that reported busy time.
    pub search_workers: u64,
}

impl RequestTrace {
    /// Accumulated nanoseconds of one stage (0 when it never ran).
    pub fn stage_nanos(&self, stage: Stage) -> u64 {
        self.stages
            .iter()
            .find(|s| s.stage == stage.name())
            .map_or(0, |s| s.nanos)
    }

    /// Sum of all stage durations — at most `total_nanos`.
    pub fn stage_sum_nanos(&self) -> u64 {
        self.stages.iter().map(|s| s.nanos).sum()
    }

    /// End-to-end latency in whole microseconds.
    pub fn total_us(&self) -> u64 {
        self.total_nanos / 1_000
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_context_records_nothing_and_reads_no_clock() {
        let ctx = TraceCtx::disabled();
        assert!(!ctx.is_enabled());
        {
            let _span = ctx.span(Stage::ConfigSearch);
        }
        ctx.finish_worker(ctx.worker_start());
        // Nothing to observe — the point is that the guards are inert; the
        // collector-backed assertions below prove the enabled path works.
    }

    #[test]
    fn enabled_spans_accumulate_nanos_and_calls() {
        let spans = TraceSpans::new();
        let ctx = TraceCtx::enabled(&spans);
        for _ in 0..3 {
            let _span = ctx.span(Stage::JoinInference);
            std::hint::black_box(());
        }
        let trace = spans.finish(Duration::from_micros(10));
        let join = &trace.stages[Stage::JoinInference.index()];
        assert_eq!(join.stage, "join_inference");
        assert_eq!(join.calls, 3);
        assert_eq!(trace.stage_nanos(Stage::JoinInference), join.nanos);
        assert_eq!(trace.stages.len(), STAGE_COUNT);
        assert_eq!(trace.total_nanos, 10_000);
    }

    #[test]
    fn worker_time_is_collected_separately() {
        let spans = TraceSpans::new();
        let ctx = TraceCtx::enabled(&spans);
        std::thread::scope(|scope| {
            for _ in 0..2 {
                scope.spawn(move || {
                    let t = ctx.worker_start();
                    std::hint::black_box(0u64);
                    ctx.finish_worker(t);
                });
            }
        });
        let trace = spans.finish(Duration::from_micros(1));
        assert_eq!(trace.search_workers, 2);
    }

    #[test]
    fn nonoverlapping_spans_sum_to_at_most_the_total() {
        let spans = TraceSpans::new();
        let ctx = TraceCtx::enabled(&spans);
        let started = Instant::now();
        for stage in Stage::ALL {
            let _span = ctx.span(stage);
            std::hint::black_box(());
        }
        let trace = spans.finish(started.elapsed());
        assert!(
            trace.stage_sum_nanos() <= trace.total_nanos,
            "stages {} > total {}",
            trace.stage_sum_nanos(),
            trace.total_nanos
        );
    }

    #[test]
    fn request_traces_round_trip_through_serde() {
        let spans = TraceSpans::new();
        spans.add(Stage::CandidatePruning, 1_500);
        spans.add(Stage::ConfigSearch, 42_000);
        spans.add_search_worker(40_000);
        let trace = spans.finish(Duration::from_micros(50));
        let back: RequestTrace =
            serde_json::from_str(&serde_json::to_string(&trace).unwrap()).unwrap();
        assert_eq!(back, trace);
        assert_eq!(back.total_us(), 50);
    }

    #[test]
    fn stage_names_are_stable_and_unique() {
        let mut names: Vec<&str> = Stage::ALL.iter().map(|s| s.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), STAGE_COUNT);
    }
}
