//! **Templar**: augmenting NLIDBs with SQL query-log information.
//!
//! This crate is the reproduction of the paper's primary contribution
//! (Sections III–VI):
//!
//! * [`fragment`] — the *query fragment* abstraction (Definition 3) and its
//!   three obscurity levels (`Full`, `NoConst`, `NoConstOp`), plus fragment
//!   extraction from parsed SQL,
//! * [`qfg`] — the *Query Fragment Graph* (Definition 6): occurrence and
//!   co-occurrence counts over a SQL query log, scored with the Dice
//!   coefficient,
//! * [`keyword`] — the keyword mapping procedure (`MAPKEYWORDS`,
//!   Algorithms 1–3) producing ranked *configurations* (Definition 5),
//! * [`join`] — join path inference (`INFERJOINS`, Section VI) with
//!   default or log-driven edge weights and self-join forking,
//! * [`templar`] — the [`Templar`](templar::Templar) facade exposing exactly
//!   the two interface calls of Figure 2, which the `nlidb` crate's systems
//!   consume,
//! * [`trace`] — zero-dependency per-request tracing: thread-aware stage
//!   timers with a disabled-by-default fast path, used by the serving layer
//!   to attribute latency to pipeline stages.
//!
//! The crate deliberately has no knowledge of any specific NLIDB: it consumes
//! keywords + metadata and emits configurations and join paths, exactly as
//! described in Section III-E.

pub mod config;
pub mod error;
pub mod fragment;
pub mod join;
pub mod keyword;
pub mod qfg;
pub mod shared;
pub mod templar;
pub mod trace;

pub use config::{Obscurity, TemplarConfig};
pub use error::{JoinInferenceError, TemplarError};
pub use fragment::{fragments_of_query, QueryContext, QueryFragment};
pub use join::{apply_log_weights, infer_joins, BagItem, JoinInference, ScoredJoinPath};
pub use keyword::{
    CandidateMemo, Configuration, Keyword, KeywordMapper, KeywordMetadata, MappedElement,
    MappingCandidate, SearchStats,
};
pub use qfg::{FragmentId, FragmentInterner, QueryFragmentGraph, QueryLog};
pub use shared::SharedTemplar;
pub use templar::{JoinCacheStats, Templar};
pub use trace::{RequestTrace, SpanGuard, Stage, StageSpan, TraceCtx, TraceSpans, STAGE_COUNT};
