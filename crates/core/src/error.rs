//! Typed errors of the Templar core.
//!
//! Construction and join inference used to signal failure with `panic!` and
//! bare `Option`s; the serving stack needs them as values it can route to a
//! wire client, so every failure mode is an enum variant here.

use crate::config::Obscurity;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Errors constructing a [`Templar`](crate::Templar) facade.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum TemplarError {
    /// The Query Fragment Graph was built at a different obscurity level than
    /// the configuration expects.  Mixing levels would silently produce wrong
    /// Dice scores, so construction refuses the pair outright.
    ObscurityMismatch {
        /// The level the configuration asks for.
        expected: Obscurity,
        /// The level the graph was built at.
        found: Obscurity,
    },
}

impl fmt::Display for TemplarError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TemplarError::ObscurityMismatch { expected, found } => write!(
                f,
                "QFG obscurity level {} does not match the configured {}",
                found.name(),
                expected.name()
            ),
        }
    }
}

impl std::error::Error for TemplarError {}

/// Errors from join path inference (`INFERJOINS`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum JoinInferenceError {
    /// The bag of relations/attributes was empty.
    EmptyBag,
    /// A bag item names a relation the schema does not contain.
    UnknownRelation(String),
    /// The bag's relations cannot be connected in the schema graph.
    Disconnected,
}

impl fmt::Display for JoinInferenceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JoinInferenceError::EmptyBag => write!(f, "empty relation/attribute bag"),
            JoinInferenceError::UnknownRelation(r) => {
                write!(f, "relation `{r}` is not part of the schema")
            }
            JoinInferenceError::Disconnected => {
                write!(
                    f,
                    "the bag's relations cannot be connected in the schema graph"
                )
            }
        }
    }
}

impl std::error::Error for JoinInferenceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_their_context() {
        let e = TemplarError::ObscurityMismatch {
            expected: Obscurity::NoConstOp,
            found: Obscurity::Full,
        };
        let text = e.to_string();
        assert!(text.contains("Full") && text.contains("NoConstOp"));
        assert!(JoinInferenceError::UnknownRelation("movies".into())
            .to_string()
            .contains("movies"));
    }

    #[test]
    fn errors_round_trip_through_serde() {
        let e = TemplarError::ObscurityMismatch {
            expected: Obscurity::NoConst,
            found: Obscurity::Full,
        };
        let back: TemplarError = serde_json::from_str(&serde_json::to_string(&e).unwrap()).unwrap();
        assert_eq!(back, e);
        let j = JoinInferenceError::UnknownRelation("writes".into());
        let back: JoinInferenceError =
            serde_json::from_str(&serde_json::to_string(&j).unwrap()).unwrap();
        assert_eq!(back, j);
    }
}
