//! The Query Fragment Graph (Definition 6), on an interned, columnar
//! data plane.
//!
//! The QFG stores, for a SQL query log `L`:
//!
//! * `n_v(c)` — how many logged queries contain fragment `c`, and
//! * `n_e(c1, c2)` — how many logged queries contain both `c1` and `c2`.
//!
//! Both counts are computed at a fixed [`Obscurity`] level.  The
//! co-occurrence strength of two fragments is measured with the Dice
//! coefficient
//! `Dice(c1, c2) = 2·n_e(c1, c2) / (n_v(c1) + n_v(c2))`,
//! which drives both the configuration score (Section V-C.2) and the
//! log-driven join edge weights (Section VI-A.2).
//!
//! # Representation
//!
//! Earlier revisions kept owned [`QueryFragment`] structs as map keys, so
//! every candidate scored during `MAPKEYWORDS` / `INFERJOINS` hashed (and
//! for pair lookups, cloned) whole fragments.  The graph now interns every
//! fragment to a dense [`FragmentId`] and stores the counts columnar:
//!
//! ```text
//! FragmentInterner   fragment ⇄ FragmentId(u32), ids stable across
//!                    ingest/remove (freed ids are recycled, never remapped)
//! occurrences        Vec<u64> indexed by FragmentId          (n_v)
//! CSR adjacency      offsets / neighbors / counts, one row per fragment,
//!                    each unordered pair stored once under its smaller id,
//!                    with precomputed Dice denominators n_v(a) + n_v(b)
//! delta log          BTreeMap<(id, id), i64> of co-occurrence changes not
//!                    yet folded into the CSR
//! ```
//!
//! Reads are always exact: `n_e` is the CSR count plus the pending delta.
//! Mutations (`ingest` / `remove`) only touch the columnar occurrence
//! vector and the delta log; [`QueryFragmentGraph::compact`] folds the
//! delta into a fresh CSR (done automatically when the delta grows large,
//! and by the serving layer every time a snapshot is published, so the
//! scoring hot path always runs on the compacted arrays).
//!
//! The graph supports two mutation models:
//!
//! * **batch** — [`QueryFragmentGraph::build`] over a whole [`QueryLog`], and
//! * **incremental** — [`QueryFragmentGraph::ingest`] /
//!   [`QueryFragmentGraph::remove`] for one query at a time, in
//!   `O(fragments²·log)` per query, which lets a long-running service absorb
//!   newly-logged queries (and evict old ones) without rebuilding the whole
//!   graph.  Ingesting every query of a log into an empty graph is
//!   equivalent to a batch build, and the columnar graph is observationally
//!   equivalent to the reference map-based model (both proved by property
//!   tests in `tests/qfg_properties.rs`).

use crate::config::Obscurity;
use crate::fragment::{fragments_of_query, QueryFragment};
use serde::{Deserialize, Serialize};
use sqlparse::{parse_query, Query};
use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};

/// A SQL query log: the raw material of the QFG.
///
/// Stored as a ring buffer so a serving deployment with a bounded log can
/// evict the oldest entry ([`QueryLog::pop_oldest`]) in O(1).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct QueryLog {
    queries: VecDeque<Query>,
}

impl QueryLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build a log from already-parsed queries.
    pub fn from_queries(queries: Vec<Query>) -> Self {
        QueryLog {
            queries: queries.into(),
        }
    }

    /// Build a log from SQL strings, skipping (and reporting) unparsable
    /// entries.  Real query logs contain noise; Templar only ever uses what
    /// it can parse.  The skipped count should be surfaced (the serving
    /// layer exports it as the `log_skipped_statements` metric) rather than
    /// dropped.
    pub fn from_sql<'a>(statements: impl IntoIterator<Item = &'a str>) -> (Self, usize) {
        let mut queries = VecDeque::new();
        let mut skipped = 0;
        for sql in statements {
            match parse_query(sql) {
                Ok(q) => queries.push_back(q),
                Err(_) => skipped += 1,
            }
        }
        (QueryLog { queries }, skipped)
    }

    /// Append a query to the log.
    pub fn push(&mut self, query: Query) {
        self.queries.push_back(query);
    }

    /// Remove and return the oldest logged query (O(1); used for log
    /// eviction when a long-running service bounds its log size).
    pub fn pop_oldest(&mut self) -> Option<Query> {
        self.queries.pop_front()
    }

    /// The logged queries, oldest first.
    pub fn queries(&self) -> &VecDeque<Query> {
        &self.queries
    }

    /// Number of logged queries.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// True when the log is empty.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }
}

/// A dense identifier for an interned [`QueryFragment`].
///
/// Ids are stable for as long as the fragment is live (its occurrence count
/// is positive): `ingest` / `remove` never remap a live id.  Ids of
/// fragments whose count drops to zero are recycled for fragments interned
/// later.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FragmentId(u32);

impl FragmentId {
    /// The raw index into the graph's columnar arrays.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Sentinel slot value for the gather kernels
/// ([`QueryFragmentGraph::gather_dice`] /
/// [`QueryFragmentGraph::gather_popularity`]): a fragment the log has never
/// seen (`n_v = 0`), which co-occurs with nothing and reads 0.0 everywhere.
pub const ABSENT_FRAGMENT: u32 = u32::MAX;

/// Reusable scratch buffer for [`QueryFragmentGraph::gather_dice`], so the
/// per-extension gather on the configuration-search hot path stays
/// allocation-free.
#[derive(Debug, Default)]
pub struct DiceGatherScratch {
    denominators: Vec<f64>,
}

/// The fragment ⇄ id table.
///
/// `intern` assigns the next free id (recycling released slots);
/// `get` resolves only *live* fragments — a fragment whose occurrence count
/// dropped to zero is released and no longer resolvable, exactly like the
/// old map-based graph pruned zero-count keys.
#[derive(Debug, Clone, Default)]
pub struct FragmentInterner {
    ids: HashMap<QueryFragment, FragmentId>,
    fragments: Vec<QueryFragment>,
    free: Vec<u32>,
}

impl FragmentInterner {
    /// The id of a live fragment.
    pub fn get(&self, fragment: &QueryFragment) -> Option<FragmentId> {
        self.ids.get(fragment).copied()
    }

    /// The fragment behind an id.  Meaningful only for live ids.
    pub fn resolve(&self, id: FragmentId) -> &QueryFragment {
        &self.fragments[id.index()]
    }

    /// Intern a fragment, returning its id (existing or newly assigned).
    fn intern(&mut self, fragment: &QueryFragment) -> FragmentId {
        if let Some(id) = self.ids.get(fragment) {
            return *id;
        }
        let id = match self.free.pop() {
            Some(slot) => {
                self.fragments[slot as usize] = fragment.clone();
                FragmentId(slot)
            }
            None => {
                self.fragments.push(fragment.clone());
                FragmentId((self.fragments.len() - 1) as u32)
            }
        };
        self.ids.insert(fragment.clone(), id);
        id
    }

    /// Release a dead fragment's id back to the free list.
    ///
    /// # Why recycling cannot leak stale state (audit)
    ///
    /// A slot is only released when its occurrence count reaches 0, and
    /// `n_e(c, x) ≤ n_v(c)` holds for every pair (maintained by `ingest` /
    /// `remove`), so at release time every pair touching the slot has **net
    /// count 0**.  That net 0 may be represented as "no entry anywhere" *or*
    /// as a positive CSR baseline exactly cancelled by pending negative
    /// deltas — both read as 0 and both compact to the edge's removal.  A
    /// fragment later interned into the recycled slot therefore starts from
    /// occurrence 0 (`remove` zeroed the column) and net-0 pairs, no matter
    /// how many compactions happen between the release and the re-intern;
    /// its first co-occurrence bump lands *on top of* any leftover
    /// cancelled baseline and nets to exactly 1.  The
    /// `recycled_ids_never_inherit_stale_state` property test in
    /// `tests/qfg_properties.rs` pins this under arbitrary
    /// remove → compact-interleaved → re-intern schedules.
    fn release(&mut self, id: FragmentId) {
        let removed = self.ids.remove(&self.fragments[id.index()]);
        debug_assert_eq!(
            removed,
            Some(id),
            "released a slot whose fragment was not live under that id"
        );
        debug_assert!(
            !self.free.contains(&id.0),
            "double-release of fragment id {}",
            id.0
        );
        self.free.push(id.0);
    }

    /// Size of the id space (live + recyclable slots) — the length of the
    /// columnar arrays.
    pub fn table_len(&self) -> usize {
        self.fragments.len()
    }

    /// Number of live fragments.
    pub fn live_len(&self) -> usize {
        self.ids.len()
    }

    /// Iterate over the live fragments and their ids.
    pub fn live(&self) -> impl Iterator<Item = (&QueryFragment, FragmentId)> {
        self.ids.iter().map(|(f, id)| (f, *id))
    }
}

/// Compressed-sparse-row co-occurrence adjacency.  Each unordered pair
/// `(a, b)` with `a < b` is stored once in row `a`; rows are sorted by
/// neighbor id so a pair lookup is one binary search.  `denominators[e]`
/// caches `n_v(a) + n_v(b)` as of the last compaction, so a Dice lookup on a
/// compacted graph needs no occurrence loads.
#[derive(Debug, Clone, Default)]
struct CsrAdjacency {
    offsets: Vec<u32>,
    neighbors: Vec<u32>,
    counts: Vec<u64>,
    denominators: Vec<u64>,
}

impl CsrAdjacency {
    fn empty() -> Self {
        CsrAdjacency {
            offsets: vec![0],
            neighbors: Vec::new(),
            counts: Vec::new(),
            denominators: Vec::new(),
        }
    }

    /// The flat index of edge `(lo, hi)` (`lo < hi`), if present.
    fn edge_index(&self, lo: u32, hi: u32) -> Option<usize> {
        let row = lo as usize;
        if row + 1 >= self.offsets.len() {
            return None;
        }
        let (start, end) = (self.offsets[row] as usize, self.offsets[row + 1] as usize);
        self.neighbors[start..end]
            .binary_search(&hi)
            .ok()
            .map(|i| start + i)
    }

    fn count(&self, lo: u32, hi: u32) -> u64 {
        self.edge_index(lo, hi).map(|e| self.counts[e]).unwrap_or(0)
    }
}

/// Once the delta log holds this many pending pairs, `ingest` folds it into
/// the CSR eagerly so lookups on a long-running mutable graph stay mostly
/// on the compacted fast path and delta memory stays bounded.
const DELTA_AUTO_COMPACT: usize = 65_536;

/// The Query Fragment Graph over interned fragment ids.
#[derive(Debug, Clone)]
pub struct QueryFragmentGraph {
    obscurity: Obscurity,
    interner: FragmentInterner,
    /// `n_v`, indexed by [`FragmentId`]; 0 for released slots.
    occurrences: Vec<u64>,
    /// Compacted `n_e` baseline.
    csr: CsrAdjacency,
    /// Pending `n_e` changes since the last compaction, keyed `(lo, hi)`.
    delta: BTreeMap<(u32, u32), i64>,
    /// Per-fragment maximum Dice coefficient over all *other* fragments,
    /// recomputed by [`QueryFragmentGraph::compact`] (exact on a compacted
    /// graph, unused otherwise — see [`QueryFragmentGraph::max_dice_by_id`]).
    /// Drives the admissible co-occurrence upper bound of the best-first
    /// configuration search.
    max_dice: Vec<f64>,
    /// True when any occurrence count changed since the last compaction
    /// (the CSR's precomputed denominators are then stale).
    occurrences_dirty: bool,
    /// Number of distinct pairs with a positive net count.
    live_edges: usize,
    /// Number of queries the graph was built from.
    query_count: usize,
    /// Number of compactions performed over this graph's lifetime
    /// (monotonic; cloned along with the graph, exported by metrics).
    compactions: u64,
}

impl QueryFragmentGraph {
    /// An empty graph at an obscurity level (the starting point for purely
    /// incremental construction).
    pub fn empty(obscurity: Obscurity) -> Self {
        QueryFragmentGraph {
            obscurity,
            interner: FragmentInterner::default(),
            occurrences: Vec::new(),
            csr: CsrAdjacency::empty(),
            delta: BTreeMap::new(),
            max_dice: Vec::new(),
            occurrences_dirty: false,
            live_edges: 0,
            query_count: 0,
            compactions: 0,
        }
    }

    /// Build the QFG of a query log at an obscurity level.  The result is
    /// compacted, so lookups run on the CSR fast path immediately.
    pub fn build(log: &QueryLog, obscurity: Obscurity) -> Self {
        let mut graph = Self::empty(obscurity);
        for query in log.queries() {
            graph.ingest(query);
        }
        graph.compact();
        graph
    }

    /// Incrementally ingest one query into the graph, updating `n_v` / `n_e`
    /// in `O(fragments²·log)` — no rebuild.
    pub fn ingest(&mut self, query: &Query) {
        self.query_count += 1;
        // A query contributes at most 1 to n_v / n_e per fragment (pair),
        // matching "the number of occurrences in L of the query fragment":
        // occurrences are counted per logged query.
        let fragments = Self::distinct_fragments(query, self.obscurity);
        let mut ids: Vec<u32> = Vec::with_capacity(fragments.len());
        for f in &fragments {
            #[cfg(debug_assertions)]
            let was_live = self.interner.get(f).is_some();
            let id = self.interner.intern(f);
            if id.index() >= self.occurrences.len() {
                self.occurrences.resize(id.index() + 1, 0);
            }
            // A freshly interned fragment — whether its slot is brand new or
            // recycled — must start from a zeroed occurrence column; a
            // recycled slot inheriting the old tenant's count would inflate
            // n_v (and every Dice denominator) silently.
            #[cfg(debug_assertions)]
            if !was_live {
                debug_assert_eq!(
                    self.occurrences[id.index()],
                    0,
                    "recycled slot {} inherited a stale occurrence count",
                    id.index()
                );
            }
            self.occurrences[id.index()] += 1;
            ids.push(id.0);
        }
        self.occurrences_dirty = true;
        for i in 0..ids.len() {
            for j in (i + 1)..ids.len() {
                self.bump_pair(ids[i], ids[j], 1);
            }
        }
        if self.delta.len() >= DELTA_AUTO_COMPACT {
            self.compact();
        }
    }

    /// Incrementally add one query to the graph.  Alias of
    /// [`QueryFragmentGraph::ingest`], kept for the batch-construction
    /// vocabulary used by earlier callers.
    pub fn add_query(&mut self, query: &Query) {
        self.ingest(query);
    }

    /// Remove one previously-ingested query from the graph (log eviction),
    /// decrementing `n_v` / `n_e` and releasing ids whose counts reach zero
    /// so the graph's live footprint tracks the live log.
    ///
    /// Returns `false` (leaving the graph untouched) if the query's
    /// fragments are not fully present — i.e. it was never ingested at this
    /// obscurity level.
    pub fn remove(&mut self, query: &Query) -> bool {
        if self.query_count == 0 {
            return false;
        }
        let fragments = Self::distinct_fragments(query, self.obscurity);
        // Validate first so a bad call cannot corrupt the counts.
        let mut ids: Vec<u32> = Vec::with_capacity(fragments.len());
        for f in &fragments {
            match self.interner.get(f) {
                Some(id) if self.occurrences[id.index()] > 0 => ids.push(id.0),
                _ => return false,
            }
        }
        for i in 0..ids.len() {
            for j in (i + 1)..ids.len() {
                if self.pair_count(ids[i], ids[j]) == 0 {
                    return false;
                }
            }
        }
        self.query_count -= 1;
        for i in 0..ids.len() {
            for j in (i + 1)..ids.len() {
                self.bump_pair(ids[i], ids[j], -1);
            }
        }
        for &id in &ids {
            let slot = id as usize;
            self.occurrences[slot] -= 1;
            if self.occurrences[slot] == 0 {
                self.interner.release(FragmentId(id));
            }
        }
        self.occurrences_dirty = true;
        true
    }

    /// Current net count of an unordered id pair.
    fn pair_count(&self, a: u32, b: u32) -> u64 {
        if a == b {
            return self.occurrences[a as usize];
        }
        let key = if a < b { (a, b) } else { (b, a) };
        let base = self.csr.count(key.0, key.1) as i64;
        let net = base + self.delta.get(&key).copied().unwrap_or(0);
        debug_assert!(net >= 0, "pair count must never go negative");
        net.max(0) as u64
    }

    /// Apply a +1/−1 co-occurrence change to a pair, maintaining the live
    /// edge counter.
    fn bump_pair(&mut self, a: u32, b: u32, change: i64) {
        let key = if a < b { (a, b) } else { (b, a) };
        let base = self.csr.count(key.0, key.1) as i64;
        let entry = self.delta.entry(key).or_insert(0);
        let before = base + *entry;
        *entry += change;
        let after = before + change;
        if *entry == 0 {
            // The delta cancelled out; drop the entry so compaction and the
            // auto-compact threshold only see real pending work.
            self.delta.remove(&key);
        }
        if before == 0 && after > 0 {
            self.live_edges += 1;
        } else if before > 0 && after == 0 {
            self.live_edges -= 1;
        }
    }

    /// Fold the delta log into a fresh CSR and recompute the precomputed
    /// Dice denominators.  Idempotent; ids are never remapped.  The serving
    /// layer calls this on every snapshot publish
    /// (`Templar::from_parts` compacts the graph it receives), so the
    /// translation hot path always reads compacted arrays.
    pub fn compact(&mut self) {
        if self.is_compacted() {
            return;
        }
        let n = self.interner.table_len();
        let merged = self.net_edges();
        let mut offsets = vec![0u32; n + 1];
        for &(lo, _, _) in &merged {
            offsets[lo as usize + 1] += 1;
        }
        for i in 1..offsets.len() {
            offsets[i] += offsets[i - 1];
        }
        let mut neighbors = Vec::with_capacity(merged.len());
        let mut counts = Vec::with_capacity(merged.len());
        let mut denominators = Vec::with_capacity(merged.len());
        // Rebuild the per-fragment max-Dice column in the same pass: every
        // positive pair is visited exactly once, and the Dice value is
        // computed with the same expression the compacted fast path of
        // [`QueryFragmentGraph::dice_by_id`] uses, so the column is exact
        // (bit-for-bit) for every pair lookup that follows.
        let mut max_dice = vec![0.0f64; n];
        for &(lo, hi, count) in &merged {
            neighbors.push(hi);
            counts.push(count);
            let denominator = self.occurrences[lo as usize] + self.occurrences[hi as usize];
            denominators.push(denominator);
            // Only pairs of *live* fragments enter the column: removing a
            // query more times than it was ingested (tolerated — `remove`
            // validates fragment presence, not multiset membership) can
            // leave a positive pair count on a released slot, and such a
            // pair is unreachable through any live-id lookup.
            if self.occurrences[lo as usize] > 0 && self.occurrences[hi as usize] > 0 {
                let dice = (2.0 * count as f64) / (denominator as f64);
                if dice > max_dice[lo as usize] {
                    max_dice[lo as usize] = dice;
                }
                if dice > max_dice[hi as usize] {
                    max_dice[hi as usize] = dice;
                }
            }
        }
        self.max_dice = max_dice;
        self.live_edges = merged.len();
        self.csr = CsrAdjacency {
            offsets,
            neighbors,
            counts,
            denominators,
        };
        self.delta.clear();
        self.occurrences_dirty = false;
        self.compactions += 1;
    }

    /// True when the delta log is empty and the CSR (including its
    /// precomputed denominators) reflects the current counts.
    pub fn is_compacted(&self) -> bool {
        self.delta.is_empty()
            && !self.occurrences_dirty
            && self.csr.offsets.len() == self.interner.table_len() + 1
    }

    /// All pairs with a positive net count, sorted by `(lo, hi)`:
    /// the CSR baseline merged with the pending delta.
    fn net_edges(&self) -> Vec<(u32, u32, u64)> {
        let mut merged = Vec::with_capacity(self.csr.counts.len() + self.delta.len());
        let mut pending = self.delta.iter().peekable();
        let rows = self.csr.offsets.len().saturating_sub(1);
        for lo in 0..rows as u32 {
            let (start, end) = (
                self.csr.offsets[lo as usize] as usize,
                self.csr.offsets[lo as usize + 1] as usize,
            );
            for e in start..end {
                let hi = self.csr.neighbors[e];
                // Delta-only pairs that sort before this CSR edge are new.
                while let Some((&key, &change)) = pending.peek() {
                    if key < (lo, hi) {
                        if change > 0 {
                            merged.push((key.0, key.1, change as u64));
                        }
                        pending.next();
                    } else {
                        break;
                    }
                }
                let mut net = self.csr.counts[e] as i64;
                if let Some((&key, &change)) = pending.peek() {
                    if key == (lo, hi) {
                        net += change;
                        pending.next();
                    }
                }
                if net > 0 {
                    merged.push((lo, hi, net as u64));
                }
            }
        }
        for (&(lo, hi), &change) in pending {
            if change > 0 {
                merged.push((lo, hi, change as u64));
            }
        }
        merged
    }

    /// The distinct fragments of one query at an obscurity level, ordered.
    fn distinct_fragments(query: &Query, obscurity: Obscurity) -> BTreeSet<QueryFragment> {
        fragments_of_query(query, obscurity).into_iter().collect()
    }

    /// The obscurity level the graph was built at.
    pub fn obscurity(&self) -> Obscurity {
        self.obscurity
    }

    /// Number of distinct live fragments (vertices).
    pub fn fragment_count(&self) -> usize {
        self.interner.live_len()
    }

    /// Number of distinct co-occurring pairs with a positive count (edges).
    pub fn edge_count(&self) -> usize {
        self.live_edges
    }

    /// Number of queries the graph was built from.
    pub fn query_count(&self) -> usize {
        self.query_count
    }

    /// The interner (for callers that resolve fragments to ids once and
    /// score over ids afterwards).
    pub fn interner(&self) -> &FragmentInterner {
        &self.interner
    }

    /// The id of a live fragment, for id-based scoring.
    pub fn lookup(&self, fragment: &QueryFragment) -> Option<FragmentId> {
        self.interner.get(fragment)
    }

    /// The id of a relation's `FROM` fragment.
    pub fn lookup_relation(&self, relation: &str) -> Option<FragmentId> {
        self.lookup(&QueryFragment::relation(relation))
    }

    /// Size of the interner table (live + recyclable slots) — the length of
    /// the columnar arrays, exported by serving metrics.
    pub fn interned_len(&self) -> usize {
        self.interner.table_len()
    }

    /// Number of edges resident in the compacted CSR baseline.
    pub fn csr_edge_len(&self) -> usize {
        self.csr.counts.len()
    }

    /// Number of pairs in the pending delta log.
    pub fn pending_delta_len(&self) -> usize {
        self.delta.len()
    }

    /// Number of compactions performed over this graph's lifetime.
    pub fn compactions(&self) -> u64 {
        self.compactions
    }

    /// `n_v(c)`: occurrence count of a fragment.
    pub fn occurrences(&self, fragment: &QueryFragment) -> u64 {
        self.interner
            .get(fragment)
            .map(|id| self.occurrences[id.index()])
            .unwrap_or(0)
    }

    /// `n_v` by id — one array load.
    pub fn occurrences_by_id(&self, id: FragmentId) -> u64 {
        self.occurrences[id.index()]
    }

    /// `n_e(c1, c2)`: co-occurrence count of a fragment pair.
    pub fn co_occurrences(&self, a: &QueryFragment, b: &QueryFragment) -> u64 {
        if a == b {
            return self.occurrences(a);
        }
        match (self.interner.get(a), self.interner.get(b)) {
            (Some(x), Some(y)) => self.co_occurrences_by_id(x, y),
            _ => 0,
        }
    }

    /// `n_e` by id pair.
    pub fn co_occurrences_by_id(&self, a: FragmentId, b: FragmentId) -> u64 {
        self.pair_count(a.0, b.0)
    }

    /// The Dice coefficient of two fragments, in `[0, 1]`.
    pub fn dice(&self, a: &QueryFragment, b: &QueryFragment) -> f64 {
        match (self.interner.get(a), self.interner.get(b)) {
            (Some(x), Some(y)) => self.dice_by_id(x, y),
            // A fragment the log never saw has n_v = 0 and co-occurs with
            // nothing, so every Dice involving it is 0.
            _ => 0.0,
        }
    }

    /// The Dice coefficient by id pair.  On a compacted graph this is one
    /// binary search plus one division against the precomputed denominator;
    /// occurrence counts are not touched at all.
    pub fn dice_by_id(&self, a: FragmentId, b: FragmentId) -> f64 {
        if a == b {
            // Dice(c, c) = 2·n_v / (n_v + n_v) = 1 for any live fragment.
            return if self.occurrences[a.index()] > 0 {
                1.0
            } else {
                0.0
            };
        }
        let (lo, hi) = if a.0 < b.0 { (a.0, b.0) } else { (b.0, a.0) };
        if self.delta.is_empty() && !self.occurrences_dirty {
            return match self.csr.edge_index(lo, hi) {
                Some(e) => (2.0 * self.csr.counts[e] as f64) / (self.csr.denominators[e] as f64),
                None => 0.0,
            };
        }
        let na = self.occurrences[lo as usize];
        let nb = self.occurrences[hi as usize];
        if na + nb == 0 {
            return 0.0;
        }
        let ne = self.pair_count(lo, hi);
        (2.0 * ne as f64) / ((na + nb) as f64)
    }

    /// An upper bound on `max over all other fragments x of Dice(id, x)`.
    ///
    /// On a compacted graph this is **exact**: the column is rebuilt by
    /// [`QueryFragmentGraph::compact`] from the same arithmetic the pair
    /// lookup uses, so for every live partner `x ≠ id`,
    /// `dice_by_id(id, x) ≤ max_dice_by_id(id)` holds bit-for-bit.  On a
    /// graph with pending deltas the column may be stale in either
    /// direction, so the trivially admissible bound `1.0` is returned
    /// instead — callers on the scoring hot path always see a compacted
    /// graph (`Templar::from_parts` compacts on snapshot construction).
    ///
    /// A fragment with no co-occurring partner has `max_dice = 0.0` (Dice
    /// with every other fragment is 0), and a released slot reads `0.0`
    /// until it is re-interned and recompacted.
    ///
    /// Like [`QueryFragmentGraph::dice_by_id`], the value can exceed `1.0`
    /// in the degenerate states produced by removing a query more times
    /// than it was ingested; consumers that need a probability-like bound
    /// should clamp (the configuration search's smoothed pair factor caps
    /// at 1, so both the exact column and the fallback stay admissible).
    pub fn max_dice_by_id(&self, id: FragmentId) -> f64 {
        if self.delta.is_empty() && !self.occurrences_dirty && id.index() < self.max_dice.len() {
            self.max_dice[id.index()]
        } else {
            1.0
        }
    }

    /// Gather `Dice(candidate, priors[i])` into `out[i]` for a batch of
    /// prior fragment slots — the columnar counterpart of calling
    /// [`QueryFragmentGraph::dice_by_id`] once per pair.
    ///
    /// On a compacted graph the gather phase resolves every pair to an
    /// integer `(numerator, denominator)` — one CSR binary search each —
    /// and the arithmetic then runs as one flat multiply/divide sweep over
    /// contiguous slices that LLVM can autovectorize.  Each lane evaluates
    /// the same expression the scalar lookup does (`2·n_e / (n_v(a) +
    /// n_v(b))`; missing pairs read `(0, 1)`, live self-pairs `(1, 2)`), so
    /// every gathered value is bit-for-bit the `dice_by_id` result.  With
    /// pending deltas the per-pair slow path is used instead — same values,
    /// no sweep.
    ///
    /// `priors` entries equal to [`ABSENT_FRAGMENT`] denote fragments the
    /// log has never seen; they read 0.0.
    pub fn gather_dice(
        &self,
        candidate: FragmentId,
        priors: &[u32],
        scratch: &mut DiceGatherScratch,
        out: &mut Vec<f64>,
    ) {
        out.clear();
        if priors.is_empty() {
            return;
        }
        if !self.delta.is_empty() || self.occurrences_dirty {
            out.extend(priors.iter().map(|&p| {
                if p == ABSENT_FRAGMENT {
                    0.0
                } else {
                    self.dice_by_id(candidate, FragmentId(p))
                }
            }));
            return;
        }
        let c = candidate.0;
        let den = &mut scratch.denominators;
        den.clear();
        den.reserve(priors.len());
        out.reserve(priors.len());
        for &p in priors {
            let (numerator, denominator) = if p == ABSENT_FRAGMENT {
                (0.0, 1.0)
            } else if p == c {
                if self.occurrences[c as usize] > 0 {
                    (1.0, 2.0)
                } else {
                    (0.0, 1.0)
                }
            } else {
                let (lo, hi) = if c < p { (c, p) } else { (p, c) };
                match self.csr.edge_index(lo, hi) {
                    Some(e) => (self.csr.counts[e] as f64, self.csr.denominators[e] as f64),
                    None => (0.0, 1.0),
                }
            };
            out.push(numerator);
            den.push(denominator);
        }
        for (value, &denominator) in out.iter_mut().zip(den.iter()) {
            *value = (2.0 * *value) / denominator;
        }
    }

    /// Gather `n_v(ids[i]) / |L|` into `out[i]` — the normalised
    /// log-popularity of a batch of fragment slots, as one contiguous
    /// occurrence gather followed by one divide sweep.  [`ABSENT_FRAGMENT`]
    /// entries read 0.0; each lane matches the scalar
    /// `occurrences_by_id(id) as f64 / query_count().max(1) as f64`
    /// bit-for-bit.
    pub fn gather_popularity(&self, ids: &[u32], out: &mut Vec<f64>) {
        let total = self.query_count.max(1) as f64;
        out.clear();
        out.extend(ids.iter().map(|&id| {
            if id == ABSENT_FRAGMENT {
                0.0
            } else {
                self.occurrences[id as usize] as f64
            }
        }));
        for value in out.iter_mut() {
            *value /= total;
        }
    }

    /// The Dice coefficient between two relations' `FROM` fragments, used by
    /// the log-driven join edge weight `w_L = 1 − Dice`.
    pub fn relation_dice(&self, a: &str, b: &str) -> f64 {
        self.dice(&QueryFragment::relation(a), &QueryFragment::relation(b))
    }

    /// The most frequent fragments (for inspection and examples).
    pub fn top_fragments(&self, n: usize) -> Vec<(QueryFragment, u64)> {
        let mut all: Vec<(QueryFragment, u64)> =
            self.fragments().map(|(f, c)| (f.clone(), c)).collect();
        all.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        all.truncate(n);
        all
    }

    /// Iterate over all live fragments and their occurrence counts.
    pub fn fragments(&self) -> impl Iterator<Item = (&QueryFragment, u64)> {
        self.interner
            .live()
            .map(|(f, id)| (f, self.occurrences[id.index()]))
    }

    /// Iterate over all co-occurring fragment pairs and their counts
    /// (canonical id order; used by observational equality, snapshot
    /// tooling and inspection).
    pub fn co_occurrence_entries(&self) -> Vec<(&QueryFragment, &QueryFragment, u64)> {
        self.net_edges()
            .into_iter()
            .map(|(lo, hi, count)| {
                (
                    self.interner.resolve(FragmentId(lo)),
                    self.interner.resolve(FragmentId(hi)),
                    count,
                )
            })
            .collect()
    }
}

/// Equality is *observational*: two graphs are equal when they were built at
/// the same obscurity from the same number of queries and agree on every
/// occurrence and co-occurrence count — regardless of id assignment order,
/// free-list state or compaction progress.  (A shuffled incremental build
/// interns fragments in a different order than a batch build; both must
/// compare equal.)
impl PartialEq for QueryFragmentGraph {
    fn eq(&self, other: &Self) -> bool {
        self.obscurity == other.obscurity
            && self.query_count == other.query_count
            && self.fragment_count() == other.fragment_count()
            && self.edge_count() == other.edge_count()
            && self.fragments().all(|(f, c)| other.occurrences(f) == c)
            && self
                .co_occurrence_entries()
                .iter()
                .all(|(a, b, c)| other.co_occurrences(a, b) == *c)
    }
}

/// Snapshot format v2 body: the interner table plus the columnar arrays,
/// densified to live ids (dead slots are an in-process artifact of id
/// stability and are dropped on the wire).
#[derive(Serialize, Deserialize)]
struct ColumnarQfg {
    obscurity: Obscurity,
    query_count: u64,
    fragments: Vec<QueryFragment>,
    occurrences: Vec<u64>,
    offsets: Vec<u32>,
    neighbors: Vec<u32>,
    counts: Vec<u64>,
}

impl Serialize for QueryFragmentGraph {
    fn to_value(&self) -> serde::Value {
        // Serialize a compacted, densified view; `to_value` takes `&self`,
        // so an uncompacted graph is compacted on a clone.
        let owned;
        let graph = if self.is_compacted() {
            self
        } else {
            let mut c = self.clone();
            c.compact();
            owned = c;
            &owned
        };
        let table = graph.interner.table_len();
        let mut remap: Vec<u32> = vec![u32::MAX; table];
        let mut fragments = Vec::with_capacity(graph.fragment_count());
        let mut occurrences = Vec::with_capacity(graph.fragment_count());
        for (slot, entry) in remap.iter_mut().enumerate() {
            if graph.occurrences[slot] > 0 {
                *entry = fragments.len() as u32;
                fragments.push(graph.interner.fragments[slot].clone());
                occurrences.push(graph.occurrences[slot]);
            }
        }
        // The remap is monotone over live slots, so row order and in-row
        // neighbor order survive unchanged.
        let n = fragments.len();
        let mut offsets = vec![0u32; n + 1];
        let mut neighbors = Vec::with_capacity(graph.csr.neighbors.len());
        let mut counts = Vec::with_capacity(graph.csr.counts.len());
        for lo in 0..table {
            let new_lo = remap[lo];
            let (start, end) = (
                graph.csr.offsets[lo] as usize,
                graph.csr.offsets[lo + 1] as usize,
            );
            for e in start..end {
                debug_assert!(new_lo != u32::MAX, "CSR edge touching a dead slot");
                neighbors.push(remap[graph.csr.neighbors[e] as usize]);
                counts.push(graph.csr.counts[e]);
                offsets[new_lo as usize + 1] += 1;
            }
        }
        for i in 1..offsets.len() {
            offsets[i] += offsets[i - 1];
        }
        ColumnarQfg {
            obscurity: graph.obscurity,
            query_count: graph.query_count as u64,
            fragments,
            occurrences,
            offsets,
            neighbors,
            counts,
        }
        .to_value()
    }
}

impl Deserialize for QueryFragmentGraph {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let columnar = ColumnarQfg::from_value(value)?;
        QueryFragmentGraph::from_columnar(columnar).map_err(serde::Error::new)
    }
}

impl QueryFragmentGraph {
    /// Validate and adopt a deserialized columnar body.  Every structural
    /// invariant is checked so a corrupted or truncated snapshot surfaces as
    /// a typed error instead of panics or silently wrong scores.
    fn from_columnar(c: ColumnarQfg) -> Result<Self, String> {
        let n = c.fragments.len();
        if c.occurrences.len() != n {
            return Err(format!(
                "occurrence column length {} does not match {} fragments",
                c.occurrences.len(),
                n
            ));
        }
        if c.occurrences.contains(&0) {
            return Err("serialized graph contains a zero-occurrence fragment".to_string());
        }
        if c.offsets.len() != n + 1 || c.offsets.first() != Some(&0) {
            return Err(format!(
                "CSR offsets length {} does not match {} fragments",
                c.offsets.len(),
                n
            ));
        }
        if c.offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err("CSR offsets are not monotone".to_string());
        }
        let edges = *c.offsets.last().unwrap() as usize;
        if c.neighbors.len() != edges || c.counts.len() != edges {
            return Err(format!(
                "truncated CSR: offsets expect {} edges, found {} neighbors / {} counts",
                edges,
                c.neighbors.len(),
                c.counts.len()
            ));
        }
        let mut ids: HashMap<QueryFragment, FragmentId> = HashMap::with_capacity(n);
        for (slot, fragment) in c.fragments.iter().enumerate() {
            if ids
                .insert(fragment.clone(), FragmentId(slot as u32))
                .is_some()
            {
                return Err(format!("duplicate interned fragment {fragment}"));
            }
        }
        let mut denominators = Vec::with_capacity(edges);
        let mut max_dice = vec![0.0f64; n];
        for lo in 0..n {
            let (start, end) = (c.offsets[lo] as usize, c.offsets[lo + 1] as usize);
            let mut prev: Option<u32> = None;
            for e in start..end {
                let hi = c.neighbors[e];
                if (hi as usize) >= n || hi <= lo as u32 {
                    return Err(format!("CSR neighbor {hi} out of range for row {lo}"));
                }
                if prev.is_some_and(|p| p >= hi) {
                    return Err(format!("CSR row {lo} neighbors are not strictly sorted"));
                }
                prev = Some(hi);
                let count = c.counts[e];
                if count == 0 || count > c.occurrences[lo].min(c.occurrences[hi as usize]) {
                    return Err(format!(
                        "co-occurrence count {count} of pair ({lo}, {hi}) is inconsistent \
                         with its occurrence counts"
                    ));
                }
                let denominator = c.occurrences[lo] + c.occurrences[hi as usize];
                denominators.push(denominator);
                let dice = (2.0 * count as f64) / (denominator as f64);
                if dice > max_dice[lo] {
                    max_dice[lo] = dice;
                }
                if dice > max_dice[hi as usize] {
                    max_dice[hi as usize] = dice;
                }
            }
        }
        Ok(QueryFragmentGraph {
            obscurity: c.obscurity,
            interner: FragmentInterner {
                ids,
                fragments: c.fragments,
                free: Vec::new(),
            },
            occurrences: c.occurrences,
            live_edges: edges,
            csr: CsrAdjacency {
                offsets: c.offsets,
                neighbors: c.neighbors,
                counts: c.counts,
                denominators,
            },
            delta: BTreeMap::new(),
            max_dice,
            occurrences_dirty: false,
            query_count: c.query_count as usize,
            compactions: 0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fragment::QueryContext;

    /// The query log of Figure 3a.
    fn figure3_log() -> QueryLog {
        let mut sql = Vec::new();
        for _ in 0..25 {
            sql.push("SELECT j.name FROM journal j".to_string());
        }
        for _ in 0..5 {
            sql.push("SELECT p.title FROM publication p WHERE p.year > 2003".to_string());
        }
        for _ in 0..3 {
            sql.push(
                "SELECT p.title FROM journal j, publication p \
                 WHERE j.name = 'TMC' AND p.pid = j.pid"
                    .to_string(),
            );
        }
        let (log, skipped) = QueryLog::from_sql(sql.iter().map(String::as_str));
        assert_eq!(skipped, 0);
        log
    }

    fn frag(expr: &str, context: QueryContext) -> QueryFragment {
        QueryFragment {
            expr: expr.to_string(),
            context,
        }
    }

    #[test]
    fn occurrence_counts_match_figure_3b() {
        let qfg = QueryFragmentGraph::build(&figure3_log(), Obscurity::NoConstOp);
        assert_eq!(
            qfg.occurrences(&frag("journal.name", QueryContext::Select)),
            25
        );
        assert_eq!(
            qfg.occurrences(&frag("publication.title", QueryContext::Select)),
            8
        );
        assert_eq!(qfg.occurrences(&QueryFragment::relation("journal")), 28);
        assert_eq!(qfg.occurrences(&QueryFragment::relation("publication")), 8);
        assert_eq!(
            qfg.occurrences(&frag("publication.year ?op ?val", QueryContext::Where)),
            5
        );
        assert_eq!(
            qfg.occurrences(&frag("journal.name ?op ?val", QueryContext::Where)),
            3
        );
        assert_eq!(qfg.query_count(), 33);
    }

    #[test]
    fn co_occurrence_counts_match_figure_3c() {
        let qfg = QueryFragmentGraph::build(&figure3_log(), Obscurity::NoConstOp);
        let title = frag("publication.title", QueryContext::Select);
        let year_pred = frag("publication.year ?op ?val", QueryContext::Where);
        let jname_pred = frag("journal.name ?op ?val", QueryContext::Where);
        let jname_sel = frag("journal.name", QueryContext::Select);
        assert_eq!(qfg.co_occurrences(&title, &year_pred), 5);
        assert_eq!(qfg.co_occurrences(&title, &jname_pred), 3);
        assert_eq!(qfg.co_occurrences(&jname_sel, &jname_pred), 0);
        assert_eq!(qfg.co_occurrences(&jname_sel, &title), 0);
    }

    #[test]
    fn dice_reflects_the_log_evidence() {
        let qfg = QueryFragmentGraph::build(&figure3_log(), Obscurity::NoConstOp);
        let title = frag("publication.title", QueryContext::Select);
        let jname_sel = frag("journal.name", QueryContext::Select);
        let jname_pred = frag("journal.name ?op ?val", QueryContext::Where);
        // The log says: when a journal-name predicate appears, the query
        // selects publication.title, never journal.name.  This is the
        // evidence that resolves Example 5's "papers" ambiguity.
        assert!(qfg.dice(&title, &jname_pred) > qfg.dice(&jname_sel, &jname_pred));
        // Dice is symmetric and bounded.
        assert_eq!(qfg.dice(&title, &jname_pred), qfg.dice(&jname_pred, &title));
        assert!(qfg.dice(&title, &jname_pred) <= 1.0);
    }

    #[test]
    fn dice_of_unknown_fragments_is_zero() {
        let qfg = QueryFragmentGraph::build(&figure3_log(), Obscurity::NoConstOp);
        let unknown = frag("business.stars ?op ?val", QueryContext::Where);
        let title = frag("publication.title", QueryContext::Select);
        assert_eq!(qfg.dice(&unknown, &title), 0.0);
        assert_eq!(qfg.occurrences(&unknown), 0);
    }

    #[test]
    fn dice_with_itself_is_one() {
        let qfg = QueryFragmentGraph::build(&figure3_log(), Obscurity::NoConstOp);
        let title = frag("publication.title", QueryContext::Select);
        assert!((qfg.dice(&title, &title) - 1.0).abs() < 1e-12);
        let id = qfg.lookup(&title).unwrap();
        assert!((qfg.dice_by_id(id, id) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn relation_dice_supports_join_weighting() {
        let qfg = QueryFragmentGraph::build(&figure3_log(), Obscurity::NoConstOp);
        // journal and publication co-occur in 3 of the queries.
        let d = qfg.relation_dice("journal", "publication");
        assert!((d - 2.0 * 3.0 / (28.0 + 8.0)).abs() < 1e-12);
    }

    #[test]
    fn unparsable_log_entries_are_skipped() {
        let (log, skipped) =
            QueryLog::from_sql(["SELECT x FROM t", "THIS IS NOT SQL", "SELECT y FROM u"]);
        assert_eq!(log.len(), 2);
        assert_eq!(skipped, 1);
    }

    #[test]
    fn incremental_and_batch_construction_agree() {
        let log = figure3_log();
        let batch = QueryFragmentGraph::build(&log, Obscurity::NoConst);
        let mut incremental = QueryFragmentGraph::build(&QueryLog::new(), Obscurity::NoConst);
        for q in log.queries() {
            incremental.add_query(q);
        }
        assert_eq!(batch.fragment_count(), incremental.fragment_count());
        assert_eq!(batch.edge_count(), incremental.edge_count());
        for (f, c) in batch.fragments() {
            assert_eq!(incremental.occurrences(f), c);
        }
        assert_eq!(batch, incremental);
    }

    #[test]
    fn top_fragments_are_sorted_by_frequency() {
        let qfg = QueryFragmentGraph::build(&figure3_log(), Obscurity::NoConstOp);
        let top = qfg.top_fragments(3);
        assert_eq!(top[0].0, QueryFragment::relation("journal"));
        assert!(top[0].1 >= top[1].1 && top[1].1 >= top[2].1);
    }

    #[test]
    fn ids_are_stable_and_lookups_match_fragment_keyed_reads() {
        let qfg = QueryFragmentGraph::build(&figure3_log(), Obscurity::NoConstOp);
        let title = frag("publication.title", QueryContext::Select);
        let year_pred = frag("publication.year ?op ?val", QueryContext::Where);
        let a = qfg.lookup(&title).unwrap();
        let b = qfg.lookup(&year_pred).unwrap();
        assert_eq!(qfg.occurrences_by_id(a), qfg.occurrences(&title));
        assert_eq!(
            qfg.co_occurrences_by_id(a, b),
            qfg.co_occurrences(&title, &year_pred)
        );
        assert_eq!(qfg.dice_by_id(a, b), qfg.dice(&title, &year_pred));
        assert_eq!(qfg.interner().resolve(a), &title);
    }

    #[test]
    fn compaction_preserves_counts() {
        let log = figure3_log();
        let mut incremental = QueryFragmentGraph::empty(Obscurity::NoConstOp);
        for q in log.queries() {
            incremental.ingest(q);
        }
        assert!(!incremental.is_compacted());
        let before_fragments: Vec<(QueryFragment, u64)> = incremental
            .fragments()
            .map(|(f, c)| (f.clone(), c))
            .collect();
        let uncompacted = incremental.clone();
        incremental.compact();
        assert!(incremental.is_compacted());
        assert_eq!(incremental.compactions(), 1);
        assert_eq!(incremental.csr_edge_len(), incremental.edge_count());
        assert_eq!(incremental.pending_delta_len(), 0);
        for (f, c) in &before_fragments {
            assert_eq!(incremental.occurrences(f), *c);
        }
        assert_eq!(incremental, uncompacted);
    }

    #[test]
    fn released_ids_are_recycled_for_new_fragments() {
        let (log, _) = QueryLog::from_sql(["SELECT p.title FROM publication p"]);
        let mut qfg = QueryFragmentGraph::build(&log, Obscurity::NoConstOp);
        let table_before = qfg.interned_len();
        assert!(qfg.remove(&log.queries()[0]));
        assert_eq!(qfg.fragment_count(), 0);
        // Re-ingesting reuses the freed slots instead of growing the table.
        let (log2, _) = QueryLog::from_sql(["SELECT j.name FROM journal j"]);
        qfg.ingest(&log2.queries()[0]);
        assert_eq!(qfg.interned_len(), table_before);
        assert_eq!(
            qfg.occurrences(&frag("journal.name", QueryContext::Select)),
            1
        );
        // The dead publication fragments are gone.
        assert_eq!(
            qfg.occurrences(&frag("publication.title", QueryContext::Select)),
            0
        );
    }

    #[test]
    fn max_dice_column_is_exact_on_a_compacted_graph() {
        let qfg = QueryFragmentGraph::build(&figure3_log(), Obscurity::NoConstOp);
        let live: Vec<QueryFragment> = qfg.fragments().map(|(f, _)| f.clone()).collect();
        for a in &live {
            let id = qfg.lookup(a).unwrap();
            let expected = live
                .iter()
                .filter(|b| *b != a)
                .map(|b| qfg.dice(a, b))
                .fold(0.0, f64::max);
            assert_eq!(
                qfg.max_dice_by_id(id),
                expected,
                "max_dice must equal the true per-fragment maximum for {a}"
            );
            // Admissibility bit-for-bit: no pair lookup may exceed it.
            for b in &live {
                if b != a {
                    assert!(qfg.dice(a, b) <= qfg.max_dice_by_id(id));
                }
            }
        }
    }

    #[test]
    fn max_dice_falls_back_to_admissible_one_while_uncompacted() {
        let mut qfg = QueryFragmentGraph::build(&figure3_log(), Obscurity::NoConstOp);
        // journal.name co-occurs most strongly with the journal relation
        // (25 of 28 journal queries), so its true maximum is 50/53 < 1.
        let jname = frag("journal.name", QueryContext::Select);
        let id = qfg.lookup(&jname).unwrap();
        assert!((qfg.max_dice_by_id(id) - 50.0 / 53.0).abs() < 1e-12);
        let (extra, _) = QueryLog::from_sql(["SELECT p.year FROM publication p"]);
        qfg.ingest(&extra.queries()[0]);
        // Pending deltas: the column may be stale, so the trivial bound wins.
        assert_eq!(qfg.max_dice_by_id(id), 1.0);
        qfg.compact();
        assert!(qfg.max_dice_by_id(id) < 1.0);
        // A serde round-trip (snapshot load) restores the exact column.
        let back = QueryFragmentGraph::from_value(&serde::Serialize::to_value(&qfg)).unwrap();
        assert_eq!(back.max_dice_by_id(id), qfg.max_dice_by_id(id));
    }

    #[test]
    fn gather_kernels_match_scalar_lookups_bit_for_bit() {
        let mut qfg = QueryFragmentGraph::build(&figure3_log(), Obscurity::NoConstOp);
        // Exercise both the compacted sweep and the pending-delta fallback.
        for compacted in [true, false] {
            if !compacted {
                let (extra, _) = QueryLog::from_sql(["SELECT p.year FROM publication p"]);
                qfg.ingest(&extra.queries()[0]);
                assert!(!qfg.is_compacted());
            }
            let live: Vec<FragmentId> = qfg
                .fragments()
                .map(|(f, _)| qfg.lookup(f).unwrap())
                .collect();
            let mut ids: Vec<u32> = live.iter().map(|id| id.index() as u32).collect();
            ids.push(ABSENT_FRAGMENT);
            let mut scratch = DiceGatherScratch::default();
            let mut out = Vec::new();
            for &c in &live {
                qfg.gather_dice(c, &ids, &mut scratch, &mut out);
                assert_eq!(out.len(), ids.len());
                for (i, &id) in ids.iter().enumerate() {
                    let expected = if id == ABSENT_FRAGMENT {
                        0.0
                    } else {
                        qfg.dice_by_id(c, FragmentId(id))
                    };
                    assert_eq!(
                        out[i].to_bits(),
                        expected.to_bits(),
                        "gathered Dice must be bit-identical to the scalar lookup \
                         (compacted: {compacted})"
                    );
                }
            }
            let mut pop = Vec::new();
            qfg.gather_popularity(&ids, &mut pop);
            for (i, &id) in ids.iter().enumerate() {
                let expected = if id == ABSENT_FRAGMENT {
                    0.0
                } else {
                    qfg.occurrences_by_id(FragmentId(id)) as f64 / qfg.query_count().max(1) as f64
                };
                assert_eq!(pop[i].to_bits(), expected.to_bits());
            }
        }
    }

    #[test]
    fn serde_round_trip_preserves_observational_state() {
        let mut qfg = QueryFragmentGraph::build(&figure3_log(), Obscurity::NoConstOp);
        // Leave some pending delta so serialization exercises the
        // compact-on-write path.
        let (extra, _) = QueryLog::from_sql(["SELECT p.year FROM publication p"]);
        qfg.ingest(&extra.queries()[0]);
        let value = serde::Serialize::to_value(&qfg);
        let back = QueryFragmentGraph::from_value(&value).unwrap();
        assert_eq!(back, qfg);
        assert!(back.is_compacted());
        assert_eq!(back.query_count(), qfg.query_count());
    }

    #[test]
    fn corrupted_columnar_bodies_are_rejected() {
        let qfg = QueryFragmentGraph::build(&figure3_log(), Obscurity::NoConstOp);
        let value = serde::Serialize::to_value(&qfg);
        // Truncate the neighbor column: offsets promise more edges.
        let serde::Value::Map(mut fields) = value.clone() else {
            panic!("columnar body must be a map")
        };
        for (key, field) in &mut fields {
            if key == "neighbors" {
                let serde::Value::Seq(items) = field else {
                    panic!("neighbors must be a seq")
                };
                items.pop();
            }
        }
        let err = QueryFragmentGraph::from_value(&serde::Value::Map(fields)).unwrap_err();
        assert!(err.to_string().contains("truncated CSR"), "{err}");
    }
}
