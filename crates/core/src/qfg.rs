//! The Query Fragment Graph (Definition 6), on an interned, columnar
//! data plane.
//!
//! The QFG stores, for a SQL query log `L`:
//!
//! * `n_v(c)` — how many logged queries contain fragment `c`, and
//! * `n_e(c1, c2)` — how many logged queries contain both `c1` and `c2`.
//!
//! Both counts are computed at a fixed [`Obscurity`] level.  The
//! co-occurrence strength of two fragments is measured with the Dice
//! coefficient
//! `Dice(c1, c2) = 2·n_e(c1, c2) / (n_v(c1) + n_v(c2))`,
//! which drives both the configuration score (Section V-C.2) and the
//! log-driven join edge weights (Section VI-A.2).
//!
//! # Representation
//!
//! Earlier revisions kept owned [`QueryFragment`] structs as map keys, so
//! every candidate scored during `MAPKEYWORDS` / `INFERJOINS` hashed (and
//! for pair lookups, cloned) whole fragments.  The graph now interns every
//! fragment to a dense [`FragmentId`] and stores the counts columnar:
//!
//! ```text
//! FragmentInterner   fragment ⇄ FragmentId(u32), ids stable across
//!                    ingest/remove (freed ids are recycled, never remapped)
//! occurrences        Vec<u64> indexed by FragmentId          (n_v)
//! CSR adjacency      offsets / neighbors / counts, one row per fragment,
//!                    each unordered pair stored once under its smaller id,
//!                    with precomputed Dice denominators n_v(a) + n_v(b)
//! delta log          BTreeMap<(id, id), i64> of co-occurrence changes not
//!                    yet folded into a run or the CSR
//! tiered runs        Vec<DeltaRun>: sorted immutable columns the delta map
//!                    folds into when it fills, merged geometrically
//! ```
//!
//! Reads are always exact: `n_e` is the CSR count plus the pending runs
//! plus the mutable delta.  Mutations (`ingest` / `remove`) only touch the
//! columnar occurrence vector and the delta log.  When the delta map fills
//! (`run_fold_threshold` pairs) it is folded into a sorted immutable
//! [`DeltaRun`] in O(churn) — **not** into the CSR — and runs merge
//! geometrically, so the cost of absorbing pending work during heavy ingest
//! is O(recent churn · log pending), independent of the total CSR size.
//! [`QueryFragmentGraph::compact`] performs the full fold (runs + delta →
//! fresh CSR); the serving layer calls it only when a snapshot is
//! published, so the scoring hot path always runs on the compacted arrays.
//!
//! The graph supports two mutation models:
//!
//! * **batch** — [`QueryFragmentGraph::build`] over a whole [`QueryLog`], and
//! * **incremental** — [`QueryFragmentGraph::ingest`] /
//!   [`QueryFragmentGraph::remove`] for one query at a time, in
//!   `O(fragments²·log)` per query, which lets a long-running service absorb
//!   newly-logged queries (and evict old ones) without rebuilding the whole
//!   graph.  Ingesting every query of a log into an empty graph is
//!   equivalent to a batch build, and the columnar graph is observationally
//!   equivalent to the reference map-based model (both proved by property
//!   tests in `tests/qfg_properties.rs`).

use crate::config::Obscurity;
use crate::fragment::{fragments_of_query, QueryFragment};
use serde::{Deserialize, Serialize};
use sqlparse::{parse_query, Query};
use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};

/// A SQL query log: the raw material of the QFG.
///
/// Stored as a ring buffer so a serving deployment with a bounded log can
/// evict the oldest entry ([`QueryLog::pop_oldest`]) in O(1).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct QueryLog {
    queries: VecDeque<Query>,
}

impl QueryLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build a log from already-parsed queries.
    pub fn from_queries(queries: Vec<Query>) -> Self {
        QueryLog {
            queries: queries.into(),
        }
    }

    /// Build a log from SQL strings, skipping (and reporting) unparsable
    /// entries.  Real query logs contain noise; Templar only ever uses what
    /// it can parse.  The skipped count should be surfaced (the serving
    /// layer exports it as the `log_skipped_statements` metric) rather than
    /// dropped.
    pub fn from_sql<'a>(statements: impl IntoIterator<Item = &'a str>) -> (Self, usize) {
        let mut queries = VecDeque::new();
        let mut skipped = 0;
        for sql in statements {
            match parse_query(sql) {
                Ok(q) => queries.push_back(q),
                Err(_) => skipped += 1,
            }
        }
        (QueryLog { queries }, skipped)
    }

    /// Append a query to the log.
    pub fn push(&mut self, query: Query) {
        self.queries.push_back(query);
    }

    /// Remove and return the oldest logged query (O(1); used for log
    /// eviction when a long-running service bounds its log size).
    pub fn pop_oldest(&mut self) -> Option<Query> {
        self.queries.pop_front()
    }

    /// The logged queries, oldest first.
    pub fn queries(&self) -> &VecDeque<Query> {
        &self.queries
    }

    /// Number of logged queries.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// True when the log is empty.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }
}

/// A dense identifier for an interned [`QueryFragment`].
///
/// Ids are stable for as long as the fragment is live (its occurrence count
/// is positive): `ingest` / `remove` never remap a live id.  Ids of
/// fragments whose count drops to zero are recycled for fragments interned
/// later.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FragmentId(u32);

impl FragmentId {
    /// The raw index into the graph's columnar arrays.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Sentinel slot value for the gather kernels
/// ([`QueryFragmentGraph::gather_dice`] /
/// [`QueryFragmentGraph::gather_popularity`]): a fragment the log has never
/// seen (`n_v = 0`), which co-occurs with nothing and reads 0.0 everywhere.
pub const ABSENT_FRAGMENT: u32 = u32::MAX;

/// Reusable scratch buffer for [`QueryFragmentGraph::gather_dice`], so the
/// per-extension gather on the configuration-search hot path stays
/// allocation-free.
#[derive(Debug, Default)]
pub struct DiceGatherScratch {
    denominators: Vec<f64>,
}

/// The fragment ⇄ id table.
///
/// `intern` assigns the next free id (recycling released slots);
/// `get` resolves only *live* fragments — a fragment whose occurrence count
/// dropped to zero is released and no longer resolvable, exactly like the
/// old map-based graph pruned zero-count keys.
#[derive(Debug, Clone, Default)]
pub struct FragmentInterner {
    ids: HashMap<QueryFragment, FragmentId>,
    fragments: Vec<QueryFragment>,
    free: Vec<u32>,
}

impl FragmentInterner {
    /// The id of a live fragment.
    pub fn get(&self, fragment: &QueryFragment) -> Option<FragmentId> {
        self.ids.get(fragment).copied()
    }

    /// The fragment behind an id.  Meaningful only for live ids.
    pub fn resolve(&self, id: FragmentId) -> &QueryFragment {
        &self.fragments[id.index()]
    }

    /// Intern a fragment, returning its id (existing or newly assigned).
    fn intern(&mut self, fragment: &QueryFragment) -> FragmentId {
        if let Some(id) = self.ids.get(fragment) {
            return *id;
        }
        let id = match self.free.pop() {
            Some(slot) => {
                self.fragments[slot as usize] = fragment.clone();
                FragmentId(slot)
            }
            None => {
                self.fragments.push(fragment.clone());
                FragmentId((self.fragments.len() - 1) as u32)
            }
        };
        self.ids.insert(fragment.clone(), id);
        id
    }

    /// Release a dead fragment's id back to the free list.
    ///
    /// # Why recycling cannot leak stale state (audit)
    ///
    /// A slot is only released when its occurrence count reaches 0, and
    /// `n_e(c, x) ≤ n_v(c)` holds for every pair (maintained by `ingest` /
    /// `remove`), so at release time every pair touching the slot has **net
    /// count 0**.  That net 0 may be represented as "no entry anywhere" *or*
    /// as a positive CSR baseline exactly cancelled by pending negative
    /// deltas — both read as 0 and both compact to the edge's removal.  A
    /// fragment later interned into the recycled slot therefore starts from
    /// occurrence 0 (`remove` zeroed the column) and net-0 pairs, no matter
    /// how many compactions happen between the release and the re-intern;
    /// its first co-occurrence bump lands *on top of* any leftover
    /// cancelled baseline and nets to exactly 1.  The
    /// `recycled_ids_never_inherit_stale_state` property test in
    /// `tests/qfg_properties.rs` pins this under arbitrary
    /// remove → compact-interleaved → re-intern schedules.
    fn release(&mut self, id: FragmentId) {
        let removed = self.ids.remove(&self.fragments[id.index()]);
        debug_assert_eq!(
            removed,
            Some(id),
            "released a slot whose fragment was not live under that id"
        );
        debug_assert!(
            !self.free.contains(&id.0),
            "double-release of fragment id {}",
            id.0
        );
        self.free.push(id.0);
    }

    /// Size of the id space (live + recyclable slots) — the length of the
    /// columnar arrays.
    pub fn table_len(&self) -> usize {
        self.fragments.len()
    }

    /// Number of live fragments.
    pub fn live_len(&self) -> usize {
        self.ids.len()
    }

    /// Iterate over the live fragments and their ids.
    pub fn live(&self) -> impl Iterator<Item = (&QueryFragment, FragmentId)> {
        self.ids.iter().map(|(f, id)| (f, *id))
    }
}

/// Compressed-sparse-row co-occurrence adjacency.  Each unordered pair
/// `(a, b)` with `a < b` is stored once in row `a`; rows are sorted by
/// neighbor id so a pair lookup is one binary search.  `denominators[e]`
/// caches `n_v(a) + n_v(b)` as of the last compaction, so a Dice lookup on a
/// compacted graph needs no occurrence loads.
#[derive(Debug, Clone, Default)]
struct CsrAdjacency {
    offsets: Vec<u32>,
    neighbors: Vec<u32>,
    counts: Vec<u64>,
    denominators: Vec<u64>,
}

impl CsrAdjacency {
    fn empty() -> Self {
        CsrAdjacency {
            offsets: vec![0],
            neighbors: Vec::new(),
            counts: Vec::new(),
            denominators: Vec::new(),
        }
    }

    /// The flat index of edge `(lo, hi)` (`lo < hi`), if present.
    fn edge_index(&self, lo: u32, hi: u32) -> Option<usize> {
        let row = lo as usize;
        if row + 1 >= self.offsets.len() {
            return None;
        }
        let (start, end) = (self.offsets[row] as usize, self.offsets[row + 1] as usize);
        self.neighbors[start..end]
            .binary_search(&hi)
            .ok()
            .map(|i| start + i)
    }

    fn count(&self, lo: u32, hi: u32) -> u64 {
        self.edge_index(lo, hi).map(|e| self.counts[e]).unwrap_or(0)
    }
}

/// One sorted, immutable run of pending co-occurrence changes: the mutable
/// delta map folded into a flat `(lo, hi) → net change` column.  Runs are
/// stacked newest-last and merge geometrically (a run absorbs its newer
/// neighbour whenever it is less than twice its size), so at most
/// O(log(pending / fold threshold)) runs exist at any time and every
/// pending change is re-merged O(log) times before a full compaction folds
/// everything into the CSR.
#[derive(Debug, Clone, Default)]
struct DeltaRun {
    edges: Vec<((u32, u32), i64)>,
}

impl DeltaRun {
    /// The run's net change for a pair, 0 when absent (one binary search).
    fn net(&self, key: (u32, u32)) -> i64 {
        self.edges
            .binary_search_by_key(&key, |&(k, _)| k)
            .map(|i| self.edges[i].1)
            .unwrap_or(0)
    }
}

/// Merge two sorted pending-change columns, summing same-key changes and
/// dropping entries whose net cancels to zero.
fn merge_sorted(a: &[((u32, u32), i64)], b: &[((u32, u32), i64)]) -> Vec<((u32, u32), i64)> {
    let mut merged = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].0.cmp(&b[j].0) {
            std::cmp::Ordering::Less => {
                merged.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                merged.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                let net = a[i].1 + b[j].1;
                if net != 0 {
                    merged.push((a[i].0, net));
                }
                i += 1;
                j += 1;
            }
        }
    }
    merged.extend_from_slice(&a[i..]);
    merged.extend_from_slice(&b[j..]);
    merged
}

/// Once the delta map holds this many pending pairs, `ingest` folds it into
/// a sorted run (O(churn), *not* a full CSR rebuild) so the mutable map
/// stays cache-friendly and bounded while runs absorb the history.
const DELTA_RUN_FOLD: usize = 65_536;

/// The Query Fragment Graph over interned fragment ids.
#[derive(Debug, Clone)]
pub struct QueryFragmentGraph {
    obscurity: Obscurity,
    interner: FragmentInterner,
    /// `n_v`, indexed by [`FragmentId`]; 0 for released slots.
    occurrences: Vec<u64>,
    /// Number of distinct pairs with a positive net count incident to each
    /// slot, maintained by [`QueryFragmentGraph::bump_pair`].  Guards slot
    /// release: a slot whose occurrence count reaches zero while pairs still
    /// reference it (possible only through over-removal, which `remove`
    /// tolerates) has those pairs purged before the slot is recycled, so
    /// `n_e(c, x) ≤ n_v(c)` holds unconditionally and a recycled slot can
    /// never alias another fragment's leftover counts.
    pair_degree: Vec<u32>,
    /// Compacted `n_e` baseline.
    csr: CsrAdjacency,
    /// Pending `n_e` changes since the last run fold, keyed `(lo, hi)`.
    delta: BTreeMap<(u32, u32), i64>,
    /// Tiered sorted runs of pending changes not yet folded into the CSR,
    /// oldest (largest) first.
    runs: Vec<DeltaRun>,
    /// How many pending pairs the delta map may hold before it is folded
    /// into a run (tunable for tests and benchmarks; never serialized).
    run_fold_threshold: usize,
    /// Per-fragment maximum Dice coefficient over all *other* fragments,
    /// recomputed by [`QueryFragmentGraph::compact`] (exact on a compacted
    /// graph, unused otherwise — see [`QueryFragmentGraph::max_dice_by_id`]).
    /// Drives the admissible co-occurrence upper bound of the best-first
    /// configuration search.
    max_dice: Vec<f64>,
    /// True when any occurrence count changed since the last compaction
    /// (the CSR's precomputed denominators are then stale).
    occurrences_dirty: bool,
    /// Number of distinct pairs with a positive net count.
    live_edges: usize,
    /// Number of queries the graph was built from.
    query_count: usize,
    /// Number of compactions performed over this graph's lifetime
    /// (monotonic; cloned along with the graph, exported by metrics).
    compactions: u64,
    /// Number of delta-map → run folds over this graph's lifetime.
    run_folds: u64,
    /// Number of geometric run merges over this graph's lifetime.
    run_merges: u64,
}

impl QueryFragmentGraph {
    /// An empty graph at an obscurity level (the starting point for purely
    /// incremental construction).
    pub fn empty(obscurity: Obscurity) -> Self {
        QueryFragmentGraph {
            obscurity,
            interner: FragmentInterner::default(),
            occurrences: Vec::new(),
            pair_degree: Vec::new(),
            csr: CsrAdjacency::empty(),
            delta: BTreeMap::new(),
            runs: Vec::new(),
            run_fold_threshold: DELTA_RUN_FOLD,
            max_dice: Vec::new(),
            occurrences_dirty: false,
            live_edges: 0,
            query_count: 0,
            compactions: 0,
            run_folds: 0,
            run_merges: 0,
        }
    }

    /// Build the QFG of a query log at an obscurity level.  The result is
    /// compacted, so lookups run on the CSR fast path immediately.
    pub fn build(log: &QueryLog, obscurity: Obscurity) -> Self {
        let mut graph = Self::empty(obscurity);
        for query in log.queries() {
            graph.ingest(query);
        }
        graph.compact();
        graph
    }

    /// Incrementally ingest one query into the graph, updating `n_v` / `n_e`
    /// in `O(fragments²·log)` — no rebuild.
    pub fn ingest(&mut self, query: &Query) {
        self.query_count += 1;
        // A query contributes at most 1 to n_v / n_e per fragment (pair),
        // matching "the number of occurrences in L of the query fragment":
        // occurrences are counted per logged query.
        let fragments = Self::distinct_fragments(query, self.obscurity);
        let mut ids: Vec<u32> = Vec::with_capacity(fragments.len());
        for f in &fragments {
            #[cfg(debug_assertions)]
            let was_live = self.interner.get(f).is_some();
            let id = self.interner.intern(f);
            if id.index() >= self.occurrences.len() {
                self.occurrences.resize(id.index() + 1, 0);
            }
            if id.index() >= self.pair_degree.len() {
                self.pair_degree.resize(id.index() + 1, 0);
            }
            // A freshly interned fragment — whether its slot is brand new or
            // recycled — must start from a zeroed occurrence column; a
            // recycled slot inheriting the old tenant's count would inflate
            // n_v (and every Dice denominator) silently.
            #[cfg(debug_assertions)]
            if !was_live {
                debug_assert_eq!(
                    self.occurrences[id.index()],
                    0,
                    "recycled slot {} inherited a stale occurrence count",
                    id.index()
                );
            }
            self.occurrences[id.index()] += 1;
            ids.push(id.0);
        }
        self.occurrences_dirty = true;
        for i in 0..ids.len() {
            for j in (i + 1)..ids.len() {
                self.bump_pair(ids[i], ids[j], 1);
            }
        }
        if self.delta.len() >= self.run_fold_threshold {
            self.fold_delta_into_run();
        }
    }

    /// Incrementally add one query to the graph.  Alias of
    /// [`QueryFragmentGraph::ingest`], kept for the batch-construction
    /// vocabulary used by earlier callers.
    pub fn add_query(&mut self, query: &Query) {
        self.ingest(query);
    }

    /// Remove one previously-ingested query from the graph (log eviction),
    /// decrementing `n_v` / `n_e` and releasing ids whose counts reach zero
    /// so the graph's live footprint tracks the live log.
    ///
    /// Returns `false` (leaving the graph untouched) if the query's
    /// fragments are not fully present — i.e. it was never ingested at this
    /// obscurity level.
    pub fn remove(&mut self, query: &Query) -> bool {
        if self.query_count == 0 {
            return false;
        }
        let fragments = Self::distinct_fragments(query, self.obscurity);
        // Validate first so a bad call cannot corrupt the counts.
        let mut ids: Vec<u32> = Vec::with_capacity(fragments.len());
        for f in &fragments {
            match self.interner.get(f) {
                Some(id) if self.occurrences[id.index()] > 0 => ids.push(id.0),
                _ => return false,
            }
        }
        for i in 0..ids.len() {
            for j in (i + 1)..ids.len() {
                if self.pair_count(ids[i], ids[j]) == 0 {
                    return false;
                }
            }
        }
        self.query_count -= 1;
        for i in 0..ids.len() {
            for j in (i + 1)..ids.len() {
                self.bump_pair(ids[i], ids[j], -1);
            }
        }
        for &id in &ids {
            let slot = id as usize;
            self.occurrences[slot] -= 1;
            if self.occurrences[slot] == 0 {
                if self.pair_degree[slot] > 0 {
                    // Over-removal left pairs pointing at a dying fragment;
                    // zero them so the released slot carries no state.
                    self.purge_incident_pairs(id);
                }
                self.interner.release(FragmentId(id));
            }
        }
        self.occurrences_dirty = true;
        true
    }

    /// The pending runs' total net change for a pair (one binary search per
    /// run; at most O(log pending) runs exist).
    fn runs_net(&self, key: (u32, u32)) -> i64 {
        self.runs.iter().map(|run| run.net(key)).sum()
    }

    /// Current net count of an unordered id pair.
    fn pair_count(&self, a: u32, b: u32) -> u64 {
        if a == b {
            return self.occurrences[a as usize];
        }
        let key = if a < b { (a, b) } else { (b, a) };
        let base = self.csr.count(key.0, key.1) as i64 + self.runs_net(key);
        let net = base + self.delta.get(&key).copied().unwrap_or(0);
        debug_assert!(net >= 0, "pair count must never go negative");
        net.max(0) as u64
    }

    /// Apply a +1/−1 co-occurrence change to a pair, maintaining the live
    /// edge counter.
    fn bump_pair(&mut self, a: u32, b: u32, change: i64) {
        let key = if a < b { (a, b) } else { (b, a) };
        let base = self.csr.count(key.0, key.1) as i64 + self.runs_net(key);
        let entry = self.delta.entry(key).or_insert(0);
        let before = base + *entry;
        *entry += change;
        let after = before + change;
        if *entry == 0 {
            // The delta cancelled out; drop the entry so compaction and the
            // auto-compact threshold only see real pending work.
            self.delta.remove(&key);
        }
        if before == 0 && after > 0 {
            self.live_edges += 1;
            self.pair_degree[key.0 as usize] += 1;
            self.pair_degree[key.1 as usize] += 1;
        } else if before > 0 && after == 0 {
            self.live_edges -= 1;
            self.pair_degree[key.0 as usize] -= 1;
            self.pair_degree[key.1 as usize] -= 1;
        }
    }

    /// Drive every pair incident to a slot down to net zero.
    ///
    /// Called only when a slot's occurrence count reaches zero while its
    /// pair degree is still positive — a state reachable exclusively through
    /// over-removal (removing a query more times than it was ingested, which
    /// `remove` tolerates because it validates fragment presence, not
    /// multiset membership).  A legal removal always arrives here with
    /// degree 0: `n_v(c) = 1` means exactly one live query contains `c`, so
    /// that query's own pair decrements zeroed every incident pair already.
    /// Purging before release keeps the recycling audit honest — a released
    /// slot leaves no positive pair behind, so a later tenant of the slot
    /// (or the same fragment re-interned elsewhere) can never split or
    /// inherit counts.  The scan is O(edges) but sits on this abuse-only
    /// path, never on legal eviction.
    fn purge_incident_pairs(&mut self, slot: u32) {
        let stale: Vec<(u32, u32, u64)> = self
            .net_edges()
            .into_iter()
            .filter(|&(lo, hi, _)| lo == slot || hi == slot)
            .collect();
        for (lo, hi, count) in stale {
            self.bump_pair(lo, hi, -(count as i64));
        }
        debug_assert_eq!(
            self.pair_degree[slot as usize], 0,
            "slot {slot} still entangled after an incident-pair purge"
        );
    }

    /// Fold the mutable delta map into a new immutable sorted run, then
    /// merge runs geometrically so the stack stays O(log pending) deep.
    ///
    /// This is the cheap tier of compaction: O(|delta|) to drain the map
    /// (already key-sorted) plus the amortized-O(log) geometric merges —
    /// no CSR rebuild, no occurrence scan.  `ingest` calls it automatically
    /// when the delta map reaches the fold threshold, so absorbing a burst
    /// of pending work costs O(recent churn), not O(total pending) and not
    /// O(CSR).  The full fold into the CSR is deferred to
    /// [`QueryFragmentGraph::compact`].
    pub fn fold_delta_into_run(&mut self) {
        if self.delta.is_empty() {
            return;
        }
        let edges: Vec<((u32, u32), i64)> = std::mem::take(&mut self.delta).into_iter().collect();
        self.runs.push(DeltaRun { edges });
        self.run_folds += 1;
        // Geometric invariant: every run is at least twice the size of the
        // run stacked on top of it.  Restoring it after a push merges the
        // newest runs pairwise, so a pending pair is re-copied only
        // O(log(pending / threshold)) times across its lifetime.
        while self.runs.len() >= 2 {
            let n = self.runs.len();
            if self.runs[n - 2].edges.len() >= 2 * self.runs[n - 1].edges.len() {
                break;
            }
            let newer = self.runs.pop().expect("len checked");
            let older = self.runs.pop().expect("len checked");
            self.runs.push(DeltaRun {
                edges: merge_sorted(&older.edges, &newer.edges),
            });
            self.run_merges += 1;
        }
    }

    /// All pending changes — every tiered run plus the mutable delta map —
    /// merged into one sorted `(key, net change)` column, zero nets dropped.
    fn pending_net(&self) -> Vec<((u32, u32), i64)> {
        let mut merged: Vec<((u32, u32), i64)> = Vec::new();
        for run in &self.runs {
            merged = if merged.is_empty() {
                run.edges.clone()
            } else {
                merge_sorted(&merged, &run.edges)
            };
        }
        if !self.delta.is_empty() {
            let delta: Vec<((u32, u32), i64)> = self.delta.iter().map(|(&k, &v)| (k, v)).collect();
            merged = if merged.is_empty() {
                delta
            } else {
                merge_sorted(&merged, &delta)
            };
        }
        merged
    }

    /// Fold the tiered runs and the delta log into a fresh CSR and
    /// recompute the precomputed Dice denominators.  Idempotent; ids are
    /// never remapped.  The serving layer calls this on every snapshot
    /// publish (`Templar::from_parts` compacts the graph it receives), so
    /// the translation hot path always reads compacted arrays.
    pub fn compact(&mut self) {
        if self.is_compacted() {
            return;
        }
        let n = self.interner.table_len();
        let merged = self.net_edges();
        let mut offsets = vec![0u32; n + 1];
        for &(lo, _, _) in &merged {
            offsets[lo as usize + 1] += 1;
        }
        for i in 1..offsets.len() {
            offsets[i] += offsets[i - 1];
        }
        let mut neighbors = Vec::with_capacity(merged.len());
        let mut counts = Vec::with_capacity(merged.len());
        let mut denominators = Vec::with_capacity(merged.len());
        // Rebuild the per-fragment max-Dice column in the same pass: every
        // positive pair is visited exactly once, and the Dice value is
        // computed with the same expression the compacted fast path of
        // [`QueryFragmentGraph::dice_by_id`] uses, so the column is exact
        // (bit-for-bit) for every pair lookup that follows.
        let mut max_dice = vec![0.0f64; n];
        let mut pair_degree = vec![0u32; n];
        for &(lo, hi, count) in &merged {
            neighbors.push(hi);
            counts.push(count);
            pair_degree[lo as usize] += 1;
            pair_degree[hi as usize] += 1;
            let denominator = self.occurrences[lo as usize] + self.occurrences[hi as usize];
            denominators.push(denominator);
            // Only pairs of *live* fragments enter the column: removing a
            // query more times than it was ingested (tolerated — `remove`
            // validates fragment presence, not multiset membership) can
            // leave a positive pair count on a released slot, and such a
            // pair is unreachable through any live-id lookup.
            if self.occurrences[lo as usize] > 0 && self.occurrences[hi as usize] > 0 {
                let dice = (2.0 * count as f64) / (denominator as f64);
                if dice > max_dice[lo as usize] {
                    max_dice[lo as usize] = dice;
                }
                if dice > max_dice[hi as usize] {
                    max_dice[hi as usize] = dice;
                }
            }
        }
        self.max_dice = max_dice;
        self.pair_degree = pair_degree;
        self.live_edges = merged.len();
        self.csr = CsrAdjacency {
            offsets,
            neighbors,
            counts,
            denominators,
        };
        self.delta.clear();
        self.runs.clear();
        self.occurrences_dirty = false;
        self.compactions += 1;
    }

    /// True when no pending work exists anywhere — delta map or tiered runs
    /// — and the CSR (including its precomputed denominators) reflects the
    /// current counts.
    pub fn is_compacted(&self) -> bool {
        self.delta.is_empty()
            && self.runs.is_empty()
            && !self.occurrences_dirty
            && self.csr.offsets.len() == self.interner.table_len() + 1
    }

    /// True when reads may take the precomputed CSR fast paths: no pending
    /// change anywhere (map or runs) and fresh denominators.
    fn fast_path(&self) -> bool {
        self.delta.is_empty() && self.runs.is_empty() && !self.occurrences_dirty
    }

    /// All pairs with a positive net count, sorted by `(lo, hi)`:
    /// the CSR baseline merged with all pending changes (runs + delta).
    fn net_edges(&self) -> Vec<(u32, u32, u64)> {
        let pending_entries = self.pending_net();
        let mut merged = Vec::with_capacity(self.csr.counts.len() + pending_entries.len());
        let mut pending = pending_entries.iter().peekable();
        let rows = self.csr.offsets.len().saturating_sub(1);
        for lo in 0..rows as u32 {
            let (start, end) = (
                self.csr.offsets[lo as usize] as usize,
                self.csr.offsets[lo as usize + 1] as usize,
            );
            for e in start..end {
                let hi = self.csr.neighbors[e];
                // Pending-only pairs that sort before this CSR edge are new.
                while let Some(&&(key, change)) = pending.peek() {
                    if key < (lo, hi) {
                        if change > 0 {
                            merged.push((key.0, key.1, change as u64));
                        }
                        pending.next();
                    } else {
                        break;
                    }
                }
                let mut net = self.csr.counts[e] as i64;
                if let Some(&&(key, change)) = pending.peek() {
                    if key == (lo, hi) {
                        net += change;
                        pending.next();
                    }
                }
                if net > 0 {
                    merged.push((lo, hi, net as u64));
                }
            }
        }
        for &(key, change) in pending {
            if change > 0 {
                merged.push((key.0, key.1, change as u64));
            }
        }
        merged
    }

    /// The distinct fragments of one query at an obscurity level, ordered.
    fn distinct_fragments(query: &Query, obscurity: Obscurity) -> BTreeSet<QueryFragment> {
        fragments_of_query(query, obscurity).into_iter().collect()
    }

    /// The obscurity level the graph was built at.
    pub fn obscurity(&self) -> Obscurity {
        self.obscurity
    }

    /// Number of distinct live fragments (vertices).
    pub fn fragment_count(&self) -> usize {
        self.interner.live_len()
    }

    /// Number of distinct co-occurring pairs with a positive count (edges).
    pub fn edge_count(&self) -> usize {
        self.live_edges
    }

    /// Number of queries the graph was built from.
    pub fn query_count(&self) -> usize {
        self.query_count
    }

    /// The interner (for callers that resolve fragments to ids once and
    /// score over ids afterwards).
    pub fn interner(&self) -> &FragmentInterner {
        &self.interner
    }

    /// The id of a live fragment, for id-based scoring.
    pub fn lookup(&self, fragment: &QueryFragment) -> Option<FragmentId> {
        self.interner.get(fragment)
    }

    /// The id of a relation's `FROM` fragment.
    pub fn lookup_relation(&self, relation: &str) -> Option<FragmentId> {
        self.lookup(&QueryFragment::relation(relation))
    }

    /// Size of the interner table (live + recyclable slots) — the length of
    /// the columnar arrays, exported by serving metrics.
    pub fn interned_len(&self) -> usize {
        self.interner.table_len()
    }

    /// Number of edges resident in the compacted CSR baseline.
    pub fn csr_edge_len(&self) -> usize {
        self.csr.counts.len()
    }

    /// Number of pending pairs across the mutable delta map and every
    /// tiered run (everything a full compaction would fold into the CSR).
    pub fn pending_delta_len(&self) -> usize {
        self.delta.len() + self.runs.iter().map(|r| r.edges.len()).sum::<usize>()
    }

    /// Number of tiered delta runs currently stacked (O(log pending) by the
    /// geometric merge invariant); exported by serving metrics.
    pub fn delta_run_len(&self) -> usize {
        self.runs.len()
    }

    /// Number of delta-map → run folds over this graph's lifetime.
    pub fn run_folds(&self) -> u64 {
        self.run_folds
    }

    /// Number of geometric run merges over this graph's lifetime.
    pub fn run_merges(&self) -> u64 {
        self.run_merges
    }

    /// Override the delta-map fold threshold (clamped to at least 1).  The
    /// default suits serving; tests and benchmarks lower it to exercise the
    /// tiered machinery without multi-million-pair logs.
    pub fn set_run_fold_threshold(&mut self, pairs: usize) {
        self.run_fold_threshold = pairs.max(1);
    }

    /// Number of compactions performed over this graph's lifetime.
    pub fn compactions(&self) -> u64 {
        self.compactions
    }

    /// `n_v(c)`: occurrence count of a fragment.
    pub fn occurrences(&self, fragment: &QueryFragment) -> u64 {
        self.interner
            .get(fragment)
            .map(|id| self.occurrences[id.index()])
            .unwrap_or(0)
    }

    /// `n_v` by id — one array load.
    pub fn occurrences_by_id(&self, id: FragmentId) -> u64 {
        self.occurrences[id.index()]
    }

    /// `n_e(c1, c2)`: co-occurrence count of a fragment pair.
    pub fn co_occurrences(&self, a: &QueryFragment, b: &QueryFragment) -> u64 {
        if a == b {
            return self.occurrences(a);
        }
        match (self.interner.get(a), self.interner.get(b)) {
            (Some(x), Some(y)) => self.co_occurrences_by_id(x, y),
            _ => 0,
        }
    }

    /// `n_e` by id pair.
    pub fn co_occurrences_by_id(&self, a: FragmentId, b: FragmentId) -> u64 {
        self.pair_count(a.0, b.0)
    }

    /// The Dice coefficient of two fragments, in `[0, 1]`.
    pub fn dice(&self, a: &QueryFragment, b: &QueryFragment) -> f64 {
        match (self.interner.get(a), self.interner.get(b)) {
            (Some(x), Some(y)) => self.dice_by_id(x, y),
            // A fragment the log never saw has n_v = 0 and co-occurs with
            // nothing, so every Dice involving it is 0.
            _ => 0.0,
        }
    }

    /// The Dice coefficient by id pair.  On a compacted graph this is one
    /// binary search plus one division against the precomputed denominator;
    /// occurrence counts are not touched at all.
    pub fn dice_by_id(&self, a: FragmentId, b: FragmentId) -> f64 {
        if a == b {
            // Dice(c, c) = 2·n_v / (n_v + n_v) = 1 for any live fragment.
            return if self.occurrences[a.index()] > 0 {
                1.0
            } else {
                0.0
            };
        }
        let (lo, hi) = if a.0 < b.0 { (a.0, b.0) } else { (b.0, a.0) };
        if self.fast_path() {
            return match self.csr.edge_index(lo, hi) {
                Some(e) => (2.0 * self.csr.counts[e] as f64) / (self.csr.denominators[e] as f64),
                None => 0.0,
            };
        }
        let na = self.occurrences[lo as usize];
        let nb = self.occurrences[hi as usize];
        if na + nb == 0 {
            return 0.0;
        }
        let ne = self.pair_count(lo, hi);
        (2.0 * ne as f64) / ((na + nb) as f64)
    }

    /// An upper bound on `max over all other fragments x of Dice(id, x)`.
    ///
    /// On a compacted graph this is **exact**: the column is rebuilt by
    /// [`QueryFragmentGraph::compact`] from the same arithmetic the pair
    /// lookup uses, so for every live partner `x ≠ id`,
    /// `dice_by_id(id, x) ≤ max_dice_by_id(id)` holds bit-for-bit.  On a
    /// graph with pending deltas the column may be stale in either
    /// direction, so the trivially admissible bound `1.0` is returned
    /// instead — callers on the scoring hot path always see a compacted
    /// graph (`Templar::from_parts` compacts on snapshot construction).
    ///
    /// A fragment with no co-occurring partner has `max_dice = 0.0` (Dice
    /// with every other fragment is 0), and a released slot reads `0.0`
    /// until it is re-interned and recompacted.
    ///
    /// Like [`QueryFragmentGraph::dice_by_id`], the value can exceed `1.0`
    /// in the degenerate states produced by removing a query more times
    /// than it was ingested; consumers that need a probability-like bound
    /// should clamp (the configuration search's smoothed pair factor caps
    /// at 1, so both the exact column and the fallback stay admissible).
    pub fn max_dice_by_id(&self, id: FragmentId) -> f64 {
        if self.fast_path() && id.index() < self.max_dice.len() {
            self.max_dice[id.index()]
        } else {
            1.0
        }
    }

    /// Gather `Dice(candidate, priors[i])` into `out[i]` for a batch of
    /// prior fragment slots — the columnar counterpart of calling
    /// [`QueryFragmentGraph::dice_by_id`] once per pair.
    ///
    /// On a compacted graph the gather phase resolves every pair to an
    /// integer `(numerator, denominator)` — one CSR binary search each —
    /// and the arithmetic then runs as one flat multiply/divide sweep over
    /// contiguous slices that LLVM can autovectorize.  Each lane evaluates
    /// the same expression the scalar lookup does (`2·n_e / (n_v(a) +
    /// n_v(b))`; missing pairs read `(0, 1)`, live self-pairs `(1, 2)`), so
    /// every gathered value is bit-for-bit the `dice_by_id` result.  With
    /// pending deltas the per-pair slow path is used instead — same values,
    /// no sweep.
    ///
    /// `priors` entries equal to [`ABSENT_FRAGMENT`] denote fragments the
    /// log has never seen; they read 0.0.
    pub fn gather_dice(
        &self,
        candidate: FragmentId,
        priors: &[u32],
        scratch: &mut DiceGatherScratch,
        out: &mut Vec<f64>,
    ) {
        out.clear();
        if priors.is_empty() {
            return;
        }
        if !self.fast_path() {
            out.extend(priors.iter().map(|&p| {
                if p == ABSENT_FRAGMENT {
                    0.0
                } else {
                    self.dice_by_id(candidate, FragmentId(p))
                }
            }));
            return;
        }
        let c = candidate.0;
        let den = &mut scratch.denominators;
        den.clear();
        den.reserve(priors.len());
        out.reserve(priors.len());
        for &p in priors {
            let (numerator, denominator) = if p == ABSENT_FRAGMENT {
                (0.0, 1.0)
            } else if p == c {
                if self.occurrences[c as usize] > 0 {
                    (1.0, 2.0)
                } else {
                    (0.0, 1.0)
                }
            } else {
                let (lo, hi) = if c < p { (c, p) } else { (p, c) };
                match self.csr.edge_index(lo, hi) {
                    Some(e) => (self.csr.counts[e] as f64, self.csr.denominators[e] as f64),
                    None => (0.0, 1.0),
                }
            };
            out.push(numerator);
            den.push(denominator);
        }
        for (value, &denominator) in out.iter_mut().zip(den.iter()) {
            *value = (2.0 * *value) / denominator;
        }
    }

    /// Gather `n_v(ids[i]) / |L|` into `out[i]` — the normalised
    /// log-popularity of a batch of fragment slots, as one contiguous
    /// occurrence gather followed by one divide sweep.  [`ABSENT_FRAGMENT`]
    /// entries read 0.0; each lane matches the scalar
    /// `occurrences_by_id(id) as f64 / query_count().max(1) as f64`
    /// bit-for-bit.
    pub fn gather_popularity(&self, ids: &[u32], out: &mut Vec<f64>) {
        let total = self.query_count.max(1) as f64;
        out.clear();
        out.extend(ids.iter().map(|&id| {
            if id == ABSENT_FRAGMENT {
                0.0
            } else {
                self.occurrences[id as usize] as f64
            }
        }));
        for value in out.iter_mut() {
            *value /= total;
        }
    }

    /// The Dice coefficient between two relations' `FROM` fragments, used by
    /// the log-driven join edge weight `w_L = 1 − Dice`.
    pub fn relation_dice(&self, a: &str, b: &str) -> f64 {
        self.dice(&QueryFragment::relation(a), &QueryFragment::relation(b))
    }

    /// The most frequent fragments (for inspection and examples).
    pub fn top_fragments(&self, n: usize) -> Vec<(QueryFragment, u64)> {
        let mut all: Vec<(QueryFragment, u64)> =
            self.fragments().map(|(f, c)| (f.clone(), c)).collect();
        all.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        all.truncate(n);
        all
    }

    /// Iterate over all live fragments and their occurrence counts.
    pub fn fragments(&self) -> impl Iterator<Item = (&QueryFragment, u64)> {
        self.interner
            .live()
            .map(|(f, id)| (f, self.occurrences[id.index()]))
    }

    /// Iterate over all co-occurring fragment pairs and their counts
    /// (canonical id order; used by observational equality, snapshot
    /// tooling and inspection).
    pub fn co_occurrence_entries(&self) -> Vec<(&QueryFragment, &QueryFragment, u64)> {
        self.net_edges()
            .into_iter()
            .map(|(lo, hi, count)| {
                (
                    self.interner.resolve(FragmentId(lo)),
                    self.interner.resolve(FragmentId(hi)),
                    count,
                )
            })
            .collect()
    }
}

/// Equality is *observational*: two graphs are equal when they were built at
/// the same obscurity from the same number of queries and agree on every
/// occurrence and co-occurrence count — regardless of id assignment order,
/// free-list state or compaction progress.  (A shuffled incremental build
/// interns fragments in a different order than a batch build; both must
/// compare equal.)
impl PartialEq for QueryFragmentGraph {
    fn eq(&self, other: &Self) -> bool {
        self.obscurity == other.obscurity
            && self.query_count == other.query_count
            && self.fragment_count() == other.fragment_count()
            && self.edge_count() == other.edge_count()
            && self.fragments().all(|(f, c)| other.occurrences(f) == c)
            && self
                .co_occurrence_entries()
                .iter()
                .all(|(a, b, c)| other.co_occurrences(a, b) == *c)
    }
}

/// Snapshot format v2 body: the interner table plus the columnar arrays,
/// densified to live ids (dead slots are an in-process artifact of id
/// stability and are dropped on the wire).
#[derive(Serialize, Deserialize)]
struct ColumnarQfg {
    obscurity: Obscurity,
    query_count: u64,
    fragments: Vec<QueryFragment>,
    occurrences: Vec<u64>,
    offsets: Vec<u32>,
    neighbors: Vec<u32>,
    counts: Vec<u64>,
}

impl Serialize for QueryFragmentGraph {
    fn to_value(&self) -> serde::Value {
        // Serialize a compacted, densified view; `to_value` takes `&self`,
        // so an uncompacted graph is compacted on a clone.
        let owned;
        let graph = if self.is_compacted() {
            self
        } else {
            let mut c = self.clone();
            c.compact();
            owned = c;
            &owned
        };
        let table = graph.interner.table_len();
        let mut remap: Vec<u32> = vec![u32::MAX; table];
        let mut fragments = Vec::with_capacity(graph.fragment_count());
        let mut occurrences = Vec::with_capacity(graph.fragment_count());
        for (slot, entry) in remap.iter_mut().enumerate() {
            if graph.occurrences[slot] > 0 {
                *entry = fragments.len() as u32;
                fragments.push(graph.interner.fragments[slot].clone());
                occurrences.push(graph.occurrences[slot]);
            }
        }
        // The remap is monotone over live slots, so row order and in-row
        // neighbor order survive unchanged.
        let n = fragments.len();
        let mut offsets = vec![0u32; n + 1];
        let mut neighbors = Vec::with_capacity(graph.csr.neighbors.len());
        let mut counts = Vec::with_capacity(graph.csr.counts.len());
        for lo in 0..table {
            let new_lo = remap[lo];
            let (start, end) = (
                graph.csr.offsets[lo] as usize,
                graph.csr.offsets[lo + 1] as usize,
            );
            for e in start..end {
                debug_assert!(new_lo != u32::MAX, "CSR edge touching a dead slot");
                neighbors.push(remap[graph.csr.neighbors[e] as usize]);
                counts.push(graph.csr.counts[e]);
                offsets[new_lo as usize + 1] += 1;
            }
        }
        for i in 1..offsets.len() {
            offsets[i] += offsets[i - 1];
        }
        ColumnarQfg {
            obscurity: graph.obscurity,
            query_count: graph.query_count as u64,
            fragments,
            occurrences,
            offsets,
            neighbors,
            counts,
        }
        .to_value()
    }
}

impl Deserialize for QueryFragmentGraph {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let columnar = ColumnarQfg::from_value(value)?;
        QueryFragmentGraph::from_columnar(columnar).map_err(serde::Error::new)
    }
}

impl QueryFragmentGraph {
    /// Validate and adopt a deserialized columnar body.  Every structural
    /// invariant is checked so a corrupted or truncated snapshot surfaces as
    /// a typed error instead of panics or silently wrong scores.
    fn from_columnar(c: ColumnarQfg) -> Result<Self, String> {
        let n = c.fragments.len();
        if c.occurrences.len() != n {
            return Err(format!(
                "occurrence column length {} does not match {} fragments",
                c.occurrences.len(),
                n
            ));
        }
        if c.occurrences.contains(&0) {
            return Err("serialized graph contains a zero-occurrence fragment".to_string());
        }
        if c.offsets.len() != n + 1 || c.offsets.first() != Some(&0) {
            return Err(format!(
                "CSR offsets length {} does not match {} fragments",
                c.offsets.len(),
                n
            ));
        }
        if c.offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err("CSR offsets are not monotone".to_string());
        }
        let edges = *c.offsets.last().unwrap() as usize;
        if c.neighbors.len() != edges || c.counts.len() != edges {
            return Err(format!(
                "truncated CSR: offsets expect {} edges, found {} neighbors / {} counts",
                edges,
                c.neighbors.len(),
                c.counts.len()
            ));
        }
        let mut ids: HashMap<QueryFragment, FragmentId> = HashMap::with_capacity(n);
        for (slot, fragment) in c.fragments.iter().enumerate() {
            if ids
                .insert(fragment.clone(), FragmentId(slot as u32))
                .is_some()
            {
                return Err(format!("duplicate interned fragment {fragment}"));
            }
        }
        let mut denominators = Vec::with_capacity(edges);
        let mut max_dice = vec![0.0f64; n];
        let mut pair_degree = vec![0u32; n];
        for lo in 0..n {
            let (start, end) = (c.offsets[lo] as usize, c.offsets[lo + 1] as usize);
            let mut prev: Option<u32> = None;
            for e in start..end {
                let hi = c.neighbors[e];
                if (hi as usize) >= n || hi <= lo as u32 {
                    return Err(format!("CSR neighbor {hi} out of range for row {lo}"));
                }
                if prev.is_some_and(|p| p >= hi) {
                    return Err(format!("CSR row {lo} neighbors are not strictly sorted"));
                }
                prev = Some(hi);
                pair_degree[lo] += 1;
                pair_degree[hi as usize] += 1;
                let count = c.counts[e];
                if count == 0 || count > c.occurrences[lo].min(c.occurrences[hi as usize]) {
                    return Err(format!(
                        "co-occurrence count {count} of pair ({lo}, {hi}) is inconsistent \
                         with its occurrence counts"
                    ));
                }
                let denominator = c.occurrences[lo] + c.occurrences[hi as usize];
                denominators.push(denominator);
                let dice = (2.0 * count as f64) / (denominator as f64);
                if dice > max_dice[lo] {
                    max_dice[lo] = dice;
                }
                if dice > max_dice[hi as usize] {
                    max_dice[hi as usize] = dice;
                }
            }
        }
        Ok(QueryFragmentGraph {
            obscurity: c.obscurity,
            interner: FragmentInterner {
                ids,
                fragments: c.fragments,
                free: Vec::new(),
            },
            occurrences: c.occurrences,
            pair_degree,
            live_edges: edges,
            csr: CsrAdjacency {
                offsets: c.offsets,
                neighbors: c.neighbors,
                counts: c.counts,
                denominators,
            },
            delta: BTreeMap::new(),
            runs: Vec::new(),
            run_fold_threshold: DELTA_RUN_FOLD,
            max_dice,
            occurrences_dirty: false,
            query_count: c.query_count as usize,
            compactions: 0,
            run_folds: 0,
            run_merges: 0,
        })
    }
}

// ---------------------------------------------------------------------------
// Sectioned serialization (snapshot format v3)
// ---------------------------------------------------------------------------
//
// The v2 body (`to_value`) compacts a *clone* of the graph and densifies it
// to live ids — a second full copy of the whole state in memory at write
// time.  The v3 snapshot instead serializes the graph **as-is**, one
// independent section at a time (interner table, occurrence column, CSR
// adjacency, pending delta runs), so a streaming writer holds at most one
// section and no clone, and pending work survives a snapshot without a
// forced full compaction.  Dead (recyclable) interner slots are written as
// `null` so raw slot ids in the CSR and the runs stay valid verbatim.

impl QueryFragmentGraph {
    fn slot_live(&self, slot: usize) -> bool {
        self.occurrences.get(slot).copied().unwrap_or(0) > 0
    }

    /// Section `qfg/fragments`: the full interner table in slot order, dead
    /// slots as `null`.
    pub fn fragments_section(&self) -> serde::Value {
        serde::Value::Seq(
            (0..self.interner.table_len())
                .map(|slot| {
                    if self.slot_live(slot) {
                        self.interner.fragments[slot].to_value()
                    } else {
                        serde::Value::Null
                    }
                })
                .collect(),
        )
    }

    /// Section `qfg/occurrences`: the raw `n_v` column in slot order
    /// (0 for dead slots).
    pub fn occurrences_section(&self) -> serde::Value {
        serde::Value::Seq(
            (0..self.interner.table_len())
                .map(|slot| serde::Value::U64(self.occurrences.get(slot).copied().unwrap_or(0)))
                .collect(),
        )
    }

    /// Section `qfg/adjacency`: the compacted CSR baseline over raw slot
    /// ids.  Denominators and the max-Dice column are derived at load time.
    pub fn adjacency_section(&self) -> serde::Value {
        let seq_u32 = |xs: &[u32]| {
            serde::Value::Seq(xs.iter().map(|&x| serde::Value::U64(x as u64)).collect())
        };
        let seq_u64 =
            |xs: &[u64]| serde::Value::Seq(xs.iter().map(|&x| serde::Value::U64(x)).collect());
        serde::Value::Map(vec![
            ("offsets".to_string(), seq_u32(&self.csr.offsets)),
            ("neighbors".to_string(), seq_u32(&self.csr.neighbors)),
            ("counts".to_string(), seq_u64(&self.csr.counts)),
        ])
    }

    /// Section `qfg/runs`: every pending tiered run, oldest first, with the
    /// mutable delta map appended as one final run — so a snapshot needs no
    /// full compaction before it is written.  Each entry is
    /// `[lo, hi, net change]`.
    pub fn runs_section(&self) -> serde::Value {
        let run_value = |edges: &mut dyn Iterator<Item = ((u32, u32), i64)>| {
            serde::Value::Seq(
                edges
                    .map(|((lo, hi), change)| {
                        serde::Value::Seq(vec![
                            serde::Value::U64(lo as u64),
                            serde::Value::U64(hi as u64),
                            serde::Value::I64(change),
                        ])
                    })
                    .collect(),
            )
        };
        let mut runs: Vec<serde::Value> = self
            .runs
            .iter()
            .map(|run| run_value(&mut run.edges.iter().copied()))
            .collect();
        if !self.delta.is_empty() {
            runs.push(run_value(&mut self.delta.iter().map(|(&k, &v)| (k, v))));
        }
        serde::Value::Seq(runs)
    }

    /// Rebuild a graph from its v3 sections, validating every structural
    /// invariant so a corrupted section surfaces as a typed error.  The
    /// result is observationally identical to the graph that was written:
    /// raw slot ids, dead slots and pending runs are restored verbatim.
    pub fn from_sections(
        obscurity: Obscurity,
        query_count: u64,
        fragments: &serde::Value,
        occurrences: &serde::Value,
        adjacency: &serde::Value,
        runs: &serde::Value,
    ) -> Result<Self, String> {
        let fragment_slots = fragments
            .as_seq()
            .ok_or("fragments section is not a sequence")?;
        let n = fragment_slots.len();
        let mut table: Vec<QueryFragment> = Vec::with_capacity(n);
        let mut ids: HashMap<QueryFragment, FragmentId> = HashMap::new();
        let mut free: Vec<u32> = Vec::new();
        for (slot, value) in fragment_slots.iter().enumerate() {
            if matches!(value, serde::Value::Null) {
                // Dead slot: keep a placeholder fragment that can never be
                // interned (contexts are never empty-expr), mirroring the
                // in-memory state where a released slot's fragment is
                // unreachable through the id map.
                table.push(QueryFragment {
                    expr: String::new(),
                    context: crate::fragment::QueryContext::Select,
                });
                free.push(slot as u32);
            } else {
                let fragment = QueryFragment::from_value(value)
                    .map_err(|e| format!("fragment slot {slot}: {e}"))?;
                if ids
                    .insert(fragment.clone(), FragmentId(slot as u32))
                    .is_some()
                {
                    return Err(format!("duplicate interned fragment {fragment}"));
                }
                table.push(fragment);
            }
        }
        let occurrence_values = occurrences
            .as_seq()
            .ok_or("occurrences section is not a sequence")?;
        if occurrence_values.len() != n {
            return Err(format!(
                "occurrence column length {} does not match {} fragment slots",
                occurrence_values.len(),
                n
            ));
        }
        let mut occ: Vec<u64> = Vec::with_capacity(n);
        for (slot, value) in occurrence_values.iter().enumerate() {
            let count = value
                .as_u64()
                .ok_or_else(|| format!("occurrence {slot} is not an unsigned integer"))?;
            let live = !matches!(fragment_slots[slot], serde::Value::Null);
            if live && count == 0 {
                return Err(format!("live fragment slot {slot} has zero occurrences"));
            }
            if !live && count != 0 {
                return Err(format!("dead fragment slot {slot} has nonzero occurrences"));
            }
            occ.push(count);
        }
        let adjacency_fields = adjacency.as_map().ok_or("adjacency section is not a map")?;
        let u32_column = |name: &str| -> Result<Vec<u32>, String> {
            let column = adjacency_fields
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| format!("adjacency section is missing `{name}`"))?
                .as_seq()
                .ok_or_else(|| format!("adjacency `{name}` is not a sequence"))?;
            column
                .iter()
                .map(|v| {
                    v.as_u64()
                        .and_then(|x| u32::try_from(x).ok())
                        .ok_or_else(|| format!("adjacency `{name}` holds a non-u32 entry"))
                })
                .collect()
        };
        let offsets = u32_column("offsets")?;
        let neighbors = u32_column("neighbors")?;
        let counts: Vec<u64> = {
            let column = adjacency_fields
                .iter()
                .find(|(k, _)| k == "counts")
                .map(|(_, v)| v)
                .ok_or("adjacency section is missing `counts`")?
                .as_seq()
                .ok_or("adjacency `counts` is not a sequence")?;
            column
                .iter()
                .map(|v| v.as_u64().ok_or("adjacency `counts` holds a non-u64 entry"))
                .collect::<Result<_, _>>()?
        };
        // Fragments interned since the last compact have no CSR row yet, so
        // the offsets column may cover fewer rows than the table has slots —
        // never more.
        if offsets.len() > n + 1 || offsets.first() != Some(&0) {
            return Err(format!(
                "CSR offsets length {} does not match {} fragment slots",
                offsets.len(),
                n
            ));
        }
        if offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err("CSR offsets are not monotone".to_string());
        }
        let edges = *offsets.last().unwrap() as usize;
        if neighbors.len() != edges || counts.len() != edges {
            return Err(format!(
                "truncated CSR: offsets expect {} edges, found {} neighbors / {} counts",
                edges,
                neighbors.len(),
                counts.len()
            ));
        }
        let mut denominators = Vec::with_capacity(edges);
        let mut max_dice = vec![0.0f64; n];
        for lo in 0..offsets.len().saturating_sub(1) {
            let (start, end) = (offsets[lo] as usize, offsets[lo + 1] as usize);
            let mut prev: Option<u32> = None;
            for e in start..end {
                let hi = neighbors[e];
                if (hi as usize) >= n || hi <= lo as u32 {
                    return Err(format!("CSR neighbor {hi} out of range for row {lo}"));
                }
                if prev.is_some_and(|p| p >= hi) {
                    return Err(format!("CSR row {lo} neighbors are not strictly sorted"));
                }
                prev = Some(hi);
                if counts[e] == 0 {
                    return Err(format!("CSR pair ({lo}, {hi}) has a zero baseline count"));
                }
                let denominator = occ[lo] + occ[hi as usize];
                denominators.push(denominator);
                if occ[lo] > 0 && occ[hi as usize] > 0 {
                    let dice = (2.0 * counts[e] as f64) / (denominator as f64);
                    if dice > max_dice[lo] {
                        max_dice[lo] = dice;
                    }
                    if dice > max_dice[hi as usize] {
                        max_dice[hi as usize] = dice;
                    }
                }
            }
        }
        let run_values = runs.as_seq().ok_or("runs section is not a sequence")?;
        let mut parsed_runs: Vec<DeltaRun> = Vec::with_capacity(run_values.len());
        for (r, run_value) in run_values.iter().enumerate() {
            let entries = run_value
                .as_seq()
                .ok_or_else(|| format!("delta run {r} is not a sequence"))?;
            let mut run_edges: Vec<((u32, u32), i64)> = Vec::with_capacity(entries.len());
            let mut prev: Option<(u32, u32)> = None;
            for entry in entries {
                let triple = entry
                    .as_seq()
                    .filter(|t| t.len() == 3)
                    .ok_or_else(|| format!("delta run {r} holds a malformed entry"))?;
                let lo = triple[0]
                    .as_u64()
                    .and_then(|x| u32::try_from(x).ok())
                    .ok_or_else(|| format!("delta run {r} holds a non-u32 id"))?;
                let hi = triple[1]
                    .as_u64()
                    .and_then(|x| u32::try_from(x).ok())
                    .ok_or_else(|| format!("delta run {r} holds a non-u32 id"))?;
                let change = triple[2]
                    .as_i64()
                    .ok_or_else(|| format!("delta run {r} holds a non-integer change"))?;
                if (hi as usize) >= n || hi <= lo {
                    return Err(format!("delta run {r} pair ({lo}, {hi}) is out of range"));
                }
                if change == 0 {
                    return Err(format!("delta run {r} holds a zero-net entry"));
                }
                if prev.is_some_and(|p| p >= (lo, hi)) {
                    return Err(format!("delta run {r} keys are not strictly sorted"));
                }
                prev = Some((lo, hi));
                run_edges.push(((lo, hi), change));
            }
            parsed_runs.push(DeltaRun { edges: run_edges });
        }
        // Negative-net audit + live-edge count: merge all pending runs and
        // check every touched pair against its CSR baseline.
        let csr = CsrAdjacency {
            offsets,
            neighbors,
            counts,
            denominators,
        };
        let mut live_edges = edges;
        let mut pair_degree = vec![0u32; n];
        for lo in 0..csr.offsets.len().saturating_sub(1) {
            let (start, end) = (csr.offsets[lo] as usize, csr.offsets[lo + 1] as usize);
            for e in start..end {
                pair_degree[lo] += 1;
                pair_degree[csr.neighbors[e] as usize] += 1;
            }
        }
        let mut pending: Vec<((u32, u32), i64)> = Vec::new();
        for run in &parsed_runs {
            pending = if pending.is_empty() {
                run.edges.clone()
            } else {
                merge_sorted(&pending, &run.edges)
            };
        }
        for &((lo, hi), change) in &pending {
            let base = csr.count(lo, hi) as i64;
            let net = base + change;
            if net < 0 {
                return Err(format!(
                    "pending delta drives pair ({lo}, {hi}) negative ({base} {change:+})"
                ));
            }
            if base == 0 && net > 0 {
                live_edges += 1;
                pair_degree[lo as usize] += 1;
                pair_degree[hi as usize] += 1;
            } else if base > 0 && net == 0 {
                live_edges -= 1;
                pair_degree[lo as usize] -= 1;
                pair_degree[hi as usize] -= 1;
            }
        }
        let graph = QueryFragmentGraph {
            obscurity,
            interner: FragmentInterner {
                ids,
                fragments: table,
                free,
            },
            occurrences: occ,
            pair_degree,
            csr,
            delta: BTreeMap::new(),
            runs: parsed_runs,
            run_fold_threshold: DELTA_RUN_FOLD,
            max_dice,
            occurrences_dirty: false,
            live_edges,
            query_count: query_count as usize,
            compactions: 0,
            run_folds: 0,
            run_merges: 0,
        };
        Ok(graph)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fragment::QueryContext;

    /// The query log of Figure 3a.
    fn figure3_log() -> QueryLog {
        let mut sql = Vec::new();
        for _ in 0..25 {
            sql.push("SELECT j.name FROM journal j".to_string());
        }
        for _ in 0..5 {
            sql.push("SELECT p.title FROM publication p WHERE p.year > 2003".to_string());
        }
        for _ in 0..3 {
            sql.push(
                "SELECT p.title FROM journal j, publication p \
                 WHERE j.name = 'TMC' AND p.pid = j.pid"
                    .to_string(),
            );
        }
        let (log, skipped) = QueryLog::from_sql(sql.iter().map(String::as_str));
        assert_eq!(skipped, 0);
        log
    }

    fn frag(expr: &str, context: QueryContext) -> QueryFragment {
        QueryFragment {
            expr: expr.to_string(),
            context,
        }
    }

    #[test]
    fn occurrence_counts_match_figure_3b() {
        let qfg = QueryFragmentGraph::build(&figure3_log(), Obscurity::NoConstOp);
        assert_eq!(
            qfg.occurrences(&frag("journal.name", QueryContext::Select)),
            25
        );
        assert_eq!(
            qfg.occurrences(&frag("publication.title", QueryContext::Select)),
            8
        );
        assert_eq!(qfg.occurrences(&QueryFragment::relation("journal")), 28);
        assert_eq!(qfg.occurrences(&QueryFragment::relation("publication")), 8);
        assert_eq!(
            qfg.occurrences(&frag("publication.year ?op ?val", QueryContext::Where)),
            5
        );
        assert_eq!(
            qfg.occurrences(&frag("journal.name ?op ?val", QueryContext::Where)),
            3
        );
        assert_eq!(qfg.query_count(), 33);
    }

    #[test]
    fn co_occurrence_counts_match_figure_3c() {
        let qfg = QueryFragmentGraph::build(&figure3_log(), Obscurity::NoConstOp);
        let title = frag("publication.title", QueryContext::Select);
        let year_pred = frag("publication.year ?op ?val", QueryContext::Where);
        let jname_pred = frag("journal.name ?op ?val", QueryContext::Where);
        let jname_sel = frag("journal.name", QueryContext::Select);
        assert_eq!(qfg.co_occurrences(&title, &year_pred), 5);
        assert_eq!(qfg.co_occurrences(&title, &jname_pred), 3);
        assert_eq!(qfg.co_occurrences(&jname_sel, &jname_pred), 0);
        assert_eq!(qfg.co_occurrences(&jname_sel, &title), 0);
    }

    #[test]
    fn dice_reflects_the_log_evidence() {
        let qfg = QueryFragmentGraph::build(&figure3_log(), Obscurity::NoConstOp);
        let title = frag("publication.title", QueryContext::Select);
        let jname_sel = frag("journal.name", QueryContext::Select);
        let jname_pred = frag("journal.name ?op ?val", QueryContext::Where);
        // The log says: when a journal-name predicate appears, the query
        // selects publication.title, never journal.name.  This is the
        // evidence that resolves Example 5's "papers" ambiguity.
        assert!(qfg.dice(&title, &jname_pred) > qfg.dice(&jname_sel, &jname_pred));
        // Dice is symmetric and bounded.
        assert_eq!(qfg.dice(&title, &jname_pred), qfg.dice(&jname_pred, &title));
        assert!(qfg.dice(&title, &jname_pred) <= 1.0);
    }

    #[test]
    fn dice_of_unknown_fragments_is_zero() {
        let qfg = QueryFragmentGraph::build(&figure3_log(), Obscurity::NoConstOp);
        let unknown = frag("business.stars ?op ?val", QueryContext::Where);
        let title = frag("publication.title", QueryContext::Select);
        assert_eq!(qfg.dice(&unknown, &title), 0.0);
        assert_eq!(qfg.occurrences(&unknown), 0);
    }

    #[test]
    fn dice_with_itself_is_one() {
        let qfg = QueryFragmentGraph::build(&figure3_log(), Obscurity::NoConstOp);
        let title = frag("publication.title", QueryContext::Select);
        assert!((qfg.dice(&title, &title) - 1.0).abs() < 1e-12);
        let id = qfg.lookup(&title).unwrap();
        assert!((qfg.dice_by_id(id, id) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn relation_dice_supports_join_weighting() {
        let qfg = QueryFragmentGraph::build(&figure3_log(), Obscurity::NoConstOp);
        // journal and publication co-occur in 3 of the queries.
        let d = qfg.relation_dice("journal", "publication");
        assert!((d - 2.0 * 3.0 / (28.0 + 8.0)).abs() < 1e-12);
    }

    #[test]
    fn unparsable_log_entries_are_skipped() {
        let (log, skipped) =
            QueryLog::from_sql(["SELECT x FROM t", "THIS IS NOT SQL", "SELECT y FROM u"]);
        assert_eq!(log.len(), 2);
        assert_eq!(skipped, 1);
    }

    #[test]
    fn incremental_and_batch_construction_agree() {
        let log = figure3_log();
        let batch = QueryFragmentGraph::build(&log, Obscurity::NoConst);
        let mut incremental = QueryFragmentGraph::build(&QueryLog::new(), Obscurity::NoConst);
        for q in log.queries() {
            incremental.add_query(q);
        }
        assert_eq!(batch.fragment_count(), incremental.fragment_count());
        assert_eq!(batch.edge_count(), incremental.edge_count());
        for (f, c) in batch.fragments() {
            assert_eq!(incremental.occurrences(f), c);
        }
        assert_eq!(batch, incremental);
    }

    #[test]
    fn top_fragments_are_sorted_by_frequency() {
        let qfg = QueryFragmentGraph::build(&figure3_log(), Obscurity::NoConstOp);
        let top = qfg.top_fragments(3);
        assert_eq!(top[0].0, QueryFragment::relation("journal"));
        assert!(top[0].1 >= top[1].1 && top[1].1 >= top[2].1);
    }

    #[test]
    fn ids_are_stable_and_lookups_match_fragment_keyed_reads() {
        let qfg = QueryFragmentGraph::build(&figure3_log(), Obscurity::NoConstOp);
        let title = frag("publication.title", QueryContext::Select);
        let year_pred = frag("publication.year ?op ?val", QueryContext::Where);
        let a = qfg.lookup(&title).unwrap();
        let b = qfg.lookup(&year_pred).unwrap();
        assert_eq!(qfg.occurrences_by_id(a), qfg.occurrences(&title));
        assert_eq!(
            qfg.co_occurrences_by_id(a, b),
            qfg.co_occurrences(&title, &year_pred)
        );
        assert_eq!(qfg.dice_by_id(a, b), qfg.dice(&title, &year_pred));
        assert_eq!(qfg.interner().resolve(a), &title);
    }

    #[test]
    fn compaction_preserves_counts() {
        let log = figure3_log();
        let mut incremental = QueryFragmentGraph::empty(Obscurity::NoConstOp);
        for q in log.queries() {
            incremental.ingest(q);
        }
        assert!(!incremental.is_compacted());
        let before_fragments: Vec<(QueryFragment, u64)> = incremental
            .fragments()
            .map(|(f, c)| (f.clone(), c))
            .collect();
        let uncompacted = incremental.clone();
        incremental.compact();
        assert!(incremental.is_compacted());
        assert_eq!(incremental.compactions(), 1);
        assert_eq!(incremental.csr_edge_len(), incremental.edge_count());
        assert_eq!(incremental.pending_delta_len(), 0);
        for (f, c) in &before_fragments {
            assert_eq!(incremental.occurrences(f), *c);
        }
        assert_eq!(incremental, uncompacted);
    }

    #[test]
    fn released_ids_are_recycled_for_new_fragments() {
        let (log, _) = QueryLog::from_sql(["SELECT p.title FROM publication p"]);
        let mut qfg = QueryFragmentGraph::build(&log, Obscurity::NoConstOp);
        let table_before = qfg.interned_len();
        assert!(qfg.remove(&log.queries()[0]));
        assert_eq!(qfg.fragment_count(), 0);
        // Re-ingesting reuses the freed slots instead of growing the table.
        let (log2, _) = QueryLog::from_sql(["SELECT j.name FROM journal j"]);
        qfg.ingest(&log2.queries()[0]);
        assert_eq!(qfg.interned_len(), table_before);
        assert_eq!(
            qfg.occurrences(&frag("journal.name", QueryContext::Select)),
            1
        );
        // The dead publication fragments are gone.
        assert_eq!(
            qfg.occurrences(&frag("publication.title", QueryContext::Select)),
            0
        );
    }

    #[test]
    fn max_dice_column_is_exact_on_a_compacted_graph() {
        let qfg = QueryFragmentGraph::build(&figure3_log(), Obscurity::NoConstOp);
        let live: Vec<QueryFragment> = qfg.fragments().map(|(f, _)| f.clone()).collect();
        for a in &live {
            let id = qfg.lookup(a).unwrap();
            let expected = live
                .iter()
                .filter(|b| *b != a)
                .map(|b| qfg.dice(a, b))
                .fold(0.0, f64::max);
            assert_eq!(
                qfg.max_dice_by_id(id),
                expected,
                "max_dice must equal the true per-fragment maximum for {a}"
            );
            // Admissibility bit-for-bit: no pair lookup may exceed it.
            for b in &live {
                if b != a {
                    assert!(qfg.dice(a, b) <= qfg.max_dice_by_id(id));
                }
            }
        }
    }

    #[test]
    fn max_dice_falls_back_to_admissible_one_while_uncompacted() {
        let mut qfg = QueryFragmentGraph::build(&figure3_log(), Obscurity::NoConstOp);
        // journal.name co-occurs most strongly with the journal relation
        // (25 of 28 journal queries), so its true maximum is 50/53 < 1.
        let jname = frag("journal.name", QueryContext::Select);
        let id = qfg.lookup(&jname).unwrap();
        assert!((qfg.max_dice_by_id(id) - 50.0 / 53.0).abs() < 1e-12);
        let (extra, _) = QueryLog::from_sql(["SELECT p.year FROM publication p"]);
        qfg.ingest(&extra.queries()[0]);
        // Pending deltas: the column may be stale, so the trivial bound wins.
        assert_eq!(qfg.max_dice_by_id(id), 1.0);
        qfg.compact();
        assert!(qfg.max_dice_by_id(id) < 1.0);
        // A serde round-trip (snapshot load) restores the exact column.
        let back = QueryFragmentGraph::from_value(&serde::Serialize::to_value(&qfg)).unwrap();
        assert_eq!(back.max_dice_by_id(id), qfg.max_dice_by_id(id));
    }

    #[test]
    fn gather_kernels_match_scalar_lookups_bit_for_bit() {
        let mut qfg = QueryFragmentGraph::build(&figure3_log(), Obscurity::NoConstOp);
        // Exercise both the compacted sweep and the pending-delta fallback.
        for compacted in [true, false] {
            if !compacted {
                let (extra, _) = QueryLog::from_sql(["SELECT p.year FROM publication p"]);
                qfg.ingest(&extra.queries()[0]);
                assert!(!qfg.is_compacted());
            }
            let live: Vec<FragmentId> = qfg
                .fragments()
                .map(|(f, _)| qfg.lookup(f).unwrap())
                .collect();
            let mut ids: Vec<u32> = live.iter().map(|id| id.index() as u32).collect();
            ids.push(ABSENT_FRAGMENT);
            let mut scratch = DiceGatherScratch::default();
            let mut out = Vec::new();
            for &c in &live {
                qfg.gather_dice(c, &ids, &mut scratch, &mut out);
                assert_eq!(out.len(), ids.len());
                for (i, &id) in ids.iter().enumerate() {
                    let expected = if id == ABSENT_FRAGMENT {
                        0.0
                    } else {
                        qfg.dice_by_id(c, FragmentId(id))
                    };
                    assert_eq!(
                        out[i].to_bits(),
                        expected.to_bits(),
                        "gathered Dice must be bit-identical to the scalar lookup \
                         (compacted: {compacted})"
                    );
                }
            }
            let mut pop = Vec::new();
            qfg.gather_popularity(&ids, &mut pop);
            for (i, &id) in ids.iter().enumerate() {
                let expected = if id == ABSENT_FRAGMENT {
                    0.0
                } else {
                    qfg.occurrences_by_id(FragmentId(id)) as f64 / qfg.query_count().max(1) as f64
                };
                assert_eq!(pop[i].to_bits(), expected.to_bits());
            }
        }
    }

    #[test]
    fn serde_round_trip_preserves_observational_state() {
        let mut qfg = QueryFragmentGraph::build(&figure3_log(), Obscurity::NoConstOp);
        // Leave some pending delta so serialization exercises the
        // compact-on-write path.
        let (extra, _) = QueryLog::from_sql(["SELECT p.year FROM publication p"]);
        qfg.ingest(&extra.queries()[0]);
        let value = serde::Serialize::to_value(&qfg);
        let back = QueryFragmentGraph::from_value(&value).unwrap();
        assert_eq!(back, qfg);
        assert!(back.is_compacted());
        assert_eq!(back.query_count(), qfg.query_count());
    }

    #[test]
    fn corrupted_columnar_bodies_are_rejected() {
        let qfg = QueryFragmentGraph::build(&figure3_log(), Obscurity::NoConstOp);
        let value = serde::Serialize::to_value(&qfg);
        // Truncate the neighbor column: offsets promise more edges.
        let serde::Value::Map(mut fields) = value.clone() else {
            panic!("columnar body must be a map")
        };
        for (key, field) in &mut fields {
            if key == "neighbors" {
                let serde::Value::Seq(items) = field else {
                    panic!("neighbors must be a seq")
                };
                items.pop();
            }
        }
        let err = QueryFragmentGraph::from_value(&serde::Value::Map(fields)).unwrap_err();
        assert!(err.to_string().contains("truncated CSR"), "{err}");
    }

    // -- tiered delta-log compaction ------------------------------------

    /// A varied pool of parsable queries for churn tests.
    fn churn_queries(n: usize) -> Vec<Query> {
        let tables = ["publication", "journal", "author", "conference"];
        let mut sql = Vec::new();
        for i in 0..n {
            let t = tables[i % tables.len()];
            let u = tables[(i / tables.len() + 1) % tables.len()];
            sql.push(match i % 3 {
                0 => format!("SELECT {t}.c{} FROM {t} WHERE {t}.y{} > {i}", i % 7, i % 5),
                1 => format!("SELECT {t}.c{} FROM {t}", i % 7),
                _ => format!(
                    "SELECT {t}.c{} FROM {t}, {u} WHERE {t}.k = {u}.k AND {u}.z{} = {i}",
                    i % 7,
                    i % 5
                ),
            });
        }
        let (log, skipped) = QueryLog::from_sql(sql.iter().map(String::as_str));
        assert_eq!(skipped, 0);
        log.queries().iter().cloned().collect()
    }

    #[test]
    fn run_folding_bounds_the_mutable_delta_and_merges_geometrically() {
        let mut qfg = QueryFragmentGraph::empty(Obscurity::NoConstOp);
        qfg.set_run_fold_threshold(16);
        let mut reference = QueryFragmentGraph::empty(Obscurity::NoConstOp);
        for query in churn_queries(200) {
            qfg.ingest(&query);
            reference.ingest(&query);
            // One query contributes at most a handful of pairs, so the
            // mutable delta can only overshoot the threshold by that much
            // before the post-ingest fold claws it back.
            assert!(
                qfg.delta.len() < 16 + 64,
                "mutable delta must stay bounded by the fold threshold: {}",
                qfg.delta.len()
            );
        }
        assert!(qfg.run_folds() > 0, "threshold crossings must fold runs");
        assert!(qfg.delta_run_len() > 0);
        // Geometric invariant: each run is at least twice the size of the
        // newer run above it, so the tier count is logarithmic.
        for pair in qfg.runs.windows(2) {
            assert!(
                pair[0].edges.len() >= 2 * pair[1].edges.len(),
                "runs must keep the geometric size invariant: {} vs {}",
                pair[0].edges.len(),
                pair[1].edges.len()
            );
        }
        // Counts and Dice are exact while pending work sits in runs.
        reference.compact();
        assert_eq!(qfg, reference);
        assert_eq!(qfg.compactions(), 0, "folding runs is not a full compact");
        qfg.compact();
        assert_eq!(qfg, reference);
        assert!(qfg.is_compacted());
        assert_eq!(qfg.pending_delta_len(), 0);
        assert_eq!(qfg.delta_run_len(), 0);
    }

    #[test]
    fn removals_and_recycled_ids_survive_run_folds() {
        let queries = churn_queries(120);
        let mut qfg = QueryFragmentGraph::empty(Obscurity::NoConstOp);
        qfg.set_run_fold_threshold(8);
        let mut reference = QueryFragmentGraph::empty(Obscurity::NoConstOp);
        for (i, query) in queries.iter().enumerate() {
            qfg.ingest(query);
            reference.ingest(query);
            if i % 5 == 4 {
                assert!(qfg.remove(&queries[i - 2]));
                assert!(reference.remove(&queries[i - 2]));
            }
            if i % 37 == 36 {
                reference.compact();
            }
        }
        assert_eq!(qfg, reference);
        qfg.compact();
        reference.compact();
        assert_eq!(qfg, reference);
    }

    #[test]
    fn publish_compaction_cost_tracks_recent_churn_not_total_pending() {
        // With tiering, the mutable delta that `compact()` folds directly
        // is bounded by the threshold no matter how much total churn is
        // pending — the rest already sits in sorted runs.
        let mut qfg = QueryFragmentGraph::empty(Obscurity::NoConstOp);
        qfg.set_run_fold_threshold(32);
        for query in churn_queries(400) {
            qfg.ingest(&query);
        }
        assert!(qfg.pending_delta_len() > 200, "churn must accumulate");
        assert!(
            qfg.delta.len() <= 32 + 64,
            "mutable delta stays O(threshold): {}",
            qfg.delta.len()
        );
        assert!(
            qfg.runs.len() <= 12,
            "geometric merging keeps the tier count logarithmic: {}",
            qfg.runs.len()
        );
    }

    // -- sectioned (v3) serialization -----------------------------------

    /// A graph with dead interner slots, a compacted baseline, *and*
    /// pending runs + mutable delta — the richest v3 shape.
    fn sectioned_fixture() -> QueryFragmentGraph {
        let queries = churn_queries(60);
        let mut qfg = QueryFragmentGraph::empty(Obscurity::NoConstOp);
        qfg.set_run_fold_threshold(8);
        for query in &queries[..40] {
            qfg.ingest(query);
        }
        qfg.compact();
        // Kill some fragments entirely to create dead slots.
        for query in &queries[..6] {
            let mut seen = 0;
            while qfg.remove(query) {
                seen += 1;
                assert!(seen < 100);
            }
        }
        // Leave fresh churn pending across runs and the mutable delta.
        for query in &queries[40..] {
            qfg.ingest(query);
        }
        assert!(!qfg.is_compacted());
        qfg
    }

    #[test]
    fn sections_round_trip_uncompacted_graphs_verbatim() {
        let qfg = sectioned_fixture();
        let back = QueryFragmentGraph::from_sections(
            qfg.obscurity(),
            qfg.query_count() as u64,
            &qfg.fragments_section(),
            &qfg.occurrences_section(),
            &qfg.adjacency_section(),
            &qfg.runs_section(),
        )
        .unwrap();
        assert_eq!(back, qfg);
        assert_eq!(back.query_count(), qfg.query_count());
        assert_eq!(back.pending_delta_len(), qfg.pending_delta_len());
        // Raw slot ids line up verbatim, so recycled-slot bookkeeping
        // survives: interning a new fragment reuses the same free slots.
        for (fragment, count) in qfg.fragments() {
            let a = qfg.lookup(fragment).unwrap();
            let b = back.lookup(fragment).unwrap();
            assert_eq!(a.index(), b.index());
            assert_eq!(back.occurrences_by_id(b), count);
        }
        // And both sides compact to identical exact state.
        let mut a = qfg.clone();
        let mut b = back.clone();
        a.compact();
        b.compact();
        assert_eq!(a, b);
    }

    #[test]
    fn sections_reject_structural_corruption() {
        let qfg = sectioned_fixture();
        let fragments = qfg.fragments_section();
        let occurrences = qfg.occurrences_section();
        let adjacency = qfg.adjacency_section();
        let runs = qfg.runs_section();
        let rebuild = |f: &serde::Value, o: &serde::Value, a: &serde::Value, r: &serde::Value| {
            QueryFragmentGraph::from_sections(Obscurity::NoConstOp, 60, f, o, a, r)
        };
        // Occurrence column shorter than the fragment table.
        let serde::Value::Seq(mut occ) = occurrences.clone() else {
            panic!()
        };
        occ.pop();
        let err = rebuild(&fragments, &serde::Value::Seq(occ), &adjacency, &runs).unwrap_err();
        assert!(err.contains("occurrence column length"), "{err}");
        // A live slot with zero occurrences.
        let serde::Value::Seq(mut occ) = occurrences.clone() else {
            panic!()
        };
        let live = occ
            .iter()
            .position(|v| v.as_u64().unwrap() > 0)
            .expect("fixture has live slots");
        occ[live] = serde::Value::U64(0);
        let err = rebuild(&fragments, &serde::Value::Seq(occ), &adjacency, &runs).unwrap_err();
        assert!(err.contains("zero occurrences"), "{err}");
        // Truncated CSR neighbor column.
        let serde::Value::Map(mut adj) = adjacency.clone() else {
            panic!()
        };
        for (key, field) in &mut adj {
            if key == "neighbors" {
                let serde::Value::Seq(items) = field else {
                    panic!()
                };
                items.pop();
            }
        }
        let err = rebuild(&fragments, &occurrences, &serde::Value::Map(adj), &runs).unwrap_err();
        assert!(err.contains("truncated CSR"), "{err}");
        // A run entry that drives a pair negative.
        let serde::Value::Seq(mut run_list) = runs.clone() else {
            panic!()
        };
        run_list.push(serde::Value::Seq(vec![serde::Value::Seq(vec![
            serde::Value::U64(0),
            serde::Value::U64(1),
            serde::Value::I64(-1_000_000),
        ])]));
        let err = rebuild(
            &fragments,
            &occurrences,
            &adjacency,
            &serde::Value::Seq(run_list),
        )
        .unwrap_err();
        assert!(err.contains("negative"), "{err}");
        // Unsorted run keys.
        let bad_run = serde::Value::Seq(vec![serde::Value::Seq(vec![
            serde::Value::Seq(vec![
                serde::Value::U64(1),
                serde::Value::U64(2),
                serde::Value::I64(1),
            ]),
            serde::Value::Seq(vec![
                serde::Value::U64(0),
                serde::Value::U64(2),
                serde::Value::I64(1),
            ]),
        ])]);
        let err = rebuild(&fragments, &occurrences, &adjacency, &bad_run).unwrap_err();
        assert!(err.contains("not strictly sorted"), "{err}");
        // The pristine sections still load.
        rebuild(&fragments, &occurrences, &adjacency, &runs).unwrap();
    }
}
