//! The Query Fragment Graph (Definition 6).
//!
//! The QFG stores, for a SQL query log `L`:
//!
//! * `n_v(c)` — how many logged queries contain fragment `c`, and
//! * `n_e(c1, c2)` — how many logged queries contain both `c1` and `c2`.
//!
//! Both counts are computed at a fixed [`Obscurity`] level.  The
//! co-occurrence strength of two fragments is measured with the Dice
//! coefficient
//! `Dice(c1, c2) = 2·n_e(c1, c2) / (n_v(c1) + n_v(c2))`,
//! which drives both the configuration score (Section V-C.2) and the
//! log-driven join edge weights (Section VI-A.2).

use crate::config::Obscurity;
use crate::fragment::{fragments_of_query, QueryFragment};
use serde::{Deserialize, Serialize};
use sqlparse::{parse_query, Query};
use std::collections::{BTreeSet, HashMap, VecDeque};

/// A SQL query log: the raw material of the QFG.
///
/// Stored as a ring buffer so a serving deployment with a bounded log can
/// evict the oldest entry ([`QueryLog::pop_oldest`]) in O(1).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct QueryLog {
    queries: VecDeque<Query>,
}

impl QueryLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build a log from already-parsed queries.
    pub fn from_queries(queries: Vec<Query>) -> Self {
        QueryLog {
            queries: queries.into(),
        }
    }

    /// Build a log from SQL strings, skipping (and reporting) unparsable
    /// entries.  Real query logs contain noise; Templar only ever uses what
    /// it can parse.
    pub fn from_sql<'a>(statements: impl IntoIterator<Item = &'a str>) -> (Self, usize) {
        let mut queries = VecDeque::new();
        let mut skipped = 0;
        for sql in statements {
            match parse_query(sql) {
                Ok(q) => queries.push_back(q),
                Err(_) => skipped += 1,
            }
        }
        (QueryLog { queries }, skipped)
    }

    /// Append a query to the log.
    pub fn push(&mut self, query: Query) {
        self.queries.push_back(query);
    }

    /// Remove and return the oldest logged query (O(1); used for log
    /// eviction when a long-running service bounds its log size).
    pub fn pop_oldest(&mut self) -> Option<Query> {
        self.queries.pop_front()
    }

    /// The logged queries, oldest first.
    pub fn queries(&self) -> &VecDeque<Query> {
        &self.queries
    }

    /// Number of logged queries.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// True when the log is empty.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }
}

/// The Query Fragment Graph.
///
/// The graph supports two mutation models:
///
/// * **batch** — [`QueryFragmentGraph::build`] over a whole [`QueryLog`], and
/// * **incremental** — [`QueryFragmentGraph::ingest`] /
///   [`QueryFragmentGraph::remove`] for one query at a time, in
///   `O(fragments²)` per query, which lets a long-running service absorb
///   newly-logged queries (and evict old ones) without rebuilding the whole
///   graph.  Ingesting every query of a log into an empty graph is
///   equivalent to a batch build (proved by a property test in
///   `tests/qfg_properties.rs`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryFragmentGraph {
    obscurity: Obscurity,
    /// `n_v`: per-fragment occurrence counts (number of queries containing
    /// the fragment at least once).
    occurrences: HashMap<QueryFragment, u64>,
    /// `n_e`: co-occurrence counts for unordered fragment pairs, keyed with
    /// the lexicographically smaller fragment first.
    co_occurrences: HashMap<(QueryFragment, QueryFragment), u64>,
    /// Number of queries the graph was built from.
    query_count: usize,
}

impl QueryFragmentGraph {
    /// An empty graph at an obscurity level (the starting point for purely
    /// incremental construction).
    pub fn empty(obscurity: Obscurity) -> Self {
        QueryFragmentGraph {
            obscurity,
            occurrences: HashMap::new(),
            co_occurrences: HashMap::new(),
            query_count: 0,
        }
    }

    /// Build the QFG of a query log at an obscurity level.
    pub fn build(log: &QueryLog, obscurity: Obscurity) -> Self {
        let mut graph = Self::empty(obscurity);
        for query in log.queries() {
            graph.ingest(query);
        }
        graph
    }

    /// Incrementally ingest one query into the graph, updating `n_v` / `n_e`
    /// in `O(fragments²)` — no rebuild.
    pub fn ingest(&mut self, query: &Query) {
        self.query_count += 1;
        // A query contributes at most 1 to n_v / n_e per fragment (pair),
        // matching "the number of occurrences in L of the query fragment":
        // occurrences are counted per logged query.
        let fragments = Self::distinct_fragments(query, self.obscurity);
        for f in &fragments {
            *self.occurrences.entry(f.clone()).or_insert(0) += 1;
        }
        let list: Vec<&QueryFragment> = fragments.iter().collect();
        for i in 0..list.len() {
            for j in (i + 1)..list.len() {
                let key = Self::pair_key(list[i], list[j]);
                *self.co_occurrences.entry(key).or_insert(0) += 1;
            }
        }
    }

    /// Incrementally add one query to the graph.  Alias of
    /// [`QueryFragmentGraph::ingest`], kept for the batch-construction
    /// vocabulary used by earlier callers.
    pub fn add_query(&mut self, query: &Query) {
        self.ingest(query);
    }

    /// Remove one previously-ingested query from the graph (log eviction),
    /// decrementing `n_v` / `n_e` and pruning counts that reach zero so the
    /// graph's memory footprint tracks the live log.
    ///
    /// Returns `false` (leaving the graph untouched) if the query's
    /// fragments are not fully present — i.e. it was never ingested at this
    /// obscurity level.
    pub fn remove(&mut self, query: &Query) -> bool {
        if self.query_count == 0 {
            return false;
        }
        let fragments = Self::distinct_fragments(query, self.obscurity);
        // Validate first so a bad call cannot corrupt the counts.
        for f in &fragments {
            if self.occurrences.get(f).copied().unwrap_or(0) == 0 {
                return false;
            }
        }
        let list: Vec<&QueryFragment> = fragments.iter().collect();
        for i in 0..list.len() {
            for j in (i + 1)..list.len() {
                let key = Self::pair_key(list[i], list[j]);
                if self.co_occurrences.get(&key).copied().unwrap_or(0) == 0 {
                    return false;
                }
            }
        }
        self.query_count -= 1;
        for f in &fragments {
            if let Some(count) = self.occurrences.get_mut(f) {
                *count -= 1;
                if *count == 0 {
                    self.occurrences.remove(f);
                }
            }
        }
        for i in 0..list.len() {
            for j in (i + 1)..list.len() {
                let key = Self::pair_key(list[i], list[j]);
                if let Some(count) = self.co_occurrences.get_mut(&key) {
                    *count -= 1;
                    if *count == 0 {
                        self.co_occurrences.remove(&key);
                    }
                }
            }
        }
        true
    }

    /// The distinct fragments of one query at an obscurity level, ordered.
    fn distinct_fragments(query: &Query, obscurity: Obscurity) -> BTreeSet<QueryFragment> {
        fragments_of_query(query, obscurity).into_iter().collect()
    }

    fn pair_key(a: &QueryFragment, b: &QueryFragment) -> (QueryFragment, QueryFragment) {
        if a <= b {
            (a.clone(), b.clone())
        } else {
            (b.clone(), a.clone())
        }
    }

    /// The obscurity level the graph was built at.
    pub fn obscurity(&self) -> Obscurity {
        self.obscurity
    }

    /// Number of distinct fragments (vertices).
    pub fn fragment_count(&self) -> usize {
        self.occurrences.len()
    }

    /// Number of distinct co-occurring pairs (edges).
    pub fn edge_count(&self) -> usize {
        self.co_occurrences.len()
    }

    /// Number of queries the graph was built from.
    pub fn query_count(&self) -> usize {
        self.query_count
    }

    /// `n_v(c)`: occurrence count of a fragment.
    pub fn occurrences(&self, fragment: &QueryFragment) -> u64 {
        self.occurrences.get(fragment).copied().unwrap_or(0)
    }

    /// `n_e(c1, c2)`: co-occurrence count of a fragment pair.
    pub fn co_occurrences(&self, a: &QueryFragment, b: &QueryFragment) -> u64 {
        if a == b {
            return self.occurrences(a);
        }
        self.co_occurrences
            .get(&Self::pair_key(a, b))
            .copied()
            .unwrap_or(0)
    }

    /// The Dice coefficient of two fragments, in `[0, 1]`.
    pub fn dice(&self, a: &QueryFragment, b: &QueryFragment) -> f64 {
        let na = self.occurrences(a);
        let nb = self.occurrences(b);
        if na + nb == 0 {
            return 0.0;
        }
        let ne = self.co_occurrences(a, b);
        (2.0 * ne as f64) / ((na + nb) as f64)
    }

    /// The Dice coefficient between two relations' `FROM` fragments, used by
    /// the log-driven join edge weight `w_L = 1 − Dice`.
    pub fn relation_dice(&self, a: &str, b: &str) -> f64 {
        self.dice(&QueryFragment::relation(a), &QueryFragment::relation(b))
    }

    /// The most frequent fragments (for inspection and examples).
    pub fn top_fragments(&self, n: usize) -> Vec<(QueryFragment, u64)> {
        let mut all: Vec<(QueryFragment, u64)> = self
            .occurrences
            .iter()
            .map(|(f, c)| (f.clone(), *c))
            .collect();
        all.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        all.truncate(n);
        all
    }

    /// Iterate over all fragments and their occurrence counts.
    pub fn fragments(&self) -> impl Iterator<Item = (&QueryFragment, u64)> {
        self.occurrences.iter().map(|(f, c)| (f, *c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fragment::QueryContext;

    /// The query log of Figure 3a.
    fn figure3_log() -> QueryLog {
        let mut sql = Vec::new();
        for _ in 0..25 {
            sql.push("SELECT j.name FROM journal j".to_string());
        }
        for _ in 0..5 {
            sql.push("SELECT p.title FROM publication p WHERE p.year > 2003".to_string());
        }
        for _ in 0..3 {
            sql.push(
                "SELECT p.title FROM journal j, publication p \
                 WHERE j.name = 'TMC' AND p.pid = j.pid"
                    .to_string(),
            );
        }
        let (log, skipped) = QueryLog::from_sql(sql.iter().map(String::as_str));
        assert_eq!(skipped, 0);
        log
    }

    fn frag(expr: &str, context: QueryContext) -> QueryFragment {
        QueryFragment {
            expr: expr.to_string(),
            context,
        }
    }

    #[test]
    fn occurrence_counts_match_figure_3b() {
        let qfg = QueryFragmentGraph::build(&figure3_log(), Obscurity::NoConstOp);
        assert_eq!(
            qfg.occurrences(&frag("journal.name", QueryContext::Select)),
            25
        );
        assert_eq!(
            qfg.occurrences(&frag("publication.title", QueryContext::Select)),
            8
        );
        assert_eq!(qfg.occurrences(&QueryFragment::relation("journal")), 28);
        assert_eq!(qfg.occurrences(&QueryFragment::relation("publication")), 8);
        assert_eq!(
            qfg.occurrences(&frag("publication.year ?op ?val", QueryContext::Where)),
            5
        );
        assert_eq!(
            qfg.occurrences(&frag("journal.name ?op ?val", QueryContext::Where)),
            3
        );
        assert_eq!(qfg.query_count(), 33);
    }

    #[test]
    fn co_occurrence_counts_match_figure_3c() {
        let qfg = QueryFragmentGraph::build(&figure3_log(), Obscurity::NoConstOp);
        let title = frag("publication.title", QueryContext::Select);
        let year_pred = frag("publication.year ?op ?val", QueryContext::Where);
        let jname_pred = frag("journal.name ?op ?val", QueryContext::Where);
        let jname_sel = frag("journal.name", QueryContext::Select);
        assert_eq!(qfg.co_occurrences(&title, &year_pred), 5);
        assert_eq!(qfg.co_occurrences(&title, &jname_pred), 3);
        assert_eq!(qfg.co_occurrences(&jname_sel, &jname_pred), 0);
        assert_eq!(qfg.co_occurrences(&jname_sel, &title), 0);
    }

    #[test]
    fn dice_reflects_the_log_evidence() {
        let qfg = QueryFragmentGraph::build(&figure3_log(), Obscurity::NoConstOp);
        let title = frag("publication.title", QueryContext::Select);
        let jname_sel = frag("journal.name", QueryContext::Select);
        let jname_pred = frag("journal.name ?op ?val", QueryContext::Where);
        // The log says: when a journal-name predicate appears, the query
        // selects publication.title, never journal.name.  This is the
        // evidence that resolves Example 5's "papers" ambiguity.
        assert!(qfg.dice(&title, &jname_pred) > qfg.dice(&jname_sel, &jname_pred));
        // Dice is symmetric and bounded.
        assert_eq!(qfg.dice(&title, &jname_pred), qfg.dice(&jname_pred, &title));
        assert!(qfg.dice(&title, &jname_pred) <= 1.0);
    }

    #[test]
    fn dice_of_unknown_fragments_is_zero() {
        let qfg = QueryFragmentGraph::build(&figure3_log(), Obscurity::NoConstOp);
        let unknown = frag("business.stars ?op ?val", QueryContext::Where);
        let title = frag("publication.title", QueryContext::Select);
        assert_eq!(qfg.dice(&unknown, &title), 0.0);
        assert_eq!(qfg.occurrences(&unknown), 0);
    }

    #[test]
    fn dice_with_itself_is_one() {
        let qfg = QueryFragmentGraph::build(&figure3_log(), Obscurity::NoConstOp);
        let title = frag("publication.title", QueryContext::Select);
        assert!((qfg.dice(&title, &title) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn relation_dice_supports_join_weighting() {
        let qfg = QueryFragmentGraph::build(&figure3_log(), Obscurity::NoConstOp);
        // journal and publication co-occur in 3 of the queries.
        let d = qfg.relation_dice("journal", "publication");
        assert!((d - 2.0 * 3.0 / (28.0 + 8.0)).abs() < 1e-12);
    }

    #[test]
    fn unparsable_log_entries_are_skipped() {
        let (log, skipped) =
            QueryLog::from_sql(["SELECT x FROM t", "THIS IS NOT SQL", "SELECT y FROM u"]);
        assert_eq!(log.len(), 2);
        assert_eq!(skipped, 1);
    }

    #[test]
    fn incremental_and_batch_construction_agree() {
        let log = figure3_log();
        let batch = QueryFragmentGraph::build(&log, Obscurity::NoConst);
        let mut incremental = QueryFragmentGraph::build(&QueryLog::new(), Obscurity::NoConst);
        for q in log.queries() {
            incremental.add_query(q);
        }
        assert_eq!(batch.fragment_count(), incremental.fragment_count());
        assert_eq!(batch.edge_count(), incremental.edge_count());
        for (f, c) in batch.fragments() {
            assert_eq!(incremental.occurrences(f), c);
        }
    }

    #[test]
    fn top_fragments_are_sorted_by_frequency() {
        let qfg = QueryFragmentGraph::build(&figure3_log(), Obscurity::NoConstOp);
        let top = qfg.top_fragments(3);
        assert_eq!(top[0].0, QueryFragment::relation("journal"));
        assert!(top[0].1 >= top[1].1 && top[1].1 >= top[2].1);
    }
}
