//! Templar configuration parameters.

use serde::{Deserialize, Serialize};

/// The obscurity level applied to query fragments (Section IV of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Obscurity {
    /// Retain all values: `p.year > 2000`.
    Full,
    /// Replace literal constants with a placeholder: `p.year > ?val`.
    NoConst,
    /// Also obscure the comparison operator: `p.year ?op ?val`.
    NoConstOp,
}

impl Default for Obscurity {
    /// The paper's best-performing level, `NoConstOp`.
    fn default() -> Self {
        Obscurity::NoConstOp
    }
}

impl Obscurity {
    /// All levels, in increasing order of obscurity.
    pub const ALL: [Obscurity; 3] = [Obscurity::Full, Obscurity::NoConst, Obscurity::NoConstOp];

    /// Human-readable name used in experiment output.
    pub fn name(self) -> &'static str {
        match self {
            Obscurity::Full => "Full",
            Obscurity::NoConst => "NoConst",
            Obscurity::NoConstOp => "NoConstOp",
        }
    }
}

/// Tunable parameters of Templar (Section VII-D).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TemplarConfig {
    /// `κ`: number of top candidate keyword mappings retained per keyword
    /// before configurations are generated (paper default: 5).
    pub kappa: usize,
    /// `λ`: weight of the word-similarity score versus the log-driven score
    /// in the final configuration score (paper default: 0.8).
    pub lambda: f64,
    /// The fragment obscurity level used for the QFG (paper default, best
    /// performing: `NoConstOp`).
    pub obscurity: Obscurity,
    /// Whether join path inference uses log-driven edge weights
    /// (`LogJoin` in Table IV).  When false, all edges weigh 1 and the
    /// minimum-length join path wins.
    pub use_log_joins: bool,
    /// `ε`: the small value used both for the exact-match pruning threshold
    /// (`σ ≥ 1 − ε`) and as the score of numeric candidates whose predicate
    /// selects no rows.
    pub epsilon: f64,
    /// Maximum number of configurations returned by `MAPKEYWORDS`.
    pub max_configurations: usize,
    /// Number of alternative join paths to enumerate per relation bag.
    pub join_candidates: usize,
    /// Maximum number of join inferences kept in the facade's cache.  The
    /// cache is keyed by relation-bag signature; under serving traffic the
    /// set of distinct bags is unbounded, so the cache evicts oldest-first
    /// beyond this capacity.
    pub join_cache_capacity: usize,
    /// Number of worker threads candidate-configuration scoring may fan out
    /// over (default: the machine's available parallelism).  Scoring runs
    /// over interned fragment-id slices, so shards share the immutable
    /// columnar QFG without synchronization; small batches are always scored
    /// inline regardless of this setting.
    pub scoring_threads: usize,
    /// Work budget of the best-first configuration search: the maximum
    /// number of candidate-tuple evaluations (complete configurations
    /// scored plus prefixes bound-checked) one `MAPKEYWORDS` call may
    /// spend.  The search is **exact** — identical to exhaustively scoring
    /// the whole cartesian product — whenever it completes within the
    /// budget; when the budget runs out it returns the best configurations
    /// found so far and raises the `search_budget_exhausted` flag in its
    /// [`SearchStats`](crate::SearchStats) (surfaced through explanations
    /// and service metrics) instead of truncating silently.  Every search
    /// worker completes its first depth-first dive before honouring
    /// exhaustion, so even a starved budget yields at least one ranked
    /// configuration.
    pub search_budget: usize,
}

impl Default for TemplarConfig {
    fn default() -> Self {
        TemplarConfig {
            kappa: 5,
            lambda: 0.8,
            obscurity: Obscurity::NoConstOp,
            use_log_joins: true,
            epsilon: 0.05,
            max_configurations: 16,
            join_candidates: 4,
            join_cache_capacity: 1024,
            scoring_threads: default_scoring_threads(),
            search_budget: DEFAULT_SEARCH_BUDGET,
        }
    }
}

/// Default best-first search budget.  Far above what pruned candidate lists
/// produce on the paper's benchmarks (κ = 5 over a handful of keywords), so
/// ordinary requests always run to provable exactness, while a
/// pathological many-keyword request is hard-capped at
/// `O(budget · keywords)` work instead of enumerating an unbounded
/// cartesian product.
pub const DEFAULT_SEARCH_BUDGET: usize = 100_000;

/// The default scoring fan-out: one shard per available hardware thread.
fn default_scoring_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

impl TemplarConfig {
    /// The configuration used for the headline results of Table III
    /// (NoConstOp, κ = 5, λ = 0.8, log joins on).
    pub fn paper_defaults() -> Self {
        Self::default()
    }

    /// Set `κ`.
    pub fn with_kappa(mut self, kappa: usize) -> Self {
        self.kappa = kappa.max(1);
        self
    }

    /// Set `λ` (clamped to `[0, 1]`).
    pub fn with_lambda(mut self, lambda: f64) -> Self {
        self.lambda = lambda.clamp(0.0, 1.0);
        self
    }

    /// Set the obscurity level.
    pub fn with_obscurity(mut self, obscurity: Obscurity) -> Self {
        self.obscurity = obscurity;
        self
    }

    /// Enable or disable log-driven join weights.
    pub fn with_log_joins(mut self, on: bool) -> Self {
        self.use_log_joins = on;
        self
    }

    /// Set the join-cache capacity (clamped to ≥ 1).
    pub fn with_join_cache_capacity(mut self, capacity: usize) -> Self {
        self.join_cache_capacity = capacity.max(1);
        self
    }

    /// Set the scoring worker-pool size (clamped to ≥ 1; 1 disables the
    /// fan-out entirely).
    pub fn with_scoring_threads(mut self, threads: usize) -> Self {
        self.scoring_threads = threads.max(1);
        self
    }

    /// Set the best-first search budget (clamped to ≥ 1).  Use
    /// `usize::MAX` for an effectively unbounded, always-exact search.
    pub fn with_search_budget(mut self, budget: usize) -> Self {
        self.search_budget = budget.max(1);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let c = TemplarConfig::paper_defaults();
        assert_eq!(c.kappa, 5);
        assert!((c.lambda - 0.8).abs() < 1e-12);
        assert_eq!(c.obscurity, Obscurity::NoConstOp);
        assert!(c.use_log_joins);
    }

    #[test]
    fn builder_methods_clamp_inputs() {
        let c = TemplarConfig::default()
            .with_kappa(0)
            .with_lambda(2.0)
            .with_scoring_threads(0);
        assert_eq!(c.kappa, 1);
        assert_eq!(c.lambda, 1.0);
        assert_eq!(c.scoring_threads, 1);
    }

    #[test]
    fn scoring_threads_default_to_available_parallelism() {
        assert!(TemplarConfig::default().scoring_threads >= 1);
    }

    #[test]
    fn obscurity_names() {
        assert_eq!(Obscurity::Full.name(), "Full");
        assert_eq!(Obscurity::NoConstOp.name(), "NoConstOp");
        assert_eq!(Obscurity::ALL.len(), 3);
    }
}
