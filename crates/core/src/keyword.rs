//! Keyword mapping (Section V, Algorithms 1–3).
//!
//! The keyword mapper receives keywords and parser metadata from the host
//! NLIDB, retrieves candidate query-fragment mappings from the database
//! (Algorithm 2), scores and prunes them (Algorithm 3), and finally combines
//! them into ranked *configurations* whose score blends word similarity with
//! the query-log evidence stored in the QFG (Section V-C).

use crate::config::TemplarConfig;
use crate::fragment::{QueryContext, QueryFragment};
use crate::qfg::{FragmentId, QueryFragmentGraph};
use nlp::{contains_number, extract_numbers, tokenize_lower, SimilarityModel};
use relational::{AttributeRef, Database};
use serde::{Deserialize, Serialize};
use sqlparse::{Aggregate, BinOp, ColumnRef, Expr, Literal, Predicate};

/// A keyword phrase extracted from the NLQ by the host NLIDB.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Keyword {
    /// The keyword text (possibly multiple words, e.g. `"after 2000"`).
    pub text: String,
}

impl Keyword {
    /// Construct a keyword.
    pub fn new(text: impl Into<String>) -> Self {
        Keyword { text: text.into() }
    }
}

/// Parser metadata accompanying a keyword (the `M_k` tuple of Section III-C).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KeywordMetadata {
    /// The clause context `τ` the mapped fragment should live in.
    pub context: QueryContext,
    /// The predicate comparison operator `ω`, when the NLQ implies one
    /// (e.g. *after* ⇒ `>`).
    pub op: Option<BinOp>,
    /// The ordered aggregation functions `F` to apply to the mapping.
    pub aggregates: Vec<Aggregate>,
    /// `g`: whether the mapping should be grouped.
    pub group_by: bool,
}

impl KeywordMetadata {
    /// Metadata for a plain projection keyword.
    pub fn select() -> Self {
        KeywordMetadata {
            context: QueryContext::Select,
            op: None,
            aggregates: Vec::new(),
            group_by: false,
        }
    }

    /// Metadata for a value / predicate keyword.
    pub fn filter() -> Self {
        KeywordMetadata {
            context: QueryContext::Where,
            op: None,
            aggregates: Vec::new(),
            group_by: false,
        }
    }

    /// Metadata for a predicate keyword with an explicit operator.
    pub fn filter_with_op(op: BinOp) -> Self {
        KeywordMetadata {
            op: Some(op),
            ..Self::filter()
        }
    }

    /// Metadata for a relation keyword (FROM context).
    pub fn from_clause() -> Self {
        KeywordMetadata {
            context: QueryContext::From,
            op: None,
            aggregates: Vec::new(),
            group_by: false,
        }
    }

    /// Attach aggregation functions.
    pub fn with_aggregates(mut self, aggregates: Vec<Aggregate>) -> Self {
        self.aggregates = aggregates;
        self
    }

    /// Mark the mapping as grouped.
    pub fn with_group_by(mut self) -> Self {
        self.group_by = true;
        self
    }
}

/// The database element a keyword was mapped to.  This is the structured
/// counterpart of a query fragment: the NLIDB uses it to assemble the final
/// SQL, while [`MappedElement::fragment`] produces the textual fragment used
/// for QFG lookups.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MappedElement {
    /// A relation (FROM context).
    Relation(String),
    /// A projected attribute, possibly aggregated and/or grouped.
    Attribute {
        /// The attribute.
        attr: AttributeRef,
        /// Aggregation functions applied to it (outermost last).
        aggregates: Vec<Aggregate>,
        /// Whether the query should group by this attribute.
        group_by: bool,
    },
    /// A selection predicate `attr op value`.
    Predicate {
        /// The constrained attribute.
        attr: AttributeRef,
        /// The comparison operator.
        op: BinOp,
        /// The literal value.
        value: Literal,
    },
}

impl MappedElement {
    /// The relation this element refers to.
    pub fn relation(&self) -> &str {
        match self {
            MappedElement::Relation(r) => r,
            MappedElement::Attribute { attr, .. } | MappedElement::Predicate { attr, .. } => {
                &attr.relation
            }
        }
    }

    /// The query fragment representing this element at an obscurity level.
    pub fn fragment(&self, config: &TemplarConfig) -> QueryFragment {
        match self {
            MappedElement::Relation(r) => QueryFragment::relation(r),
            MappedElement::Attribute {
                attr, aggregates, ..
            } => QueryFragment::attribute(attr, aggregates.first().copied(), QueryContext::Select),
            MappedElement::Predicate { attr, op, value } => {
                QueryFragment::predicate(attr, *op, value, config.obscurity)
            }
        }
    }

    /// True when the element is a relation mapping (FROM context).
    pub fn is_relation(&self) -> bool {
        matches!(self, MappedElement::Relation(_))
    }

    /// The SQL predicate for a predicate element (used by the NLIDB when
    /// constructing the final query).
    pub fn to_predicate(&self, qualifier: &str) -> Option<Predicate> {
        match self {
            MappedElement::Predicate { attr, op, value } => Some(Predicate::Compare {
                left: Expr::Column(ColumnRef::qualified(qualifier, attr.attribute.clone())),
                op: *op,
                right: Expr::Literal(value.clone()),
            }),
            _ => None,
        }
    }
}

/// A scored keyword-to-element mapping (Definition 4).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MappingCandidate {
    /// The keyword being mapped.
    pub keyword: Keyword,
    /// The database element it is mapped to.
    pub element: MappedElement,
    /// The similarity score `σ ∈ [0, 1]`.
    pub score: f64,
}

/// A configuration (Definition 5): one mapping per keyword, plus its scores.
///
/// Every component entering the final λ-blend is carried individually, so a
/// caller (or a wire client holding an `Explanation`) can recompute `score`
/// from the parts: `Score_QFG` is the log-popularity component when the
/// configuration has fewer than two non-relation fragments (`qfg_pairs ==
/// 0`) and the pairwise-Dice component otherwise, and
/// `score = λ·Score_σ + (1−λ)·Score_QFG`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Configuration {
    /// One mapping per keyword, in the order the keywords were given.
    pub mappings: Vec<MappingCandidate>,
    /// The word-similarity score `Score_σ` (geometric mean of the σ's).
    pub sigma_score: f64,
    /// The query-log-driven score `Score_QFG`.
    pub qfg_score: f64,
    /// Log-popularity component: mean normalised occurrence frequency of the
    /// configuration's non-relation fragments in the query log.
    pub log_popularity: f64,
    /// Co-occurrence component: the smoothed geometric aggregation of the
    /// pairwise Dice coefficients (Section V-C.2); 0 when `qfg_pairs == 0`.
    pub dice_cooccurrence: f64,
    /// Number of fragment pairs behind `dice_cooccurrence`.  When 0, the
    /// log-popularity fallback is the effective `Score_QFG`.
    pub qfg_pairs: usize,
    /// The λ this configuration was scored under.
    pub lambda: f64,
    /// The final combined score `λ·Score_σ + (1−λ)·Score_QFG`.
    pub score: f64,
}

impl Configuration {
    /// The relations referenced by the configuration (with multiplicity, in
    /// mapping order) — the bag handed to join path inference.
    pub fn relation_bag(&self) -> Vec<String> {
        self.mappings
            .iter()
            .map(|m| m.element.relation().to_string())
            .collect()
    }

    /// The attributes referenced by the configuration (with multiplicity).
    pub fn attribute_bag(&self) -> Vec<AttributeRef> {
        self.mappings
            .iter()
            .filter_map(|m| match &m.element {
                MappedElement::Attribute { attr, .. } | MappedElement::Predicate { attr, .. } => {
                    Some(attr.clone())
                }
                MappedElement::Relation(_) => None,
            })
            .collect()
    }
}

/// The keyword mapper: executes `MAPKEYWORDS` (Algorithm 1).
pub struct KeywordMapper<'a> {
    db: &'a Database,
    qfg: &'a QueryFragmentGraph,
    similarity: &'a dyn SimilarityModel,
    config: &'a TemplarConfig,
}

impl<'a> KeywordMapper<'a> {
    /// Create a mapper over a database, QFG, similarity model and config.
    pub fn new(
        db: &'a Database,
        qfg: &'a QueryFragmentGraph,
        similarity: &'a dyn SimilarityModel,
        config: &'a TemplarConfig,
    ) -> Self {
        KeywordMapper {
            db,
            qfg,
            similarity,
            config,
        }
    }

    /// `MAPKEYWORDS` (Algorithm 1): map every keyword to candidates, prune,
    /// and return ranked configurations.
    pub fn map_keywords(&self, keywords: &[(Keyword, KeywordMetadata)]) -> Vec<Configuration> {
        if keywords.is_empty() {
            return Vec::new();
        }
        let mut per_keyword: Vec<Vec<MappingCandidate>> = Vec::with_capacity(keywords.len());
        for (kw, meta) in keywords {
            let candidates = self.keyword_candidates(kw, meta);
            let pruned = self.score_and_prune(kw, candidates);
            if pruned.is_empty() {
                // A keyword with no candidates would zero out every
                // configuration; keep going with the remaining keywords so
                // that the NLIDB can still produce a (partial) query.
                continue;
            }
            per_keyword.push(pruned);
        }
        if per_keyword.is_empty() {
            return Vec::new();
        }
        self.generate_and_score_configurations(&per_keyword)
    }

    /// `KEYWORDCANDS` (Algorithm 2).
    pub fn keyword_candidates(
        &self,
        keyword: &Keyword,
        meta: &KeywordMetadata,
    ) -> Vec<MappedElement> {
        let mut candidates = Vec::new();
        if contains_number(&keyword.text) {
            let Some(number) = extract_numbers(&keyword.text).into_iter().next() else {
                return candidates;
            };
            let op = meta
                .op
                .or_else(|| self.operator_from_words(&keyword.text))
                .unwrap_or(BinOp::Eq);
            for attr in self.db.numeric_attrs_satisfying(op, number) {
                candidates.push(MappedElement::Predicate {
                    attr,
                    op,
                    value: Literal::Number(number),
                });
            }
        } else if meta.context == QueryContext::From {
            for rel in self.db.relation_names() {
                candidates.push(MappedElement::Relation(rel.to_string()));
            }
        } else if meta.context == QueryContext::Select {
            for attr in self.db.attribute_refs() {
                candidates.push(MappedElement::Attribute {
                    attr,
                    aggregates: meta.aggregates.clone(),
                    group_by: meta.group_by,
                });
            }
        } else {
            // Full-text search over text attribute values, removing keyword
            // tokens that merely repeat schema element names (Section V-A).
            let ignore = self.schema_word_tokens(&keyword.text);
            let mut matches = self.db.text_search(&keyword.text, &[]);
            if !ignore.is_empty() {
                matches.extend(self.db.text_search(&keyword.text, &ignore));
            }
            matches.sort();
            matches.dedup();
            for m in matches {
                candidates.push(MappedElement::Predicate {
                    attr: m.attribute,
                    op: meta.op.unwrap_or(BinOp::Eq),
                    value: Literal::String(m.value),
                });
            }
        }
        candidates
    }

    /// Keyword tokens that match a relation or attribute name of the schema
    /// (these are removed from full-text queries so that `movie Saving
    /// Private Ryan` can match a value of the `movie` relation).
    fn schema_word_tokens(&self, keyword: &str) -> Vec<String> {
        let mut schema_words: Vec<String> = Vec::new();
        for rel in self.db.relation_names() {
            schema_words.extend(nlp::split_identifier(rel));
        }
        for attr in self.db.attribute_refs() {
            schema_words.extend(nlp::split_identifier(&attr.attribute));
        }
        let schema_stems: std::collections::HashSet<String> =
            schema_words.iter().map(|w| nlp::porter_stem(w)).collect();
        tokenize_lower(keyword)
            .into_iter()
            .filter(|t| schema_stems.contains(&nlp::porter_stem(t)))
            .collect()
    }

    fn operator_from_words(&self, keyword: &str) -> Option<BinOp> {
        tokenize_lower(keyword)
            .iter()
            .find_map(|w| BinOp::from_word(w))
    }

    /// `SCOREANDPRUNE` (Algorithm 3).
    pub fn score_and_prune(
        &self,
        keyword: &Keyword,
        candidates: Vec<MappedElement>,
    ) -> Vec<MappingCandidate> {
        // The tie-break key is derived once per candidate, not re-formatted
        // inside every comparison of the sort.
        let mut scored: Vec<(MappingCandidate, String)> = candidates
            .into_iter()
            .map(|element| {
                let score = self.score_candidate(keyword, &element);
                let candidate = MappingCandidate {
                    keyword: keyword.clone(),
                    element,
                    score,
                };
                let key = candidate_sort_key(&candidate);
                (candidate, key)
            })
            .collect();
        scored.sort_by(|a, b| {
            b.0.score
                .partial_cmp(&a.0.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.1.cmp(&b.1))
        });
        self.prune(scored.into_iter().map(|(c, _)| c).collect())
    }

    /// The σ score of a single candidate.
    fn score_candidate(&self, keyword: &Keyword, element: &MappedElement) -> f64 {
        if contains_number(&keyword.text) {
            // sim_num: keep the candidate only if its predicate selects rows;
            // then compare the textual remainder of the keyword.
            let MappedElement::Predicate { attr, op, value } = element else {
                return self.config.epsilon;
            };
            let pred = Predicate::Compare {
                left: Expr::Column(ColumnRef::new(attr.attribute.clone())),
                op: *op,
                right: Expr::Literal(value.clone()),
            };
            if !self.db.predicate_nonempty(&attr.relation, &pred) {
                return self.config.epsilon;
            }
            let text_rest = self.non_numeric_text(&keyword.text);
            if text_rest.is_empty() {
                // Nothing left to compare: all matching numeric attributes
                // are equally plausible from word similarity alone.
                return 0.5;
            }
            key_attribute_penalty(attr) * self.attribute_similarity(&text_rest, attr)
        } else {
            match element {
                MappedElement::Relation(r) => self.similarity.similarity(&keyword.text, r),
                MappedElement::Attribute {
                    attr, aggregates, ..
                } => {
                    // Surrogate keys are essentially never the projection a
                    // user asks for by name; discount them unless they are
                    // being aggregated (COUNT over a key is idiomatic SQL).
                    let penalty = if aggregates.is_empty() {
                        key_attribute_penalty(attr)
                    } else {
                        1.0
                    };
                    penalty * self.attribute_similarity(&keyword.text, attr)
                }
                MappedElement::Predicate { attr, value, .. } => {
                    let value_text = match value {
                        Literal::String(s) => s.clone(),
                        other => other.to_string(),
                    };
                    let value_sim = self.similarity.similarity(&keyword.text, &value_text);
                    let attr_sim = self.attribute_similarity(&keyword.text, attr);
                    value_sim.max(0.9 * attr_sim)
                }
            }
        }
    }

    /// Similarity between a keyword and an attribute: a blend of the
    /// attribute-name match and the relation-name match, mirroring how the
    /// Pipeline baseline of the paper scores a column against both its own
    /// name and its table's name.  The attribute name dominates so that
    /// different attributes of the same relation remain distinguishable.
    fn attribute_similarity(&self, keyword: &str, attr: &AttributeRef) -> f64 {
        let attr_sim = self.similarity.similarity(keyword, &attr.attribute);
        let rel_sim = self.similarity.similarity(keyword, &attr.relation);
        (0.6 * attr_sim + 0.4 * rel_sim).clamp(0.0, 1.0)
    }

    /// The keyword text with numeric tokens and operator words removed
    /// (`s_text` in Algorithm 3).
    fn non_numeric_text(&self, keyword: &str) -> String {
        tokenize_lower(keyword)
            .into_iter()
            .filter(|t| t.parse::<f64>().is_err() && BinOp::from_word(t).is_none())
            .collect::<Vec<_>>()
            .join(" ")
    }

    /// The PRUNE procedure of Algorithm 3.
    fn prune(&self, mut scored: Vec<MappingCandidate>) -> Vec<MappingCandidate> {
        if scored.is_empty() {
            return scored;
        }
        let exact_threshold = 1.0 - self.config.epsilon;
        // The list is sorted by score descending, so exact matches are a
        // prefix — keeping them is a truncation, not a filtered re-clone.
        let exact_len = scored
            .iter()
            .take_while(|c| c.score >= exact_threshold)
            .count();
        if exact_len > 0 {
            scored.truncate(exact_len);
            return scored;
        }
        let kappa = self.config.kappa;
        if scored.len() <= kappa {
            return scored;
        }
        let cutoff = scored[kappa - 1].score;
        scored
            .into_iter()
            .enumerate()
            .filter(|(i, c)| *i < kappa || (c.score > 0.0 && (c.score - cutoff).abs() < 1e-12))
            .map(|(_, c)| c)
            .collect()
    }

    /// Generate the cartesian product of per-keyword candidates and score
    /// every configuration (Section V-C).
    ///
    /// Candidates are resolved to interned [`FragmentId`]s *once per
    /// request*; the product is enumerated as index tuples (no candidate
    /// clones) and scored over id slices — pure array arithmetic against
    /// the columnar QFG — sharded across `TemplarConfig::scoring_threads`
    /// workers.  Only the winning configurations are materialized.
    fn generate_and_score_configurations(
        &self,
        per_keyword: &[Vec<MappingCandidate>],
    ) -> Vec<Configuration> {
        const MAX_GENERATED: usize = 5000;
        let resolved: Vec<Vec<ResolvedCandidate>> = per_keyword
            .iter()
            .map(|candidates| {
                candidates
                    .iter()
                    .map(|c| self.resolve_candidate(c))
                    .collect()
            })
            .collect();
        let mut tuples: Vec<Vec<u32>> = vec![Vec::new()];
        for candidates in per_keyword {
            let mut next = Vec::with_capacity(tuples.len() * candidates.len());
            'fill: for partial in &tuples {
                for index in 0..candidates.len() as u32 {
                    let mut extended = Vec::with_capacity(partial.len() + 1);
                    extended.extend_from_slice(partial);
                    extended.push(index);
                    next.push(extended);
                    if next.len() >= MAX_GENERATED {
                        break 'fill;
                    }
                }
            }
            tuples = next;
        }
        let scorer = TupleScorer {
            qfg: self.qfg,
            lambda: self.config.lambda,
            resolved: &resolved,
        };
        let mut scored = scorer.score_all(tuples, self.config.scoring_threads);
        scored.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                // The joined key is only materialized on an exact score tie,
                // like the fragment-keyed implementation before it.
                .then_with(|| {
                    joined_sort_key(&resolved, &a.indices)
                        .cmp(&joined_sort_key(&resolved, &b.indices))
                })
        });
        scored.truncate(self.config.max_configurations);
        scored
            .into_iter()
            .map(|s| {
                let mappings: Vec<MappingCandidate> = s
                    .indices
                    .iter()
                    .enumerate()
                    .map(|(k, &i)| per_keyword[k][i as usize].clone())
                    .collect();
                Configuration {
                    mappings,
                    sigma_score: s.sigma,
                    qfg_score: s.qfg_score(),
                    log_popularity: s.log_popularity,
                    dice_cooccurrence: s.dice,
                    qfg_pairs: s.pairs,
                    lambda: self.config.lambda,
                    score: s.score,
                }
            })
            .collect()
    }

    /// Compute `Score_σ`, `Score_QFG` and the λ-combination for one
    /// configuration, retaining each component for explanations.  Runs the
    /// same id-based arithmetic as the batched scoring path, so a
    /// configuration scored here can never diverge from the ranking.
    pub fn score_configuration(&self, mappings: Vec<MappingCandidate>) -> Configuration {
        let sigma_score = geometric_mean(mappings.iter().map(|m| m.score));
        let slots: Vec<FragmentSlot> = mappings
            .iter()
            .filter(|m| !m.element.is_relation())
            .map(|m| self.resolve_slot(&m.element))
            .collect();
        let qfg = qfg_breakdown(self.qfg, &slots, mappings.len());
        let qfg_score = if qfg.pairs == 0 {
            qfg.log_popularity
        } else {
            qfg.dice
        };
        let lambda = self.config.lambda;
        let score = lambda * sigma_score + (1.0 - lambda) * qfg_score;
        Configuration {
            mappings,
            sigma_score,
            qfg_score,
            log_popularity: qfg.log_popularity,
            dice_cooccurrence: qfg.dice,
            qfg_pairs: qfg.pairs,
            lambda,
            score,
        }
    }

    /// Resolve one pruned candidate to the columnar scoring domain: its σ,
    /// its interned fragment id and its deterministic tie-break key.
    fn resolve_candidate(&self, candidate: &MappingCandidate) -> ResolvedCandidate {
        ResolvedCandidate {
            sigma: candidate.score,
            slot: self.resolve_slot(&candidate.element),
            sort_key: candidate_sort_key(candidate),
        }
    }

    /// Resolve a mapped element's query fragment to its [`FragmentId`].
    fn resolve_slot(&self, element: &MappedElement) -> FragmentSlot {
        if element.is_relation() {
            return FragmentSlot::Relation;
        }
        match self.qfg.lookup(&element.fragment(self.config)) {
            Some(id) => FragmentSlot::Known(id),
            None => FragmentSlot::Unknown,
        }
    }
}

/// How a candidate participates in `Score_QFG`, resolved once per request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FragmentSlot {
    /// A FROM-context mapping — excluded from the QFG score (Section V-C.2).
    Relation,
    /// A non-relation fragment present in the graph.
    Known(FragmentId),
    /// A non-relation fragment the log has never seen (`n_v = 0`).
    Unknown,
}

/// A pruned candidate's request-scoped resolution.
struct ResolvedCandidate {
    sigma: f64,
    slot: FragmentSlot,
    sort_key: String,
}

/// One scored index tuple: the candidate indices (one per keyword, in
/// keyword order) plus every component of the λ-blend.
struct ScoredTuple {
    indices: Vec<u32>,
    sigma: f64,
    log_popularity: f64,
    dice: f64,
    pairs: usize,
    score: f64,
}

/// The deterministic tie-break key of an index tuple: its candidates' keys
/// joined with `|` (identical to the old per-configuration key).
fn joined_sort_key(resolved: &[Vec<ResolvedCandidate>], indices: &[u32]) -> String {
    let mut key = String::new();
    for (k, &i) in indices.iter().enumerate() {
        if k > 0 {
            key.push('|');
        }
        key.push_str(&resolved[k][i as usize].sort_key);
    }
    key
}

impl ScoredTuple {
    fn qfg_score(&self) -> f64 {
        if self.pairs == 0 {
            self.log_popularity
        } else {
            self.dice
        }
    }
}

/// Scores index tuples against the columnar QFG.  Holds only `Sync` borrows
/// (the immutable graph and the per-request resolution tables), so shards
/// can fan out over scoped threads without synchronization.
struct TupleScorer<'a> {
    qfg: &'a QueryFragmentGraph,
    lambda: f64,
    resolved: &'a [Vec<ResolvedCandidate>],
}

impl TupleScorer<'_> {
    /// Minimum number of tuples a worker shard should own; batches smaller
    /// than two shards' worth are scored inline (thread spawn latency would
    /// dwarf the arithmetic).
    const SHARD_MIN: usize = 1024;

    fn score_all(&self, tuples: Vec<Vec<u32>>, threads: usize) -> Vec<ScoredTuple> {
        let shard_count = threads
            .max(1)
            .min(tuples.len().div_ceil(Self::SHARD_MIN).max(1));
        if shard_count <= 1 {
            return tuples.into_iter().map(|t| self.score(t)).collect();
        }
        let shard_len = tuples.len().div_ceil(shard_count);
        let mut shards: Vec<Vec<Vec<u32>>> = Vec::with_capacity(shard_count);
        let mut rest = tuples;
        while rest.len() > shard_len {
            let tail = rest.split_off(shard_len);
            shards.push(std::mem::replace(&mut rest, tail));
        }
        shards.push(rest);
        // Rayon-style scoped fan-out: shards are moved into scoped workers
        // and the results are reassembled in shard order, so the outcome is
        // byte-identical to the serial path.
        std::thread::scope(|scope| {
            let handles: Vec<_> = shards
                .into_iter()
                .map(|shard| {
                    scope
                        .spawn(move || shard.into_iter().map(|t| self.score(t)).collect::<Vec<_>>())
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("configuration scoring shard panicked"))
                .collect()
        })
    }

    fn score(&self, indices: Vec<u32>) -> ScoredTuple {
        let sigma = geometric_mean(
            indices
                .iter()
                .enumerate()
                .map(|(k, &i)| self.resolved[k][i as usize].sigma),
        );
        let slots: Vec<FragmentSlot> = indices
            .iter()
            .enumerate()
            .map(|(k, &i)| self.resolved[k][i as usize].slot)
            .filter(|slot| *slot != FragmentSlot::Relation)
            .collect();
        let breakdown = qfg_breakdown(self.qfg, &slots, indices.len());
        let qfg_score = if breakdown.pairs == 0 {
            breakdown.log_popularity
        } else {
            breakdown.dice
        };
        let score = self.lambda * sigma + (1.0 - self.lambda) * qfg_score;
        ScoredTuple {
            indices,
            sigma,
            log_popularity: breakdown.log_popularity,
            dice: breakdown.dice,
            pairs: breakdown.pairs,
            score,
        }
    }
}

/// `Score_QFG`, decomposed: the geometric aggregation of the Dice
/// coefficients of all pairs of non-relation fragments in the configuration
/// (Section V-C.2).  With fewer than two non-relation fragments there are no
/// pairs; the effective score falls back to the normalised occurrence
/// frequency of the fragments so that log evidence still contributes.  Both
/// components are returned so explanations can show which one drove the
/// blend.
///
/// Each Dice value is smoothed with a small additive constant before the
/// product is taken.  The paper's plain product would be annihilated by a
/// single never-co-occurring pair even when every other pair carries strong
/// evidence; smoothing preserves the ranking induced by the Dice values
/// while keeping partially-supported configurations comparable.
///
/// `slots` carries the configuration's non-relation fragments as resolved
/// ids; `phi` is the total number of mappings (relations included), exactly
/// as in the fragment-keyed implementation this replaces.
fn qfg_breakdown(qfg: &QueryFragmentGraph, slots: &[FragmentSlot], phi: usize) -> QfgBreakdown {
    /// Additive smoothing applied to each pairwise Dice coefficient.
    const QFG_SMOOTHING: f64 = 0.01;
    let total_queries = qfg.query_count().max(1) as f64;
    let log_popularity = if slots.is_empty() {
        0.0
    } else {
        slots
            .iter()
            .map(|slot| match slot {
                FragmentSlot::Known(id) => qfg.occurrences_by_id(*id) as f64 / total_queries,
                _ => 0.0,
            })
            .sum::<f64>()
            / slots.len() as f64
    };
    if slots.len() < 2 {
        return QfgBreakdown {
            log_popularity,
            dice: 0.0,
            pairs: 0,
        };
    }
    let mut product = 1.0f64;
    let mut pairs = 0usize;
    for i in 0..slots.len() {
        for j in (i + 1)..slots.len() {
            let dice = match (slots[i], slots[j]) {
                (FragmentSlot::Known(a), FragmentSlot::Known(b)) => qfg.dice_by_id(a, b),
                // A fragment absent from the log co-occurs with nothing.
                _ => 0.0,
            };
            product *= (dice + QFG_SMOOTHING).min(1.0);
            pairs += 1;
        }
    }
    QfgBreakdown {
        log_popularity,
        dice: product.powf(1.0 / phi as f64).clamp(0.0, 1.0),
        pairs,
    }
}

/// The two components of `Score_QFG` (internal to scoring; the public
/// decomposition lives on [`Configuration`]).
struct QfgBreakdown {
    log_popularity: f64,
    dice: f64,
    pairs: usize,
}

/// Similarity discount applied to key-like attributes (`id`, `*_id`, and the
/// short surrogate keys `pid` / `aid` / ...): users refer to entities by
/// their names and titles, not by their identifiers, so a key should only win
/// a mapping when the query log (or an aggregate) supports it.
fn key_attribute_penalty(attr: &AttributeRef) -> f64 {
    let name = attr.attribute.to_lowercase();
    let key_like = name == "id"
        || name.ends_with("_id")
        || name == "citing"
        || name == "cited"
        || (name.len() <= 4 && name.ends_with("id"));
    if key_like {
        0.55
    } else {
        1.0
    }
}

/// Geometric mean of an iterator of scores (0 when any score is 0).
pub fn geometric_mean(scores: impl Iterator<Item = f64>) -> f64 {
    let values: Vec<f64> = scores.collect();
    if values.is_empty() {
        return 0.0;
    }
    let product: f64 = values.iter().product();
    if product <= 0.0 {
        0.0
    } else {
        product.powf(1.0 / values.len() as f64)
    }
}

fn candidate_sort_key(c: &MappingCandidate) -> String {
    match &c.element {
        MappedElement::Relation(r) => format!("0:{r}"),
        MappedElement::Attribute { attr, .. } => format!("1:{attr}"),
        MappedElement::Predicate { attr, op, value } => format!("2:{attr}:{}:{value}", op.symbol()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Obscurity;
    use crate::qfg::QueryLog;
    use nlp::TextSimilarity;
    use relational::{DataType, Schema};

    /// A small academic database in the spirit of Figure 1.
    fn academic_db() -> Database {
        let schema = Schema::builder("academic")
            .relation(
                "publication",
                &[
                    ("pid", DataType::Integer),
                    ("title", DataType::Text),
                    ("year", DataType::Integer),
                    ("jid", DataType::Integer),
                ],
                Some("pid"),
            )
            .relation(
                "journal",
                &[("jid", DataType::Integer), ("name", DataType::Text)],
                Some("jid"),
            )
            .foreign_key("publication", "jid", "journal", "jid")
            .build();
        let mut db = Database::new(schema);
        db.insert(
            "publication",
            vec![
                1.into(),
                "Scalable Query Processing".into(),
                2003.into(),
                1.into(),
            ],
        )
        .unwrap();
        db.insert(
            "publication",
            vec![
                2.into(),
                "Interactive Data Exploration".into(),
                1997.into(),
                2.into(),
            ],
        )
        .unwrap();
        db.insert("journal", vec![1.into(), "TKDE".into()]).unwrap();
        db.insert("journal", vec![2.into(), "TMC".into()]).unwrap();
        db
    }

    /// A log in which year predicates co-occur with publication.title, and
    /// journal-name predicates also co-occur with publication.title
    /// (Figure 3a).
    fn academic_log() -> QueryLog {
        let mut sql: Vec<String> = Vec::new();
        for _ in 0..25 {
            sql.push("SELECT j.name FROM journal j".into());
        }
        for _ in 0..5 {
            sql.push("SELECT p.title FROM publication p WHERE p.year > 2003".into());
        }
        for _ in 0..3 {
            sql.push(
                "SELECT p.title FROM journal j, publication p WHERE j.name = 'TMC' AND p.jid = j.jid"
                    .into(),
            );
        }
        QueryLog::from_sql(sql.iter().map(String::as_str)).0
    }

    fn run_mapper(
        keywords: &[(Keyword, KeywordMetadata)],
        config: &TemplarConfig,
    ) -> Vec<Configuration> {
        let db = academic_db();
        let qfg = QueryFragmentGraph::build(&academic_log(), config.obscurity);
        let sim = TextSimilarity::new();
        let mapper = KeywordMapper::new(&db, &qfg, &sim, config);
        mapper.map_keywords(keywords)
    }

    #[test]
    fn numeric_keyword_maps_to_satisfiable_numeric_predicates() {
        let db = academic_db();
        let config = TemplarConfig::default();
        let qfg = QueryFragmentGraph::build(&QueryLog::new(), Obscurity::NoConstOp);
        let sim = TextSimilarity::new();
        let mapper = KeywordMapper::new(&db, &qfg, &sim, &config);
        let kw = Keyword::new("after 2000");
        let meta = KeywordMetadata::filter_with_op(BinOp::Gt);
        let cands = mapper.keyword_candidates(&kw, &meta);
        // year (2003) satisfies "> 2000"; pid/jid values do not.
        assert!(cands.iter().any(|c| matches!(
            c,
            MappedElement::Predicate { attr, op: BinOp::Gt, .. } if attr.attribute == "year"
        )));
        assert!(!cands.iter().any(
            |c| matches!(c, MappedElement::Predicate { attr, .. } if attr.attribute == "pid")
        ));
    }

    #[test]
    fn select_keyword_considers_all_attributes() {
        let db = academic_db();
        let config = TemplarConfig::default();
        let qfg = QueryFragmentGraph::build(&QueryLog::new(), Obscurity::NoConstOp);
        let sim = TextSimilarity::new();
        let mapper = KeywordMapper::new(&db, &qfg, &sim, &config);
        let cands = mapper.keyword_candidates(&Keyword::new("papers"), &KeywordMetadata::select());
        assert_eq!(cands.len(), db.attribute_refs().len());
    }

    #[test]
    fn value_keyword_maps_to_matching_text_values() {
        let db = academic_db();
        let config = TemplarConfig::default();
        let qfg = QueryFragmentGraph::build(&QueryLog::new(), Obscurity::NoConstOp);
        let sim = TextSimilarity::new();
        let mapper = KeywordMapper::new(&db, &qfg, &sim, &config);
        let cands = mapper.keyword_candidates(&Keyword::new("TKDE"), &KeywordMetadata::filter());
        assert_eq!(cands.len(), 1);
        assert!(matches!(
            &cands[0],
            MappedElement::Predicate { attr, value: Literal::String(v), .. }
                if attr.attribute == "name" && v == "TKDE"
        ));
    }

    #[test]
    fn exact_value_matches_prune_everything_else() {
        let db = academic_db();
        let config = TemplarConfig::default();
        let qfg = QueryFragmentGraph::build(&QueryLog::new(), Obscurity::NoConstOp);
        let sim = TextSimilarity::new();
        let mapper = KeywordMapper::new(&db, &qfg, &sim, &config);
        let kw = Keyword::new("TKDE");
        let cands = mapper.keyword_candidates(&kw, &KeywordMetadata::filter());
        let pruned = mapper.score_and_prune(&kw, cands);
        assert_eq!(pruned.len(), 1);
        assert!(pruned[0].score >= 1.0 - config.epsilon);
    }

    #[test]
    fn pruning_respects_kappa_and_keeps_ties() {
        let db = academic_db();
        let config = TemplarConfig::default().with_kappa(2);
        let qfg = QueryFragmentGraph::build(&QueryLog::new(), Obscurity::NoConstOp);
        let sim = TextSimilarity::new();
        let mapper = KeywordMapper::new(&db, &qfg, &sim, &config);
        let kw = Keyword::new("papers");
        let cands = mapper.keyword_candidates(&kw, &KeywordMetadata::select());
        let pruned = mapper.score_and_prune(&kw, cands);
        assert!(pruned.len() >= 2);
        assert!(
            pruned.len() <= 6,
            "tie handling should not explode: {}",
            pruned.len()
        );
        // Sorted by score descending.
        for w in pruned.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }

    #[test]
    fn qfg_breaks_the_papers_ambiguity_in_example_5() {
        // Keywords of Example 5: "papers" (SELECT), "TKDE" (value),
        // "after 1995" (numeric).  With λ = 0.8 the QFG evidence must rank a
        // configuration mapping "papers" -> publication.title above one
        // mapping it to journal.name.
        let config = TemplarConfig::default();
        let keywords = vec![
            (Keyword::new("papers"), KeywordMetadata::select()),
            (Keyword::new("TKDE"), KeywordMetadata::filter()),
            (
                Keyword::new("after 1995"),
                KeywordMetadata::filter_with_op(BinOp::Gt),
            ),
        ];
        let configs = run_mapper(&keywords, &config);
        assert!(!configs.is_empty());
        let best = &configs[0];
        let papers_mapping = &best.mappings[0];
        assert!(
            matches!(
                &papers_mapping.element,
                MappedElement::Attribute { attr, .. }
                    if attr.relation == "publication" && attr.attribute == "title"
            ),
            "best mapping was {:?}",
            papers_mapping.element
        );
        // Scores are all in [0, 1] and the list is sorted.
        for w in configs.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
        for c in &configs {
            assert!((0.0..=1.0).contains(&c.sigma_score));
            assert!((0.0..=1.0).contains(&c.qfg_score));
            assert!((0.0..=1.0).contains(&c.score));
        }
    }

    #[test]
    fn lambda_one_ignores_the_log() {
        // With λ = 1 the ranking is purely similarity-driven, so the QFG
        // score must not affect the final score.
        let config = TemplarConfig::default().with_lambda(1.0);
        let keywords = vec![
            (Keyword::new("papers"), KeywordMetadata::select()),
            (Keyword::new("TKDE"), KeywordMetadata::filter()),
        ];
        let configs = run_mapper(&keywords, &config);
        for c in &configs {
            assert!((c.score - c.sigma_score).abs() < 1e-12);
        }
    }

    #[test]
    fn empty_keyword_list_produces_no_configurations() {
        let config = TemplarConfig::default();
        assert!(run_mapper(&[], &config).is_empty());
    }

    #[test]
    fn relation_bag_and_attribute_bag_reflect_mappings() {
        let config = TemplarConfig::default();
        let keywords = vec![
            (Keyword::new("papers"), KeywordMetadata::select()),
            (Keyword::new("TKDE"), KeywordMetadata::filter()),
        ];
        let configs = run_mapper(&keywords, &config);
        let best = &configs[0];
        let bag = best.relation_bag();
        assert_eq!(bag.len(), 2);
        assert!(bag.contains(&"publication".to_string()) || bag.contains(&"journal".to_string()));
        assert_eq!(best.attribute_bag().len(), 2);
    }

    #[test]
    fn geometric_mean_properties() {
        assert_eq!(geometric_mean([].into_iter()), 0.0);
        assert!((geometric_mean([0.25, 1.0].into_iter()) - 0.5).abs() < 1e-12);
        assert_eq!(geometric_mean([0.5, 0.0].into_iter()), 0.0);
    }

    #[test]
    fn scoring_never_clones_query_fragments() {
        // The id-based hot path is contractually clone-free: candidates are
        // resolved to FragmentIds once per request and every score is pure
        // array arithmetic.  Scoring is pinned to one thread so the
        // thread-local counter observes the entire path.
        let db = academic_db();
        let config = TemplarConfig::default().with_scoring_threads(1);
        let qfg = QueryFragmentGraph::build(&academic_log(), config.obscurity);
        let sim = TextSimilarity::new();
        let mapper = KeywordMapper::new(&db, &qfg, &sim, &config);
        let keywords = vec![
            (Keyword::new("papers"), KeywordMetadata::select()),
            (Keyword::new("TKDE"), KeywordMetadata::filter()),
            (
                Keyword::new("after 1995"),
                KeywordMetadata::filter_with_op(BinOp::Gt),
            ),
        ];
        let before = crate::fragment::clone_counter::current();
        let configs = mapper.map_keywords(&keywords);
        let cloned = crate::fragment::clone_counter::current() - before;
        assert!(!configs.is_empty());
        assert_eq!(
            cloned, 0,
            "MAPKEYWORDS must not clone any QueryFragment; counted {cloned}"
        );
    }

    #[test]
    fn parallel_scoring_matches_single_threaded_scoring() {
        // End-to-end: thread count must never change what MAPKEYWORDS
        // returns.
        let keywords = vec![
            (Keyword::new("papers"), KeywordMetadata::select()),
            (Keyword::new("TKDE"), KeywordMetadata::filter()),
        ];
        let serial = run_mapper(&keywords, &TemplarConfig::default().with_scoring_threads(1));
        let parallel = run_mapper(&keywords, &TemplarConfig::default().with_scoring_threads(8));
        assert_eq!(serial, parallel, "fan-out must not change any result");

        // Shard-level: a batch large enough to actually engage the scoped
        // fan-out produces bit-identical scores in identical order.
        let config = TemplarConfig::default();
        let qfg = QueryFragmentGraph::build(&academic_log(), config.obscurity);
        let title_id = qfg
            .lookup(&QueryFragment::attribute(
                &AttributeRef::new("publication", "title"),
                None,
                QueryContext::Select,
            ))
            .unwrap();
        let per_slot: Vec<ResolvedCandidate> = (0..40)
            .map(|i| ResolvedCandidate {
                sigma: 0.3 + (i as f64) / 100.0,
                slot: if i % 3 == 0 {
                    FragmentSlot::Known(title_id)
                } else if i % 3 == 1 {
                    FragmentSlot::Unknown
                } else {
                    FragmentSlot::Relation
                },
                sort_key: format!("k{i:03}"),
            })
            .collect();
        let resolved = vec![per_slot];
        let scorer = TupleScorer {
            qfg: &qfg,
            lambda: config.lambda,
            resolved: &resolved,
        };
        let tuples: Vec<Vec<u32>> = (0..40u32).cycle().take(2048).map(|i| vec![i]).collect();
        let serial = scorer.score_all(tuples.clone(), 1);
        let sharded = scorer.score_all(tuples, 4);
        assert_eq!(serial.len(), sharded.len());
        for (a, b) in serial.iter().zip(&sharded) {
            assert_eq!(a.indices, b.indices);
            assert_eq!(a.score.to_bits(), b.score.to_bits());
            assert_eq!(a.sigma.to_bits(), b.sigma.to_bits());
        }
    }
}
