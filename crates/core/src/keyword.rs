//! Keyword mapping (Section V, Algorithms 1–3).
//!
//! The keyword mapper receives keywords and parser metadata from the host
//! NLIDB, retrieves candidate query-fragment mappings from the database
//! (Algorithm 2), scores and prunes them (Algorithm 3), and finally combines
//! them into ranked *configurations* whose score blends word similarity with
//! the query-log evidence stored in the QFG (Section V-C).

use crate::config::TemplarConfig;
use crate::fragment::{QueryContext, QueryFragment};
use crate::qfg::{DiceGatherScratch, FragmentId, QueryFragmentGraph, ABSENT_FRAGMENT};
use crate::trace::{Stage, TraceCtx};
use nlp::{contains_number, extract_numbers, tokenize_lower, SimilarityModel};
use relational::{AttributeRef, Database};
use serde::{Deserialize, Serialize};
use sqlparse::{Aggregate, BinOp, ColumnRef, Expr, Literal, Predicate};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering as AtomicOrdering};

/// Additive smoothing applied to each pairwise Dice coefficient of
/// `Score_QFG` (see [`qfg_breakdown`]).
const QFG_SMOOTHING: f64 = 0.01;

/// A keyword phrase extracted from the NLQ by the host NLIDB.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Keyword {
    /// The keyword text (possibly multiple words, e.g. `"after 2000"`).
    pub text: String,
}

impl Keyword {
    /// Construct a keyword.
    pub fn new(text: impl Into<String>) -> Self {
        Keyword { text: text.into() }
    }
}

/// Parser metadata accompanying a keyword (the `M_k` tuple of Section III-C).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KeywordMetadata {
    /// The clause context `τ` the mapped fragment should live in.
    pub context: QueryContext,
    /// The predicate comparison operator `ω`, when the NLQ implies one
    /// (e.g. *after* ⇒ `>`).
    pub op: Option<BinOp>,
    /// The ordered aggregation functions `F` to apply to the mapping.
    pub aggregates: Vec<Aggregate>,
    /// `g`: whether the mapping should be grouped.
    pub group_by: bool,
}

impl KeywordMetadata {
    /// Metadata for a plain projection keyword.
    pub fn select() -> Self {
        KeywordMetadata {
            context: QueryContext::Select,
            op: None,
            aggregates: Vec::new(),
            group_by: false,
        }
    }

    /// Metadata for a value / predicate keyword.
    pub fn filter() -> Self {
        KeywordMetadata {
            context: QueryContext::Where,
            op: None,
            aggregates: Vec::new(),
            group_by: false,
        }
    }

    /// Metadata for a predicate keyword with an explicit operator.
    pub fn filter_with_op(op: BinOp) -> Self {
        KeywordMetadata {
            op: Some(op),
            ..Self::filter()
        }
    }

    /// Metadata for a relation keyword (FROM context).
    pub fn from_clause() -> Self {
        KeywordMetadata {
            context: QueryContext::From,
            op: None,
            aggregates: Vec::new(),
            group_by: false,
        }
    }

    /// Attach aggregation functions.
    pub fn with_aggregates(mut self, aggregates: Vec<Aggregate>) -> Self {
        self.aggregates = aggregates;
        self
    }

    /// Mark the mapping as grouped.
    pub fn with_group_by(mut self) -> Self {
        self.group_by = true;
        self
    }
}

/// The database element a keyword was mapped to.  This is the structured
/// counterpart of a query fragment: the NLIDB uses it to assemble the final
/// SQL, while [`MappedElement::fragment`] produces the textual fragment used
/// for QFG lookups.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MappedElement {
    /// A relation (FROM context).
    Relation(String),
    /// A projected attribute, possibly aggregated and/or grouped.
    Attribute {
        /// The attribute.
        attr: AttributeRef,
        /// Aggregation functions applied to it (outermost last).
        aggregates: Vec<Aggregate>,
        /// Whether the query should group by this attribute.
        group_by: bool,
    },
    /// A selection predicate `attr op value`.
    Predicate {
        /// The constrained attribute.
        attr: AttributeRef,
        /// The comparison operator.
        op: BinOp,
        /// The literal value.
        value: Literal,
    },
}

impl MappedElement {
    /// The relation this element refers to.
    pub fn relation(&self) -> &str {
        match self {
            MappedElement::Relation(r) => r,
            MappedElement::Attribute { attr, .. } | MappedElement::Predicate { attr, .. } => {
                &attr.relation
            }
        }
    }

    /// The query fragment representing this element at an obscurity level.
    pub fn fragment(&self, config: &TemplarConfig) -> QueryFragment {
        match self {
            MappedElement::Relation(r) => QueryFragment::relation(r),
            MappedElement::Attribute {
                attr, aggregates, ..
            } => QueryFragment::attribute(attr, aggregates.first().copied(), QueryContext::Select),
            MappedElement::Predicate { attr, op, value } => {
                QueryFragment::predicate(attr, *op, value, config.obscurity)
            }
        }
    }

    /// True when the element is a relation mapping (FROM context).
    pub fn is_relation(&self) -> bool {
        matches!(self, MappedElement::Relation(_))
    }

    /// The SQL predicate for a predicate element (used by the NLIDB when
    /// constructing the final query).
    pub fn to_predicate(&self, qualifier: &str) -> Option<Predicate> {
        match self {
            MappedElement::Predicate { attr, op, value } => Some(Predicate::Compare {
                left: Expr::Column(ColumnRef::qualified(qualifier, attr.attribute.clone())),
                op: *op,
                right: Expr::Literal(value.clone()),
            }),
            _ => None,
        }
    }
}

/// A scored keyword-to-element mapping (Definition 4).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MappingCandidate {
    /// The keyword being mapped.
    pub keyword: Keyword,
    /// The database element it is mapped to.
    pub element: MappedElement,
    /// The similarity score `σ ∈ [0, 1]`.
    pub score: f64,
}

/// A configuration (Definition 5): one mapping per keyword, plus its scores.
///
/// Every component entering the final λ-blend is carried individually, so a
/// caller (or a wire client holding an `Explanation`) can recompute `score`
/// from the parts: `Score_QFG` is the log-popularity component when the
/// configuration has fewer than two non-relation fragments (`qfg_pairs ==
/// 0`) and the pairwise-Dice component otherwise, and
/// `score = λ·Score_σ + (1−λ)·Score_QFG`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Configuration {
    /// One mapping per keyword, in the order the keywords were given.
    pub mappings: Vec<MappingCandidate>,
    /// The word-similarity score `Score_σ` (geometric mean of the σ's).
    pub sigma_score: f64,
    /// The query-log-driven score `Score_QFG`.
    pub qfg_score: f64,
    /// Log-popularity component: mean normalised occurrence frequency of the
    /// configuration's non-relation fragments in the query log.
    pub log_popularity: f64,
    /// Co-occurrence component: the smoothed geometric aggregation of the
    /// pairwise Dice coefficients (Section V-C.2); 0 when `qfg_pairs == 0`.
    pub dice_cooccurrence: f64,
    /// Number of fragment pairs behind `dice_cooccurrence`.  When 0, the
    /// log-popularity fallback is the effective `Score_QFG`.
    pub qfg_pairs: usize,
    /// The λ this configuration was scored under.
    pub lambda: f64,
    /// The final combined score `λ·Score_σ + (1−λ)·Score_QFG`.
    pub score: f64,
}

impl Configuration {
    /// The relations referenced by the configuration (with multiplicity, in
    /// mapping order) — the bag handed to join path inference.
    pub fn relation_bag(&self) -> Vec<String> {
        self.mappings
            .iter()
            .map(|m| m.element.relation().to_string())
            .collect()
    }

    /// The attributes referenced by the configuration (with multiplicity).
    pub fn attribute_bag(&self) -> Vec<AttributeRef> {
        self.mappings
            .iter()
            .filter_map(|m| match &m.element {
                MappedElement::Attribute { attr, .. } | MappedElement::Predicate { attr, .. } => {
                    Some(attr.clone())
                }
                MappedElement::Relation(_) => None,
            })
            .collect()
    }
}

/// A memo of pruned candidate lists shared *across* requests, layered over
/// `MAPKEYWORDS` by a serving layer to amortize candidate retrieval, σ
/// scoring and pruning over concurrently in-flight translations.
///
/// The pruned list of a `(keyword, metadata)` pair is a pure, deterministic
/// function of the snapshot (database, QFG, similarity model) and the
/// *structural* configuration (κ, ε, obscurity) — none of which per-request
/// overrides (λ, `use_log_joins`, top-k) may change — so a memo scoped to
/// one snapshot returns lists byte-identical to recomputation, and the
/// final ranking cannot diverge from solo execution.  A `get` returning
/// `None` always falls back to computing; `put` offers the freshly computed
/// list for reuse and may drop it (e.g. when the memo is full).
pub trait CandidateMemo: Sync {
    /// The memoized pruned candidate list for a keyword, if present.
    fn get(&self, keyword: &Keyword, meta: &KeywordMetadata) -> Option<Vec<MappingCandidate>>;
    /// Offer a freshly computed pruned list for reuse by concurrent peers.
    fn put(&self, keyword: &Keyword, meta: &KeywordMetadata, pruned: &[MappingCandidate]);
}

/// The keyword mapper: executes `MAPKEYWORDS` (Algorithm 1).
pub struct KeywordMapper<'a> {
    db: &'a Database,
    qfg: &'a QueryFragmentGraph,
    similarity: &'a dyn SimilarityModel,
    config: &'a TemplarConfig,
}

impl<'a> KeywordMapper<'a> {
    /// Create a mapper over a database, QFG, similarity model and config.
    pub fn new(
        db: &'a Database,
        qfg: &'a QueryFragmentGraph,
        similarity: &'a dyn SimilarityModel,
        config: &'a TemplarConfig,
    ) -> Self {
        KeywordMapper {
            db,
            qfg,
            similarity,
            config,
        }
    }

    /// `MAPKEYWORDS` (Algorithm 1): map every keyword to candidates, prune,
    /// and return ranked configurations.
    pub fn map_keywords(&self, keywords: &[(Keyword, KeywordMetadata)]) -> Vec<Configuration> {
        self.map_keywords_with_stats(keywords).0
    }

    /// [`KeywordMapper::map_keywords`] plus the [`SearchStats`] of the
    /// best-first configuration search that ranked the result — how many
    /// complete configurations were scored, how many the admissible bound
    /// proved irrelevant without scoring, and whether the search budget ran
    /// out before exactness was established.
    pub fn map_keywords_with_stats(
        &self,
        keywords: &[(Keyword, KeywordMetadata)],
    ) -> (Vec<Configuration>, SearchStats) {
        self.map_keywords_traced(keywords, TraceCtx::disabled())
    }

    /// [`KeywordMapper::map_keywords_with_stats`] recording per-stage spans
    /// into `trace`: candidate retrieval/pruning under
    /// [`Stage::CandidatePruning`], everything from fragment-id resolution
    /// through the best-first search and materialization under
    /// [`Stage::ConfigSearch`] (with each sharded worker's busy time
    /// reported separately).  The disabled context makes this identical to
    /// the untraced call.
    pub fn map_keywords_traced(
        &self,
        keywords: &[(Keyword, KeywordMetadata)],
        trace: TraceCtx<'_>,
    ) -> (Vec<Configuration>, SearchStats) {
        self.map_keywords_traced_memo(keywords, trace, None)
    }

    /// [`KeywordMapper::map_keywords_traced`] consulting an optional
    /// cross-request [`CandidateMemo`] for the pruned candidate lists.
    /// `None` is the identical solo path; with a memo, lists found there
    /// skip retrieval/scoring/pruning and freshly computed ones are offered
    /// back — the result is byte-identical either way (see the trait docs
    /// for why).
    pub fn map_keywords_traced_memo(
        &self,
        keywords: &[(Keyword, KeywordMetadata)],
        trace: TraceCtx<'_>,
        memo: Option<&dyn CandidateMemo>,
    ) -> (Vec<Configuration>, SearchStats) {
        let per_keyword = {
            let _span = trace.span(Stage::CandidatePruning);
            self.pruned_candidate_lists(keywords, memo)
        };
        if per_keyword.is_empty() {
            return (Vec::new(), SearchStats::default());
        }
        let _span = trace.span(Stage::ConfigSearch);
        let resolved = self.resolve_lists(&per_keyword);
        let search = ConfigurationSearch::new(self.qfg, self.config, &resolved);
        let (scored, stats) = search.run_traced(trace);
        (self.materialize(&per_keyword, scored), stats)
    }

    /// The exhaustive reference enumerator the best-first search replaced:
    /// scores **every** tuple of the cartesian product with the pairwise
    /// [`qfg_breakdown`] and selects the top configurations under the
    /// identical deterministic comparator.  Exponential in the number of
    /// keywords — kept as the executable specification that tests, benches
    /// and validation tooling check the search against (the two are
    /// byte-identical whenever the search completes within its budget), not
    /// as a serving path.
    pub fn map_keywords_exhaustive(
        &self,
        keywords: &[(Keyword, KeywordMetadata)],
    ) -> (Vec<Configuration>, SearchStats) {
        let per_keyword = self.pruned_candidate_lists(keywords, None);
        if per_keyword.is_empty() {
            return (Vec::new(), SearchStats::default());
        }
        let resolved = self.resolve_lists(&per_keyword);
        let scorer = TupleScorer {
            qfg: self.qfg,
            lambda: self.config.lambda,
            resolved: &resolved,
        };
        let (scored, stats) = exhaustive_top_k(&scorer, &resolved, self.config.max_configurations);
        (self.materialize(&per_keyword, scored), stats)
    }

    /// Candidate retrieval + scoring + pruning for every keyword (the
    /// per-keyword half of Algorithm 1).  Keywords with no surviving
    /// candidate are skipped: one unmappable keyword would zero out every
    /// configuration, while the remaining keywords can still produce a
    /// (partial) query.  A [`CandidateMemo`] hit replaces the whole
    /// retrieve/score/prune pass for that keyword.
    fn pruned_candidate_lists(
        &self,
        keywords: &[(Keyword, KeywordMetadata)],
        memo: Option<&dyn CandidateMemo>,
    ) -> Vec<Vec<MappingCandidate>> {
        let mut per_keyword: Vec<Vec<MappingCandidate>> = Vec::with_capacity(keywords.len());
        for (kw, meta) in keywords {
            let pruned = match memo.and_then(|m| m.get(kw, meta)) {
                Some(hit) => hit,
                None => {
                    let candidates = self.keyword_candidates(kw, meta);
                    let pruned = self.score_and_prune(kw, candidates);
                    if let Some(m) = memo {
                        m.put(kw, meta, &pruned);
                    }
                    pruned
                }
            };
            if !pruned.is_empty() {
                per_keyword.push(pruned);
            }
        }
        per_keyword
    }

    /// `KEYWORDCANDS` (Algorithm 2).
    pub fn keyword_candidates(
        &self,
        keyword: &Keyword,
        meta: &KeywordMetadata,
    ) -> Vec<MappedElement> {
        let mut candidates = Vec::new();
        if contains_number(&keyword.text) {
            let Some(number) = extract_numbers(&keyword.text).into_iter().next() else {
                return candidates;
            };
            let op = meta
                .op
                .or_else(|| self.operator_from_words(&keyword.text))
                .unwrap_or(BinOp::Eq);
            for attr in self.db.numeric_attrs_satisfying(op, number) {
                candidates.push(MappedElement::Predicate {
                    attr,
                    op,
                    value: Literal::Number(number),
                });
            }
        } else if meta.context == QueryContext::From {
            for rel in self.db.relation_names() {
                candidates.push(MappedElement::Relation(rel.to_string()));
            }
        } else if meta.context == QueryContext::Select {
            for attr in self.db.attribute_refs() {
                candidates.push(MappedElement::Attribute {
                    attr,
                    aggregates: meta.aggregates.clone(),
                    group_by: meta.group_by,
                });
            }
        } else {
            // Full-text search over text attribute values, removing keyword
            // tokens that merely repeat schema element names (Section V-A).
            let ignore = self.schema_word_tokens(&keyword.text);
            let mut matches = self.db.text_search(&keyword.text, &[]);
            if !ignore.is_empty() {
                matches.extend(self.db.text_search(&keyword.text, &ignore));
            }
            matches.sort();
            matches.dedup();
            for m in matches {
                candidates.push(MappedElement::Predicate {
                    attr: m.attribute,
                    op: meta.op.unwrap_or(BinOp::Eq),
                    value: Literal::String(m.value),
                });
            }
        }
        candidates
    }

    /// Keyword tokens that match a relation or attribute name of the schema
    /// (these are removed from full-text queries so that `movie Saving
    /// Private Ryan` can match a value of the `movie` relation).
    fn schema_word_tokens(&self, keyword: &str) -> Vec<String> {
        let mut schema_words: Vec<String> = Vec::new();
        for rel in self.db.relation_names() {
            schema_words.extend(nlp::split_identifier(rel));
        }
        for attr in self.db.attribute_refs() {
            schema_words.extend(nlp::split_identifier(&attr.attribute));
        }
        let schema_stems: std::collections::HashSet<String> =
            schema_words.iter().map(|w| nlp::porter_stem(w)).collect();
        tokenize_lower(keyword)
            .into_iter()
            .filter(|t| schema_stems.contains(&nlp::porter_stem(t)))
            .collect()
    }

    fn operator_from_words(&self, keyword: &str) -> Option<BinOp> {
        tokenize_lower(keyword)
            .iter()
            .find_map(|w| BinOp::from_word(w))
    }

    /// `SCOREANDPRUNE` (Algorithm 3).
    pub fn score_and_prune(
        &self,
        keyword: &Keyword,
        candidates: Vec<MappedElement>,
    ) -> Vec<MappingCandidate> {
        // The tie-break key is derived once per candidate, not re-formatted
        // inside every comparison of the sort.
        let mut scored: Vec<(MappingCandidate, String)> = candidates
            .into_iter()
            .map(|element| {
                let score = self.score_candidate(keyword, &element);
                let candidate = MappingCandidate {
                    keyword: keyword.clone(),
                    element,
                    score,
                };
                let key = candidate_sort_key(&candidate);
                (candidate, key)
            })
            .collect();
        scored.sort_by(|a, b| {
            b.0.score
                .partial_cmp(&a.0.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.1.cmp(&b.1))
        });
        self.prune(scored.into_iter().map(|(c, _)| c).collect())
    }

    /// The σ score of a single candidate.
    fn score_candidate(&self, keyword: &Keyword, element: &MappedElement) -> f64 {
        if contains_number(&keyword.text) {
            // sim_num: keep the candidate only if its predicate selects rows;
            // then compare the textual remainder of the keyword.
            let MappedElement::Predicate { attr, op, value } = element else {
                return self.config.epsilon;
            };
            let pred = Predicate::Compare {
                left: Expr::Column(ColumnRef::new(attr.attribute.clone())),
                op: *op,
                right: Expr::Literal(value.clone()),
            };
            if !self.db.predicate_nonempty(&attr.relation, &pred) {
                return self.config.epsilon;
            }
            let text_rest = self.non_numeric_text(&keyword.text);
            if text_rest.is_empty() {
                // Nothing left to compare: all matching numeric attributes
                // are equally plausible from word similarity alone.
                return 0.5;
            }
            key_attribute_penalty(attr) * self.attribute_similarity(&text_rest, attr)
        } else {
            match element {
                MappedElement::Relation(r) => self.similarity.similarity(&keyword.text, r),
                MappedElement::Attribute {
                    attr, aggregates, ..
                } => {
                    // Surrogate keys are essentially never the projection a
                    // user asks for by name; discount them unless they are
                    // being aggregated (COUNT over a key is idiomatic SQL).
                    let penalty = if aggregates.is_empty() {
                        key_attribute_penalty(attr)
                    } else {
                        1.0
                    };
                    penalty * self.attribute_similarity(&keyword.text, attr)
                }
                MappedElement::Predicate { attr, value, .. } => {
                    let value_text = match value {
                        Literal::String(s) => s.clone(),
                        other => other.to_string(),
                    };
                    let value_sim = self.similarity.similarity(&keyword.text, &value_text);
                    let attr_sim = self.attribute_similarity(&keyword.text, attr);
                    value_sim.max(0.9 * attr_sim)
                }
            }
        }
    }

    /// Similarity between a keyword and an attribute: a blend of the
    /// attribute-name match and the relation-name match, mirroring how the
    /// Pipeline baseline of the paper scores a column against both its own
    /// name and its table's name.  The attribute name dominates so that
    /// different attributes of the same relation remain distinguishable.
    fn attribute_similarity(&self, keyword: &str, attr: &AttributeRef) -> f64 {
        let attr_sim = self.similarity.similarity(keyword, &attr.attribute);
        let rel_sim = self.similarity.similarity(keyword, &attr.relation);
        (0.6 * attr_sim + 0.4 * rel_sim).clamp(0.0, 1.0)
    }

    /// The keyword text with numeric tokens and operator words removed
    /// (`s_text` in Algorithm 3).
    fn non_numeric_text(&self, keyword: &str) -> String {
        tokenize_lower(keyword)
            .into_iter()
            .filter(|t| t.parse::<f64>().is_err() && BinOp::from_word(t).is_none())
            .collect::<Vec<_>>()
            .join(" ")
    }

    /// The PRUNE procedure of Algorithm 3.
    fn prune(&self, mut scored: Vec<MappingCandidate>) -> Vec<MappingCandidate> {
        if scored.is_empty() {
            return scored;
        }
        let exact_threshold = 1.0 - self.config.epsilon;
        // The list is sorted by score descending, so exact matches are a
        // prefix — keeping them is a truncation, not a filtered re-clone.
        let exact_len = scored
            .iter()
            .take_while(|c| c.score >= exact_threshold)
            .count();
        if exact_len > 0 {
            scored.truncate(exact_len);
            return scored;
        }
        let kappa = self.config.kappa;
        if scored.len() <= kappa {
            return scored;
        }
        let cutoff = scored[kappa - 1].score;
        scored
            .into_iter()
            .enumerate()
            .filter(|(i, c)| *i < kappa || (c.score > 0.0 && (c.score - cutoff).abs() < 1e-12))
            .map(|(_, c)| c)
            .collect()
    }

    /// Materialize winning index tuples into [`Configuration`]s (the only
    /// point at which candidates are cloned).
    fn materialize(
        &self,
        per_keyword: &[Vec<MappingCandidate>],
        scored: Vec<ScoredTuple>,
    ) -> Vec<Configuration> {
        scored
            .into_iter()
            .map(|s| {
                let mappings: Vec<MappingCandidate> = s
                    .indices
                    .iter()
                    .enumerate()
                    .map(|(k, &i)| per_keyword[k][i as usize].clone())
                    .collect();
                Configuration {
                    mappings,
                    sigma_score: s.sigma,
                    qfg_score: s.qfg_score(),
                    log_popularity: s.log_popularity,
                    dice_cooccurrence: s.dice,
                    qfg_pairs: s.pairs,
                    lambda: self.config.lambda,
                    score: s.score,
                }
            })
            .collect()
    }

    /// Resolve every pruned candidate list to the columnar scoring domain
    /// (one pass per request; the search never touches a [`QueryFragment`]
    /// again).  The per-candidate *pair-factor cap* — the admissible upper
    /// bound on any smoothed Dice factor the candidate can contribute to a
    /// configuration — is derived here because it needs a cross-list view:
    /// a fragment offered for two different keywords can be paired with
    /// itself (`Dice = 1`), so its cap must not rely on the `max_dice`
    /// column, which only covers *other* fragments.
    fn resolve_lists(&self, per_keyword: &[Vec<MappingCandidate>]) -> Vec<Vec<ResolvedCandidate>> {
        let mut resolved: Vec<Vec<ResolvedCandidate>> = per_keyword
            .iter()
            .map(|candidates| {
                candidates
                    .iter()
                    .map(|c| self.resolve_candidate(c))
                    .collect()
            })
            .collect();
        assign_popularity(self.qfg, &mut resolved);
        assign_pair_factor_caps(self.qfg, &mut resolved);
        resolved
    }

    /// Compute `Score_σ`, `Score_QFG` and the λ-combination for one
    /// configuration, retaining each component for explanations.  Runs the
    /// same id-based arithmetic as the batched scoring path, so a
    /// configuration scored here can never diverge from the ranking.
    pub fn score_configuration(&self, mappings: Vec<MappingCandidate>) -> Configuration {
        let sigma_score = geometric_mean(mappings.iter().map(|m| m.score));
        let slots: Vec<FragmentSlot> = mappings
            .iter()
            .filter(|m| !m.element.is_relation())
            .map(|m| self.resolve_slot(&m.element))
            .collect();
        let qfg = qfg_breakdown(self.qfg, &slots, mappings.len());
        let qfg_score = if qfg.pairs == 0 {
            qfg.log_popularity
        } else {
            qfg.dice
        };
        let lambda = self.config.lambda;
        let score = lambda * sigma_score + (1.0 - lambda) * qfg_score;
        Configuration {
            mappings,
            sigma_score,
            qfg_score,
            log_popularity: qfg.log_popularity,
            dice_cooccurrence: qfg.dice,
            qfg_pairs: qfg.pairs,
            lambda,
            score,
        }
    }

    /// Resolve one pruned candidate to the columnar scoring domain: its σ,
    /// its interned fragment id and its deterministic tie-break key.  The
    /// normalised log popularity and the pair-factor cap are filled in by
    /// the flat [`assign_popularity`] / [`assign_pair_factor_caps`] sweeps
    /// over the whole request.
    fn resolve_candidate(&self, candidate: &MappingCandidate) -> ResolvedCandidate {
        ResolvedCandidate {
            sigma: candidate.score,
            slot: self.resolve_slot(&candidate.element),
            sort_key: candidate_sort_key(candidate),
            popularity: 0.0,
            pair_factor_cap: 1.0,
        }
    }

    /// Resolve a mapped element's query fragment to its [`FragmentId`].
    fn resolve_slot(&self, element: &MappedElement) -> FragmentSlot {
        if element.is_relation() {
            return FragmentSlot::Relation;
        }
        match self.qfg.lookup(&element.fragment(self.config)) {
            Some(id) => FragmentSlot::Known(id),
            None => FragmentSlot::Unknown,
        }
    }
}

/// How a candidate participates in `Score_QFG`, resolved once per request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FragmentSlot {
    /// A FROM-context mapping — excluded from the QFG score (Section V-C.2).
    Relation,
    /// A non-relation fragment present in the graph.
    Known(FragmentId),
    /// A non-relation fragment the log has never seen (`n_v = 0`).
    Unknown,
}

/// A pruned candidate's request-scoped resolution.
struct ResolvedCandidate {
    sigma: f64,
    slot: FragmentSlot,
    sort_key: String,
    /// `n_v / |L|` — this candidate's contribution to the log-popularity
    /// component (0 for relations and never-logged fragments).
    popularity: f64,
    /// Admissible upper bound on any smoothed pair factor
    /// `(Dice + QFG_SMOOTHING).min(1)` this candidate can contribute to a
    /// configuration; derived from the QFG's `max_dice` column (and forced
    /// to 1.0 when the fragment is offered for more than one keyword, since
    /// a self-pair has Dice 1).  Set by [`KeywordMapper::resolve_lists`].
    pair_factor_cap: f64,
}

/// One scored index tuple: the candidate indices (one per keyword, in
/// keyword order) plus every component of the λ-blend.
struct ScoredTuple {
    indices: Vec<u32>,
    sigma: f64,
    log_popularity: f64,
    dice: f64,
    pairs: usize,
    score: f64,
}

impl ScoredTuple {
    fn qfg_score(&self) -> f64 {
        if self.pairs == 0 {
            self.log_popularity
        } else {
            self.dice
        }
    }
}

/// Statistics of one best-first configuration search, surfaced through
/// [`Templar::map_keywords_with_stats`](crate::Templar), translation
/// explanations and the serving metrics instead of being dropped.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SearchStats {
    /// Complete configurations actually scored.
    pub tuples_scored: u64,
    /// Complete configurations the admissible bound proved unable to enter
    /// the top-k, skipped without being scored (saturating: a pruned prefix
    /// of a many-keyword request can cover more than `u64::MAX` tuples).
    pub tuples_pruned: u64,
    /// Prefix subtrees cut by the bound (each cut covers one or more
    /// pruned tuples).
    pub bound_cutoffs: u64,
    /// True when [`TemplarConfig::search_budget`] ran out before the search
    /// proved exactness; the returned ranking is then the best found so
    /// far.  Surfaced as `search_budget_exhausted` in explanations — never
    /// a silent truncation.
    pub budget_exhausted: bool,
}

impl SearchStats {
    /// Fold a worker's statistics into the request total.
    fn absorb(&mut self, other: SearchStats) {
        self.tuples_scored += other.tuples_scored;
        self.tuples_pruned = self.tuples_pruned.saturating_add(other.tuples_pruned);
        self.bound_cutoffs += other.bound_cutoffs;
        self.budget_exhausted |= other.budget_exhausted;
    }
}

/// Assign every candidate's [`ResolvedCandidate::popularity`] (`n_v / |L|`,
/// the same expression [`qfg_breakdown`] evaluates per tuple, hoisted to
/// once per request) as a flat gather → one divide sweep → scatter, instead
/// of a per-candidate branch-and-divide.  Relations and never-logged
/// fragments gather an occurrence count of zero, so the sweep yields their
/// exact `0.0` (`+0.0 / total ≡ 0.0`) and no branch survives into the
/// arithmetic pass.
fn assign_popularity(qfg: &QueryFragmentGraph, resolved: &mut [Vec<ResolvedCandidate>]) {
    let total = qfg.query_count().max(1) as f64;
    let mut flat: Vec<f64> = Vec::with_capacity(resolved.iter().map(Vec::len).sum());
    for list in resolved.iter() {
        flat.extend(list.iter().map(|candidate| match candidate.slot {
            FragmentSlot::Known(id) => qfg.occurrences_by_id(id) as f64,
            _ => 0.0,
        }));
    }
    for value in flat.iter_mut() {
        *value /= total;
    }
    let mut cursor = flat.iter();
    for list in resolved.iter_mut() {
        for candidate in list {
            candidate.popularity = *cursor.next().expect("gather covers every candidate");
        }
    }
}

/// Assign every candidate's [`ResolvedCandidate::pair_factor_cap`] across
/// the request's resolved lists.  Needs the cross-list view: a fragment
/// offered for two different keywords can be paired with itself
/// (`Dice = 1`), so its cap must not rely on the QFG's `max_dice` column,
/// which only covers *other* fragments.
///
/// Structured as a flat raw-Dice gather followed by one branch-free
/// `(raw + QFG_SMOOTHING).min(1.0)` bound sweep.  The gather encodes each
/// class so the shared sweep reproduces the per-class value exactly:
/// relations and multi-list fragments gather `1.0`
/// (`(1.0 + 0.01).min(1.0) = 1.0`), never-logged fragments gather `0.0`
/// (`0.0 + 0.01 = QFG_SMOOTHING` exactly), and single-list known fragments
/// gather their `max_dice` column entry.
fn assign_pair_factor_caps(qfg: &QueryFragmentGraph, resolved: &mut [Vec<ResolvedCandidate>]) {
    let mut lists_containing: std::collections::HashMap<FragmentId, usize> =
        std::collections::HashMap::new();
    for list in resolved.iter() {
        let mut seen: Vec<FragmentId> = Vec::new();
        for candidate in list {
            if let FragmentSlot::Known(id) = candidate.slot {
                if !seen.contains(&id) {
                    seen.push(id);
                    *lists_containing.entry(id).or_insert(0) += 1;
                }
            }
        }
    }
    let mut flat: Vec<f64> = Vec::with_capacity(resolved.iter().map(Vec::len).sum());
    for list in resolved.iter() {
        flat.extend(list.iter().map(|candidate| match candidate.slot {
            // A relation mapping adds no fragment slot, hence no pair
            // factors; the sweep bounds its 1.0 back to the
            // multiplicative identity.
            FragmentSlot::Relation => 1.0,
            // A never-logged fragment co-occurs with nothing: the sweep
            // turns its raw 0.0 into exactly the smoothing floor.
            FragmentSlot::Unknown => 0.0,
            FragmentSlot::Known(id) => {
                if lists_containing.get(&id).copied().unwrap_or(0) >= 2 {
                    // The fragment can be chosen for two keywords at
                    // once, making a self-pair (Dice = 1) possible.
                    1.0
                } else {
                    qfg.max_dice_by_id(id)
                }
            }
        }));
    }
    for value in flat.iter_mut() {
        *value = (*value + QFG_SMOOTHING).min(1.0);
    }
    let mut cursor = flat.iter();
    for list in resolved.iter_mut() {
        for candidate in list {
            candidate.pair_factor_cap = *cursor.next().expect("gather covers every candidate");
        }
    }
}

/// The deterministic tie-break bytes of an index tuple: its candidates'
/// sort keys joined with `|`, streamed without materializing the joined
/// `String` (the comparison is byte-identical to comparing the formatted
/// keys, pinned by a regression test).
fn joined_key_bytes<'r>(
    resolved: &'r [Vec<ResolvedCandidate>],
    indices: &'r [u32],
) -> impl Iterator<Item = u8> + 'r {
    indices.iter().enumerate().flat_map(move |(k, &i)| {
        let separator = if k > 0 { Some(b'|') } else { None };
        separator
            .into_iter()
            .chain(resolved[k][i as usize].sort_key.bytes())
    })
}

/// The total order all configuration rankings use: score descending, then
/// the joined tie-break key ascending, then the index tuple itself (the
/// enumeration order the pre-search stable sort preserved on full ties).
fn cmp_scored(
    resolved: &[Vec<ResolvedCandidate>],
    a: &ScoredTuple,
    b: &ScoredTuple,
) -> std::cmp::Ordering {
    b.score
        .partial_cmp(&a.score)
        .unwrap_or(std::cmp::Ordering::Equal)
        .then_with(|| {
            joined_key_bytes(resolved, &a.indices).cmp(joined_key_bytes(resolved, &b.indices))
        })
        .then_with(|| a.indices.cmp(&b.indices))
}

/// Insert a scored tuple into a capacity-bounded ranking kept sorted under
/// [`cmp_scored`].  Selecting the top `capacity` this way is exactly
/// "sort everything, truncate" — without holding everything.
fn offer_tuple(
    resolved: &[Vec<ResolvedCandidate>],
    top: &mut Vec<ScoredTuple>,
    capacity: usize,
    tuple: ScoredTuple,
) {
    if top.len() == capacity {
        let Some(worst) = top.last() else { return };
        if cmp_scored(resolved, &tuple, worst) != std::cmp::Ordering::Less {
            return;
        }
        top.pop();
    }
    let at = top.partition_point(|e| cmp_scored(resolved, e, &tuple) == std::cmp::Ordering::Less);
    top.insert(at, tuple);
}

/// Scores one index tuple against the columnar QFG via the pairwise
/// [`qfg_breakdown`] — the executable specification of a configuration's
/// score, used by the exhaustive reference enumerator (the best-first
/// search reproduces it bit-for-bit through prefix-incremental state).
struct TupleScorer<'a> {
    qfg: &'a QueryFragmentGraph,
    lambda: f64,
    resolved: &'a [Vec<ResolvedCandidate>],
}

impl TupleScorer<'_> {
    fn score(&self, indices: Vec<u32>) -> ScoredTuple {
        let sigma = geometric_mean(
            indices
                .iter()
                .enumerate()
                .map(|(k, &i)| self.resolved[k][i as usize].sigma),
        );
        let slots: Vec<FragmentSlot> = indices
            .iter()
            .enumerate()
            .map(|(k, &i)| self.resolved[k][i as usize].slot)
            .filter(|slot| *slot != FragmentSlot::Relation)
            .collect();
        let breakdown = qfg_breakdown(self.qfg, &slots, indices.len());
        let qfg_score = if breakdown.pairs == 0 {
            breakdown.log_popularity
        } else {
            breakdown.dice
        };
        let score = self.lambda * sigma + (1.0 - self.lambda) * qfg_score;
        ScoredTuple {
            indices,
            sigma,
            log_popularity: breakdown.log_popularity,
            dice: breakdown.dice,
            pairs: breakdown.pairs,
            score,
        }
    }
}

/// Enumerate and score the whole cartesian product (odometer order — the
/// lexicographic index order the old enumerator generated), selecting the
/// top `capacity` under [`cmp_scored`].
fn exhaustive_top_k(
    scorer: &TupleScorer<'_>,
    resolved: &[Vec<ResolvedCandidate>],
    capacity: usize,
) -> (Vec<ScoredTuple>, SearchStats) {
    let mut top: Vec<ScoredTuple> = Vec::with_capacity(capacity.min(64));
    let mut stats = SearchStats::default();
    let mut indices = vec![0u32; resolved.len()];
    loop {
        stats.tuples_scored += 1;
        offer_tuple(resolved, &mut top, capacity, scorer.score(indices.clone()));
        // Advance the odometer, most-significant keyword first.
        let mut level = resolved.len();
        loop {
            if level == 0 {
                return (top, stats);
            }
            level -= 1;
            indices[level] += 1;
            if (indices[level] as usize) < resolved[level].len() {
                break;
            }
            indices[level] = 0;
        }
    }
}

/// Absolute slack added to every admissible upper bound before comparing
/// it with the score floor.  The bound arithmetic reorders the floating-
/// point operations of the exact leaf score (products of per-keyword
/// maxima instead of per-candidate values), so without slack an ulp-level
/// rounding difference could prune a true top-k member; 1e-9 dwarfs any
/// accumulated rounding error at these magnitudes while costing next to
/// nothing in pruning power.
const BOUND_MARGIN: f64 = 1e-9;

/// Below this many potential tuples the search always runs on the calling
/// thread: worker spawn latency would dwarf the arithmetic.
const PARALLEL_MIN_TUPLES: u64 = 2048;

/// Prefix-incremental score state of the best-first search.  Extending a
/// prefix by one candidate updates this in O(prefix slots) — the pair
/// factors against the new slot — instead of rescoring all O(k²) pairs,
/// and performs the *identical* floating-point operation sequence as
/// [`TupleScorer::score`] / [`qfg_breakdown`] on the complete tuple, so a
/// leaf finalized from this state is bit-for-bit the exhaustive score.
#[derive(Clone, Copy)]
struct PrefixState {
    /// Running product of the mappings' σ (keyword order).
    sigma_product: f64,
    /// Running product of the smoothed pair factors (the order
    /// [`qfg_breakdown`] multiplies them in).
    pair_product: f64,
    /// Running sum of the non-relation slots' popularity (slot order).
    pop_sum: f64,
    /// Maximum popularity among the prefix's slots (for the admissible
    /// log-popularity bound: a mean never exceeds its maximum element).
    max_pop: f64,
}

impl PrefixState {
    fn empty() -> Self {
        PrefixState {
            sigma_product: 1.0,
            pair_product: 1.0,
            pop_sum: 0.0,
            max_pop: 0.0,
        }
    }
}

/// The exact best-first configuration search (branch-and-bound DFS over
/// index prefixes).
///
/// Each keyword's pruned candidates are already sorted by σ descending, so
/// depth-first descent finds strong configurations early; the score floor
/// (the current k-th best score, shared across workers through one atomic)
/// then lets the **admissible upper bound** cut entire prefix subtrees that
/// provably cannot enter the top k.  The bound blends
///
/// * `λ ·` the best completable geometric σ — the prefix's running σ
///   product times the precomputed product of per-keyword maxima over the
///   remaining keywords, and
/// * `(1−λ) ·` an optimistic `Score_QFG` completion — the prefix's running
///   pair product times caps on every *guaranteed* future pair factor
///   (from the QFG's per-fragment `max_dice` column), or the best
///   reachable log popularity when the configuration can finish with
///   fewer than two fragments.
///
/// Because the bound is admissible and pruning is strict (`ub < floor`,
/// with ties retained), the result is byte-identical to exhaustively
/// scoring the cartesian product — same scores, same order, same
/// tie-breaks — whenever the search completes within
/// [`TemplarConfig::search_budget`]; the budget turns a pathological
/// many-keyword request into a best-effort ranking with an explicit
/// `budget_exhausted` flag instead of unbounded work.
///
/// First-keyword candidates are sharded round-robin across
/// `TemplarConfig::scoring_threads` scoped workers; the atomic floor makes
/// every worker's discoveries prune every other worker's subtrees.  Each
/// worker keeps its own local top-k (a superset filter: any global top-k
/// member ranks top-k within its worker), and the merge re-sorts under the
/// same total order, so the outcome is independent of the fan-out.
struct ConfigurationSearch<'a> {
    qfg: &'a QueryFragmentGraph,
    lambda: f64,
    top_k: usize,
    threads: usize,
    resolved: &'a [Vec<ResolvedCandidate>],
    keyword_count: usize,
    /// `[d]`: product over keywords `k ≥ d` of the list's maximum σ.
    max_sigma_suffix: Vec<f64>,
    /// `[d]`: maximum candidate popularity over keywords `k ≥ d`.
    max_pop_suffix: Vec<f64>,
    /// `[d]`: how many keywords `k ≥ d` *must* add a fragment slot (every
    /// candidate is a non-relation mapping).
    must_remaining: Vec<usize>,
    /// `[d][m]`: admissible cap on the product of all future pair factors
    /// a completion from depth `d` with `m` prefix slots is guaranteed to
    /// multiply in — each must-add keyword `k ≥ d` contributes its best
    /// pair-factor cap once per slot guaranteed to precede it.
    dice_bound: Vec<Vec<f64>>,
    /// `[d]`: number of complete tuples below one depth-`d` prefix
    /// (saturating), for the pruned-tuple accounting.
    suffix_tuples: Vec<u64>,
    /// Shared work budget (`TemplarConfig::search_budget`): one unit per
    /// prefix extension evaluated, which hard-caps total search work at
    /// `O(budget · keywords)` regardless of the product size.
    budget: u64,
    /// Minimum potential-tuple count before the search fans out
    /// ([`PARALLEL_MIN_TUPLES`]; tests lower it to drive the worker
    /// machinery on small inputs).
    parallel_min_tuples: u64,
    evaluations: AtomicU64,
    /// Bits of the shared score floor (the best k-th score any worker has
    /// proven); starts at `-∞`.
    floor_bits: AtomicU64,
    exhausted: AtomicBool,
}

impl<'a> ConfigurationSearch<'a> {
    fn new(
        qfg: &'a QueryFragmentGraph,
        config: &TemplarConfig,
        resolved: &'a [Vec<ResolvedCandidate>],
    ) -> Self {
        let k = resolved.len();
        let mut max_sigma_suffix = vec![1.0f64; k + 1];
        let mut max_pop_suffix = vec![0.0f64; k + 1];
        let mut must_remaining = vec![0usize; k + 1];
        let mut suffix_tuples = vec![1u64; k + 1];
        let must: Vec<bool> = resolved
            .iter()
            .map(|list| list.iter().all(|c| c.slot != FragmentSlot::Relation))
            .collect();
        let caps: Vec<f64> = resolved
            .iter()
            .map(|list| list.iter().map(|c| c.pair_factor_cap).fold(0.0, f64::max))
            .collect();
        for d in (0..k).rev() {
            let best_sigma = resolved[d].iter().map(|c| c.sigma).fold(0.0, f64::max);
            max_sigma_suffix[d] = best_sigma * max_sigma_suffix[d + 1];
            max_pop_suffix[d] = resolved[d]
                .iter()
                .map(|c| c.popularity)
                .fold(max_pop_suffix[d + 1], f64::max);
            must_remaining[d] = must_remaining[d + 1] + usize::from(must[d]);
            suffix_tuples[d] = suffix_tuples[d + 1].saturating_mul(resolved[d].len() as u64);
        }
        // dice_bound[d][m]: walk the remaining must-add keywords in order;
        // the i-th of them is guaranteed m + i pair factors, each bounded
        // by that keyword's cap.  Caps are ≤ 1, so ignoring the *optional*
        // future pairs (relation-capable keywords) keeps the bound
        // admissible.
        let mut dice_bound = vec![vec![1.0f64; k + 1]; k + 1];
        for (d, row) in dice_bound.iter_mut().enumerate().take(k) {
            for (m, entry) in row.iter_mut().enumerate() {
                let mut guaranteed_slots = m as i32;
                let mut product = 1.0f64;
                for j in d..k {
                    if must[j] {
                        product *= caps[j].powi(guaranteed_slots);
                        guaranteed_slots += 1;
                    }
                }
                *entry = product;
            }
        }
        ConfigurationSearch {
            qfg,
            lambda: config.lambda,
            top_k: config.max_configurations,
            threads: config.scoring_threads.max(1),
            resolved,
            keyword_count: k,
            max_sigma_suffix,
            max_pop_suffix,
            must_remaining,
            dice_bound,
            suffix_tuples,
            // A starved budget still yields results: each worker always
            // completes its first depth-first dive (see the overdraw
            // handling in `SearchWorker::explore`) before honouring
            // exhaustion, so the budget is taken as-is.
            budget: (config.search_budget as u64).max(1),
            parallel_min_tuples: PARALLEL_MIN_TUPLES,
            evaluations: AtomicU64::new(0),
            floor_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
            exhausted: AtomicBool::new(false),
        }
    }

    /// Pick the round-robin shard layout: `(depth, worker_count)`.  Depth 0
    /// shards the first keyword's candidates; when that list is narrower
    /// than the thread pool (e.g. one unambiguous first keyword followed by
    /// many ambiguous ones), sharding moves to the flattened first-two-level
    /// prefix space so a skewed request still fans out.
    fn shard_layout(&self) -> (usize, usize) {
        let first_len = self.resolved[0].len();
        if self.suffix_tuples[0] < self.parallel_min_tuples {
            return (0, 1);
        }
        if self.threads <= first_len || self.keyword_count < 2 {
            return (0, self.threads.min(first_len));
        }
        let prefix_space = first_len * self.resolved[1].len();
        (1, self.threads.min(prefix_space))
    }

    /// Run the search and return the final ranking plus its statistics.
    #[cfg(test)]
    fn run(&self) -> (Vec<ScoredTuple>, SearchStats) {
        self.run_traced(TraceCtx::disabled())
    }

    /// [`ConfigurationSearch::run`] reporting each worker's busy time into
    /// `trace` — the wall-clock `config_search` span belongs to the caller;
    /// this accounts the CPU the fan-out actually burned.
    fn run_traced(&self, trace: TraceCtx<'_>) -> (Vec<ScoredTuple>, SearchStats) {
        if self.top_k == 0 {
            return (Vec::new(), SearchStats::default());
        }
        let (shard_depth, workers) = self.shard_layout();
        let mut results: Vec<(Vec<ScoredTuple>, SearchStats)> = if workers <= 1 {
            let started = trace.worker_start();
            let result = SearchWorker::new(self, 0, 0, 1).run();
            trace.finish_worker(started);
            vec![result]
        } else {
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|w| {
                        scope.spawn(move || {
                            let started = trace.worker_start();
                            let result = SearchWorker::new(self, shard_depth, w, workers).run();
                            trace.finish_worker(started);
                            result
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("configuration search worker panicked"))
                    .collect()
            })
        };
        let mut stats = SearchStats::default();
        let mut merged: Vec<ScoredTuple> = Vec::new();
        for (top, worker_stats) in results.drain(..) {
            stats.absorb(worker_stats);
            merged.extend(top);
        }
        stats.budget_exhausted |= self.exhausted.load(AtomicOrdering::Relaxed);
        merged.sort_by(|a, b| cmp_scored(self.resolved, a, b));
        merged.truncate(self.top_k);
        (merged, stats)
    }

    /// True when no completion of a depth-`d` prefix with `m` slots and the
    /// given running state can beat the floor.  Strict comparison: a
    /// completion that could *tie* the k-th score is kept, because the
    /// tie-break key may rank it inside the top k.
    fn prunable(&self, d: usize, state: &PrefixState, m: usize, floor: f64) -> bool {
        if floor == f64::NEG_INFINITY {
            return false;
        }
        let k = self.keyword_count as f64;
        let sigma_base = state.sigma_product * self.max_sigma_suffix[d];
        let ub_sigma = if sigma_base <= 0.0 {
            0.0
        } else {
            sigma_base.powf(1.0 / k)
        };
        let ub = if self.lambda >= 1.0 {
            // λ = 1: Score_QFG cannot contribute (the blend multiplies it
            // by zero), so the σ bound alone is admissible.
            self.lambda * ub_sigma
        } else {
            let ub_dice = (state.pair_product * self.dice_bound[d][m.min(self.keyword_count)])
                .powf(1.0 / k)
                .min(1.0);
            let ub_qfg = if m + self.must_remaining[d] >= 2 {
                // At least one pair is guaranteed: Score_QFG is the Dice
                // aggregation for every completion.
                ub_dice
            } else {
                // Completions may finish with < 2 slots, where Score_QFG
                // falls back to log popularity (a mean, bounded by its
                // largest element).
                ub_dice.max(state.max_pop.max(self.max_pop_suffix[d]))
            };
            self.lambda * ub_sigma + (1.0 - self.lambda) * ub_qfg
        };
        ub + BOUND_MARGIN < floor
    }

    /// Finalize a complete prefix into a scored tuple (same operation
    /// sequence as [`TupleScorer::score`], from the incrementally-carried
    /// state).
    fn finalize(&self, indices: &[u32], state: &PrefixState, slot_count: usize) -> ScoredTuple {
        let k = self.keyword_count;
        let sigma = if state.sigma_product <= 0.0 {
            0.0
        } else {
            state.sigma_product.powf(1.0 / k as f64)
        };
        let log_popularity = if slot_count == 0 {
            0.0
        } else {
            state.pop_sum / slot_count as f64
        };
        let pairs = slot_count * slot_count.saturating_sub(1) / 2;
        let dice = if pairs == 0 {
            0.0
        } else {
            state.pair_product.powf(1.0 / k as f64).clamp(0.0, 1.0)
        };
        let qfg_score = if pairs == 0 { log_popularity } else { dice };
        let score = self.lambda * sigma + (1.0 - self.lambda) * qfg_score;
        ScoredTuple {
            indices: indices.to_vec(),
            sigma,
            log_popularity,
            dice,
            pairs,
            score,
        }
    }

    /// Charge one prefix extension against the shared budget; false when
    /// the budget is exhausted (the caller unwinds and returns its best).
    fn charge(&self) -> bool {
        if self.exhausted.load(AtomicOrdering::Relaxed) {
            return false;
        }
        if self.evaluations.fetch_add(1, AtomicOrdering::Relaxed) >= self.budget {
            self.exhausted.store(true, AtomicOrdering::Relaxed);
            return false;
        }
        true
    }

    fn floor(&self) -> f64 {
        f64::from_bits(self.floor_bits.load(AtomicOrdering::Relaxed))
    }

    /// Raise the shared floor to `candidate` if it is higher (atomic max).
    fn raise_floor(&self, candidate: f64) {
        let mut current = self.floor_bits.load(AtomicOrdering::Relaxed);
        while f64::from_bits(current) < candidate {
            match self.floor_bits.compare_exchange_weak(
                current,
                candidate.to_bits(),
                AtomicOrdering::Relaxed,
                AtomicOrdering::Relaxed,
            ) {
                Ok(_) => break,
                Err(observed) => current = observed,
            }
        }
    }
}

/// One search worker: owns a round-robin shard of the depth-`shard_depth`
/// prefix space (flattened over the levels up to and including that depth)
/// and a local top-k.
struct SearchWorker<'a, 'r> {
    search: &'a ConfigurationSearch<'r>,
    shard_depth: usize,
    offset: usize,
    stride: usize,
    indices: Vec<u32>,
    /// The prefix's non-relation slots, in keyword order.
    slots: Vec<FragmentSlot>,
    /// `slots` flattened to raw interned ids (`ABSENT_FRAGMENT` for
    /// never-logged fragments), kept in lockstep so each extension runs the
    /// pair factors as one contiguous [`QueryFragmentGraph::gather_dice`]
    /// pass instead of a per-prior branchy lookup.
    slot_ids: Vec<u32>,
    dice_scratch: DiceGatherScratch,
    dice_buf: Vec<f64>,
    top: Vec<ScoredTuple>,
    stats: SearchStats,
}

impl<'a, 'r> SearchWorker<'a, 'r> {
    fn new(
        search: &'a ConfigurationSearch<'r>,
        shard_depth: usize,
        offset: usize,
        stride: usize,
    ) -> Self {
        SearchWorker {
            search,
            shard_depth,
            offset,
            stride,
            indices: Vec::with_capacity(search.keyword_count),
            slots: Vec::with_capacity(search.keyword_count),
            slot_ids: Vec::with_capacity(search.keyword_count),
            dice_scratch: DiceGatherScratch::default(),
            dice_buf: Vec::with_capacity(search.keyword_count),
            top: Vec::new(),
            stats: SearchStats::default(),
        }
    }

    fn run(mut self) -> (Vec<ScoredTuple>, SearchStats) {
        self.explore(0, PrefixState::empty());
        (self.top, self.stats)
    }

    /// True when candidate `i` of keyword `d` belongs to this worker's
    /// shard.  Only the shard depth filters: the flattened rank of the
    /// prefix up to `d` is taken modulo the worker count, so the workers
    /// partition the prefix space exactly.
    fn in_shard(&self, d: usize, i: usize) -> bool {
        if d != self.shard_depth || self.stride <= 1 {
            return true;
        }
        let mut rank = i;
        if d > 0 {
            rank += self.indices[d - 1] as usize * self.search.resolved[d].len();
        }
        rank % self.stride == self.offset
    }

    /// Depth-first over the candidates of keyword `d`; returns false when
    /// the budget ran out and the whole search should unwind.
    fn explore(&mut self, d: usize, state: PrefixState) -> bool {
        let search = self.search;
        let list = &search.resolved[d];
        let mut i = 0;
        while i < list.len() {
            if !self.in_shard(d, i) {
                i += 1;
                continue;
            }
            let overdrawn = !search.charge();
            if overdrawn {
                self.stats.budget_exhausted = true;
                if self.stats.tuples_scored > 0 {
                    return false;
                }
                // The shared budget is gone but this worker has not
                // completed a single configuration yet: keep following the
                // current (first) dive so even a starved budget split
                // across workers yields at least one ranked result per
                // worker.  The leaf arm below stops the worker right after
                // that first configuration is scored.
            }
            let candidate = &list[i];
            let mut next = state;
            next.sigma_product = state.sigma_product * candidate.sigma;
            let adds_slot = candidate.slot != FragmentSlot::Relation;
            if adds_slot {
                // Extend the pair product with the new slot's factors, in
                // the exact order `qfg_breakdown` visits them: one
                // contiguous gather over the prefix's flattened ids, then
                // one smooth-and-bound multiply sweep.
                match candidate.slot {
                    FragmentSlot::Known(id) => {
                        search.qfg.gather_dice(
                            id,
                            &self.slot_ids,
                            &mut self.dice_scratch,
                            &mut self.dice_buf,
                        );
                        for &dice in &self.dice_buf {
                            next.pair_product *= (dice + QFG_SMOOTHING).min(1.0);
                        }
                    }
                    // A fragment absent from the log co-occurs with
                    // nothing: every pair multiplies in the exact
                    // smoothing floor.
                    _ => {
                        for _ in 0..self.slot_ids.len() {
                            next.pair_product *= (0.0 + QFG_SMOOTHING).min(1.0);
                        }
                    }
                }
                next.pop_sum = state.pop_sum + candidate.popularity;
                if candidate.popularity > next.max_pop {
                    next.max_pop = candidate.popularity;
                }
                self.slots.push(candidate.slot);
                self.slot_ids.push(match candidate.slot {
                    FragmentSlot::Known(id) => id.index() as u32,
                    _ => ABSENT_FRAGMENT,
                });
            }
            self.indices.push(i as u32);
            let keep_going = if d + 1 == search.keyword_count {
                self.stats.tuples_scored += 1;
                let tuple = search.finalize(&self.indices, &next, self.slots.len());
                self.offer(tuple);
                !overdrawn
            } else if d >= self.shard_depth
                // Above the shard depth every worker walks the same
                // prefixes: pruning there would count the same skipped
                // subtree once per worker (and the walk is a handful of
                // extensions), so cutting starts at the shard depth.
                && search.prunable(d + 1, &next, self.slots.len(), search.floor())
            {
                self.stats.bound_cutoffs += 1;
                self.stats.tuples_pruned = self
                    .stats
                    .tuples_pruned
                    .saturating_add(search.suffix_tuples[d + 1]);
                true
            } else {
                self.explore(d + 1, next)
            };
            self.indices.pop();
            if adds_slot {
                self.slots.pop();
                self.slot_ids.pop();
            }
            if !keep_going {
                return false;
            }
            i += 1;
        }
        true
    }

    /// Offer a scored leaf to the local top-k; when the local ranking is
    /// full, its k-th score becomes a candidate for the shared floor (any
    /// single worker's k-th best is a lower bound on the global k-th best).
    fn offer(&mut self, tuple: ScoredTuple) {
        let search = self.search;
        offer_tuple(search.resolved, &mut self.top, search.top_k, tuple);
        if self.top.len() == search.top_k {
            if let Some(worst) = self.top.last() {
                search.raise_floor(worst.score);
            }
        }
    }
}

/// `Score_QFG`, decomposed: the geometric aggregation of the Dice
/// coefficients of all pairs of non-relation fragments in the configuration
/// (Section V-C.2).  With fewer than two non-relation fragments there are no
/// pairs; the effective score falls back to the normalised occurrence
/// frequency of the fragments so that log evidence still contributes.  Both
/// components are returned so explanations can show which one drove the
/// blend.
///
/// Each Dice value is smoothed with a small additive constant before the
/// product is taken.  The paper's plain product would be annihilated by a
/// single never-co-occurring pair even when every other pair carries strong
/// evidence; smoothing preserves the ranking induced by the Dice values
/// while keeping partially-supported configurations comparable.
///
/// `slots` carries the configuration's non-relation fragments as resolved
/// ids; `phi` is the total number of mappings (relations included), exactly
/// as in the fragment-keyed implementation this replaces.
fn qfg_breakdown(qfg: &QueryFragmentGraph, slots: &[FragmentSlot], phi: usize) -> QfgBreakdown {
    // Flatten once to raw interned ids (`ABSENT_FRAGMENT` for fragments the
    // log has never seen) so both components run as contiguous gather +
    // sweep passes over the columnar arrays instead of per-slot branching.
    let ids: Vec<u32> = slots
        .iter()
        .map(|slot| match slot {
            FragmentSlot::Known(id) => id.index() as u32,
            _ => ABSENT_FRAGMENT,
        })
        .collect();
    let mut popularity = Vec::new();
    qfg.gather_popularity(&ids, &mut popularity);
    let log_popularity = if ids.is_empty() {
        0.0
    } else {
        popularity.iter().sum::<f64>() / ids.len() as f64
    };
    if ids.len() < 2 {
        return QfgBreakdown {
            log_popularity,
            dice: 0.0,
            pairs: 0,
        };
    }
    let mut product = 1.0f64;
    let mut pairs = 0usize;
    let mut scratch = DiceGatherScratch::default();
    let mut dice = Vec::new();
    // Pairs are visited in slot-append order — every pair the j-th slot
    // forms with its predecessors, for growing j — so the best-first
    // search's prefix-incremental pair product performs the identical
    // floating-point operation sequence and finalizes bit-for-bit equal.
    for j in 1..slots.len() {
        match slots[j] {
            FragmentSlot::Known(id) => {
                qfg.gather_dice(id, &ids[..j], &mut scratch, &mut dice);
                for &d in &dice {
                    product *= (d + QFG_SMOOTHING).min(1.0);
                }
            }
            // A fragment absent from the log co-occurs with nothing: every
            // pair it forms multiplies in the exact smoothing floor.
            _ => {
                for _ in 0..j {
                    product *= (0.0 + QFG_SMOOTHING).min(1.0);
                }
            }
        }
        pairs += j;
    }
    QfgBreakdown {
        log_popularity,
        dice: product.powf(1.0 / phi as f64).clamp(0.0, 1.0),
        pairs,
    }
}

/// The two components of `Score_QFG` (internal to scoring; the public
/// decomposition lives on [`Configuration`]).
struct QfgBreakdown {
    log_popularity: f64,
    dice: f64,
    pairs: usize,
}

/// Similarity discount applied to key-like attributes (`id`, `*_id`, and the
/// short surrogate keys `pid` / `aid` / ...): users refer to entities by
/// their names and titles, not by their identifiers, so a key should only win
/// a mapping when the query log (or an aggregate) supports it.
fn key_attribute_penalty(attr: &AttributeRef) -> f64 {
    let name = attr.attribute.to_lowercase();
    let key_like = name == "id"
        || name.ends_with("_id")
        || name == "citing"
        || name == "cited"
        || (name.len() <= 4 && name.ends_with("id"));
    if key_like {
        0.55
    } else {
        1.0
    }
}

/// Geometric mean of an iterator of scores (0 when any score is 0).
pub fn geometric_mean(scores: impl Iterator<Item = f64>) -> f64 {
    let values: Vec<f64> = scores.collect();
    if values.is_empty() {
        return 0.0;
    }
    let product: f64 = values.iter().product();
    if product <= 0.0 {
        0.0
    } else {
        product.powf(1.0 / values.len() as f64)
    }
}

fn candidate_sort_key(c: &MappingCandidate) -> String {
    match &c.element {
        MappedElement::Relation(r) => format!("0:{r}"),
        MappedElement::Attribute { attr, .. } => format!("1:{attr}"),
        MappedElement::Predicate { attr, op, value } => format!("2:{attr}:{}:{value}", op.symbol()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Obscurity;
    use crate::qfg::QueryLog;
    use nlp::TextSimilarity;
    use relational::{DataType, Schema};

    /// A small academic database in the spirit of Figure 1.
    fn academic_db() -> Database {
        let schema = Schema::builder("academic")
            .relation(
                "publication",
                &[
                    ("pid", DataType::Integer),
                    ("title", DataType::Text),
                    ("year", DataType::Integer),
                    ("jid", DataType::Integer),
                ],
                Some("pid"),
            )
            .relation(
                "journal",
                &[("jid", DataType::Integer), ("name", DataType::Text)],
                Some("jid"),
            )
            .foreign_key("publication", "jid", "journal", "jid")
            .build();
        let mut db = Database::new(schema);
        db.insert(
            "publication",
            vec![
                1.into(),
                "Scalable Query Processing".into(),
                2003.into(),
                1.into(),
            ],
        )
        .unwrap();
        db.insert(
            "publication",
            vec![
                2.into(),
                "Interactive Data Exploration".into(),
                1997.into(),
                2.into(),
            ],
        )
        .unwrap();
        db.insert("journal", vec![1.into(), "TKDE".into()]).unwrap();
        db.insert("journal", vec![2.into(), "TMC".into()]).unwrap();
        db
    }

    /// A log in which year predicates co-occur with publication.title, and
    /// journal-name predicates also co-occur with publication.title
    /// (Figure 3a).
    fn academic_log() -> QueryLog {
        let mut sql: Vec<String> = Vec::new();
        for _ in 0..25 {
            sql.push("SELECT j.name FROM journal j".into());
        }
        for _ in 0..5 {
            sql.push("SELECT p.title FROM publication p WHERE p.year > 2003".into());
        }
        for _ in 0..3 {
            sql.push(
                "SELECT p.title FROM journal j, publication p WHERE j.name = 'TMC' AND p.jid = j.jid"
                    .into(),
            );
        }
        QueryLog::from_sql(sql.iter().map(String::as_str)).0
    }

    fn run_mapper(
        keywords: &[(Keyword, KeywordMetadata)],
        config: &TemplarConfig,
    ) -> Vec<Configuration> {
        let db = academic_db();
        let qfg = QueryFragmentGraph::build(&academic_log(), config.obscurity);
        let sim = TextSimilarity::new();
        let mapper = KeywordMapper::new(&db, &qfg, &sim, config);
        mapper.map_keywords(keywords)
    }

    #[test]
    fn numeric_keyword_maps_to_satisfiable_numeric_predicates() {
        let db = academic_db();
        let config = TemplarConfig::default();
        let qfg = QueryFragmentGraph::build(&QueryLog::new(), Obscurity::NoConstOp);
        let sim = TextSimilarity::new();
        let mapper = KeywordMapper::new(&db, &qfg, &sim, &config);
        let kw = Keyword::new("after 2000");
        let meta = KeywordMetadata::filter_with_op(BinOp::Gt);
        let cands = mapper.keyword_candidates(&kw, &meta);
        // year (2003) satisfies "> 2000"; pid/jid values do not.
        assert!(cands.iter().any(|c| matches!(
            c,
            MappedElement::Predicate { attr, op: BinOp::Gt, .. } if attr.attribute == "year"
        )));
        assert!(!cands.iter().any(
            |c| matches!(c, MappedElement::Predicate { attr, .. } if attr.attribute == "pid")
        ));
    }

    #[test]
    fn select_keyword_considers_all_attributes() {
        let db = academic_db();
        let config = TemplarConfig::default();
        let qfg = QueryFragmentGraph::build(&QueryLog::new(), Obscurity::NoConstOp);
        let sim = TextSimilarity::new();
        let mapper = KeywordMapper::new(&db, &qfg, &sim, &config);
        let cands = mapper.keyword_candidates(&Keyword::new("papers"), &KeywordMetadata::select());
        assert_eq!(cands.len(), db.attribute_refs().len());
    }

    #[test]
    fn value_keyword_maps_to_matching_text_values() {
        let db = academic_db();
        let config = TemplarConfig::default();
        let qfg = QueryFragmentGraph::build(&QueryLog::new(), Obscurity::NoConstOp);
        let sim = TextSimilarity::new();
        let mapper = KeywordMapper::new(&db, &qfg, &sim, &config);
        let cands = mapper.keyword_candidates(&Keyword::new("TKDE"), &KeywordMetadata::filter());
        assert_eq!(cands.len(), 1);
        assert!(matches!(
            &cands[0],
            MappedElement::Predicate { attr, value: Literal::String(v), .. }
                if attr.attribute == "name" && v == "TKDE"
        ));
    }

    #[test]
    fn exact_value_matches_prune_everything_else() {
        let db = academic_db();
        let config = TemplarConfig::default();
        let qfg = QueryFragmentGraph::build(&QueryLog::new(), Obscurity::NoConstOp);
        let sim = TextSimilarity::new();
        let mapper = KeywordMapper::new(&db, &qfg, &sim, &config);
        let kw = Keyword::new("TKDE");
        let cands = mapper.keyword_candidates(&kw, &KeywordMetadata::filter());
        let pruned = mapper.score_and_prune(&kw, cands);
        assert_eq!(pruned.len(), 1);
        assert!(pruned[0].score >= 1.0 - config.epsilon);
    }

    #[test]
    fn pruning_respects_kappa_and_keeps_ties() {
        let db = academic_db();
        let config = TemplarConfig::default().with_kappa(2);
        let qfg = QueryFragmentGraph::build(&QueryLog::new(), Obscurity::NoConstOp);
        let sim = TextSimilarity::new();
        let mapper = KeywordMapper::new(&db, &qfg, &sim, &config);
        let kw = Keyword::new("papers");
        let cands = mapper.keyword_candidates(&kw, &KeywordMetadata::select());
        let pruned = mapper.score_and_prune(&kw, cands);
        assert!(pruned.len() >= 2);
        assert!(
            pruned.len() <= 6,
            "tie handling should not explode: {}",
            pruned.len()
        );
        // Sorted by score descending.
        for w in pruned.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }

    #[test]
    fn qfg_breaks_the_papers_ambiguity_in_example_5() {
        // Keywords of Example 5: "papers" (SELECT), "TKDE" (value),
        // "after 1995" (numeric).  With λ = 0.8 the QFG evidence must rank a
        // configuration mapping "papers" -> publication.title above one
        // mapping it to journal.name.
        let config = TemplarConfig::default();
        let keywords = vec![
            (Keyword::new("papers"), KeywordMetadata::select()),
            (Keyword::new("TKDE"), KeywordMetadata::filter()),
            (
                Keyword::new("after 1995"),
                KeywordMetadata::filter_with_op(BinOp::Gt),
            ),
        ];
        let configs = run_mapper(&keywords, &config);
        assert!(!configs.is_empty());
        let best = &configs[0];
        let papers_mapping = &best.mappings[0];
        assert!(
            matches!(
                &papers_mapping.element,
                MappedElement::Attribute { attr, .. }
                    if attr.relation == "publication" && attr.attribute == "title"
            ),
            "best mapping was {:?}",
            papers_mapping.element
        );
        // Scores are all in [0, 1] and the list is sorted.
        for w in configs.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
        for c in &configs {
            assert!((0.0..=1.0).contains(&c.sigma_score));
            assert!((0.0..=1.0).contains(&c.qfg_score));
            assert!((0.0..=1.0).contains(&c.score));
        }
    }

    #[test]
    fn lambda_one_ignores_the_log() {
        // With λ = 1 the ranking is purely similarity-driven, so the QFG
        // score must not affect the final score.
        let config = TemplarConfig::default().with_lambda(1.0);
        let keywords = vec![
            (Keyword::new("papers"), KeywordMetadata::select()),
            (Keyword::new("TKDE"), KeywordMetadata::filter()),
        ];
        let configs = run_mapper(&keywords, &config);
        for c in &configs {
            assert!((c.score - c.sigma_score).abs() < 1e-12);
        }
    }

    #[test]
    fn empty_keyword_list_produces_no_configurations() {
        let config = TemplarConfig::default();
        assert!(run_mapper(&[], &config).is_empty());
    }

    #[test]
    fn relation_bag_and_attribute_bag_reflect_mappings() {
        let config = TemplarConfig::default();
        let keywords = vec![
            (Keyword::new("papers"), KeywordMetadata::select()),
            (Keyword::new("TKDE"), KeywordMetadata::filter()),
        ];
        let configs = run_mapper(&keywords, &config);
        let best = &configs[0];
        let bag = best.relation_bag();
        assert_eq!(bag.len(), 2);
        assert!(bag.contains(&"publication".to_string()) || bag.contains(&"journal".to_string()));
        assert_eq!(best.attribute_bag().len(), 2);
    }

    #[test]
    fn geometric_mean_properties() {
        assert_eq!(geometric_mean([].into_iter()), 0.0);
        assert!((geometric_mean([0.25, 1.0].into_iter()) - 0.5).abs() < 1e-12);
        assert_eq!(geometric_mean([0.5, 0.0].into_iter()), 0.0);
    }

    #[test]
    fn scoring_never_clones_query_fragments() {
        // The id-based hot path is contractually clone-free: candidates are
        // resolved to FragmentIds once per request and every score is pure
        // array arithmetic.  Scoring is pinned to one thread so the
        // thread-local counter observes the entire path.
        let db = academic_db();
        let config = TemplarConfig::default().with_scoring_threads(1);
        let qfg = QueryFragmentGraph::build(&academic_log(), config.obscurity);
        let sim = TextSimilarity::new();
        let mapper = KeywordMapper::new(&db, &qfg, &sim, &config);
        let keywords = vec![
            (Keyword::new("papers"), KeywordMetadata::select()),
            (Keyword::new("TKDE"), KeywordMetadata::filter()),
            (
                Keyword::new("after 1995"),
                KeywordMetadata::filter_with_op(BinOp::Gt),
            ),
        ];
        let before = crate::fragment::clone_counter::current();
        let configs = mapper.map_keywords(&keywords);
        let cloned = crate::fragment::clone_counter::current() - before;
        assert!(!configs.is_empty());
        assert_eq!(
            cloned, 0,
            "MAPKEYWORDS must not clone any QueryFragment; counted {cloned}"
        );
    }

    #[test]
    fn parallel_scoring_matches_single_threaded_scoring() {
        // End-to-end: thread count must never change what MAPKEYWORDS
        // returns.
        let keywords = vec![
            (Keyword::new("papers"), KeywordMetadata::select()),
            (Keyword::new("TKDE"), KeywordMetadata::filter()),
        ];
        let serial = run_mapper(&keywords, &TemplarConfig::default().with_scoring_threads(1));
        let parallel = run_mapper(&keywords, &TemplarConfig::default().with_scoring_threads(8));
        assert_eq!(serial, parallel, "fan-out must not change any result");
    }

    // -----------------------------------------------------------------
    // Best-first search: exactness, determinism and bound admissibility
    // -----------------------------------------------------------------

    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// The joined tie-break key as the pre-search implementation formatted
    /// it (an allocated `String`); the streamed byte comparator must order
    /// tuples exactly like comparing these.
    fn joined_sort_key_string(resolved: &[Vec<ResolvedCandidate>], indices: &[u32]) -> String {
        let mut key = String::new();
        for (k, &i) in indices.iter().enumerate() {
            if k > 0 {
                key.push('|');
            }
            key.push_str(&resolved[k][i as usize].sort_key);
        }
        key
    }

    /// A random QFG plus per-keyword candidate lists over its fragments.
    /// σ values are drawn from a coarse grid so exact score ties (the
    /// tie-break comparator's job) actually occur.
    fn random_search_input(
        seed: u64,
        keywords: usize,
        max_candidates: usize,
    ) -> (QueryFragmentGraph, Vec<Vec<ResolvedCandidate>>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut sql: Vec<String> = Vec::new();
        let tables = [("publication", "p"), ("journal", "j"), ("author", "a")];
        let cols = ["title", "name", "year"];
        for _ in 0..rng.gen_range(1..30usize) {
            let (table, alias) = tables[rng.gen_range(0..tables.len())];
            let mut q = format!(
                "SELECT {alias}.{} FROM {table} {alias}",
                cols[rng.gen_range(0..cols.len())]
            );
            if rng.gen_range(0..2u32) == 0 {
                q.push_str(&format!(
                    " WHERE {alias}.{} > {}",
                    cols[rng.gen_range(0..cols.len())],
                    rng.gen_range(0..5i64)
                ));
            }
            sql.push(q);
        }
        let (log, _) = QueryLog::from_sql(sql.iter().map(String::as_str));
        let qfg = QueryFragmentGraph::build(&log, Obscurity::NoConstOp);
        let ids: Vec<FragmentId> = qfg
            .fragments()
            .map(|(f, _)| qfg.lookup(f).unwrap())
            .collect();
        let keys = ["a", "ab", "abc", "b", "b|c", "k0", "k1"];
        let resolved: Vec<Vec<ResolvedCandidate>> = (0..keywords)
            .map(|_| {
                (0..rng.gen_range(1..=max_candidates))
                    .map(|_| {
                        let slot = match rng.gen_range(0..4u32) {
                            0 => FragmentSlot::Relation,
                            1 => FragmentSlot::Unknown,
                            _ if !ids.is_empty() => {
                                FragmentSlot::Known(ids[rng.gen_range(0..ids.len())])
                            }
                            _ => FragmentSlot::Unknown,
                        };
                        let popularity = match slot {
                            FragmentSlot::Known(id) => {
                                qfg.occurrences_by_id(id) as f64 / qfg.query_count().max(1) as f64
                            }
                            _ => 0.0,
                        };
                        ResolvedCandidate {
                            sigma: rng.gen_range(0..=8u32) as f64 / 8.0,
                            slot,
                            sort_key: keys[rng.gen_range(0..keys.len())].to_string(),
                            popularity,
                            pair_factor_cap: 1.0,
                        }
                    })
                    .collect()
            })
            .collect();
        let resolved = finish_resolution(&qfg, resolved);
        (qfg, resolved)
    }

    /// Run the production cap assignment over directly-built candidate
    /// lists (the generator above bypasses the mapper).
    fn finish_resolution(
        qfg: &QueryFragmentGraph,
        mut resolved: Vec<Vec<ResolvedCandidate>>,
    ) -> Vec<Vec<ResolvedCandidate>> {
        assign_pair_factor_caps(qfg, &mut resolved);
        resolved
    }

    /// The simplest possible reference: score *everything*, sort with the
    /// original allocated-string tie-break, truncate.
    fn full_sort_reference(
        qfg: &QueryFragmentGraph,
        lambda: f64,
        resolved: &[Vec<ResolvedCandidate>],
        top_k: usize,
    ) -> Vec<ScoredTuple> {
        let scorer = TupleScorer {
            qfg,
            lambda,
            resolved,
        };
        let mut all: Vec<ScoredTuple> = Vec::new();
        let mut indices = vec![0u32; resolved.len()];
        'enumerate: loop {
            all.push(scorer.score(indices.clone()));
            let mut level = resolved.len();
            loop {
                if level == 0 {
                    break 'enumerate;
                }
                level -= 1;
                indices[level] += 1;
                if (indices[level] as usize) < resolved[level].len() {
                    break;
                }
                indices[level] = 0;
            }
        }
        all.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| {
                    joined_sort_key_string(resolved, &a.indices)
                        .cmp(&joined_sort_key_string(resolved, &b.indices))
                })
                .then_with(|| a.indices.cmp(&b.indices))
        });
        all.truncate(top_k);
        all
    }

    fn assert_tuples_identical(label: &str, a: &[ScoredTuple], b: &[ScoredTuple]) {
        assert_eq!(a.len(), b.len(), "{label}: ranking lengths differ");
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.indices, y.indices, "{label}: tuple order differs");
            assert_eq!(x.score.to_bits(), y.score.to_bits(), "{label}: score bits");
            assert_eq!(x.sigma.to_bits(), y.sigma.to_bits(), "{label}: sigma bits");
            assert_eq!(
                x.log_popularity.to_bits(),
                y.log_popularity.to_bits(),
                "{label}: log-popularity bits"
            );
            assert_eq!(x.dice.to_bits(), y.dice.to_bits(), "{label}: dice bits");
            assert_eq!(x.pairs, y.pairs, "{label}: pair counts");
        }
    }

    fn search_config(threads: usize) -> TemplarConfig {
        TemplarConfig::default()
            .with_scoring_threads(threads)
            .with_search_budget(usize::MAX)
    }

    proptest! {
        /// The best-first search is byte-identical — scores, order and every
        /// explanation component — to scoring the entire cartesian product
        /// and sorting it with the original string tie-break, on random
        /// candidate lists over random QFGs, at several λ, serial and
        /// fanned out.
        #[test]
        fn best_first_search_is_byte_identical_to_exhaustive(
            seed in any::<u64>(),
            keywords in 1usize..6,
            lambda_grid in 0u32..5,
        ) {
            let (qfg, resolved) = random_search_input(seed, keywords, 4);
            let lambda = f64::from(lambda_grid) / 4.0;
            let config = search_config(1).with_lambda(lambda);
            let reference = full_sort_reference(
                &qfg, lambda, &resolved, config.max_configurations,
            );
            for threads in [1usize, 4] {
                let config = search_config(threads).with_lambda(lambda);
                let mut search = ConfigurationSearch::new(&qfg, &config, &resolved);
                // Drop the fan-out gate so threads = 4 genuinely exercises
                // the sharded workers (incl. depth-1 sharding when the
                // first list is narrower than the pool) on these small
                // inputs instead of falling back to one worker.
                search.parallel_min_tuples = 0;
                let (found, stats) = search.run();
                prop_assert!(!stats.budget_exhausted);
                assert_tuples_identical(
                    &format!("seed {seed} λ {lambda} threads {threads}"),
                    &reference,
                    &found,
                );
            }
        }

        /// The streamed joined-key comparator orders index tuples exactly
        /// like comparing the allocated joined strings — including the
        /// prefix-vs-separator cases (`"ab" | "x"` vs `"abc" | "a"`) where
        /// per-component comparison would get it wrong.
        #[test]
        fn streamed_key_comparison_matches_string_comparison(seed in any::<u64>()) {
            let (_, resolved) = random_search_input(seed, 3, 4);
            let mut rng = StdRng::seed_from_u64(seed ^ 0x9e3779b97f4a7c15);
            for _ in 0..32 {
                let pick = |rng: &mut StdRng| -> Vec<u32> {
                    resolved
                        .iter()
                        .map(|list| rng.gen_range(0..list.len()) as u32)
                        .collect()
                };
                let a = pick(&mut rng);
                let b = pick(&mut rng);
                let streamed = joined_key_bytes(&resolved, &a)
                    .cmp(joined_key_bytes(&resolved, &b));
                let allocated = joined_sort_key_string(&resolved, &a)
                    .cmp(&joined_sort_key_string(&resolved, &b));
                prop_assert_eq!(streamed, allocated);
            }
        }
    }

    #[test]
    fn streamed_key_comparison_pins_the_separator_prefix_case() {
        // keys ["ab", "x"] vs ["abc", "a"]: joined "ab|x" > "abc|a"
        // because '|' (0x7C) sorts after 'c' (0x63).  Naive per-component
        // comparison would order them the other way around.
        let mk = |keys: [&str; 2]| -> Vec<ResolvedCandidate> {
            keys.iter()
                .map(|k| ResolvedCandidate {
                    sigma: 0.5,
                    slot: FragmentSlot::Unknown,
                    sort_key: (*k).to_string(),
                    popularity: 0.0,
                    pair_factor_cap: QFG_SMOOTHING,
                })
                .collect()
        };
        let resolved = vec![mk(["ab", "abc"]), mk(["x", "a"])];
        let left = [0u32, 0u32]; // "ab|x"
        let right = [1u32, 1u32]; // "abc|a"
        assert_eq!(
            joined_key_bytes(&resolved, &left).cmp(joined_key_bytes(&resolved, &right)),
            joined_sort_key_string(&resolved, &left)
                .cmp(&joined_sort_key_string(&resolved, &right)),
        );
        assert_eq!(
            joined_key_bytes(&resolved, &left).cmp(joined_key_bytes(&resolved, &right)),
            std::cmp::Ordering::Greater,
        );
    }

    #[test]
    fn map_keywords_matches_the_exhaustive_enumerator_end_to_end() {
        let db = academic_db();
        let config = TemplarConfig::default().with_search_budget(usize::MAX);
        let qfg = QueryFragmentGraph::build(&academic_log(), config.obscurity);
        let sim = TextSimilarity::new();
        let mapper = KeywordMapper::new(&db, &qfg, &sim, &config);
        let keywords = vec![
            (Keyword::new("papers"), KeywordMetadata::select()),
            (Keyword::new("TKDE"), KeywordMetadata::filter()),
            (
                Keyword::new("after 1995"),
                KeywordMetadata::filter_with_op(BinOp::Gt),
            ),
        ];
        let (best_first, search_stats) = mapper.map_keywords_with_stats(&keywords);
        let (exhaustive, reference_stats) = mapper.map_keywords_exhaustive(&keywords);
        assert_eq!(best_first, exhaustive);
        assert!(!search_stats.budget_exhausted);
        assert!(!reference_stats.budget_exhausted);
        assert!(search_stats.tuples_scored <= reference_stats.tuples_scored);
        assert_eq!(
            search_stats.tuples_scored + search_stats.tuples_pruned,
            reference_stats.tuples_scored,
            "every tuple is either scored or provably pruned"
        );
    }

    #[test]
    fn exhausted_budget_is_flagged_and_bounds_the_work() {
        let (qfg, resolved) = random_search_input(7, 5, 4);
        let config = search_config(1).with_search_budget(10);
        let search = ConfigurationSearch::new(&qfg, &config, &resolved);
        let (found, stats) = search.run();
        assert!(
            stats.budget_exhausted,
            "a 10-evaluation budget must run out"
        );
        assert!(stats.tuples_scored <= 10);
        // What it did return is still sorted under the total order.
        for pair in found.windows(2) {
            assert_eq!(
                cmp_scored(&resolved, &pair[0], &pair[1]),
                std::cmp::Ordering::Less
            );
        }
        // And a generous budget on the same input is exact and unflagged.
        let config = search_config(1);
        let search = ConfigurationSearch::new(&qfg, &config, &resolved);
        let (_, stats) = search.run();
        assert!(!stats.budget_exhausted);
    }

    #[test]
    fn skewed_first_list_shards_at_depth_one_and_stays_exact() {
        // One unambiguous first keyword (a single candidate) followed by
        // wide lists: depth-0 sharding would serialize this shape, so the
        // layout moves to the flattened first-two-level prefix space.
        let (qfg, mut resolved) = random_search_input(23, 3, 6);
        resolved[0].truncate(1);
        let lambda = 0.8;
        let reference = full_sort_reference(&qfg, lambda, &resolved, 16);
        let config = search_config(4).with_lambda(lambda);
        let mut search = ConfigurationSearch::new(&qfg, &config, &resolved);
        search.parallel_min_tuples = 0;
        assert_eq!(search.shard_layout().0, 1, "must shard at depth 1");
        assert!(search.shard_layout().1 > 1, "must still fan out");
        let (found, stats) = search.run();
        assert!(!stats.budget_exhausted);
        assert_tuples_identical("skewed first list", &reference, &found);
    }

    #[test]
    fn starved_budget_yields_a_result_even_with_parallel_workers() {
        // Inflate the lists so the product (8^4 = 4096) engages the
        // worker fan-out, then give the *whole pool* a 2-evaluation
        // budget: each worker must still finish its first dive and
        // return at least one configuration, never an empty result.
        let (qfg, base) = random_search_input(11, 4, 8);
        let resolved: Vec<Vec<ResolvedCandidate>> = base
            .iter()
            .map(|list| {
                (0..8)
                    .map(|i| {
                        let c = &list[i % list.len()];
                        ResolvedCandidate {
                            sigma: c.sigma,
                            slot: c.slot,
                            sort_key: format!("{}{i}", c.sort_key),
                            popularity: c.popularity,
                            pair_factor_cap: c.pair_factor_cap,
                        }
                    })
                    .collect()
            })
            .collect();
        assert!(resolved.iter().map(|l| l.len() as u64).product::<u64>() >= 2048);
        let config = search_config(4).with_search_budget(2);
        let search = ConfigurationSearch::new(&qfg, &config, &resolved);
        let (found, stats) = search.run();
        assert!(stats.budget_exhausted);
        assert!(
            !found.is_empty(),
            "every worker must complete its first dive before honouring exhaustion"
        );
        for tuple in &found {
            assert_eq!(tuple.indices.len(), resolved.len());
        }
    }
}
