//! A swappable, shared handle to an immutable [`Templar`] snapshot.
//!
//! The serving layer (`templar-service`) keeps one *current* `Arc<Templar>`
//! that any number of translation threads read while an ingestion worker
//! prepares the next snapshot in the background.  [`SharedTemplar`] is the
//! cell they share:
//!
//! * [`SharedTemplar::load`] clones the current `Arc` under a read lock held
//!   for the duration of one pointer clone — readers are never blocked by a
//!   snapshot *rebuild* (which happens entirely outside the lock), only by
//!   the O(1) pointer swap itself;
//! * [`SharedTemplar::store`] publishes a new snapshot with an O(1) pointer
//!   swap under the write lock.
//!
//! In-flight translations keep the `Arc` they loaded, so a swap never
//! invalidates work already underway; old snapshots are freed when the last
//! reader drops them.
//!
//! The cell lives in `templar_core` (rather than the service crate) so host
//! NLIDB systems in `nlidb` can accept a serving handle without depending on
//! the service crate.

use crate::templar::Templar;
use parking_lot::RwLock;
use std::sync::Arc;

/// A cloneable handle to the current [`Templar`] snapshot.
#[derive(Clone)]
pub struct SharedTemplar {
    current: Arc<RwLock<Arc<Templar>>>,
}

impl SharedTemplar {
    /// Wrap an initial snapshot.
    pub fn new(templar: Templar) -> Self {
        Self::from_arc(Arc::new(templar))
    }

    /// Wrap an already-shared initial snapshot.
    pub fn from_arc(templar: Arc<Templar>) -> Self {
        SharedTemplar {
            current: Arc::new(RwLock::new(templar)),
        }
    }

    /// The current snapshot.  O(1): one `Arc` clone under a read lock.
    pub fn load(&self) -> Arc<Templar> {
        Arc::clone(&self.current.read())
    }

    /// Publish a new snapshot.  O(1) pointer swap; readers that already
    /// loaded the previous snapshot keep using it.
    pub fn store(&self, templar: Arc<Templar>) {
        *self.current.write() = templar;
    }

    /// Publish a new snapshot and return the previous one.
    pub fn swap(&self, templar: Arc<Templar>) -> Arc<Templar> {
        std::mem::replace(&mut *self.current.write(), templar)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TemplarConfig;
    use crate::qfg::QueryLog;
    use relational::{DataType, Database, Schema};

    fn tiny_templar(year: i64) -> Templar {
        let schema = Schema::builder("t")
            .relation("r", &[("a", DataType::Integer)], Some("a"))
            .build();
        let mut db = Database::new(schema);
        db.insert("r", vec![year.into()]).unwrap();
        Templar::new(Arc::new(db), &QueryLog::new(), TemplarConfig::default()).unwrap()
    }

    #[test]
    fn load_store_swap_round_trip() {
        let shared = SharedTemplar::new(tiny_templar(1));
        let first = shared.load();
        let second = Arc::new(tiny_templar(2));
        let old = shared.swap(Arc::clone(&second));
        assert!(Arc::ptr_eq(&old, &first));
        assert!(Arc::ptr_eq(&shared.load(), &second));
        // The clone shares the same cell.
        let alias = shared.clone();
        alias.store(Arc::clone(&first));
        assert!(Arc::ptr_eq(&shared.load(), &first));
    }

    #[test]
    fn readers_keep_their_snapshot_across_swaps() {
        let shared = SharedTemplar::new(tiny_templar(1));
        let held = shared.load();
        shared.store(Arc::new(tiny_templar(2)));
        // The old snapshot is still alive and usable for in-flight work.
        assert_eq!(held.qfg().query_count(), 0);
    }
}
