//! Join path inference (`INFERJOINS`, Section VI).
//!
//! Given the bag of relations and attributes known to be part of the SQL
//! translation, the join path generator finds ranked join paths (Steiner
//! trees over the join graph) connecting them.  Edge weights are either the
//! default unit weights (baseline behaviour: minimum-length join paths) or
//! the log-driven weights `w_L(r1, r2) = 1 − Dice(r1, r2)` computed from the
//! Query Fragment Graph.  Duplicate attribute references trigger the
//! schema-graph fork of Algorithm 4 so that self-joins are produced.

use crate::config::TemplarConfig;
use crate::error::JoinInferenceError;
use crate::qfg::{FragmentId, QueryFragmentGraph};
use relational::AttributeRef;
use schemagraph::{steiner::k_best_join_paths, JoinGraph, JoinPath, SchemaGraph};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};

/// One element of the bag `B_D` handed to `INFERJOINS`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BagItem {
    /// A relation known to appear in the query.
    Relation(String),
    /// An attribute known to appear in the query (its parent relation is
    /// added to the relation bag).
    Attribute(AttributeRef),
}

impl BagItem {
    /// The relation this item contributes to the relation bag `B_R`.
    pub fn relation(&self) -> &str {
        match self {
            BagItem::Relation(r) => r,
            BagItem::Attribute(a) => &a.relation,
        }
    }
}

/// A join path together with its score.
#[derive(Debug, Clone, PartialEq)]
pub struct ScoredJoinPath {
    /// The join path.
    pub path: JoinPath,
    /// Its score (`Score_j`), larger is better.
    pub score: f64,
}

/// The result of join path inference: the (possibly forked) join graph the
/// paths refer to, plus the ranked paths.
#[derive(Debug, Clone)]
pub struct JoinInference {
    /// The join graph (including any forked relation instances).
    pub graph: JoinGraph,
    /// Ranked join paths, best first.
    pub paths: Vec<ScoredJoinPath>,
    /// Whether edge weights came from query-log evidence (`w_L = 1 − Dice`)
    /// rather than unit schema distances.  Carried so explanations can tell a
    /// wire client which weighting produced each path's `total_weight`.
    pub used_log_weights: bool,
}

impl JoinInference {
    /// The best join path, if any was found.
    pub fn best(&self) -> Option<&ScoredJoinPath> {
        self.paths.first()
    }
}

/// Compute the number of instances of each relation required by the bag:
/// one by default, more when the same attribute (or the relation itself) is
/// referenced multiple times (Section VI-C).
pub fn relation_instance_counts(bag: &[BagItem]) -> BTreeMap<String, usize> {
    let mut attr_counts: BTreeMap<(String, String), usize> = BTreeMap::new();
    let mut relation_counts: BTreeMap<String, usize> = BTreeMap::new();
    let mut result: BTreeMap<String, usize> = BTreeMap::new();
    for item in bag {
        let rel = item.relation().to_lowercase();
        result.entry(rel.clone()).or_insert(1);
        match item {
            BagItem::Attribute(a) => {
                let key = (rel.clone(), a.attribute.to_lowercase());
                let c = attr_counts.entry(key).or_insert(0);
                *c += 1;
                let entry = result.entry(rel).or_insert(1);
                *entry = (*entry).max(*c);
            }
            BagItem::Relation(_) => {
                let c = relation_counts.entry(rel.clone()).or_insert(0);
                *c += 1;
            }
        }
    }
    // Multiple explicit relation mentions beyond the implied single instance
    // are rare; honour them only when no attribute evidence exists.
    for (rel, count) in relation_counts {
        let entry = result.entry(rel).or_insert(1);
        if *entry == 1 && count > 1 {
            *entry = count;
        }
    }
    result
}

/// `INFERJOINS`: compute ranked join paths for a bag of relations and
/// attributes.
///
/// Fails with a typed [`JoinInferenceError`] when the bag is empty, names an
/// unknown relation, or its relations cannot be connected in the schema
/// graph.
pub fn infer_joins(
    schema_graph: &SchemaGraph,
    qfg: Option<&QueryFragmentGraph>,
    config: &TemplarConfig,
    bag: &[BagItem],
) -> Result<JoinInference, JoinInferenceError> {
    if bag.is_empty() {
        return Err(JoinInferenceError::EmptyBag);
    }
    // 1. Build the join graph (unit weights; custom weights on the schema
    //    graph are deliberately ignored, as the old clone-and-clear did) and
    //    weight its edges directly.  Relation fragments are resolved to
    //    interned ids once per request, so each edge weight costs two map
    //    lookups and one columnar Dice read — no fragment construction, no
    //    schema-graph clone.
    let mut graph = JoinGraph::unweighted(schema_graph);
    let used_log_weights = config.use_log_joins && qfg.is_some();
    if let (true, Some(qfg)) = (config.use_log_joins, qfg) {
        let relation_ids =
            resolve_relation_ids(qfg, graph.nodes().iter().map(|node| node.relation.as_str()));
        graph.set_weights(|a, b| log_weight(qfg, &relation_ids, a, b));
    }
    // 2. Fork the join graph for duplicate references.
    let counts = relation_instance_counts(bag);
    let mut terminals = Vec::new();
    for (relation, instances) in &counts {
        let original = graph
            .node_of(relation)
            .ok_or_else(|| JoinInferenceError::UnknownRelation(relation.clone()))?;
        terminals.push(original);
        for _ in 1..*instances {
            let clone = graph
                .fork(relation)
                .ok_or_else(|| JoinInferenceError::UnknownRelation(relation.clone()))?;
            terminals.push(clone);
        }
    }
    // 3. Enumerate candidate join paths.
    let paths = k_best_join_paths(&graph, &terminals, config.join_candidates.max(1));
    if paths.is_empty() {
        return Err(JoinInferenceError::Disconnected);
    }
    let mut scored: Vec<ScoredJoinPath> = paths
        .into_iter()
        .map(|path| ScoredJoinPath {
            score: path.score(),
            path,
        })
        .collect();
    scored.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.path.edges.len().cmp(&b.path.edges.len()))
    });
    Ok(JoinInference {
        graph,
        paths: scored,
        used_log_weights,
    })
}

/// Resolve each relation name to the id of its `FROM` fragment, once, so
/// per-edge weight evaluation is two map lookups and one columnar Dice read.
fn resolve_relation_ids<'a>(
    qfg: &QueryFragmentGraph,
    relations: impl Iterator<Item = &'a str>,
) -> HashMap<String, Option<FragmentId>> {
    relations
        .map(|relation| {
            let lower = relation.to_lowercase();
            let id = qfg.lookup_relation(&lower);
            (lower, id)
        })
        .collect()
}

/// The log-driven weight `w_L(a, b) = 1 − Dice(a, b)` of one relation pair,
/// over pre-resolved ids.  The single source of the weighting rule: both
/// [`infer_joins`] and [`apply_log_weights`] go through here.
fn log_weight(
    qfg: &QueryFragmentGraph,
    relation_ids: &HashMap<String, Option<FragmentId>>,
    a: &str,
    b: &str,
) -> f64 {
    let (Some(Some(x)), Some(Some(y))) = (
        relation_ids.get(&a.to_lowercase()),
        relation_ids.get(&b.to_lowercase()),
    ) else {
        // A relation the log never mentions has Dice 0 with everything:
        // w_L = 1 − 0.
        return 1.0;
    };
    (1.0 - qfg.dice_by_id(*x, *y)).clamp(0.0, 1.0)
}

/// Apply the log-driven weight function `w_L = 1 − Dice` to every pair of
/// relations connected by a FK-PK edge (Section VI-A.2).  [`infer_joins`]
/// weights its join graph directly (no schema-graph clone); this remains for
/// callers that keep a weighted [`SchemaGraph`] around, and applies the same
/// [`log_weight`] rule.
pub fn apply_log_weights(schema_graph: &mut SchemaGraph, qfg: &QueryFragmentGraph) {
    let pairs: Vec<(String, String)> = schema_graph
        .schema()
        .foreign_keys
        .iter()
        .map(|fk| (fk.from_relation.clone(), fk.to_relation.clone()))
        .collect();
    let relation_ids = resolve_relation_ids(
        qfg,
        pairs.iter().flat_map(|(a, b)| [a.as_str(), b.as_str()]),
    );
    for (a, b) in pairs {
        let weight = log_weight(qfg, &relation_ids, &a, &b);
        schema_graph.set_relation_weight(&a, &b, weight);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Obscurity;
    use crate::qfg::QueryLog;
    use relational::{DataType, Schema};

    /// The Figure 1 fragment relevant to Examples 2/3/6: publication can
    /// reach domain through conference (short) or through keyword (long).
    fn mas_mini_schema() -> Schema {
        Schema::builder("mas_mini")
            .relation(
                "publication",
                &[
                    ("pid", DataType::Integer),
                    ("title", DataType::Text),
                    ("cid", DataType::Integer),
                ],
                Some("pid"),
            )
            .relation(
                "conference",
                &[("cid", DataType::Integer), ("name", DataType::Text)],
                Some("cid"),
            )
            .relation(
                "domain_conference",
                &[("cid", DataType::Integer), ("did", DataType::Integer)],
                None,
            )
            .relation(
                "domain",
                &[("did", DataType::Integer), ("name", DataType::Text)],
                Some("did"),
            )
            .relation(
                "publication_keyword",
                &[("pid", DataType::Integer), ("kid", DataType::Integer)],
                None,
            )
            .relation(
                "keyword",
                &[("kid", DataType::Integer), ("keyword", DataType::Text)],
                Some("kid"),
            )
            .relation(
                "domain_keyword",
                &[("kid", DataType::Integer), ("did", DataType::Integer)],
                None,
            )
            .relation(
                "author",
                &[("aid", DataType::Integer), ("name", DataType::Text)],
                Some("aid"),
            )
            .relation(
                "writes",
                &[("aid", DataType::Integer), ("pid", DataType::Integer)],
                None,
            )
            .foreign_key("publication", "cid", "conference", "cid")
            .foreign_key("domain_conference", "cid", "conference", "cid")
            .foreign_key("domain_conference", "did", "domain", "did")
            .foreign_key("publication_keyword", "pid", "publication", "pid")
            .foreign_key("publication_keyword", "kid", "keyword", "kid")
            .foreign_key("domain_keyword", "kid", "keyword", "kid")
            .foreign_key("domain_keyword", "did", "domain", "did")
            .foreign_key("writes", "aid", "author", "aid")
            .foreign_key("writes", "pid", "publication", "pid")
            .build()
    }

    /// A query log in which the publication–keyword–domain path is common.
    fn keyword_heavy_log() -> QueryLog {
        let mut sql = Vec::new();
        for _ in 0..20 {
            sql.push(
                "SELECT p.title FROM publication p, publication_keyword pk, keyword k, domain_keyword dk, domain d \
                 WHERE d.name = 'Databases' AND p.pid = pk.pid AND k.kid = pk.kid AND dk.kid = k.kid AND dk.did = d.did"
                    .to_string(),
            );
        }
        for _ in 0..2 {
            sql.push(
                "SELECT p.title FROM publication p, conference c WHERE p.cid = c.cid".to_string(),
            );
        }
        QueryLog::from_sql(sql.iter().map(String::as_str)).0
    }

    fn bag_pub_domain() -> Vec<BagItem> {
        vec![
            BagItem::Attribute(AttributeRef::new("publication", "title")),
            BagItem::Attribute(AttributeRef::new("domain", "name")),
        ]
    }

    #[test]
    fn default_weights_yield_shortest_path_through_conference() {
        // Example 2: without log information the minimum-length path through
        // conference is chosen, which is not the user's intent.
        let sg = SchemaGraph::from_schema(&mas_mini_schema());
        let config = TemplarConfig::default().with_log_joins(false);
        let inference = infer_joins(&sg, None, &config, &bag_pub_domain()).unwrap();
        let best = inference.best().unwrap();
        let names = best.path.relation_names(&inference.graph);
        assert!(
            names.contains(&"conference".to_string()),
            "path was {names:?}"
        );
    }

    #[test]
    fn log_weights_yield_the_keyword_path_of_example_3() {
        let sg = SchemaGraph::from_schema(&mas_mini_schema());
        let qfg = QueryFragmentGraph::build(&keyword_heavy_log(), Obscurity::NoConstOp);
        let config = TemplarConfig::default();
        let inference = infer_joins(&sg, Some(&qfg), &config, &bag_pub_domain()).unwrap();
        let best = inference.best().unwrap();
        let names = best.path.relation_names(&inference.graph);
        assert!(names.contains(&"keyword".to_string()), "path was {names:?}");
        assert!(
            !names.contains(&"conference".to_string()),
            "path was {names:?}"
        );
    }

    #[test]
    fn duplicate_attribute_references_create_a_self_join() {
        // Example 7: author.name twice plus publication.title.
        let sg = SchemaGraph::from_schema(&mas_mini_schema());
        let config = TemplarConfig::default().with_log_joins(false);
        let bag = vec![
            BagItem::Attribute(AttributeRef::new("author", "name")),
            BagItem::Attribute(AttributeRef::new("author", "name")),
            BagItem::Attribute(AttributeRef::new("publication", "title")),
        ];
        let inference = infer_joins(&sg, None, &config, &bag).unwrap();
        let best = inference.best().unwrap();
        let names = best.path.relation_names(&inference.graph);
        assert_eq!(
            names,
            vec!["author", "author", "publication", "writes", "writes"],
            "expected a self-join plan"
        );
        assert!(best.path.is_valid_tree(&inference.graph));
    }

    #[test]
    fn distinct_attributes_of_one_relation_do_not_fork() {
        let bag = vec![
            BagItem::Attribute(AttributeRef::new("publication", "title")),
            BagItem::Attribute(AttributeRef::new("publication", "year")),
        ];
        let counts = relation_instance_counts(&bag);
        assert_eq!(counts["publication"], 1);
    }

    #[test]
    fn duplicate_attribute_counts_raise_instance_counts() {
        let bag = vec![
            BagItem::Attribute(AttributeRef::new("author", "name")),
            BagItem::Attribute(AttributeRef::new("author", "name")),
            BagItem::Attribute(AttributeRef::new("author", "aid")),
        ];
        let counts = relation_instance_counts(&bag);
        assert_eq!(counts["author"], 2);
    }

    #[test]
    fn single_relation_bag_yields_trivial_path() {
        let sg = SchemaGraph::from_schema(&mas_mini_schema());
        let config = TemplarConfig::default();
        let bag = vec![BagItem::Attribute(AttributeRef::new(
            "publication",
            "title",
        ))];
        let inference = infer_joins(&sg, None, &config, &bag).unwrap();
        assert!(inference.best().unwrap().path.is_empty());
        assert_eq!(inference.best().unwrap().score, 1.0);
    }

    #[test]
    fn empty_bag_or_unknown_relation_yields_typed_errors() {
        let sg = SchemaGraph::from_schema(&mas_mini_schema());
        let config = TemplarConfig::default();
        assert_eq!(
            infer_joins(&sg, None, &config, &[]).unwrap_err(),
            JoinInferenceError::EmptyBag
        );
        let bag = vec![BagItem::Relation("not_a_table".into())];
        assert_eq!(
            infer_joins(&sg, None, &config, &bag).unwrap_err(),
            JoinInferenceError::UnknownRelation("not_a_table".into())
        );
    }

    #[test]
    fn ranked_paths_are_sorted_by_score() {
        let sg = SchemaGraph::from_schema(&mas_mini_schema());
        let config = TemplarConfig::default().with_log_joins(false);
        let inference = infer_joins(&sg, None, &config, &bag_pub_domain()).unwrap();
        assert!(inference.paths.len() >= 2);
        for w in inference.paths.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }

    #[test]
    fn log_weights_are_one_minus_dice() {
        let mut sg = SchemaGraph::from_schema(&mas_mini_schema());
        let qfg = QueryFragmentGraph::build(&keyword_heavy_log(), Obscurity::NoConstOp);
        apply_log_weights(&mut sg, &qfg);
        let dice = qfg.relation_dice("publication", "publication_keyword");
        assert!(dice > 0.0);
        let w = sg.relation_weight("publication", "publication_keyword");
        assert!((w - (1.0 - dice)).abs() < 1e-12);
        // A pair never co-occurring in the log keeps weight 1.
        assert_eq!(sg.relation_weight("writes", "author"), 1.0);
    }
}
