//! The Templar facade (Figure 2).
//!
//! A [`Templar`] instance wraps a database, its schema graph, the Query
//! Fragment Graph built from the SQL query log, a word-similarity model and
//! the configuration parameters.  It exposes exactly the two interface calls
//! the paper defines for host NLIDBs:
//!
//! * [`Templar::map_keywords`] — `MAPKEYWORDS(D, S, M)`, and
//! * [`Templar::infer_joins`] — `INFERJOINS(G_s, B_D)`.

use crate::config::TemplarConfig;
use crate::join::{infer_joins, BagItem, JoinInference};
use crate::keyword::{Configuration, Keyword, KeywordMapper, KeywordMetadata};
use crate::qfg::{QueryFragmentGraph, QueryLog};
use nlp::TextSimilarity;
use parking_lot::Mutex;
use relational::Database;
use schemagraph::SchemaGraph;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The Templar system.
pub struct Templar {
    db: Arc<Database>,
    schema_graph: SchemaGraph,
    qfg: QueryFragmentGraph,
    similarity: TextSimilarity,
    config: TemplarConfig,
    /// Cache of join inferences keyed by the (sorted) relation bag signature.
    /// Join inference is the most expensive step and the same bag recurs for
    /// every configuration that maps keywords to the same relations.
    join_cache: Mutex<HashMap<String, Arc<JoinInference>>>,
    /// Join-cache hit / miss counters (observable by the serving layer).
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
}

impl Templar {
    /// Build Templar for a database, a SQL query log and a configuration.
    pub fn new(db: Arc<Database>, log: &QueryLog, config: TemplarConfig) -> Self {
        let qfg = QueryFragmentGraph::build(log, config.obscurity);
        Self::from_parts(db, qfg, TextSimilarity::new(), config)
    }

    /// Build Templar with an explicit similarity model (used by tests and by
    /// the NaLIR wrapper which prefers a lexicon-only model).
    pub fn with_similarity(
        db: Arc<Database>,
        log: &QueryLog,
        config: TemplarConfig,
        similarity: TextSimilarity,
    ) -> Self {
        let qfg = QueryFragmentGraph::build(log, config.obscurity);
        Self::from_parts(db, qfg, similarity, config)
    }

    /// Build Templar from an already-constructed Query Fragment Graph.
    ///
    /// This is the constructor the serving layer uses when it refreshes a
    /// snapshot: the service maintains the QFG incrementally
    /// ([`QueryFragmentGraph::ingest`]) and hands a clone here, so a refresh
    /// costs one graph clone instead of a full log replay.
    ///
    /// # Panics
    ///
    /// If the graph's obscurity level does not match `config.obscurity` —
    /// mixing levels would silently produce wrong Dice scores.
    pub fn from_parts(
        db: Arc<Database>,
        qfg: QueryFragmentGraph,
        similarity: TextSimilarity,
        config: TemplarConfig,
    ) -> Self {
        assert_eq!(
            qfg.obscurity(),
            config.obscurity,
            "QFG obscurity level must match the Templar configuration"
        );
        let schema_graph = SchemaGraph::from_schema(db.schema());
        Templar {
            db,
            schema_graph,
            qfg,
            similarity,
            config,
            join_cache: Mutex::new(HashMap::new()),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &TemplarConfig {
        &self.config
    }

    /// The underlying database.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// A clone of the shared database handle.
    pub fn database_handle(&self) -> Arc<Database> {
        Arc::clone(&self.db)
    }

    /// The Query Fragment Graph.
    pub fn qfg(&self) -> &QueryFragmentGraph {
        &self.qfg
    }

    /// The schema graph.
    pub fn schema_graph(&self) -> &SchemaGraph {
        &self.schema_graph
    }

    /// The word similarity model.
    pub fn similarity(&self) -> &TextSimilarity {
        &self.similarity
    }

    /// Join-cache statistics: `(hits, misses)` since construction.
    pub fn join_cache_stats(&self) -> (u64, u64) {
        (
            self.cache_hits.load(Ordering::Relaxed),
            self.cache_misses.load(Ordering::Relaxed),
        )
    }

    /// `MAPKEYWORDS`: map keywords (with metadata) to ranked configurations.
    pub fn map_keywords(&self, keywords: &[(Keyword, KeywordMetadata)]) -> Vec<Configuration> {
        let mapper = KeywordMapper::new(&self.db, &self.qfg, &self.similarity, &self.config);
        mapper.map_keywords(keywords)
    }

    /// `INFERJOINS`: ranked join paths for a bag of relations/attributes.
    pub fn infer_joins(&self, bag: &[BagItem]) -> Option<Arc<JoinInference>> {
        let mut signature: Vec<String> = bag
            .iter()
            .map(|item| match item {
                BagItem::Relation(r) => format!("r:{}", r.to_lowercase()),
                BagItem::Attribute(a) => format!("a:{}", a.to_string().to_lowercase()),
            })
            .collect();
        signature.sort();
        let key = format!("{}|log={}", signature.join(","), self.config.use_log_joins);
        if let Some(hit) = self.join_cache.lock().get(&key) {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
            return Some(Arc::clone(hit));
        }
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
        let qfg = if self.config.use_log_joins {
            Some(&self.qfg)
        } else {
            None
        };
        let result = infer_joins(&self.schema_graph, qfg, &self.config, bag)?;
        let result = Arc::new(result);
        self.join_cache.lock().insert(key, Arc::clone(&result));
        Some(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fragment::QueryContext;
    use relational::{AttributeRef, DataType, Schema};
    use sqlparse::BinOp;

    fn db() -> Arc<Database> {
        let schema = Schema::builder("academic")
            .relation(
                "publication",
                &[
                    ("pid", DataType::Integer),
                    ("title", DataType::Text),
                    ("year", DataType::Integer),
                    ("jid", DataType::Integer),
                ],
                Some("pid"),
            )
            .relation(
                "journal",
                &[("jid", DataType::Integer), ("name", DataType::Text)],
                Some("jid"),
            )
            .foreign_key("publication", "jid", "journal", "jid")
            .build();
        let mut db = Database::new(schema);
        db.insert(
            "publication",
            vec![
                1.into(),
                "Query Optimization Revisited".into(),
                2004.into(),
                1.into(),
            ],
        )
        .unwrap();
        db.insert("journal", vec![1.into(), "TKDE".into()]).unwrap();
        Arc::new(db)
    }

    fn log() -> QueryLog {
        QueryLog::from_sql([
            "SELECT p.title FROM publication p WHERE p.year > 2000",
            "SELECT p.title FROM publication p, journal j WHERE j.name = 'TKDE' AND p.jid = j.jid",
            "SELECT p.title FROM publication p, journal j WHERE j.name = 'TMC' AND p.jid = j.jid",
        ])
        .0
    }

    #[test]
    fn facade_exposes_both_interface_calls() {
        let templar = Templar::new(db(), &log(), TemplarConfig::default());
        // Keyword mapping.
        let keywords = vec![
            (Keyword::new("papers"), KeywordMetadata::select()),
            (
                Keyword::new("after 2000"),
                KeywordMetadata::filter_with_op(BinOp::Gt),
            ),
        ];
        let configs = templar.map_keywords(&keywords);
        assert!(!configs.is_empty());
        // Join inference.
        let bag = vec![
            BagItem::Attribute(AttributeRef::new("publication", "title")),
            BagItem::Attribute(AttributeRef::new("journal", "name")),
        ];
        let inference = templar.infer_joins(&bag).unwrap();
        assert_eq!(inference.best().unwrap().path.edges.len(), 1);
    }

    #[test]
    fn join_inference_is_cached() {
        let templar = Templar::new(db(), &log(), TemplarConfig::default());
        let bag = vec![
            BagItem::Attribute(AttributeRef::new("publication", "title")),
            BagItem::Attribute(AttributeRef::new("journal", "name")),
        ];
        let first = templar.infer_joins(&bag).unwrap();
        let second = templar.infer_joins(&bag).unwrap();
        assert!(
            Arc::ptr_eq(&first, &second),
            "second call should hit the cache"
        );
    }

    #[test]
    fn qfg_is_built_at_the_configured_obscurity() {
        let templar = Templar::new(db(), &log(), TemplarConfig::default());
        let frag = crate::fragment::QueryFragment {
            expr: "publication.year ?op ?val".into(),
            context: QueryContext::Where,
        };
        assert_eq!(templar.qfg().occurrences(&frag), 1);
        assert_eq!(templar.qfg().query_count(), 3);
    }
}
