//! The Templar facade (Figure 2).
//!
//! A [`Templar`] instance wraps a database, its schema graph, the Query
//! Fragment Graph built from the SQL query log, a word-similarity model and
//! the configuration parameters.  It exposes exactly the two interface calls
//! the paper defines for host NLIDBs:
//!
//! * [`Templar::map_keywords`] — `MAPKEYWORDS(D, S, M)`, and
//! * [`Templar::infer_joins`] — `INFERJOINS(G_s, B_D)`.
//!
//! Both calls also exist in `_with` variants that take an explicit
//! [`TemplarConfig`], so a serving layer can apply per-request overrides
//! (λ, `use_log_joins`) against the same immutable snapshot without
//! rebuilding anything.

use crate::config::TemplarConfig;
use crate::error::{JoinInferenceError, TemplarError};
use crate::join::{infer_joins, BagItem, JoinInference};
use crate::keyword::{
    CandidateMemo, Configuration, Keyword, KeywordMapper, KeywordMetadata, SearchStats,
};
use crate::qfg::{QueryFragmentGraph, QueryLog};
use crate::trace::{Stage, TraceCtx};
use nlp::TextSimilarity;
use parking_lot::Mutex;
use relational::Database;
use schemagraph::SchemaGraph;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One bag element of a join-cache key, pre-lowercased.  Structured (instead
/// of a formatted string) so lookups hash a small tuple rather than allocate
/// and join a signature string on every call.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
enum BagKeyItem {
    Relation(String),
    Attribute(String, String),
}

/// Cache key for one join inference.  Besides the (sorted) relation bag it
/// carries every configuration parameter that can change the inference
/// result or its interpretation — so a request served under per-request
/// overrides can never alias a cached inference computed under different
/// parameters.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct JoinCacheKey {
    bag: Vec<BagKeyItem>,
    use_log_joins: bool,
    join_candidates: usize,
    /// λ does not enter join inference arithmetic, but it is part of the
    /// request contract; keeping it in the key guarantees full isolation
    /// between override configurations (bit-exact comparison).
    lambda_bits: u64,
}

impl JoinCacheKey {
    fn new(bag: &[BagItem], config: &TemplarConfig) -> Self {
        let mut items: Vec<BagKeyItem> = bag
            .iter()
            .map(|item| match item {
                BagItem::Relation(r) => BagKeyItem::Relation(r.to_lowercase()),
                BagItem::Attribute(a) => {
                    BagKeyItem::Attribute(a.relation.to_lowercase(), a.attribute.to_lowercase())
                }
            })
            .collect();
        items.sort();
        JoinCacheKey {
            bag: items,
            use_log_joins: config.use_log_joins,
            join_candidates: config.join_candidates,
            lambda_bits: config.lambda.to_bits(),
        }
    }
}

/// Bounded join-inference cache with oldest-first (FIFO) eviction.
struct JoinCache {
    map: HashMap<JoinCacheKey, Arc<JoinInference>>,
    /// Insertion order; each key appears exactly once (inserts happen only
    /// on a miss).
    order: VecDeque<JoinCacheKey>,
    capacity: usize,
}

impl JoinCache {
    fn new(capacity: usize) -> Self {
        JoinCache {
            map: HashMap::new(),
            order: VecDeque::new(),
            capacity: capacity.max(1),
        }
    }

    fn get(&self, key: &JoinCacheKey) -> Option<Arc<JoinInference>> {
        self.map.get(key).map(Arc::clone)
    }

    /// Insert, evicting oldest entries beyond capacity.  Returns the number
    /// of evictions performed.
    fn insert(&mut self, key: JoinCacheKey, value: Arc<JoinInference>) -> u64 {
        if let Some(existing) = self.map.get_mut(&key) {
            // Two threads can miss on the same bag concurrently and both
            // compute the inference; the second insert replaces the value in
            // place — it must not evict an unrelated resident entry.
            *existing = value;
            return 0;
        }
        let mut evicted = 0u64;
        while self.map.len() >= self.capacity {
            let Some(oldest) = self.order.pop_front() else {
                break;
            };
            self.map.remove(&oldest);
            evicted += 1;
        }
        self.map.insert(key.clone(), value);
        self.order.push_back(key);
        evicted
    }

    fn len(&self) -> usize {
        self.map.len()
    }
}

/// Point-in-time join-cache statistics, observable by the serving layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct JoinCacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to run join inference.
    pub misses: u64,
    /// Entries evicted to stay within the configured capacity.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// Configured capacity bound.
    pub capacity: usize,
}

/// The Templar system.
pub struct Templar {
    db: Arc<Database>,
    schema_graph: SchemaGraph,
    qfg: QueryFragmentGraph,
    similarity: TextSimilarity,
    config: TemplarConfig,
    /// Cache of join inferences keyed by the structured bag signature plus
    /// the (possibly overridden) parameters the inference ran under.  Join
    /// inference is the most expensive step and the same bag recurs for
    /// every configuration that maps keywords to the same relations.
    join_cache: Mutex<JoinCache>,
    /// Join-cache hit / miss / eviction counters.
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    cache_evictions: AtomicU64,
}

impl Templar {
    /// Build Templar for a database, a SQL query log and a configuration.
    pub fn new(
        db: Arc<Database>,
        log: &QueryLog,
        config: TemplarConfig,
    ) -> Result<Self, TemplarError> {
        let qfg = QueryFragmentGraph::build(log, config.obscurity);
        Self::from_parts(db, qfg, TextSimilarity::new(), config)
    }

    /// Build Templar with an explicit similarity model (used by tests and by
    /// the NaLIR wrapper which prefers a lexicon-only model).
    pub fn with_similarity(
        db: Arc<Database>,
        log: &QueryLog,
        config: TemplarConfig,
        similarity: TextSimilarity,
    ) -> Result<Self, TemplarError> {
        let qfg = QueryFragmentGraph::build(log, config.obscurity);
        Self::from_parts(db, qfg, similarity, config)
    }

    /// Build Templar from an already-constructed Query Fragment Graph.
    ///
    /// This is the constructor the serving layer uses when it refreshes a
    /// snapshot: the service maintains the QFG incrementally
    /// ([`QueryFragmentGraph::ingest`]) and hands a clone here, so a refresh
    /// costs one graph clone instead of a full log replay.
    ///
    /// Fails with [`TemplarError::ObscurityMismatch`] if the graph's
    /// obscurity level does not match `config.obscurity` — mixing levels
    /// would silently produce wrong Dice scores.
    pub fn from_parts(
        db: Arc<Database>,
        mut qfg: QueryFragmentGraph,
        similarity: TextSimilarity,
        config: TemplarConfig,
    ) -> Result<Self, TemplarError> {
        if qfg.obscurity() != config.obscurity {
            return Err(TemplarError::ObscurityMismatch {
                expected: config.obscurity,
                found: qfg.obscurity(),
            });
        }
        // A facade is an immutable snapshot: fold any pending delta into the
        // CSR now so every lookup on the serving path takes the compacted
        // fast path (binary search + precomputed Dice denominator).
        qfg.compact();
        let schema_graph = SchemaGraph::from_schema(db.schema());
        let capacity = config.join_cache_capacity;
        Ok(Templar {
            db,
            schema_graph,
            qfg,
            similarity,
            config,
            join_cache: Mutex::new(JoinCache::new(capacity)),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            cache_evictions: AtomicU64::new(0),
        })
    }

    /// The configuration in use.
    pub fn config(&self) -> &TemplarConfig {
        &self.config
    }

    /// The underlying database.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// A clone of the shared database handle.
    pub fn database_handle(&self) -> Arc<Database> {
        Arc::clone(&self.db)
    }

    /// The Query Fragment Graph.
    pub fn qfg(&self) -> &QueryFragmentGraph {
        &self.qfg
    }

    /// The schema graph.
    pub fn schema_graph(&self) -> &SchemaGraph {
        &self.schema_graph
    }

    /// The word similarity model.
    pub fn similarity(&self) -> &TextSimilarity {
        &self.similarity
    }

    /// Join-cache statistics since construction.
    pub fn join_cache_stats(&self) -> JoinCacheStats {
        let (entries, capacity) = {
            let cache = self.join_cache.lock();
            (cache.len(), cache.capacity)
        };
        JoinCacheStats {
            hits: self.cache_hits.load(Ordering::Relaxed),
            misses: self.cache_misses.load(Ordering::Relaxed),
            evictions: self.cache_evictions.load(Ordering::Relaxed),
            entries,
            capacity,
        }
    }

    /// `MAPKEYWORDS`: map keywords (with metadata) to ranked configurations.
    pub fn map_keywords(&self, keywords: &[(Keyword, KeywordMetadata)]) -> Vec<Configuration> {
        self.map_keywords_with(keywords, &self.config)
    }

    /// `MAPKEYWORDS` under an explicit configuration (per-request overrides).
    ///
    /// The configuration's obscurity must equal the snapshot's — overrides
    /// may change λ, `use_log_joins`, κ and friends, but the QFG is fixed at
    /// its build-time obscurity.
    pub fn map_keywords_with(
        &self,
        keywords: &[(Keyword, KeywordMetadata)],
        config: &TemplarConfig,
    ) -> Vec<Configuration> {
        self.map_keywords_with_stats(keywords, config).0
    }

    /// [`Templar::map_keywords_with`] plus the best-first search's
    /// [`SearchStats`] — configurations scored/pruned, bound cutoffs, and
    /// whether `config.search_budget` ran out before the ranking was proven
    /// exact.  The serving layer threads these into its metrics and into
    /// every explanation's `search_budget_exhausted` flag.
    pub fn map_keywords_with_stats(
        &self,
        keywords: &[(Keyword, KeywordMetadata)],
        config: &TemplarConfig,
    ) -> (Vec<Configuration>, SearchStats) {
        self.map_keywords_traced(keywords, config, TraceCtx::disabled())
    }

    /// [`Templar::map_keywords_with_stats`] recording per-stage spans into
    /// `trace` (candidate pruning, configuration search, worker busy time).
    /// With [`TraceCtx::disabled`] this is the identical untraced fast
    /// path.
    pub fn map_keywords_traced(
        &self,
        keywords: &[(Keyword, KeywordMetadata)],
        config: &TemplarConfig,
        trace: TraceCtx<'_>,
    ) -> (Vec<Configuration>, SearchStats) {
        self.map_keywords_traced_memo(keywords, config, trace, None)
    }

    /// [`Templar::map_keywords_traced`] consulting an optional cross-request
    /// [`CandidateMemo`] for pruned candidate lists (the serving layer's
    /// batched-scoring hook).  `None` is the identical solo path; the memo
    /// is only valid for this exact snapshot (see the trait docs).
    pub fn map_keywords_traced_memo(
        &self,
        keywords: &[(Keyword, KeywordMetadata)],
        config: &TemplarConfig,
        trace: TraceCtx<'_>,
        memo: Option<&dyn CandidateMemo>,
    ) -> (Vec<Configuration>, SearchStats) {
        let mapper = KeywordMapper::new(&self.db, &self.qfg, &self.similarity, config);
        mapper.map_keywords_traced_memo(keywords, trace, memo)
    }

    /// The exhaustive reference enumerator behind
    /// [`Templar::map_keywords`]: scores the *entire* cartesian product of
    /// pruned candidates under the given configuration (pass
    /// `templar.config()` to mirror [`Templar::map_keywords`]).
    /// Exponential — exposed for tests, benches and validation tooling
    /// that prove the best-first search exact, never for serving.
    pub fn map_keywords_exhaustive(
        &self,
        keywords: &[(Keyword, KeywordMetadata)],
        config: &TemplarConfig,
    ) -> (Vec<Configuration>, SearchStats) {
        let mapper = KeywordMapper::new(&self.db, &self.qfg, &self.similarity, config);
        mapper.map_keywords_exhaustive(keywords)
    }

    /// `INFERJOINS`: ranked join paths for a bag of relations/attributes.
    pub fn infer_joins(&self, bag: &[BagItem]) -> Result<Arc<JoinInference>, JoinInferenceError> {
        self.infer_joins_with(bag, &self.config)
    }

    /// `INFERJOINS` under an explicit configuration (per-request overrides).
    /// Cached: the cache key includes the override parameters, so inferences
    /// computed under different configurations never alias.
    pub fn infer_joins_with(
        &self,
        bag: &[BagItem],
        config: &TemplarConfig,
    ) -> Result<Arc<JoinInference>, JoinInferenceError> {
        self.infer_joins_traced(bag, config, TraceCtx::disabled())
    }

    /// [`Templar::infer_joins_with`] recorded under
    /// [`Stage::JoinInference`] in `trace` — cache hits included, so the
    /// span's call count equals the number of inferences the request asked
    /// for while its duration exposes how much of that the cache absorbed.
    pub fn infer_joins_traced(
        &self,
        bag: &[BagItem],
        config: &TemplarConfig,
        trace: TraceCtx<'_>,
    ) -> Result<Arc<JoinInference>, JoinInferenceError> {
        let _span = trace.span(Stage::JoinInference);
        let key = JoinCacheKey::new(bag, config);
        if let Some(hit) = self.join_cache.lock().get(&key) {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(hit);
        }
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
        let qfg = if config.use_log_joins {
            Some(&self.qfg)
        } else {
            None
        };
        let result = Arc::new(infer_joins(&self.schema_graph, qfg, config, bag)?);
        let evicted = self.join_cache.lock().insert(key, Arc::clone(&result));
        if evicted > 0 {
            self.cache_evictions.fetch_add(evicted, Ordering::Relaxed);
        }
        Ok(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fragment::QueryContext;
    use relational::{AttributeRef, DataType, Schema};
    use sqlparse::BinOp;

    fn db() -> Arc<Database> {
        let schema = Schema::builder("academic")
            .relation(
                "publication",
                &[
                    ("pid", DataType::Integer),
                    ("title", DataType::Text),
                    ("year", DataType::Integer),
                    ("jid", DataType::Integer),
                ],
                Some("pid"),
            )
            .relation(
                "journal",
                &[("jid", DataType::Integer), ("name", DataType::Text)],
                Some("jid"),
            )
            .foreign_key("publication", "jid", "journal", "jid")
            .build();
        let mut db = Database::new(schema);
        db.insert(
            "publication",
            vec![
                1.into(),
                "Query Optimization Revisited".into(),
                2004.into(),
                1.into(),
            ],
        )
        .unwrap();
        db.insert("journal", vec![1.into(), "TKDE".into()]).unwrap();
        Arc::new(db)
    }

    fn log() -> QueryLog {
        QueryLog::from_sql([
            "SELECT p.title FROM publication p WHERE p.year > 2000",
            "SELECT p.title FROM publication p, journal j WHERE j.name = 'TKDE' AND p.jid = j.jid",
            "SELECT p.title FROM publication p, journal j WHERE j.name = 'TMC' AND p.jid = j.jid",
        ])
        .0
    }

    #[test]
    fn facade_exposes_both_interface_calls() {
        let templar = Templar::new(db(), &log(), TemplarConfig::default()).unwrap();
        // Keyword mapping.
        let keywords = vec![
            (Keyword::new("papers"), KeywordMetadata::select()),
            (
                Keyword::new("after 2000"),
                KeywordMetadata::filter_with_op(BinOp::Gt),
            ),
        ];
        let configs = templar.map_keywords(&keywords);
        assert!(!configs.is_empty());
        // Join inference.
        let bag = vec![
            BagItem::Attribute(AttributeRef::new("publication", "title")),
            BagItem::Attribute(AttributeRef::new("journal", "name")),
        ];
        let inference = templar.infer_joins(&bag).unwrap();
        assert_eq!(inference.best().unwrap().path.edges.len(), 1);
    }

    #[test]
    fn obscurity_mismatch_is_a_typed_error_not_a_panic() {
        let config = TemplarConfig::default(); // NoConstOp
        let qfg = QueryFragmentGraph::build(&log(), crate::config::Obscurity::Full);
        match Templar::from_parts(db(), qfg, TextSimilarity::new(), config) {
            Err(err) => assert_eq!(
                err,
                TemplarError::ObscurityMismatch {
                    expected: crate::config::Obscurity::NoConstOp,
                    found: crate::config::Obscurity::Full,
                }
            ),
            Ok(_) => panic!("mismatched obscurity must be rejected"),
        }
    }

    #[test]
    fn join_inference_is_cached() {
        let templar = Templar::new(db(), &log(), TemplarConfig::default()).unwrap();
        let bag = vec![
            BagItem::Attribute(AttributeRef::new("publication", "title")),
            BagItem::Attribute(AttributeRef::new("journal", "name")),
        ];
        let first = templar.infer_joins(&bag).unwrap();
        let second = templar.infer_joins(&bag).unwrap();
        assert!(
            Arc::ptr_eq(&first, &second),
            "second call should hit the cache"
        );
        let stats = templar.join_cache_stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    #[test]
    fn override_configs_do_not_alias_cached_inferences() {
        let templar = Templar::new(db(), &log(), TemplarConfig::default()).unwrap();
        let bag = vec![
            BagItem::Attribute(AttributeRef::new("publication", "title")),
            BagItem::Attribute(AttributeRef::new("journal", "name")),
        ];
        let with_log = templar.infer_joins(&bag).unwrap();
        let no_log = templar
            .infer_joins_with(&bag, &TemplarConfig::default().with_log_joins(false))
            .unwrap();
        assert!(
            !Arc::ptr_eq(&with_log, &no_log),
            "different use_log_joins must be distinct cache entries"
        );
        // A different λ is also a distinct entry (never aliases).
        let lambda_override = templar
            .infer_joins_with(&bag, &TemplarConfig::default().with_lambda(0.3))
            .unwrap();
        assert!(!Arc::ptr_eq(&with_log, &lambda_override));
        assert_eq!(templar.join_cache_stats().misses, 3);
    }

    #[test]
    fn join_cache_is_bounded_with_fifo_eviction() {
        let config = TemplarConfig::default().with_join_cache_capacity(2);
        let templar = Templar::new(db(), &log(), config).unwrap();
        let bags: Vec<Vec<BagItem>> = vec![
            vec![BagItem::Relation("publication".into())],
            vec![BagItem::Relation("journal".into())],
            vec![
                BagItem::Attribute(AttributeRef::new("publication", "title")),
                BagItem::Attribute(AttributeRef::new("journal", "name")),
            ],
        ];
        for bag in &bags {
            templar.infer_joins(bag).unwrap();
        }
        let stats = templar.join_cache_stats();
        assert_eq!(stats.capacity, 2);
        assert!(stats.entries <= 2, "cache exceeded its bound");
        assert_eq!(stats.evictions, 1, "third insert evicts the oldest entry");
        // The oldest bag was evicted: looking it up again is a miss.
        templar.infer_joins(&bags[0]).unwrap();
        assert_eq!(templar.join_cache_stats().misses, 4);
    }

    #[test]
    fn qfg_is_built_at_the_configured_obscurity() {
        let templar = Templar::new(db(), &log(), TemplarConfig::default()).unwrap();
        let frag = crate::fragment::QueryFragment {
            expr: "publication.year ?op ?val".into(),
            context: QueryContext::Where,
        };
        assert_eq!(templar.qfg().occurrences(&frag), 1);
        assert_eq!(templar.qfg().query_count(), 3);
    }
}
