//! Query fragments (Definition 3) and their extraction from SQL.
//!
//! A query fragment is a pair `(χ, τ)` of a SQL expression or non-join
//! predicate `χ` and the clause context `τ` it appears in.  Fragments are the
//! unit of information stored in the Query Fragment Graph: fine-grained
//! enough to be recombined into queries never seen in the log, yet
//! coarse-grained enough to recur.
//!
//! Following Section IV, literal values (and optionally comparison
//! operators) are replaced by placeholders according to the configured
//! [`Obscurity`] level, so that `p.year > 2003` and `p.year < 1995` can
//! reinforce the same fragment `publication.year ?op ?val`.

use crate::config::Obscurity;
use relational::AttributeRef;
use serde::{Deserialize, Serialize};
use sqlparse::{Aggregate, BinOp, ColumnRef, Expr, Literal, Predicate, Query, SelectItem};
use std::fmt;

/// The clause context `τ` of a query fragment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum QueryContext {
    /// The `SELECT` list.
    Select,
    /// The `FROM` clause.
    From,
    /// The `WHERE` clause (non-join predicates only).
    Where,
    /// The `GROUP BY` clause.
    GroupBy,
    /// The `HAVING` clause.
    Having,
    /// The `ORDER BY` clause.
    OrderBy,
}

impl fmt::Display for QueryContext {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            QueryContext::Select => "SELECT",
            QueryContext::From => "FROM",
            QueryContext::Where => "WHERE",
            QueryContext::GroupBy => "GROUP BY",
            QueryContext::Having => "HAVING",
            QueryContext::OrderBy => "ORDER BY",
        };
        write!(f, "{name}")
    }
}

/// A query fragment `(χ, τ)`.
#[derive(Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct QueryFragment {
    /// The canonical textual form of the expression / predicate, with alias
    /// qualifiers resolved to relation names and identifiers lower-cased.
    pub expr: String,
    /// The clause context.
    pub context: QueryContext,
}

// `Clone` is hand-written (instead of derived) so test builds can count
// fragment clones: the id-based scoring hot path is contractually
// clone-free, and `keyword::tests::scoring_never_clones_query_fragments`
// enforces that with the counter below.
impl Clone for QueryFragment {
    fn clone(&self) -> Self {
        #[cfg(test)]
        clone_counter::record();
        QueryFragment {
            expr: self.expr.clone(),
            context: self.context,
        }
    }
}

/// Thread-local [`QueryFragment`] clone counter, available to this crate's
/// unit tests.  Thread-local (rather than a process-wide atomic) so
/// concurrently running tests cannot perturb each other's readings.
#[cfg(test)]
pub(crate) mod clone_counter {
    use std::cell::Cell;

    thread_local! {
        static CLONES: Cell<u64> = const { Cell::new(0) };
    }

    pub(crate) fn record() {
        CLONES.with(|c| c.set(c.get() + 1));
    }

    /// Clones performed on the current thread so far.
    pub(crate) fn current() -> u64 {
        CLONES.with(Cell::get)
    }
}

impl QueryFragment {
    /// A fragment in the `FROM` context for a relation.
    pub fn relation(name: &str) -> Self {
        QueryFragment {
            expr: name.to_lowercase(),
            context: QueryContext::From,
        }
    }

    /// A fragment for a (possibly aggregated) attribute in a given context.
    pub fn attribute(
        attr: &AttributeRef,
        aggregate: Option<Aggregate>,
        context: QueryContext,
    ) -> Self {
        let base = format!(
            "{}.{}",
            attr.relation.to_lowercase(),
            attr.attribute.to_lowercase()
        );
        let expr = match aggregate {
            Some(agg) => format!("{}({})", agg.name().to_lowercase(), base),
            None => base,
        };
        QueryFragment { expr, context }
    }

    /// A fragment for a comparison predicate at the given obscurity level.
    pub fn predicate(
        attr: &AttributeRef,
        op: BinOp,
        value: &Literal,
        obscurity: Obscurity,
    ) -> Self {
        let base = format!(
            "{}.{}",
            attr.relation.to_lowercase(),
            attr.attribute.to_lowercase()
        );
        let expr = match obscurity {
            Obscurity::Full => format!("{} {} {}", base, op.symbol(), render_literal(value)),
            Obscurity::NoConst => format!("{} {} ?val", base, op.symbol()),
            Obscurity::NoConstOp => format!("{base} ?op ?val"),
        };
        QueryFragment {
            expr,
            context: QueryContext::Where,
        }
    }

    /// True for fragments in the `FROM` context (these are excluded from the
    /// QFG-based configuration score, Section V-C.2).
    pub fn is_relation(&self) -> bool {
        self.context == QueryContext::From
    }
}

impl fmt::Display for QueryFragment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.expr, self.context)
    }
}

fn render_literal(lit: &Literal) -> String {
    match lit {
        Literal::String(s) => format!("'{}'", s.to_lowercase()),
        other => other.to_string(),
    }
}

/// Resolve a column reference against a query's FROM clause, producing the
/// canonical `relation.attribute` form (falling back to the raw qualifier
/// when it cannot be resolved).
fn canonical_column(query: &Query, col: &ColumnRef) -> String {
    let relation = col
        .qualifier
        .as_deref()
        .and_then(|q| query.resolve_qualifier(q))
        .map(|r| r.to_string())
        .or_else(|| {
            // Unqualified column in a single-table query.
            if query.from.len() == 1 {
                Some(query.from[0].table.clone())
            } else {
                col.qualifier.clone()
            }
        });
    match relation {
        Some(r) => format!("{}.{}", r.to_lowercase(), col.column.to_lowercase()),
        None => col.column.to_lowercase(),
    }
}

fn expr_fragment_text(query: &Query, expr: &Expr) -> String {
    match expr {
        Expr::Column(c) => canonical_column(query, c),
        Expr::Aggregate {
            func,
            distinct,
            arg,
        } => {
            let inner = match arg {
                Some(c) => canonical_column(query, c),
                None => "*".to_string(),
            };
            if *distinct {
                format!("{}(distinct {})", func.name().to_lowercase(), inner)
            } else {
                format!("{}({})", func.name().to_lowercase(), inner)
            }
        }
        Expr::Literal(l) => render_literal(l),
    }
}

fn predicate_fragment_text(query: &Query, pred: &Predicate, obscurity: Obscurity) -> String {
    match pred {
        Predicate::Compare { left, op, right } => {
            let l = expr_fragment_text(query, left);
            match obscurity {
                Obscurity::Full => {
                    format!("{} {} {}", l, op.symbol(), expr_fragment_text(query, right))
                }
                Obscurity::NoConst => format!("{} {} ?val", l, op.symbol()),
                Obscurity::NoConstOp => format!("{l} ?op ?val"),
            }
        }
        Predicate::In {
            col,
            values,
            negated,
        } => {
            let l = canonical_column(query, col);
            match obscurity {
                Obscurity::Full => {
                    let vals: Vec<String> = values.iter().map(render_literal).collect();
                    let kw = if *negated { "not in" } else { "in" };
                    format!("{} {} ({})", l, kw, vals.join(", "))
                }
                Obscurity::NoConst => format!("{l} in ?val"),
                Obscurity::NoConstOp => format!("{l} ?op ?val"),
            }
        }
        Predicate::Between { col, low, high } => {
            let l = canonical_column(query, col);
            match obscurity {
                Obscurity::Full => format!(
                    "{} between {} and {}",
                    l,
                    render_literal(low),
                    render_literal(high)
                ),
                Obscurity::NoConst => format!("{l} between ?val and ?val"),
                Obscurity::NoConstOp => format!("{l} ?op ?val"),
            }
        }
        Predicate::IsNull { col, negated } => {
            let l = canonical_column(query, col);
            match obscurity {
                Obscurity::Full | Obscurity::NoConst => {
                    if *negated {
                        format!("{l} is not null")
                    } else {
                        format!("{l} is null")
                    }
                }
                Obscurity::NoConstOp => format!("{l} ?op ?val"),
            }
        }
    }
}

/// Decompose a parsed query into its query fragments at the given obscurity
/// level (the example of Figure 3b).
///
/// Join conditions are *not* fragments: they are handled by join path
/// inference, and including them would double-count schema structure
/// (Section V-C.2 makes the same argument for relations in FROM).
pub fn fragments_of_query(query: &Query, obscurity: Obscurity) -> Vec<QueryFragment> {
    let mut out = Vec::new();
    for item in &query.select {
        match item {
            SelectItem::Wildcard => out.push(QueryFragment {
                expr: "*".to_string(),
                context: QueryContext::Select,
            }),
            SelectItem::Expr(e) => out.push(QueryFragment {
                expr: expr_fragment_text(query, e),
                context: QueryContext::Select,
            }),
        }
    }
    for t in &query.from {
        out.push(QueryFragment::relation(&t.table));
    }
    for p in query.filter_predicates() {
        out.push(QueryFragment {
            expr: predicate_fragment_text(query, p, obscurity),
            context: QueryContext::Where,
        });
    }
    for c in &query.group_by {
        out.push(QueryFragment {
            expr: canonical_column(query, c),
            context: QueryContext::GroupBy,
        });
    }
    for p in &query.having {
        out.push(QueryFragment {
            expr: predicate_fragment_text(query, p, obscurity),
            context: QueryContext::Having,
        });
    }
    for o in &query.order_by {
        out.push(QueryFragment {
            expr: expr_fragment_text(query, &o.expr),
            context: QueryContext::OrderBy,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlparse::parse_query;

    #[test]
    fn extracts_fragments_from_the_paper_example() {
        // Figure 3a, third logged query.
        let q = parse_query(
            "SELECT p.title FROM journal j, publication p \
             WHERE j.name = 'TMC' AND p.pid = j.pid",
        )
        .unwrap();
        let frags = fragments_of_query(&q, Obscurity::NoConstOp);
        assert!(frags.contains(&QueryFragment {
            expr: "publication.title".into(),
            context: QueryContext::Select
        }));
        assert!(frags.contains(&QueryFragment::relation("journal")));
        assert!(frags.contains(&QueryFragment::relation("publication")));
        assert!(frags.contains(&QueryFragment {
            expr: "journal.name ?op ?val".into(),
            context: QueryContext::Where
        }));
        // The join condition must not become a fragment.
        assert_eq!(frags.len(), 4);
    }

    #[test]
    fn obscurity_levels_differ() {
        let q = parse_query("SELECT p.title FROM publication p WHERE p.year > 2003").unwrap();
        let full = fragments_of_query(&q, Obscurity::Full);
        let noconst = fragments_of_query(&q, Obscurity::NoConst);
        let noconstop = fragments_of_query(&q, Obscurity::NoConstOp);
        assert!(full.iter().any(|f| f.expr == "publication.year > 2003"));
        assert!(noconst.iter().any(|f| f.expr == "publication.year > ?val"));
        assert!(noconstop
            .iter()
            .any(|f| f.expr == "publication.year ?op ?val"));
    }

    #[test]
    fn different_constants_collapse_under_noconst() {
        let q1 = parse_query("SELECT p.title FROM publication p WHERE p.year > 2003").unwrap();
        let q2 = parse_query("SELECT p.title FROM publication p WHERE p.year > 1995").unwrap();
        let f1 = fragments_of_query(&q1, Obscurity::NoConst);
        let f2 = fragments_of_query(&q2, Obscurity::NoConst);
        assert_eq!(f1, f2);
    }

    #[test]
    fn different_operators_collapse_only_under_noconstop() {
        let q1 = parse_query("SELECT p.title FROM publication p WHERE p.year > 2003").unwrap();
        let q2 = parse_query("SELECT p.title FROM publication p WHERE p.year < 1995").unwrap();
        assert_ne!(
            fragments_of_query(&q1, Obscurity::NoConst),
            fragments_of_query(&q2, Obscurity::NoConst)
        );
        assert_eq!(
            fragments_of_query(&q1, Obscurity::NoConstOp),
            fragments_of_query(&q2, Obscurity::NoConstOp)
        );
    }

    #[test]
    fn aggregates_group_by_and_order_by_become_fragments() {
        let q = parse_query(
            "SELECT a.name, COUNT(p.pid) FROM author a, writes w, publication p \
             WHERE a.aid = w.aid AND w.pid = p.pid \
             GROUP BY a.name ORDER BY COUNT(p.pid) DESC",
        )
        .unwrap();
        let frags = fragments_of_query(&q, Obscurity::NoConstOp);
        assert!(frags.contains(&QueryFragment {
            expr: "count(publication.pid)".into(),
            context: QueryContext::Select
        }));
        assert!(frags.contains(&QueryFragment {
            expr: "author.name".into(),
            context: QueryContext::GroupBy
        }));
        assert!(frags.contains(&QueryFragment {
            expr: "count(publication.pid)".into(),
            context: QueryContext::OrderBy
        }));
    }

    #[test]
    fn constructors_match_extraction() {
        let q = parse_query("SELECT p.title FROM publication p WHERE p.year > 2003").unwrap();
        let frags = fragments_of_query(&q, Obscurity::NoConstOp);
        let attr = AttributeRef::new("publication", "year");
        let constructed = QueryFragment::predicate(
            &attr,
            BinOp::Gt,
            &Literal::Number(2003.0),
            Obscurity::NoConstOp,
        );
        assert!(frags.contains(&constructed));
        let title = QueryFragment::attribute(
            &AttributeRef::new("publication", "title"),
            None,
            QueryContext::Select,
        );
        assert!(frags.contains(&title));
    }

    #[test]
    fn string_predicates_lowercase_values_at_full_obscurity() {
        let q = parse_query("SELECT j.name FROM journal j WHERE j.name = 'TKDE'").unwrap();
        let frags = fragments_of_query(&q, Obscurity::Full);
        assert!(frags.iter().any(|f| f.expr == "journal.name = 'tkde'"));
    }
}
