//! Accuracy metrics (Section VII-A.5).

use nlidb::RankedSql;
use serde::{Deserialize, Serialize};
use sqlparse::{canonicalize, Query};
use templar_core::{Keyword, MappedElement};

/// A running accuracy counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Accuracy {
    /// Number of correct cases.
    pub correct: usize,
    /// Total number of cases.
    pub total: usize,
}

impl Accuracy {
    /// Record one case.
    pub fn record(&mut self, correct: bool) {
        self.total += 1;
        if correct {
            self.correct += 1;
        }
    }

    /// Accuracy as a percentage (0 when no cases were recorded).
    pub fn percent(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            100.0 * self.correct as f64 / self.total as f64
        }
    }

    /// Merge another counter into this one.
    pub fn merge(&mut self, other: Accuracy) {
        self.correct += other.correct;
        self.total += other.total;
    }
}

/// Scores within this tolerance are considered tied.
const TIE_EPSILON: f64 = 1e-9;

/// Full-query (FQ) correctness: the top-ranked SQL query must be equivalent
/// to the gold query, and there must be no *different* query tied for first
/// place (the paper counts ties as incorrect, Section VII-A.5).
pub fn fq_correct(results: &[RankedSql], gold: &Query) -> bool {
    let Some(top) = results.first() else {
        return false;
    };
    let gold_canon = canonicalize(gold);
    let top_canon = canonicalize(&top.query);
    if top_canon != gold_canon {
        return false;
    }
    // Tie check: any other result with (numerically) the same score but a
    // different canonical form makes the answer ambiguous.
    for other in results.iter().skip(1) {
        if (other.score - top.score).abs() < TIE_EPSILON && canonicalize(&other.query) != top_canon
        {
            return false;
        }
    }
    true
}

/// Keyword-mapping (KW) correctness: every non-relation keyword of the gold
/// hand parse must be mapped to its gold element by the system's top-ranked
/// configuration (Section VII-B.2).
pub fn kw_correct(
    results: &[RankedSql],
    keywords: &[Keyword],
    gold_mappings: &[MappedElement],
) -> bool {
    let Some(top) = results.first() else {
        return false;
    };
    let Some(config) = &top.configuration else {
        return false;
    };
    for (keyword, gold) in keywords.iter().zip(gold_mappings.iter()) {
        if matches!(gold, MappedElement::Relation(_)) {
            continue;
        }
        let matched = config
            .mappings
            .iter()
            .any(|m| m.keyword.text == keyword.text && &m.element == gold);
        if !matched {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use relational::AttributeRef;
    use sqlparse::parse_query;
    use templar_core::{Configuration, MappingCandidate};

    fn ranked(sql: &str, score: f64) -> RankedSql {
        let explanation = nlidb::Explanation {
            lambda: 1.0,
            sigma_score: score,
            log_popularity: 0.0,
            dice_cooccurrence: 0.0,
            qfg_pairs: 0,
            qfg_score: 0.0,
            config_score: score,
            join: nlidb::JoinExplanation {
                edges: 0,
                total_weight: 0.0,
                used_log_weights: false,
                score: 1.0,
            },
            final_score: score,
            search_budget_exhausted: false,
        };
        RankedSql {
            query: parse_query(sql).unwrap(),
            score,
            configuration: None,
            explanation,
        }
    }

    #[test]
    fn accuracy_percentages() {
        let mut a = Accuracy::default();
        assert_eq!(a.percent(), 0.0);
        a.record(true);
        a.record(false);
        a.record(true);
        assert!((a.percent() - 66.666).abs() < 0.01);
        let mut b = Accuracy::default();
        b.record(true);
        a.merge(b);
        assert_eq!(a.correct, 3);
        assert_eq!(a.total, 4);
    }

    #[test]
    fn fq_requires_equivalence_of_the_top_result() {
        let gold = parse_query("SELECT p.title FROM publication p WHERE p.year > 2000").unwrap();
        let right = ranked("SELECT x.title FROM publication x WHERE x.year > 2000", 0.9);
        let wrong = ranked("SELECT j.name FROM journal j", 0.8);
        assert!(fq_correct(&[right.clone(), wrong.clone()], &gold));
        assert!(!fq_correct(&[wrong, right], &gold));
        assert!(!fq_correct(&[], &gold));
    }

    #[test]
    fn ties_for_first_place_count_as_incorrect() {
        let gold = parse_query("SELECT p.title FROM publication p").unwrap();
        let right = ranked("SELECT p.title FROM publication p", 0.9);
        let tied_wrong = ranked("SELECT j.name FROM journal j", 0.9);
        assert!(!fq_correct(&[right.clone(), tied_wrong], &gold));
        // A tie between two renderings of the same query is fine.
        let tied_same = ranked("SELECT pub.title FROM publication pub", 0.9);
        assert!(fq_correct(&[right, tied_same], &gold));
    }

    #[test]
    fn kw_checks_non_relation_mappings_only() {
        let keywords = vec![Keyword::new("papers"), Keyword::new("TKDE")];
        let gold = vec![
            MappedElement::Attribute {
                attr: AttributeRef::new("publication", "title"),
                aggregates: vec![],
                group_by: false,
            },
            MappedElement::Predicate {
                attr: AttributeRef::new("journal", "name"),
                op: sqlparse::BinOp::Eq,
                value: sqlparse::Literal::String("TKDE".into()),
            },
        ];
        let config = Configuration {
            mappings: keywords
                .iter()
                .zip(gold.iter())
                .map(|(k, g)| MappingCandidate {
                    keyword: k.clone(),
                    element: g.clone(),
                    score: 1.0,
                })
                .collect(),
            sigma_score: 1.0,
            qfg_score: 1.0,
            log_popularity: 1.0,
            dice_cooccurrence: 0.0,
            qfg_pairs: 0,
            lambda: 1.0,
            score: 1.0,
        };
        let mut result = ranked("SELECT p.title FROM publication p", 1.0);
        result.configuration = Some(config);
        assert!(kw_correct(&[result.clone()], &keywords, &gold));
        // A wrong mapping for the value keyword breaks KW correctness.
        let mut bad = result.clone();
        if let Some(cfg) = &mut bad.configuration {
            cfg.mappings[1].element = MappedElement::Predicate {
                attr: AttributeRef::new("keyword", "keyword"),
                op: sqlparse::BinOp::Eq,
                value: sqlparse::Literal::String("TKDE".into()),
            };
        }
        assert!(!kw_correct(&[bad], &keywords, &gold));
        // No configuration at all -> incorrect.
        assert!(!kw_correct(&[ranked("SELECT 1", 1.0)], &keywords, &gold));
    }
}
