//! Cross-validation driver and system construction.

use crate::metrics::{fq_correct, kw_correct, Accuracy};
use datasets::Dataset;
use nlidb::{NaLirSystem, NlidbSystem, PipelineSystem};
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use templar_core::{Keyword, QueryLog, TemplarConfig, TemplarError};

/// The four systems evaluated in Table III.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SystemKind {
    /// NaLIR baseline.
    NaLir,
    /// NaLIR augmented with Templar.
    NaLirPlus,
    /// Pipeline baseline (SQLizer-style, no repair rules).
    Pipeline,
    /// Pipeline augmented with Templar.
    PipelinePlus,
}

impl SystemKind {
    /// All systems in the row order of Table III.
    pub const ALL: [SystemKind; 4] = [
        SystemKind::NaLir,
        SystemKind::NaLirPlus,
        SystemKind::Pipeline,
        SystemKind::PipelinePlus,
    ];

    /// The display name used in experiment tables.
    pub fn name(self) -> &'static str {
        match self {
            SystemKind::NaLir => "NaLIR",
            SystemKind::NaLirPlus => "NaLIR+",
            SystemKind::Pipeline => "Pipeline",
            SystemKind::PipelinePlus => "Pipeline+",
        }
    }

    /// True for the Templar-augmented systems.
    pub fn is_augmented(self) -> bool {
        matches!(self, SystemKind::NaLirPlus | SystemKind::PipelinePlus)
    }

    /// Instantiate the system for one cross-validation fold.  Baselines never
    /// see the query log; augmented systems receive the training folds' log.
    /// Construction is fallible since `Templar::new` validates its inputs;
    /// with a benchmark dataset's self-consistent configuration it always
    /// succeeds.
    pub fn build(
        self,
        db: Arc<relational::Database>,
        log: &QueryLog,
        config: &TemplarConfig,
    ) -> Result<Box<dyn NlidbSystem>, TemplarError> {
        Ok(match self {
            SystemKind::NaLir => Box::new(NaLirSystem::baseline(db)?),
            SystemKind::NaLirPlus => Box::new(NaLirSystem::augmented(db, log, config.clone())?),
            SystemKind::Pipeline => Box::new(PipelineSystem::baseline(db)?),
            SystemKind::PipelinePlus => {
                Box::new(PipelineSystem::augmented(db, log, config.clone())?)
            }
        })
    }
}

/// Aggregated accuracy of one system on one dataset.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DatasetAccuracy {
    /// Keyword-mapping accuracy.
    pub kw: Accuracy,
    /// Full-query accuracy.
    pub fq: Accuracy,
}

impl DatasetAccuracy {
    /// KW accuracy in percent.
    pub fn kw_percent(&self) -> f64 {
        self.kw.percent()
    }

    /// FQ accuracy in percent.
    pub fn fq_percent(&self) -> f64 {
        self.fq.percent()
    }
}

/// Number of cross-validation folds used throughout the evaluation
/// (Section VII-A.4).
pub const FOLDS: usize = 4;

/// Evaluate one system on one dataset with 4-fold cross-validation, returning
/// the aggregated KW and FQ accuracies.
pub fn evaluate_system(
    dataset: &Dataset,
    system: SystemKind,
    config: &TemplarConfig,
) -> DatasetAccuracy {
    evaluate_system_with_folds(dataset, system, config, FOLDS)
}

/// [`evaluate_system`] with an explicit fold count (smaller counts are used
/// by smoke tests and benches).
pub fn evaluate_system_with_folds(
    dataset: &Dataset,
    system: SystemKind,
    config: &TemplarConfig,
    folds: usize,
) -> DatasetAccuracy {
    let mut kw = Accuracy::default();
    let mut fq = Accuracy::default();
    for fold in dataset.folds(folds) {
        let instance = system
            .build(Arc::clone(&dataset.db), &fold.log, config)
            .expect("benchmark datasets build at a consistent obscurity");
        for case_id in &fold.test_case_ids {
            let case = dataset
                .case(*case_id)
                .expect("fold references a known case");
            // A typed translation failure counts as zero candidates for the
            // accuracy metrics, exactly as the paper scores a miss.
            let results = instance.translate(&case.nlq).unwrap_or_default();
            let keywords: Vec<Keyword> = case.nlq.keywords.iter().map(|(k, _)| k.clone()).collect();
            kw.record(kw_correct(&results, &keywords, &case.nlq.gold_mappings));
            fq.record(fq_correct(&results, &case.gold_sql));
        }
    }
    DatasetAccuracy { kw, fq }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn system_kinds_have_names_and_augmentation_flags() {
        assert_eq!(SystemKind::Pipeline.name(), "Pipeline");
        assert_eq!(SystemKind::PipelinePlus.name(), "Pipeline+");
        assert!(SystemKind::PipelinePlus.is_augmented());
        assert!(!SystemKind::NaLir.is_augmented());
        assert_eq!(SystemKind::ALL.len(), 4);
    }

    #[test]
    fn evaluation_counts_every_test_case_once() {
        // 2 folds over Yelp keeps this test fast while exercising the full
        // pipeline end to end.
        let dataset = Dataset::yelp();
        let config = TemplarConfig::default();
        let acc = evaluate_system_with_folds(&dataset, SystemKind::PipelinePlus, &config, 2);
        assert_eq!(acc.fq.total, dataset.cases.len());
        assert_eq!(acc.kw.total, dataset.cases.len());
        assert!(
            acc.fq.correct > 0,
            "Pipeline+ should answer some Yelp queries"
        );
        assert!(acc.kw.correct >= acc.fq.correct);
    }
}
