//! Evaluation harness: accuracy metrics, cross-validation and the
//! experiment drivers regenerating every table and figure of the paper.
//!
//! * [`metrics`] — the KW (keyword mapping) and FQ (full query) top-1
//!   accuracy metrics of Section VII-A.5, including the rule that a tie for
//!   first place counts as incorrect.
//! * [`crossval`] — the 4-fold cross-validation protocol of Section VII-A.4
//!   and the construction of each evaluated system (NaLIR, NaLIR+, Pipeline,
//!   Pipeline+).
//! * [`experiments`] — one driver per table / figure: Table II (dataset
//!   statistics), Table III (KW/FQ accuracy of all systems), Table IV
//!   (log-driven join inference ablation), Figure 5 (κ sweep), Figure 6
//!   (λ sweep) and the obscurity-level ablation discussed in Section VII-B.
//!
//! Each driver returns a serde-serializable result and renders an aligned
//! text table, so the binaries in `src/bin/` can both print to stdout and
//! archive JSON for `EXPERIMENTS.md`.

pub mod crossval;
pub mod experiments;
pub mod metrics;

pub use crossval::{evaluate_system, DatasetAccuracy, SystemKind};
pub use metrics::{fq_correct, kw_correct, Accuracy};
