//! Regenerate Table III (KW / FQ accuracy of NaLIR, NaLIR+, Pipeline,
//! Pipeline+ on MAS, Yelp and IMDB).

use datasets::Dataset;
use eval::experiments::table3;
use templar_core::TemplarConfig;

fn main() {
    let datasets = Dataset::all();
    let table = table3(&datasets, &TemplarConfig::paper_defaults());
    println!("{}", table.render());
    println!(
        "{}",
        serde_json::to_string_pretty(&table).expect("serializable result")
    );
}
