//! Regenerate Figure 5 (Pipeline+ accuracy vs kappa, lambda = 0.8).

use datasets::Dataset;
use eval::experiments::fig5;

fn main() {
    let datasets = Dataset::all();
    let kappas: Vec<usize> = (1..=10).collect();
    let sweep = fig5(&datasets, &kappas);
    println!("{}", sweep.render());
    println!(
        "{}",
        serde_json::to_string_pretty(&sweep).expect("serializable result")
    );
}
