//! Run every experiment (Tables II-IV, Figures 5-6, obscurity ablation) and
//! print the results in the order they appear in the paper.  The output of
//! this binary is the source of EXPERIMENTS.md.

use datasets::Dataset;
use eval::experiments::{fig5, fig6, obscurity, table2, table3, table4};
use templar_core::TemplarConfig;

fn main() {
    let datasets = Dataset::all();
    let config = TemplarConfig::paper_defaults();

    println!("=== Table II ===");
    println!("{}", table2(&datasets).render());

    println!("=== Table III ===");
    println!("{}", table3(&datasets, &config).render());

    println!("=== Table IV ===");
    println!("{}", table4(&datasets, &config).render());

    println!("=== Figure 5 (kappa sweep) ===");
    let kappas: Vec<usize> = (1..=10).collect();
    println!("{}", fig5(&datasets, &kappas).render());

    println!("=== Figure 6 (lambda sweep) ===");
    let lambdas: Vec<f64> = (0..=10).map(|i| i as f64 / 10.0).collect();
    println!("{}", fig6(&datasets, &lambdas).render());

    println!("=== Obscurity ablation ===");
    println!("{}", obscurity(&datasets).render());
}
