//! Regenerate the obscurity-level ablation (Section VII-B).

use datasets::Dataset;
use eval::experiments::obscurity;

fn main() {
    let datasets = Dataset::all();
    let ablation = obscurity(&datasets);
    println!("{}", ablation.render());
    println!(
        "{}",
        serde_json::to_string_pretty(&ablation).expect("serializable result")
    );
}
