//! Regenerate Table IV (effect of log-driven join inference on Pipeline+).

use datasets::Dataset;
use eval::experiments::table4;
use templar_core::TemplarConfig;

fn main() {
    let datasets = Dataset::all();
    let table = table4(&datasets, &TemplarConfig::paper_defaults());
    println!("{}", table.render());
    println!(
        "{}",
        serde_json::to_string_pretty(&table).expect("serializable result")
    );
}
