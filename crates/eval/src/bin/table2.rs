//! Regenerate Table II (dataset statistics).

use datasets::Dataset;
use eval::experiments::table2;

fn main() {
    let datasets = Dataset::all();
    let table = table2(&datasets);
    println!("{}", table.render());
    println!(
        "{}",
        serde_json::to_string_pretty(&table).expect("serializable result")
    );
}
