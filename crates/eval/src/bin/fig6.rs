//! Regenerate Figure 6 (Pipeline+ accuracy vs lambda, kappa = 5).

use datasets::Dataset;
use eval::experiments::fig6;

fn main() {
    let datasets = Dataset::all();
    let lambdas: Vec<f64> = (0..=10).map(|i| i as f64 / 10.0).collect();
    let sweep = fig6(&datasets, &lambdas);
    println!("{}", sweep.render());
    println!(
        "{}",
        serde_json::to_string_pretty(&sweep).expect("serializable result")
    );
}
