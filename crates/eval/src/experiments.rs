//! Experiment drivers: one per table / figure of the paper's evaluation.

use crate::crossval::{evaluate_system, DatasetAccuracy, SystemKind};
use datasets::Dataset;
use relational::DatasetStats;
use serde::{Deserialize, Serialize};
use templar_core::{Obscurity, QueryFragmentGraph, TemplarConfig};

/// Table II — dataset statistics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table2 {
    /// One row per dataset.
    pub rows: Vec<DatasetStats>,
}

/// Run the Table II experiment.
pub fn table2(datasets: &[Dataset]) -> Table2 {
    Table2 {
        rows: datasets.iter().map(Dataset::stats).collect(),
    }
}

impl Table2 {
    /// Render the table as aligned text.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "Table II: statistics of each benchmark dataset\n\
             Dataset    Size(MB)   Rels  Attrs  FK-PK  Queries   Rows\n",
        );
        for r in &self.rows {
            out.push_str(&format!(
                "{:<10} {:>8.1} {:>6} {:>6} {:>6} {:>8} {:>6}\n",
                r.name, r.size_mb, r.relations, r.attributes, r.fk_pk, r.queries, r.rows
            ));
        }
        out
    }
}

/// One row of Table III.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table3Row {
    /// Dataset name.
    pub dataset: String,
    /// System name.
    pub system: String,
    /// Keyword-mapping accuracy in percent.
    pub kw_percent: f64,
    /// Full-query accuracy in percent.
    pub fq_percent: f64,
}

/// Table III — KW and FQ accuracy of every system on every dataset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table3 {
    /// Configuration used for the augmented systems.
    pub config: TemplarConfig,
    /// One row per (dataset, system).
    pub rows: Vec<Table3Row>,
}

/// Run the Table III experiment (NoConstOp, κ = 5, λ = 0.8 by default).
pub fn table3(datasets: &[Dataset], config: &TemplarConfig) -> Table3 {
    let mut rows = Vec::new();
    for dataset in datasets {
        for system in SystemKind::ALL {
            let acc = evaluate_system(dataset, system, config);
            rows.push(Table3Row {
                dataset: dataset.name.clone(),
                system: system.name().to_string(),
                kw_percent: acc.kw_percent(),
                fq_percent: acc.fq_percent(),
            });
        }
    }
    Table3 {
        config: config.clone(),
        rows,
    }
}

impl Table3 {
    /// Render the table as aligned text.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "Table III: keyword mapping (KW) and full query (FQ) top-1 accuracy\n\
             Dataset    System       KW (%)   FQ (%)\n",
        );
        for r in &self.rows {
            out.push_str(&format!(
                "{:<10} {:<12} {:>6.1} {:>8.1}\n",
                r.dataset, r.system, r.kw_percent, r.fq_percent
            ));
        }
        out
    }

    /// The FQ accuracy of a specific (dataset, system) cell.
    pub fn fq(&self, dataset: &str, system: &str) -> Option<f64> {
        self.rows
            .iter()
            .find(|r| r.dataset == dataset && r.system == system)
            .map(|r| r.fq_percent)
    }

    /// The KW accuracy of a specific (dataset, system) cell.
    pub fn kw(&self, dataset: &str, system: &str) -> Option<f64> {
        self.rows
            .iter()
            .find(|r| r.dataset == dataset && r.system == system)
            .map(|r| r.kw_percent)
    }
}

/// One row of Table IV.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table4Row {
    /// Dataset name.
    pub dataset: String,
    /// Whether log-driven join inference was active.
    pub log_join: bool,
    /// Full-query accuracy in percent.
    pub fq_percent: f64,
}

/// Table IV — effect of log-driven join inference on Pipeline+.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table4 {
    /// One row per (dataset, LogJoin setting).
    pub rows: Vec<Table4Row>,
}

/// Run the Table IV experiment.
pub fn table4(datasets: &[Dataset], config: &TemplarConfig) -> Table4 {
    let mut rows = Vec::new();
    for dataset in datasets {
        for log_join in [false, true] {
            let cfg = config.clone().with_log_joins(log_join);
            let acc = evaluate_system(dataset, SystemKind::PipelinePlus, &cfg);
            rows.push(Table4Row {
                dataset: dataset.name.clone(),
                log_join,
                fq_percent: acc.fq_percent(),
            });
        }
    }
    Table4 { rows }
}

impl Table4 {
    /// Render the table as aligned text.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "Table IV: improvement from activating log-based joins in Pipeline+\n\
             Dataset    LogJoin   FQ (%)\n",
        );
        for r in &self.rows {
            out.push_str(&format!(
                "{:<10} {:<8} {:>7.1}\n",
                r.dataset,
                if r.log_join { "Y" } else { "N" },
                r.fq_percent
            ));
        }
        out
    }

    /// FQ accuracy for a dataset at a given LogJoin setting.
    pub fn fq(&self, dataset: &str, log_join: bool) -> Option<f64> {
        self.rows
            .iter()
            .find(|r| r.dataset == dataset && r.log_join == log_join)
            .map(|r| r.fq_percent)
    }
}

/// One point of a parameter-sweep figure.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Dataset name.
    pub dataset: String,
    /// The swept parameter value (κ for Figure 5, λ for Figure 6).
    pub value: f64,
    /// Full-query accuracy in percent.
    pub fq_percent: f64,
}

/// A parameter-sweep figure (Figures 5 and 6).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Sweep {
    /// The swept parameter name.
    pub parameter: String,
    /// The measured series.
    pub points: Vec<SweepPoint>,
}

/// Figure 5 — Pipeline+ accuracy as a function of κ (λ fixed at 0.8).
pub fn fig5(datasets: &[Dataset], kappas: &[usize]) -> Sweep {
    let mut points = Vec::new();
    for dataset in datasets {
        for &kappa in kappas {
            let config = TemplarConfig::default().with_kappa(kappa).with_lambda(0.8);
            let acc = evaluate_system(dataset, SystemKind::PipelinePlus, &config);
            points.push(SweepPoint {
                dataset: dataset.name.clone(),
                value: kappa as f64,
                fq_percent: acc.fq_percent(),
            });
        }
    }
    Sweep {
        parameter: "kappa".to_string(),
        points,
    }
}

/// Figure 6 — Pipeline+ accuracy as a function of λ (κ fixed at 5).
pub fn fig6(datasets: &[Dataset], lambdas: &[f64]) -> Sweep {
    let mut points = Vec::new();
    for dataset in datasets {
        for &lambda in lambdas {
            let config = TemplarConfig::default().with_kappa(5).with_lambda(lambda);
            let acc = evaluate_system(dataset, SystemKind::PipelinePlus, &config);
            points.push(SweepPoint {
                dataset: dataset.name.clone(),
                value: lambda,
                fq_percent: acc.fq_percent(),
            });
        }
    }
    Sweep {
        parameter: "lambda".to_string(),
        points,
    }
}

impl Sweep {
    /// Render the sweep as aligned text (one series block per dataset).
    pub fn render(&self) -> String {
        let mut out = format!(
            "Accuracy of Pipeline+ as a function of {} (correct queries, %)\n",
            self.parameter
        );
        let mut datasets: Vec<String> = self.points.iter().map(|p| p.dataset.clone()).collect();
        datasets.dedup();
        for dataset in datasets {
            out.push_str(&format!("{dataset}\n  {:<8} FQ (%)\n", self.parameter));
            for p in self.points.iter().filter(|p| p.dataset == dataset) {
                out.push_str(&format!("  {:<8} {:>6.1}\n", p.value, p.fq_percent));
            }
        }
        out
    }

    /// The series for one dataset as (value, accuracy) pairs.
    pub fn series(&self, dataset: &str) -> Vec<(f64, f64)> {
        self.points
            .iter()
            .filter(|p| p.dataset == dataset)
            .map(|p| (p.value, p.fq_percent))
            .collect()
    }
}

/// One row of the obscurity-level ablation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ObscurityRow {
    /// Dataset name.
    pub dataset: String,
    /// The obscurity level.
    pub obscurity: String,
    /// Full-query accuracy in percent.
    pub fq_percent: f64,
    /// Distinct fragments in the QFG of the dataset's full log at this
    /// obscurity level — the interner-table footprint the columnar data
    /// plane carries.  Higher obscurity collapses predicate variants, so
    /// this shrinks as the level increases.
    pub qfg_fragments: usize,
    /// Distinct co-occurring fragment pairs (CSR edges) at this level.
    pub qfg_edges: usize,
}

/// The obscurity ablation (Section VII-B: "all obscurity levels ...
/// consistently improved on the baseline systems").
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ObscurityAblation {
    /// Baseline (Pipeline) FQ accuracy per dataset, for reference.
    pub baselines: Vec<(String, f64)>,
    /// One row per (dataset, obscurity level).
    pub rows: Vec<ObscurityRow>,
}

/// Run the obscurity ablation: Pipeline+ at each obscurity level.
pub fn obscurity(datasets: &[Dataset]) -> ObscurityAblation {
    let mut rows = Vec::new();
    let mut baselines = Vec::new();
    for dataset in datasets {
        let base = evaluate_system(dataset, SystemKind::Pipeline, &TemplarConfig::default());
        baselines.push((dataset.name.clone(), base.fq_percent()));
        for level in Obscurity::ALL {
            let config = TemplarConfig::default().with_obscurity(level);
            let acc = evaluate_system(dataset, SystemKind::PipelinePlus, &config);
            let qfg = QueryFragmentGraph::build(&dataset.full_log(), level);
            rows.push(ObscurityRow {
                dataset: dataset.name.clone(),
                obscurity: level.name().to_string(),
                fq_percent: acc.fq_percent(),
                qfg_fragments: qfg.fragment_count(),
                qfg_edges: qfg.edge_count(),
            });
        }
    }
    ObscurityAblation { baselines, rows }
}

impl ObscurityAblation {
    /// Render as aligned text.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "Obscurity ablation: Pipeline+ FQ accuracy per fragment obscurity level\n\
             Dataset    Obscurity    FQ (%)   (Pipeline baseline)   QFG frags  edges\n",
        );
        for r in &self.rows {
            let base = self
                .baselines
                .iter()
                .find(|(d, _)| d == &r.dataset)
                .map(|(_, v)| *v)
                .unwrap_or(0.0);
            out.push_str(&format!(
                "{:<10} {:<12} {:>6.1}   ({:.1})              {:>9}  {:>5}\n",
                r.dataset, r.obscurity, r.fq_percent, base, r.qfg_fragments, r.qfg_edges
            ));
        }
        out
    }
}

/// Convenience wrapper: accuracy of one system on one dataset with the paper
/// defaults (used by examples and integration tests).
pub fn quick_accuracy(dataset: &Dataset, system: SystemKind) -> DatasetAccuracy {
    evaluate_system(dataset, system, &TemplarConfig::default())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_reports_all_datasets() {
        let datasets = [Dataset::yelp()];
        let t = table2(&datasets);
        assert_eq!(t.rows.len(), 1);
        assert_eq!(t.rows[0].relations, 7);
        assert!(t.render().contains("Yelp"));
    }

    #[test]
    fn sweep_series_are_extractable() {
        let sweep = Sweep {
            parameter: "kappa".into(),
            points: vec![
                SweepPoint {
                    dataset: "MAS".into(),
                    value: 1.0,
                    fq_percent: 40.0,
                },
                SweepPoint {
                    dataset: "MAS".into(),
                    value: 5.0,
                    fq_percent: 70.0,
                },
            ],
        };
        assert_eq!(sweep.series("MAS"), vec![(1.0, 40.0), (5.0, 70.0)]);
        assert!(sweep.render().contains("kappa"));
    }

    #[test]
    fn table3_lookup_helpers_work() {
        let t = Table3 {
            config: TemplarConfig::default(),
            rows: vec![Table3Row {
                dataset: "MAS".into(),
                system: "Pipeline+".into(),
                kw_percent: 70.0,
                fq_percent: 65.0,
            }],
        };
        assert_eq!(t.fq("MAS", "Pipeline+"), Some(65.0));
        assert_eq!(t.kw("MAS", "Pipeline+"), Some(70.0));
        assert_eq!(t.fq("MAS", "NaLIR"), None);
        assert!(t.render().contains("Pipeline+"));
    }

    #[test]
    fn table4_lookup_helpers_work() {
        let t = Table4 {
            rows: vec![
                Table4Row {
                    dataset: "Yelp".into(),
                    log_join: false,
                    fq_percent: 60.0,
                },
                Table4Row {
                    dataset: "Yelp".into(),
                    log_join: true,
                    fq_percent: 80.0,
                },
            ],
        };
        assert_eq!(t.fq("Yelp", true), Some(80.0));
        assert_eq!(t.fq("Yelp", false), Some(60.0));
        assert!(t.render().contains("LogJoin"));
    }
}
