//! Dataset statistics (Table II of the paper).

use crate::database::Database;
use serde::{Deserialize, Serialize};

/// The statistics reported per benchmark dataset in Table II.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetStats {
    /// Dataset name (`MAS`, `Yelp`, `IMDB`).
    pub name: String,
    /// Approximate size of the stored data in megabytes.
    pub size_mb: f64,
    /// Number of relations.
    pub relations: usize,
    /// Number of attributes across all relations.
    pub attributes: usize,
    /// Number of FK-PK relationships.
    pub fk_pk: usize,
    /// Number of benchmark NLQ-SQL pairs (filled in by the evaluation crate).
    pub queries: usize,
    /// Total number of stored rows (not in the paper's table, reported for
    /// transparency about the synthetic data substitution).
    pub rows: usize,
}

impl DatasetStats {
    /// Compute the schema/data statistics of a database; `queries` is
    /// supplied by the caller because the benchmark suite lives in a
    /// different crate.
    pub fn from_database(name: &str, db: &Database, queries: usize) -> Self {
        DatasetStats {
            name: name.to_string(),
            size_mb: db.size_bytes() as f64 / (1024.0 * 1024.0),
            relations: db.schema().relations.len(),
            attributes: db.schema().attribute_count(),
            fk_pk: db.schema().foreign_keys.len(),
            queries,
            rows: db.total_rows(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Schema;
    use crate::types::DataType;

    #[test]
    fn stats_reflect_schema_and_data() {
        let schema = Schema::builder("tiny")
            .relation(
                "t",
                &[("id", DataType::Integer), ("name", DataType::Text)],
                Some("id"),
            )
            .relation(
                "u",
                &[("id", DataType::Integer), ("tid", DataType::Integer)],
                Some("id"),
            )
            .foreign_key("u", "tid", "t", "id")
            .build();
        let mut db = Database::new(schema);
        db.insert("t", vec![1.into(), "hello".into()]).unwrap();
        let stats = DatasetStats::from_database("tiny", &db, 42);
        assert_eq!(stats.relations, 2);
        assert_eq!(stats.attributes, 4);
        assert_eq!(stats.fk_pk, 1);
        assert_eq!(stats.queries, 42);
        assert_eq!(stats.rows, 1);
        assert!(stats.size_mb > 0.0);
    }
}
