//! Evaluation of single-relation predicates against stored rows.
//!
//! Algorithm 3 of the paper executes candidate predicates (`exec(c)`) to
//! verify that they select at least one tuple; this module implements the
//! per-row test.  Only single-relation predicates are supported — join
//! conditions are never executed, they are handled symbolically by the join
//! path generator.

use crate::types::Value;
use sqlparse::{BinOp, Expr, Literal, Predicate};

/// Compare a stored value against a SQL literal with the given operator.
pub fn compare_value(value: &Value, op: BinOp, literal: &Literal) -> bool {
    match (value, literal) {
        (Value::Null, _) | (_, Literal::Null) => false,
        (v, Literal::Number(n)) => match v.as_f64() {
            Some(x) => compare_f64(x, op, *n),
            None => false,
        },
        (Value::Text(s), Literal::String(t)) => compare_text(s, op, t),
        _ => false,
    }
}

fn compare_f64(x: f64, op: BinOp, y: f64) -> bool {
    match op {
        BinOp::Eq => (x - y).abs() < 1e-9,
        BinOp::NotEq => (x - y).abs() >= 1e-9,
        BinOp::Lt => x < y,
        BinOp::LtEq => x <= y,
        BinOp::Gt => x > y,
        BinOp::GtEq => x >= y,
        BinOp::Like => false,
    }
}

fn compare_text(s: &str, op: BinOp, t: &str) -> bool {
    match op {
        BinOp::Eq => s.eq_ignore_ascii_case(t),
        BinOp::NotEq => !s.eq_ignore_ascii_case(t),
        BinOp::Like => s
            .to_lowercase()
            .contains(&t.to_lowercase().replace('%', "")),
        BinOp::Lt => s.to_lowercase() < t.to_lowercase(),
        BinOp::LtEq => s.to_lowercase() <= t.to_lowercase(),
        BinOp::Gt => s.to_lowercase() > t.to_lowercase(),
        BinOp::GtEq => s.to_lowercase() >= t.to_lowercase(),
    }
}

/// Evaluate a predicate against a row, where `lookup` resolves a column name
/// to its value in the row.  Qualifiers on column references are ignored —
/// the caller has already chosen which relation's rows to scan.
///
/// Returns `None` when the predicate is not a single-relation predicate our
/// engine can evaluate (e.g. a column-to-column join condition).
pub fn evaluate(pred: &Predicate, lookup: &dyn Fn(&str) -> Option<Value>) -> Option<bool> {
    match pred {
        Predicate::Compare { left, op, right } => match (left, right) {
            (Expr::Column(c), Expr::Literal(l)) => {
                let v = lookup(&c.column)?;
                Some(compare_value(&v, *op, l))
            }
            (Expr::Literal(l), Expr::Column(c)) => {
                let v = lookup(&c.column)?;
                Some(compare_value(&v, flip(*op), l))
            }
            _ => None,
        },
        Predicate::In {
            col,
            values,
            negated,
        } => {
            let v = lookup(&col.column)?;
            let found = values.iter().any(|l| compare_value(&v, BinOp::Eq, l));
            Some(found != *negated)
        }
        Predicate::Between { col, low, high } => {
            let v = lookup(&col.column)?;
            Some(compare_value(&v, BinOp::GtEq, low) && compare_value(&v, BinOp::LtEq, high))
        }
        Predicate::IsNull { col, negated } => {
            let v = lookup(&col.column)?;
            Some(v.is_null() != *negated)
        }
    }
}

/// Flip a comparison operator, for when the literal is on the left.
fn flip(op: BinOp) -> BinOp {
    match op {
        BinOp::Lt => BinOp::Gt,
        BinOp::LtEq => BinOp::GtEq,
        BinOp::Gt => BinOp::Lt,
        BinOp::GtEq => BinOp::LtEq,
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlparse::ColumnRef;

    fn lookup_year_2003(name: &str) -> Option<Value> {
        match name {
            "year" => Some(Value::Int(2003)),
            "name" => Some(Value::Text("TKDE".into())),
            "rating" => Some(Value::Null),
            _ => None,
        }
    }

    fn compare(col: &str, op: BinOp, lit: Literal) -> Predicate {
        Predicate::Compare {
            left: Expr::Column(ColumnRef::new(col)),
            op,
            right: Expr::Literal(lit),
        }
    }

    #[test]
    fn numeric_comparisons() {
        let l = |n: f64| Literal::Number(n);
        assert_eq!(
            evaluate(&compare("year", BinOp::Gt, l(2000.0)), &lookup_year_2003),
            Some(true)
        );
        assert_eq!(
            evaluate(&compare("year", BinOp::Lt, l(2000.0)), &lookup_year_2003),
            Some(false)
        );
        assert_eq!(
            evaluate(&compare("year", BinOp::Eq, l(2003.0)), &lookup_year_2003),
            Some(true)
        );
    }

    #[test]
    fn text_comparisons_are_case_insensitive() {
        assert_eq!(
            evaluate(
                &compare("name", BinOp::Eq, Literal::String("tkde".into())),
                &lookup_year_2003
            ),
            Some(true)
        );
        assert_eq!(
            evaluate(
                &compare("name", BinOp::Like, Literal::String("%KD%".into())),
                &lookup_year_2003
            ),
            Some(true)
        );
    }

    #[test]
    fn null_values_never_satisfy_comparisons() {
        assert_eq!(
            evaluate(
                &compare("rating", BinOp::Gt, Literal::Number(1.0)),
                &lookup_year_2003
            ),
            Some(false)
        );
        assert_eq!(
            evaluate(
                &Predicate::IsNull {
                    col: ColumnRef::new("rating"),
                    negated: false
                },
                &lookup_year_2003
            ),
            Some(true)
        );
    }

    #[test]
    fn between_and_in() {
        let between = Predicate::Between {
            col: ColumnRef::new("year"),
            low: Literal::Number(2000.0),
            high: Literal::Number(2005.0),
        };
        assert_eq!(evaluate(&between, &lookup_year_2003), Some(true));
        let inn = Predicate::In {
            col: ColumnRef::new("name"),
            values: vec![
                Literal::String("TMC".into()),
                Literal::String("TKDE".into()),
            ],
            negated: false,
        };
        assert_eq!(evaluate(&inn, &lookup_year_2003), Some(true));
        let not_in = Predicate::In {
            col: ColumnRef::new("name"),
            values: vec![Literal::String("TMC".into())],
            negated: true,
        };
        assert_eq!(evaluate(&not_in, &lookup_year_2003), Some(true));
    }

    #[test]
    fn literal_on_the_left_flips_the_operator() {
        let pred = Predicate::Compare {
            left: Expr::Literal(Literal::Number(2000.0)),
            op: BinOp::Lt,
            right: Expr::Column(ColumnRef::new("year")),
        };
        // 2000 < year  <=>  year > 2000
        assert_eq!(evaluate(&pred, &lookup_year_2003), Some(true));
    }

    #[test]
    fn join_conditions_are_not_evaluable() {
        let join = Predicate::Compare {
            left: Expr::Column(ColumnRef::qualified("a", "id")),
            op: BinOp::Eq,
            right: Expr::Column(ColumnRef::qualified("b", "id")),
        };
        assert_eq!(evaluate(&join, &lookup_year_2003), None);
    }

    #[test]
    fn unknown_column_yields_none() {
        assert_eq!(
            evaluate(
                &compare("missing", BinOp::Eq, Literal::Number(1.0)),
                &lookup_year_2003
            ),
            None
        );
    }
}
