//! Row storage for a single relation.

use crate::catalog::Relation;
use crate::types::Value;

/// The stored rows of one relation.
#[derive(Debug, Clone, Default)]
pub struct Table {
    /// Attribute names, in the relation's declaration order.
    columns: Vec<String>,
    /// Row-major tuple storage.
    rows: Vec<Vec<Value>>,
}

impl Table {
    /// Create an empty table for a relation.
    pub fn for_relation(relation: &Relation) -> Self {
        Table {
            columns: relation.attributes.iter().map(|a| a.name.clone()).collect(),
            rows: Vec::new(),
        }
    }

    /// The column names.
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// The index of a column (case-insensitive).
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns
            .iter()
            .position(|c| c.eq_ignore_ascii_case(name))
    }

    /// Append a row.  The row must have exactly one value per column.
    pub fn insert(&mut self, row: Vec<Value>) -> Result<(), String> {
        if row.len() != self.columns.len() {
            return Err(format!(
                "row arity {} does not match table arity {}",
                row.len(),
                self.columns.len()
            ));
        }
        self.rows.push(row);
        Ok(())
    }

    /// Number of rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Iterate over the rows.
    pub fn rows(&self) -> impl Iterator<Item = &[Value]> {
        self.rows.iter().map(|r| r.as_slice())
    }

    /// All values of a column.
    pub fn column_values(&self, name: &str) -> Vec<&Value> {
        match self.column_index(name) {
            Some(i) => self.rows.iter().map(|r| &r[i]).collect(),
            None => Vec::new(),
        }
    }

    /// Distinct non-null text values of a column.
    pub fn distinct_text_values(&self, name: &str) -> Vec<String> {
        let mut out: Vec<String> = self
            .column_values(name)
            .into_iter()
            .filter_map(|v| v.as_text().map(|s| s.to_string()))
            .collect();
        out.sort();
        out.dedup();
        out
    }

    /// Approximate size of the stored data in bytes (for Table II).
    pub fn size_bytes(&self) -> usize {
        self.rows
            .iter()
            .map(|r| r.iter().map(Value::size_bytes).sum::<usize>())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Attribute;
    use crate::types::DataType;

    fn journal_relation() -> Relation {
        Relation {
            name: "journal".into(),
            attributes: vec![
                Attribute::new("jid", DataType::Integer),
                Attribute::new("name", DataType::Text),
            ],
            primary_key: Some("jid".into()),
        }
    }

    #[test]
    fn insert_and_scan() {
        let mut t = Table::for_relation(&journal_relation());
        t.insert(vec![Value::Int(1), Value::from("TKDE")]).unwrap();
        t.insert(vec![Value::Int(2), Value::from("TMC")]).unwrap();
        assert_eq!(t.row_count(), 2);
        assert_eq!(t.column_values("name").len(), 2);
        assert_eq!(t.distinct_text_values("name"), vec!["TKDE", "TMC"]);
    }

    #[test]
    fn insert_rejects_wrong_arity() {
        let mut t = Table::for_relation(&journal_relation());
        assert!(t.insert(vec![Value::Int(1)]).is_err());
    }

    #[test]
    fn distinct_values_deduplicate() {
        let mut t = Table::for_relation(&journal_relation());
        for _ in 0..3 {
            t.insert(vec![Value::Int(1), Value::from("TKDE")]).unwrap();
        }
        assert_eq!(t.distinct_text_values("name"), vec!["TKDE"]);
    }

    #[test]
    fn missing_column_yields_empty() {
        let t = Table::for_relation(&journal_relation());
        assert!(t.column_values("nope").is_empty());
        assert_eq!(t.column_index("NAME"), Some(1));
    }

    #[test]
    fn size_estimate_grows_with_rows() {
        let mut t = Table::for_relation(&journal_relation());
        let empty = t.size_bytes();
        t.insert(vec![Value::Int(1), Value::from("TKDE")]).unwrap();
        assert!(t.size_bytes() > empty);
    }
}
