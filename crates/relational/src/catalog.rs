//! The database catalog: relations, attributes and FK-PK relationships.

use crate::types::DataType;
use serde::{Deserialize, Serialize};
use std::fmt;

/// An attribute (column) of a relation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Attribute {
    /// Attribute name.
    pub name: String,
    /// Declared type.
    pub data_type: DataType,
}

impl Attribute {
    /// Construct an attribute.
    pub fn new(name: impl Into<String>, data_type: DataType) -> Self {
        Attribute {
            name: name.into(),
            data_type,
        }
    }
}

/// A fully-qualified reference to an attribute (`relation.attribute`).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct AttributeRef {
    /// The relation name.
    pub relation: String,
    /// The attribute name.
    pub attribute: String,
}

impl AttributeRef {
    /// Construct a reference.
    pub fn new(relation: impl Into<String>, attribute: impl Into<String>) -> Self {
        AttributeRef {
            relation: relation.into(),
            attribute: attribute.into(),
        }
    }
}

impl fmt::Display for AttributeRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.relation, self.attribute)
    }
}

/// A relation (table) in the catalog.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Relation {
    /// Relation name.
    pub name: String,
    /// Attributes in declaration order.
    pub attributes: Vec<Attribute>,
    /// The primary-key attribute, if declared.
    pub primary_key: Option<String>,
}

impl Relation {
    /// Index of an attribute by name (case-insensitive).
    pub fn attribute_index(&self, name: &str) -> Option<usize> {
        self.attributes
            .iter()
            .position(|a| a.name.eq_ignore_ascii_case(name))
    }

    /// Look up an attribute by name (case-insensitive).
    pub fn attribute(&self, name: &str) -> Option<&Attribute> {
        self.attribute_index(name).map(|i| &self.attributes[i])
    }
}

/// A foreign-key / primary-key relationship between two relations.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ForeignKey {
    /// The relation holding the foreign key.
    pub from_relation: String,
    /// The foreign-key attribute.
    pub from_attribute: String,
    /// The referenced relation.
    pub to_relation: String,
    /// The referenced (primary-key) attribute.
    pub to_attribute: String,
}

impl fmt::Display for ForeignKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}.{} -> {}.{}",
            self.from_relation, self.from_attribute, self.to_relation, self.to_attribute
        )
    }
}

/// A database schema: the full catalog of relations and FK-PK edges.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Schema {
    /// Human-readable name of the schema (e.g. `"mas"`).
    pub name: String,
    /// All relations.
    pub relations: Vec<Relation>,
    /// All FK-PK relationships.
    pub foreign_keys: Vec<ForeignKey>,
}

impl Schema {
    /// Start building a schema.
    pub fn builder(name: impl Into<String>) -> SchemaBuilder {
        SchemaBuilder {
            schema: Schema {
                name: name.into(),
                relations: Vec::new(),
                foreign_keys: Vec::new(),
            },
        }
    }

    /// Look up a relation by name (case-insensitive).
    pub fn relation(&self, name: &str) -> Option<&Relation> {
        self.relations
            .iter()
            .find(|r| r.name.eq_ignore_ascii_case(name))
    }

    /// Look up an attribute by qualified reference.
    pub fn attribute(&self, attr: &AttributeRef) -> Option<&Attribute> {
        self.relation(&attr.relation)?.attribute(&attr.attribute)
    }

    /// True when the schema declares this relation.
    pub fn has_relation(&self, name: &str) -> bool {
        self.relation(name).is_some()
    }

    /// All relation names.
    pub fn relation_names(&self) -> Vec<&str> {
        self.relations.iter().map(|r| r.name.as_str()).collect()
    }

    /// All attributes as qualified references, in catalog order.
    pub fn attribute_refs(&self) -> Vec<AttributeRef> {
        self.relations
            .iter()
            .flat_map(|r| {
                r.attributes
                    .iter()
                    .map(move |a| AttributeRef::new(r.name.clone(), a.name.clone()))
            })
            .collect()
    }

    /// Total number of attributes across all relations.
    pub fn attribute_count(&self) -> usize {
        self.relations.iter().map(|r| r.attributes.len()).sum()
    }

    /// The FK-PK edges adjacent to a relation (either direction).
    pub fn foreign_keys_of(&self, relation: &str) -> Vec<&ForeignKey> {
        self.foreign_keys
            .iter()
            .filter(|fk| {
                fk.from_relation.eq_ignore_ascii_case(relation)
                    || fk.to_relation.eq_ignore_ascii_case(relation)
            })
            .collect()
    }

    /// Verify internal consistency: every FK endpoint must exist and every
    /// declared primary key must be an attribute of its relation.  Returns a
    /// list of human-readable problems (empty when the schema is valid).
    pub fn validate(&self) -> Vec<String> {
        let mut problems = Vec::new();
        for r in &self.relations {
            if let Some(pk) = &r.primary_key {
                if r.attribute(pk).is_none() {
                    problems.push(format!(
                        "relation {} declares missing primary key {pk}",
                        r.name
                    ));
                }
            }
            let mut seen = std::collections::HashSet::new();
            for a in &r.attributes {
                if !seen.insert(a.name.to_lowercase()) {
                    problems.push(format!(
                        "relation {} has duplicate attribute {}",
                        r.name, a.name
                    ));
                }
            }
        }
        let mut seen_rel = std::collections::HashSet::new();
        for r in &self.relations {
            if !seen_rel.insert(r.name.to_lowercase()) {
                problems.push(format!("duplicate relation {}", r.name));
            }
        }
        for fk in &self.foreign_keys {
            if self
                .attribute(&AttributeRef::new(&fk.from_relation, &fk.from_attribute))
                .is_none()
            {
                problems.push(format!("foreign key {fk} has missing source attribute"));
            }
            if self
                .attribute(&AttributeRef::new(&fk.to_relation, &fk.to_attribute))
                .is_none()
            {
                problems.push(format!("foreign key {fk} has missing target attribute"));
            }
        }
        problems
    }
}

/// Fluent builder for [`Schema`].
#[derive(Debug, Clone)]
pub struct SchemaBuilder {
    schema: Schema,
}

impl SchemaBuilder {
    /// Add a relation.  `attributes` is a list of `(name, type)` pairs; the
    /// first attribute is taken to be the primary key when `pk_first` is
    /// true.
    pub fn relation(
        mut self,
        name: &str,
        attributes: &[(&str, DataType)],
        primary_key: Option<&str>,
    ) -> Self {
        self.schema.relations.push(Relation {
            name: name.to_string(),
            attributes: attributes
                .iter()
                .map(|(n, t)| Attribute::new(*n, *t))
                .collect(),
            primary_key: primary_key.map(|s| s.to_string()),
        });
        self
    }

    /// Add a FK-PK relationship.
    pub fn foreign_key(
        mut self,
        from_relation: &str,
        from_attribute: &str,
        to_relation: &str,
        to_attribute: &str,
    ) -> Self {
        self.schema.foreign_keys.push(ForeignKey {
            from_relation: from_relation.to_string(),
            from_attribute: from_attribute.to_string(),
            to_relation: to_relation.to_string(),
            to_attribute: to_attribute.to_string(),
        });
        self
    }

    /// Finish building, panicking on an inconsistent schema.  Schemas are
    /// static program data in this repository, so failing fast is the right
    /// behaviour.
    pub fn build(self) -> Schema {
        let problems = self.schema.validate();
        assert!(
            problems.is_empty(),
            "invalid schema {}: {}",
            self.schema.name,
            problems.join("; ")
        );
        self.schema
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_schema() -> Schema {
        Schema::builder("test")
            .relation(
                "publication",
                &[
                    ("pid", DataType::Integer),
                    ("title", DataType::Text),
                    ("year", DataType::Integer),
                    ("jid", DataType::Integer),
                ],
                Some("pid"),
            )
            .relation(
                "journal",
                &[("jid", DataType::Integer), ("name", DataType::Text)],
                Some("jid"),
            )
            .foreign_key("publication", "jid", "journal", "jid")
            .build()
    }

    #[test]
    fn lookup_by_name_is_case_insensitive() {
        let s = small_schema();
        assert!(s.relation("Publication").is_some());
        assert!(s.attribute(&AttributeRef::new("journal", "NAME")).is_some());
        assert!(s.relation("missing").is_none());
    }

    #[test]
    fn attribute_refs_enumerates_all_columns() {
        let s = small_schema();
        assert_eq!(s.attribute_refs().len(), 6);
        assert_eq!(s.attribute_count(), 6);
    }

    #[test]
    fn foreign_keys_of_finds_both_directions() {
        let s = small_schema();
        assert_eq!(s.foreign_keys_of("publication").len(), 1);
        assert_eq!(s.foreign_keys_of("journal").len(), 1);
    }

    #[test]
    fn validation_catches_dangling_foreign_keys() {
        let schema = Schema {
            name: "bad".into(),
            relations: vec![Relation {
                name: "a".into(),
                attributes: vec![Attribute::new("id", DataType::Integer)],
                primary_key: Some("id".into()),
            }],
            foreign_keys: vec![ForeignKey {
                from_relation: "a".into(),
                from_attribute: "id".into(),
                to_relation: "missing".into(),
                to_attribute: "id".into(),
            }],
        };
        assert_eq!(schema.validate().len(), 1);
    }

    #[test]
    #[should_panic(expected = "invalid schema")]
    fn builder_panics_on_invalid_schema() {
        let _ = Schema::builder("bad")
            .relation("a", &[("id", DataType::Integer)], Some("missing_pk"))
            .build();
    }

    #[test]
    fn attribute_ref_display() {
        assert_eq!(
            AttributeRef::new("journal", "name").to_string(),
            "journal.name"
        );
    }
}
