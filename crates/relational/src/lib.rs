//! An in-memory relational database engine.
//!
//! The paper runs its experiments against MySQL instances of the MAS, Yelp
//! and IMDB databases.  Templar only needs a narrow slice of database
//! functionality, all of which this crate provides:
//!
//! * a **catalog** describing relations, attributes, types and FK-PK
//!   relationships (the raw material of the schema graph, Definition 1),
//! * **tuple storage** with typed values,
//! * **predicate evaluation** over single relations — Algorithm 3 executes a
//!   candidate predicate (`exec(c)`) and only keeps it when it returns a
//!   non-empty result,
//! * **numeric attribute search** — Algorithm 2 needs every numeric attribute
//!   containing at least one value satisfying `?attr ω n`, and
//! * **boolean full-text search** over text attributes with Porter-stemmed
//!   prefix tokens, mirroring the `MATCH ... AGAINST ('+restaur* +busi*' IN
//!   BOOLEAN MODE)` query of Section V-A.
//!
//! The engine is deliberately small: no persistence, no transactions, no
//! multi-table execution (join inference is Templar's job, not the
//! database's).

pub mod catalog;
pub mod database;
pub mod fulltext;
pub mod predicate;
pub mod stats;
pub mod table;
pub mod types;

pub use catalog::{Attribute, AttributeRef, ForeignKey, Relation, Schema, SchemaBuilder};
pub use database::Database;
pub use fulltext::{FullTextIndex, TextMatch};
pub use stats::DatasetStats;
pub use table::Table;
pub use types::{DataType, Value};
