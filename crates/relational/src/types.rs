//! Value types stored by the engine.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The declared type of an attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataType {
    /// 64-bit signed integer.
    Integer,
    /// 64-bit float.
    Float,
    /// UTF-8 text.
    Text,
}

impl DataType {
    /// True for the numeric types (`Integer`, `Float`).
    pub fn is_numeric(self) -> bool {
        matches!(self, DataType::Integer | DataType::Float)
    }

    /// True for `Text`.
    pub fn is_text(self) -> bool {
        matches!(self, DataType::Text)
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataType::Integer => write!(f, "INTEGER"),
            DataType::Float => write!(f, "FLOAT"),
            DataType::Text => write!(f, "TEXT"),
        }
    }
}

/// A stored value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// An integer value.
    Int(i64),
    /// A floating-point value.
    Float(f64),
    /// A text value.
    Text(String),
    /// SQL NULL.
    Null,
}

impl Value {
    /// The value as a float, when it is numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The value as a string slice, when it is text.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    /// True when the value is NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The natural [`DataType`] of the value, if it is not NULL.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Int(_) => Some(DataType::Integer),
            Value::Float(_) => Some(DataType::Float),
            Value::Text(_) => Some(DataType::Text),
            Value::Null => None,
        }
    }

    /// An estimate of the in-memory footprint of the value in bytes, used for
    /// the dataset-size column of Table II.
    pub fn size_bytes(&self) -> usize {
        match self {
            Value::Int(_) | Value::Float(_) => 8,
            Value::Text(s) => s.len() + 8,
            Value::Null => 1,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Text(s) => write!(f, "{s}"),
            Value::Null => write!(f, "NULL"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_conversions() {
        assert_eq!(Value::Int(3).as_f64(), Some(3.0));
        assert_eq!(Value::Float(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::Text("x".into()).as_f64(), None);
        assert_eq!(Value::Null.as_f64(), None);
    }

    #[test]
    fn type_predicates() {
        assert!(DataType::Integer.is_numeric());
        assert!(DataType::Float.is_numeric());
        assert!(!DataType::Text.is_numeric());
        assert!(DataType::Text.is_text());
    }

    #[test]
    fn value_types_and_sizes() {
        assert_eq!(Value::Int(1).data_type(), Some(DataType::Integer));
        assert_eq!(Value::Null.data_type(), None);
        assert!(Value::Text("hello".into()).size_bytes() > 8);
    }

    #[test]
    fn from_impls() {
        assert_eq!(Value::from(5i64), Value::Int(5));
        assert_eq!(Value::from("abc"), Value::Text("abc".into()));
    }
}
