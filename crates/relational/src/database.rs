//! The database: a schema plus stored tables and the full-text index.

use crate::catalog::{AttributeRef, Schema};
use crate::fulltext::{FullTextIndex, TextMatch};
use crate::predicate::evaluate;
use crate::table::Table;
use crate::types::{DataType, Value};
use sqlparse::{BinOp, Predicate};
use std::collections::HashMap;

/// An in-memory database instance.
#[derive(Debug, Clone)]
pub struct Database {
    schema: Schema,
    tables: HashMap<String, Table>,
    fulltext: FullTextIndex,
}

impl Database {
    /// Create an empty database for a schema.
    pub fn new(schema: Schema) -> Self {
        let tables = schema
            .relations
            .iter()
            .map(|r| (r.name.to_lowercase(), Table::for_relation(r)))
            .collect();
        Database {
            schema,
            tables,
            fulltext: FullTextIndex::new(),
        }
    }

    /// The schema of the database.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The full-text index over text attribute values.
    pub fn fulltext(&self) -> &FullTextIndex {
        &self.fulltext
    }

    /// Insert a row into a relation.  Text values are added to the full-text
    /// index as a side effect.
    pub fn insert(&mut self, relation: &str, row: Vec<Value>) -> Result<(), String> {
        let rel = self
            .schema
            .relation(relation)
            .ok_or_else(|| format!("unknown relation {relation}"))?
            .clone();
        let table = self
            .tables
            .get_mut(&relation.to_lowercase())
            .expect("table exists for every schema relation");
        for (attr, value) in rel.attributes.iter().zip(row.iter()) {
            if attr.data_type == DataType::Text {
                if let Some(text) = value.as_text() {
                    self.fulltext
                        .index_value(AttributeRef::new(rel.name.clone(), attr.name.clone()), text);
                }
            }
        }
        table.insert(row)
    }

    /// The stored table of a relation (if it exists).
    pub fn table(&self, relation: &str) -> Option<&Table> {
        self.tables.get(&relation.to_lowercase())
    }

    /// Number of rows stored in a relation (0 for unknown relations).
    pub fn row_count(&self, relation: &str) -> usize {
        self.table(relation).map(Table::row_count).unwrap_or(0)
    }

    /// Total number of rows across all relations.
    pub fn total_rows(&self) -> usize {
        self.tables.values().map(Table::row_count).sum()
    }

    /// Approximate data size in bytes (used for Table II's size column).
    pub fn size_bytes(&self) -> usize {
        self.tables.values().map(Table::size_bytes).sum()
    }

    /// All relation names in catalog order.
    pub fn relation_names(&self) -> Vec<&str> {
        self.schema.relation_names()
    }

    /// All attributes of the database as qualified references.
    pub fn attribute_refs(&self) -> Vec<AttributeRef> {
        self.schema.attribute_refs()
    }

    /// Distinct text values of an attribute.
    pub fn distinct_text_values(&self, attr: &AttributeRef) -> Vec<String> {
        self.table(&attr.relation)
            .map(|t| t.distinct_text_values(&attr.attribute))
            .unwrap_or_default()
    }

    /// All numeric attributes that contain at least one value satisfying
    /// `value op threshold` (`findNumericAttrs` of Algorithm 2).
    pub fn numeric_attrs_satisfying(&self, op: BinOp, threshold: f64) -> Vec<AttributeRef> {
        let mut out = Vec::new();
        for rel in &self.schema.relations {
            let Some(table) = self.table(&rel.name) else {
                continue;
            };
            for attr in &rel.attributes {
                if !attr.data_type.is_numeric() {
                    continue;
                }
                let satisfied = table.column_values(&attr.name).into_iter().any(|v| {
                    v.as_f64()
                        .map(|x| match op {
                            BinOp::Eq => (x - threshold).abs() < 1e-9,
                            BinOp::NotEq => (x - threshold).abs() >= 1e-9,
                            BinOp::Lt => x < threshold,
                            BinOp::LtEq => x <= threshold,
                            BinOp::Gt => x > threshold,
                            BinOp::GtEq => x >= threshold,
                            BinOp::Like => false,
                        })
                        .unwrap_or(false)
                });
                if satisfied {
                    out.push(AttributeRef::new(rel.name.clone(), attr.name.clone()));
                }
            }
        }
        out
    }

    /// Full-text value search (`findTextAttrs` of Algorithm 2): stemmed
    /// conjunctive prefix search across all text attributes, with
    /// already-matched schema words removed from the query.
    pub fn text_search(&self, phrase: &str, ignore: &[String]) -> Vec<TextMatch> {
        self.fulltext.boolean_search(phrase, ignore)
    }

    /// True when a single-relation predicate selects at least one stored row
    /// of `relation` (the `exec(c) -> non-empty` test of Algorithm 3).
    ///
    /// Predicates that cannot be evaluated (unknown column, join condition)
    /// return `false`.
    pub fn predicate_nonempty(&self, relation: &str, pred: &Predicate) -> bool {
        let Some(table) = self.table(relation) else {
            return false;
        };
        table.rows().any(|row| {
            let lookup =
                |name: &str| -> Option<Value> { table.column_index(name).map(|i| row[i].clone()) };
            evaluate(pred, &lookup).unwrap_or(false)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Schema;
    use sqlparse::{ColumnRef, Expr, Literal};

    fn sample_db() -> Database {
        let schema = Schema::builder("test")
            .relation(
                "publication",
                &[
                    ("pid", DataType::Integer),
                    ("title", DataType::Text),
                    ("year", DataType::Integer),
                ],
                Some("pid"),
            )
            .relation(
                "journal",
                &[("jid", DataType::Integer), ("name", DataType::Text)],
                Some("jid"),
            )
            .foreign_key("publication", "pid", "journal", "jid")
            .build();
        let mut db = Database::new(schema);
        db.insert(
            "publication",
            vec![1.into(), "Query Processing at Scale".into(), 2003.into()],
        )
        .unwrap();
        db.insert(
            "publication",
            vec![2.into(), "Natural Language Interfaces".into(), 1997.into()],
        )
        .unwrap();
        db.insert("journal", vec![1.into(), "TKDE".into()]).unwrap();
        db.insert("journal", vec![2.into(), "TMC".into()]).unwrap();
        db
    }

    fn year_gt(threshold: f64) -> Predicate {
        Predicate::Compare {
            left: Expr::Column(ColumnRef::new("year")),
            op: BinOp::Gt,
            right: Expr::Literal(Literal::Number(threshold)),
        }
    }

    #[test]
    fn insert_and_count() {
        let db = sample_db();
        assert_eq!(db.row_count("publication"), 2);
        assert_eq!(db.row_count("journal"), 2);
        assert_eq!(db.total_rows(), 4);
        assert!(db.size_bytes() > 0);
    }

    #[test]
    fn insert_unknown_relation_fails() {
        let mut db = sample_db();
        assert!(db.insert("missing", vec![1.into()]).is_err());
    }

    #[test]
    fn numeric_attrs_satisfying_finds_year() {
        let db = sample_db();
        let attrs = db.numeric_attrs_satisfying(BinOp::Gt, 2000.0);
        assert!(attrs.contains(&AttributeRef::new("publication", "year")));
        // pid values are 1 and 2, both < 2000, so pid should not be included.
        assert!(!attrs.contains(&AttributeRef::new("publication", "pid")));
        // No numeric attribute exceeds 5000.
        assert!(db.numeric_attrs_satisfying(BinOp::Gt, 5000.0).is_empty());
    }

    #[test]
    fn text_search_finds_values() {
        let db = sample_db();
        let matches = db.text_search("natural language", &[]);
        assert_eq!(matches.len(), 1);
        assert_eq!(
            matches[0].attribute,
            AttributeRef::new("publication", "title")
        );
        assert_eq!(db.text_search("TKDE", &[]).len(), 1);
        assert!(db.text_search("quantum chromodynamics", &[]).is_empty());
    }

    #[test]
    fn predicate_nonempty_checks_rows() {
        let db = sample_db();
        assert!(db.predicate_nonempty("publication", &year_gt(2000.0)));
        assert!(!db.predicate_nonempty("publication", &year_gt(2020.0)));
        assert!(!db.predicate_nonempty("journal", &year_gt(2000.0)));
        assert!(!db.predicate_nonempty("missing", &year_gt(2000.0)));
    }

    #[test]
    fn distinct_text_values_are_exposed() {
        let db = sample_db();
        let vals = db.distinct_text_values(&AttributeRef::new("journal", "name"));
        assert_eq!(vals, vec!["TKDE", "TMC"]);
    }
}
