//! Boolean-mode full-text search over text attributes.
//!
//! Algorithm 2 of the paper maps non-numeric keywords to value predicates by
//! running, for every text attribute, a MySQL boolean full-text query built
//! from the Porter-stemmed keyword tokens (`'+restaur* +busi*'`).  This
//! module provides the equivalent: an inverted index from stemmed tokens to
//! the `(relation, attribute, value)` triples whose value contains a word
//! with that stem prefix, and a conjunctive prefix query over it.

use crate::catalog::AttributeRef;
use nlp::{porter_stem, tokenize_lower};
use std::collections::{BTreeMap, BTreeSet};

/// A distinct text value of one attribute that matched a full-text query.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TextMatch {
    /// The attribute holding the value.
    pub attribute: AttributeRef,
    /// The matching stored value.
    pub value: String,
}

/// Identifier of a distinct (attribute, value) pair inside the index.
type EntryId = usize;

/// The inverted index.
#[derive(Debug, Clone, Default)]
pub struct FullTextIndex {
    /// All indexed (attribute, value) pairs.
    entries: Vec<TextMatch>,
    /// stemmed token -> entry ids containing that token.
    postings: BTreeMap<String, BTreeSet<EntryId>>,
}

impl FullTextIndex {
    /// Create an empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Index a distinct text value of an attribute.
    pub fn index_value(&mut self, attribute: AttributeRef, value: &str) {
        let entry = TextMatch {
            attribute,
            value: value.to_string(),
        };
        // Avoid duplicate entries for repeated values.
        if self.entries.contains(&entry) {
            return;
        }
        let id = self.entries.len();
        for token in tokenize_lower(value) {
            let stem = porter_stem(&token);
            self.postings.entry(stem).or_default().insert(id);
        }
        self.entries.push(entry);
    }

    /// Number of indexed (attribute, value) pairs.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing has been indexed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entry ids whose indexed value contains a token whose stem starts with
    /// `stem_prefix` (the `+tok*` semantics of MySQL boolean mode).
    fn ids_with_prefix(&self, stem_prefix: &str) -> BTreeSet<EntryId> {
        let mut out = BTreeSet::new();
        // Range scan over the BTreeMap: all keys with the given prefix.
        for (key, ids) in self.postings.range(stem_prefix.to_string()..) {
            if !key.starts_with(stem_prefix) {
                break;
            }
            out.extend(ids.iter().copied());
        }
        out
    }

    /// Run a conjunctive prefix query: every token of `phrase` (after
    /// stemming) must appear as a word-stem prefix in the value.  Tokens
    /// listed in `ignore` (already-matched relation/attribute words, see
    /// Section V-A) are skipped.  Returns the matching values grouped per
    /// attribute.
    pub fn boolean_search(&self, phrase: &str, ignore: &[String]) -> Vec<TextMatch> {
        let ignore_stems: BTreeSet<String> = ignore.iter().map(|t| porter_stem(t)).collect();
        let stems: Vec<String> = tokenize_lower(phrase)
            .into_iter()
            .map(|t| porter_stem(&t))
            .filter(|s| !ignore_stems.contains(s))
            .collect();
        if stems.is_empty() {
            return Vec::new();
        }
        let mut result: Option<BTreeSet<EntryId>> = None;
        for stem in &stems {
            let ids = self.ids_with_prefix(stem);
            result = Some(match result {
                None => ids,
                Some(acc) => acc.intersection(&ids).copied().collect(),
            });
            if result.as_ref().map(BTreeSet::is_empty).unwrap_or(false) {
                return Vec::new();
            }
        }
        result
            .unwrap_or_default()
            .into_iter()
            .map(|id| self.entries[id].clone())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn attr(rel: &str, a: &str) -> AttributeRef {
        AttributeRef::new(rel, a)
    }

    fn sample_index() -> FullTextIndex {
        let mut idx = FullTextIndex::new();
        idx.index_value(attr("business", "name"), "Joe's Restaurant");
        idx.index_value(attr("business", "name"), "Taco Palace");
        idx.index_value(attr("category", "name"), "Restaurants");
        idx.index_value(attr("movie", "title"), "Saving Private Ryan");
        idx.index_value(attr("domain", "name"), "Databases");
        idx
    }

    #[test]
    fn single_token_prefix_search() {
        let idx = sample_index();
        let matches = idx.boolean_search("restaurant", &[]);
        let attrs: BTreeSet<String> = matches.iter().map(|m| m.attribute.to_string()).collect();
        assert!(attrs.contains("business.name"));
        assert!(attrs.contains("category.name"));
        assert_eq!(matches.len(), 2);
    }

    #[test]
    fn conjunctive_search_requires_all_tokens() {
        let idx = sample_index();
        let matches = idx.boolean_search("saving private ryan", &[]);
        assert_eq!(matches.len(), 1);
        assert_eq!(matches[0].value, "Saving Private Ryan");
        assert!(idx.boolean_search("saving public ryan", &[]).is_empty());
    }

    #[test]
    fn plural_and_singular_match_via_stemming() {
        let idx = sample_index();
        // "Databases" stored, "database" searched
        assert_eq!(idx.boolean_search("database", &[]).len(), 1);
        // "Restaurants" stored in category, "restaurant businesses" searched:
        // only values containing both stems match, so nothing here...
        assert!(idx.boolean_search("restaurant businesses", &[]).is_empty());
    }

    #[test]
    fn ignore_tokens_are_removed_from_the_query() {
        let idx = sample_index();
        // Mirrors the paper's example: when matching "movie Saving Private
        // Ryan" against an attribute of the `movie` relation, the token
        // "movie" is removed before searching.
        let matches = idx.boolean_search("movie Saving Private Ryan", &["movie".to_string()]);
        assert_eq!(matches.len(), 1);
        let none = idx.boolean_search("movie Saving Private Ryan", &[]);
        assert!(none.is_empty());
    }

    #[test]
    fn duplicate_values_are_indexed_once() {
        let mut idx = FullTextIndex::new();
        idx.index_value(attr("journal", "name"), "TKDE");
        idx.index_value(attr("journal", "name"), "TKDE");
        assert_eq!(idx.len(), 1);
    }

    #[test]
    fn empty_query_matches_nothing() {
        let idx = sample_index();
        assert!(idx.boolean_search("", &[]).is_empty());
        assert!(idx
            .boolean_search("movie", &["movie".to_string()])
            .is_empty());
    }
}
