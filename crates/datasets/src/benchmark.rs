//! Benchmark case and dataset types, plus the cross-validation protocol.

use nlidb::Nlq;
use relational::{AttributeRef, Database, DatasetStats};
use sqlparse::{parse_query, Aggregate, BinOp, Literal, Query};
use std::sync::Arc;
use templar_core::{Keyword, KeywordMetadata, MappedElement, QueryContext, QueryLog};

/// A rough classification of a benchmark case, used for reporting and for
/// sanity checks on the benchmark composition (not visible to the systems).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CaseKind {
    /// Single-relation selections / projections.
    Simple,
    /// Multi-relation queries whose gold join path is also the shortest.
    EasyJoin,
    /// Queries whose gold join path is longer than the shortest path
    /// (join-path ambiguity; Example 2 of the paper).
    JoinAmbiguous,
    /// Queries with value or attribute ambiguity that word similarity alone
    /// cannot resolve (Example 1 / Example 5).
    KeywordAmbiguous,
    /// Aggregation / grouping queries.
    Aggregate,
    /// Self-join queries (Example 7).
    SelfJoin,
}

/// One NLQ-SQL benchmark case.
#[derive(Debug, Clone)]
pub struct BenchmarkCase {
    /// Case identifier within its dataset.
    pub id: usize,
    /// The natural-language query with its gold hand parse.
    pub nlq: Nlq,
    /// The gold SQL translation.
    pub gold_sql: Query,
    /// The case kind (for composition reporting only).
    pub kind: CaseKind,
}

/// A cross-validation fold: a training query log and held-out test cases.
#[derive(Debug, Clone)]
pub struct Fold {
    /// Fold index (0-based).
    pub index: usize,
    /// The SQL query log assembled from the training folds' gold SQL.
    pub log: QueryLog,
    /// Indices (into `Dataset::cases`) of the held-out test cases.
    pub test_case_ids: Vec<usize>,
}

/// A benchmark dataset: database + NLQ-SQL cases.
#[derive(Clone)]
pub struct Dataset {
    /// Dataset name (`MAS`, `Yelp`, `IMDB`).
    pub name: String,
    /// The populated database.
    pub db: Arc<Database>,
    /// The benchmark cases.
    pub cases: Vec<BenchmarkCase>,
}

impl Dataset {
    /// The MAS dataset.
    pub fn mas() -> Dataset {
        crate::mas::dataset()
    }

    /// The Yelp dataset.
    pub fn yelp() -> Dataset {
        crate::yelp::dataset()
    }

    /// The IMDB dataset.
    pub fn imdb() -> Dataset {
        crate::imdb::dataset()
    }

    /// All three benchmark datasets, in the order of Table II.
    pub fn all() -> Vec<Dataset> {
        vec![Self::mas(), Self::yelp(), Self::imdb()]
    }

    /// Table II statistics for this dataset.
    pub fn stats(&self) -> DatasetStats {
        DatasetStats::from_database(&self.name, &self.db, self.cases.len())
    }

    /// Split the benchmark into `k` cross-validation folds
    /// (Section VII-A.4).  Assignment is deterministic (round-robin over case
    /// ids) so that every run of every experiment sees identical folds.  For
    /// each fold, the query log is the gold SQL of the other `k − 1` folds.
    pub fn folds(&self, k: usize) -> Vec<Fold> {
        assert!(k >= 2, "cross-validation needs at least 2 folds");
        let mut folds = Vec::with_capacity(k);
        for fold_index in 0..k {
            let mut log = QueryLog::new();
            let mut test_case_ids = Vec::new();
            for case in &self.cases {
                if case.id % k == fold_index {
                    test_case_ids.push(case.id);
                } else {
                    log.push(case.gold_sql.clone());
                }
            }
            folds.push(Fold {
                index: fold_index,
                log,
                test_case_ids,
            });
        }
        folds
    }

    /// Look up a case by id.
    pub fn case(&self, id: usize) -> Option<&BenchmarkCase> {
        self.cases.iter().find(|c| c.id == id)
    }

    /// The full query log (all cases) — used by examples and benches that do
    /// not need the cross-validation protocol.
    pub fn full_log(&self) -> QueryLog {
        let mut log = QueryLog::new();
        for case in &self.cases {
            log.push(case.gold_sql.clone());
        }
        log
    }

    /// Count cases per kind (for composition reporting).
    pub fn kind_counts(&self) -> Vec<(CaseKind, usize)> {
        let kinds = [
            CaseKind::Simple,
            CaseKind::EasyJoin,
            CaseKind::JoinAmbiguous,
            CaseKind::KeywordAmbiguous,
            CaseKind::Aggregate,
            CaseKind::SelfJoin,
        ];
        kinds
            .into_iter()
            .map(|k| (k, self.cases.iter().filter(|c| c.kind == k).count()))
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Case construction helpers shared by the three dataset modules.
// ---------------------------------------------------------------------------

/// A (keyword, metadata, gold element) triple used to assemble cases.
pub(crate) type GoldKeyword = (Keyword, KeywordMetadata, MappedElement);

/// Build a benchmark case.  Panics when the gold SQL does not parse — gold
/// SQL is static program data, so failing fast is correct.
pub(crate) fn case(
    id: usize,
    text: impl Into<String>,
    keywords: Vec<GoldKeyword>,
    gold_sql: &str,
    kind: CaseKind,
    hard_for_parser: bool,
) -> BenchmarkCase {
    let gold_sql_parsed =
        parse_query(gold_sql).unwrap_or_else(|e| panic!("invalid gold SQL `{gold_sql}`: {e}"));
    let (kw, gold): (Vec<_>, Vec<_>) = keywords.into_iter().map(|(k, m, g)| ((k, m), g)).unzip();
    let nlq = Nlq::new(text, kw, gold).with_parser_difficulty(hard_for_parser);
    BenchmarkCase {
        id,
        nlq,
        gold_sql: gold_sql_parsed,
        kind,
    }
}

/// A projection keyword mapped to an attribute.
pub(crate) fn select_attr(text: &str, rel: &str, attr: &str) -> GoldKeyword {
    (
        Keyword::new(text),
        KeywordMetadata::select(),
        MappedElement::Attribute {
            attr: AttributeRef::new(rel, attr),
            aggregates: vec![],
            group_by: false,
        },
    )
}

/// A projection keyword mapped to an aggregated attribute.
pub(crate) fn select_agg(text: &str, rel: &str, attr: &str, agg: Aggregate) -> GoldKeyword {
    (
        Keyword::new(text),
        KeywordMetadata::select().with_aggregates(vec![agg]),
        MappedElement::Attribute {
            attr: AttributeRef::new(rel, attr),
            aggregates: vec![agg],
            group_by: false,
        },
    )
}

/// A projection keyword mapped to a grouped attribute.
pub(crate) fn select_group(text: &str, rel: &str, attr: &str) -> GoldKeyword {
    (
        Keyword::new(text),
        KeywordMetadata::select().with_group_by(),
        MappedElement::Attribute {
            attr: AttributeRef::new(rel, attr),
            aggregates: vec![],
            group_by: true,
        },
    )
}

/// A value keyword mapped to an equality predicate on a text attribute.
pub(crate) fn filter_eq(text: &str, rel: &str, attr: &str, value: &str) -> GoldKeyword {
    (
        Keyword::new(text),
        KeywordMetadata::filter(),
        MappedElement::Predicate {
            attr: AttributeRef::new(rel, attr),
            op: BinOp::Eq,
            value: Literal::String(value.to_string()),
        },
    )
}

/// A numeric keyword mapped to a comparison predicate.
pub(crate) fn filter_num(text: &str, rel: &str, attr: &str, op: BinOp, value: f64) -> GoldKeyword {
    (
        Keyword::new(text),
        KeywordMetadata::filter_with_op(op),
        MappedElement::Predicate {
            attr: AttributeRef::new(rel, attr),
            op,
            value: Literal::Number(value),
        },
    )
}

/// A keyword explicitly referring to a relation (FROM context).
#[allow(dead_code)]
pub(crate) fn from_relation(text: &str, rel: &str) -> GoldKeyword {
    (
        Keyword::new(text),
        KeywordMetadata::from_clause(),
        MappedElement::Relation(rel.to_string()),
    )
}

/// Keyword metadata context helper re-exported for dataset modules.
#[allow(dead_code)]
pub(crate) fn where_context() -> QueryContext {
    QueryContext::Where
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_dataset() -> Dataset {
        // Reuse the MAS builder but only check generic fold mechanics here.
        Dataset::mas()
    }

    #[test]
    fn folds_partition_the_cases() {
        let d = tiny_dataset();
        let folds = d.folds(4);
        assert_eq!(folds.len(), 4);
        let total: usize = folds.iter().map(|f| f.test_case_ids.len()).sum();
        assert_eq!(total, d.cases.len());
        // Every case appears in exactly one test fold.
        let mut all_ids: Vec<usize> = folds
            .iter()
            .flat_map(|f| f.test_case_ids.iter().copied())
            .collect();
        all_ids.sort_unstable();
        let mut expected: Vec<usize> = d.cases.iter().map(|c| c.id).collect();
        expected.sort_unstable();
        assert_eq!(all_ids, expected);
    }

    #[test]
    fn fold_logs_exclude_the_test_cases() {
        let d = tiny_dataset();
        let folds = d.folds(4);
        for f in &folds {
            assert_eq!(f.log.len(), d.cases.len() - f.test_case_ids.len());
        }
    }

    #[test]
    fn folds_are_deterministic() {
        let d = tiny_dataset();
        let a = d.folds(4);
        let b = d.folds(4);
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.test_case_ids, y.test_case_ids);
        }
    }

    #[test]
    #[should_panic(expected = "at least 2 folds")]
    fn single_fold_is_rejected() {
        let _ = tiny_dataset().folds(1);
    }
}
