//! Deterministic synthetic log scaling for data-plane stress runs.
//!
//! The Table II benchmark logs top out at a few hundred queries — enough to
//! reproduce the paper's accuracy numbers, three orders of magnitude short
//! of exercising the serving data plane (tiered delta compaction, sectioned
//! snapshots, bounded-memory recovery) at the scale those mechanisms exist
//! for.  [`scale_log`] turns a benchmark log into a million-entry workload
//! while preserving the properties that make the original representative:
//!
//! * **Deterministic**: the output is a pure function of `(base, factor,
//!   seed)` — benches, CI smoke runs and crash-recovery tests replay the
//!   exact same workload on every machine.
//! * **Zipfian-preserving**: synthetic entries draw their template from the
//!   base log under a Zipf-style weight (`1/(rank+1)` over base position),
//!   mirroring how production query logs repeat a head of hot templates with
//!   a long tail — the distribution the QFG's popularity statistics feed on.
//! * **Bounded fragment growth**: entries are grown by perturbing numeric
//!   literals of a sampled template, so the fragment space stays
//!   benchmark-shaped (at `NoConst*` obscurity levels perturbed constants
//!   collapse into the same fragment) while the log, WAL and snapshot bodies
//!   grow linearly with the factor.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use sqlparse::parse_query;
use templar_core::QueryLog;

/// Scale a base log to `factor` times its length, deterministically.
///
/// The base log is included verbatim as the prefix (a scaled log is a
/// superset of the workload it models); the remaining `(factor − 1) ×
/// base.len()` entries are Zipf-weighted template picks with perturbed
/// numeric literals.  `factor == 0` is treated as 1.
pub fn scale_log(base: &QueryLog, factor: usize, seed: u64) -> QueryLog {
    let factor = factor.max(1);
    let mut scaled = base.clone();
    if factor == 1 || base.is_empty() {
        return scaled;
    }
    let templates: Vec<String> = base.queries().iter().map(|q| q.to_string()).collect();
    // Cumulative Zipf-style weights over base position: weight(i) = 1/(i+1),
    // held as scaled integers so sampling stays float-free and portable.
    const WEIGHT_SCALE: u64 = 1_000_000;
    let mut cumulative: Vec<u64> = Vec::with_capacity(templates.len());
    let mut total = 0u64;
    for rank in 0..templates.len() {
        total += WEIGHT_SCALE / (rank as u64 + 1);
        cumulative.push(total);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let goal = base.len() * factor;
    while scaled.len() < goal {
        let ticket = rng.next_u64() % total;
        let pick = cumulative.partition_point(|&c| c <= ticket);
        let sql = perturb_numeric_literals(&templates[pick], &mut rng);
        // Perturbation only rewrites standalone digit runs, so the result
        // parses whenever the template did — which it must have, coming out
        // of a `QueryLog`.  Fall back to the unperturbed template rather
        // than silently shrinking the workload if it ever does not.
        let query = parse_query(&sql)
            .or_else(|_| parse_query(&templates[pick]))
            .expect("a logged query's own SQL text must re-parse");
        scaled.push(query);
    }
    scaled
}

/// Rewrite every standalone run of digits (a numeric literal, not digits
/// embedded in an identifier like `col2`) to a fresh small value drawn from
/// `rng`.  Templates without numeric literals come back unchanged.
fn perturb_numeric_literals(sql: &str, rng: &mut StdRng) -> String {
    let is_ident = |c: char| c.is_ascii_alphanumeric() || c == '_';
    let mut out = String::with_capacity(sql.len());
    let mut prev: Option<char> = None;
    let mut chars = sql.chars().peekable();
    while let Some(c) = chars.next() {
        if c.is_ascii_digit() {
            let mut run = String::new();
            run.push(c);
            while let Some(&d) = chars.peek() {
                if d.is_ascii_digit() {
                    run.push(d);
                    chars.next();
                } else {
                    break;
                }
            }
            let standalone =
                !prev.is_some_and(is_ident) && !chars.peek().copied().is_some_and(is_ident);
            if standalone {
                out.push_str(&(rng.next_u64() % 10_000).to_string());
            } else {
                out.push_str(&run);
            }
            prev = run.chars().last();
        } else {
            out.push(c);
            prev = Some(c);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Dataset;

    fn base() -> QueryLog {
        // A small slice of MAS keeps the tests fast while covering
        // templates with and without numeric literals.
        let mas = Dataset::mas();
        let mut log = QueryLog::new();
        for case in mas.cases.iter().take(12) {
            log.push(case.gold_sql.clone());
        }
        log
    }

    #[test]
    fn scaling_is_deterministic_and_exactly_sized() {
        let base = base();
        let a = scale_log(&base, 20, 9);
        let b = scale_log(&base, 20, 9);
        assert_eq!(a.len(), base.len() * 20);
        assert_eq!(a, b, "same (base, factor, seed) must replay identically");
        let c = scale_log(&base, 20, 10);
        assert_ne!(a, c, "a different seed must produce a different workload");
    }

    #[test]
    fn the_base_log_is_the_verbatim_prefix_and_factor_one_is_identity() {
        let base = base();
        let scaled = scale_log(&base, 5, 3);
        for (i, q) in base.queries().iter().enumerate() {
            assert_eq!(&scaled.queries()[i], q);
        }
        assert_eq!(scale_log(&base, 1, 3), base);
        assert_eq!(scale_log(&base, 0, 3), base, "factor 0 clamps to identity");
    }

    #[test]
    fn synthetic_entries_follow_a_head_heavy_template_distribution() {
        let base = base();
        let scaled = scale_log(&base, 200, 7);
        // Count synthetic picks by matching the FROM clause back to its
        // template (perturbation never touches identifiers).
        let from_of = |sql: &str| {
            let lower = sql.to_lowercase();
            let at = lower.find(" from ").expect("every query has FROM");
            lower[at..].to_string()
        };
        let heads: Vec<String> = base
            .queries()
            .iter()
            .map(|q| from_of(&q.to_string()))
            .collect();
        let mut counts = vec![0usize; heads.len()];
        for q in scaled.queries().iter().skip(base.len()) {
            let f = from_of(&q.to_string());
            if let Some(i) = heads.iter().position(|h| h == &f) {
                counts[i] += 1;
            }
        }
        let front: usize = counts.iter().take(3).sum();
        let back: usize = counts.iter().rev().take(3).sum();
        assert!(
            front > back,
            "Zipf weighting must favour early templates: head {front} vs tail {back}"
        );
    }

    #[test]
    fn perturbation_rewrites_literals_but_never_identifiers() {
        let mut rng = StdRng::seed_from_u64(1);
        let sql = "SELECT col2 FROM t1_x WHERE year > 2003 AND n = 17";
        let out = perturb_numeric_literals(sql, &mut rng);
        assert!(out.contains("col2"), "identifier digits survive: {out}");
        assert!(out.contains("t1_x"), "identifier digits survive: {out}");
        assert!(
            !out.contains("2003") || !out.contains("17"),
            "literals change: {out}"
        );
        assert!(parse_query(&out).is_ok(), "perturbed SQL re-parses: {out}");
    }
}
