//! The Microsoft Academic Search (MAS) benchmark dataset.
//!
//! Schema modelled on Figure 1 of the paper and sized to the Table II
//! statistics: 17 relations, 53 attributes, 19 FK-PK relationships and 194
//! benchmark queries.  Publications reach domains through keywords (the gold
//! join path of Example 1), while shorter paths through conferences and
//! journals exist — exactly the join-path ambiguity the paper motivates.
//! Several domain names also occur as topic keywords, reproducing the value
//! ambiguity of Example 5.

use crate::benchmark::{
    case, filter_eq, filter_num, select_agg, select_attr, select_group, BenchmarkCase, CaseKind,
    Dataset,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use relational::{DataType, Database, Schema, Value};
use sqlparse::{Aggregate, BinOp};
use std::sync::Arc;

/// Research domains (also stored as topic keywords to create value
/// ambiguity).
pub const DOMAINS: [&str; 12] = [
    "Databases",
    "Machine Learning",
    "Data Mining",
    "Computer Vision",
    "Natural Language Processing",
    "Operating Systems",
    "Networking",
    "Security",
    "Theory",
    "Graphics",
    "Bioinformatics",
    "Software Engineering",
];

/// Journal names.
pub const JOURNALS: [&str; 12] = [
    "TKDE",
    "TODS",
    "VLDB Journal",
    "TMC",
    "JMLR",
    "TPAMI",
    "TON",
    "TISSEC",
    "JACM",
    "CACM",
    "TOG",
    "Briefings in Bioinformatics",
];

/// Conference names.
pub const CONFERENCES: [&str; 15] = [
    "SIGMOD", "VLDB", "ICDE", "KDD", "ICML", "NeurIPS", "CVPR", "ACL", "SOSP", "SIGCOMM", "CCS",
    "STOC", "SIGGRAPH", "ISMB", "ICSE",
];

/// Author names.
pub const AUTHORS: [&str; 30] = [
    "John Smith",
    "Jane Miller",
    "Wei Zhang",
    "Maria Garcia",
    "David Johnson",
    "Priya Patel",
    "Chen Liu",
    "Anna Kowalski",
    "Ahmed Hassan",
    "Laura Rossi",
    "Peter Novak",
    "Yuki Tanaka",
    "Carlos Silva",
    "Emma Dubois",
    "Ivan Petrov",
    "Sara Cohen",
    "Tom Anderson",
    "Nina Schmidt",
    "Raj Kumar",
    "Alice Brown",
    "Hugo Martin",
    "Olga Ivanova",
    "Luis Fernandez",
    "Grace Lee",
    "Omar Farouk",
    "Julia Weber",
    "Mark Taylor",
    "Sofia Ricci",
    "Viktor Larsson",
    "Amara Okafor",
];

/// Organisation names.
pub const ORGANIZATIONS: [&str; 15] = [
    "University of Michigan",
    "Stanford University",
    "MIT",
    "Carnegie Mellon University",
    "University of Washington",
    "ETH Zurich",
    "Tsinghua University",
    "IBM Research",
    "Microsoft Research",
    "Google Research",
    "University of Toronto",
    "EPFL",
    "National University of Singapore",
    "Max Planck Institute",
    "University of Tokyo",
];

/// Topic keywords that are *not* domain names.
pub const TOPIC_KEYWORDS: [&str; 16] = [
    "query optimization",
    "transaction processing",
    "deep learning",
    "reinforcement learning",
    "entity resolution",
    "knowledge graphs",
    "stream processing",
    "distributed systems",
    "information extraction",
    "crowdsourcing",
    "data cleaning",
    "indexing structures",
    "approximate query answering",
    "graph mining",
    "semantic parsing",
    "program synthesis",
];

/// The MAS schema: 17 relations, 53 attributes, 19 FK-PK edges (Table II).
pub fn schema() -> Schema {
    use DataType::{Float, Integer, Text};
    Schema::builder("mas")
        .relation(
            "author",
            &[
                ("aid", Integer),
                ("name", Text),
                ("homepage", Text),
                ("oid", Integer),
            ],
            Some("aid"),
        )
        .relation(
            "organization",
            &[
                ("oid", Integer),
                ("name", Text),
                ("continent", Text),
                ("homepage", Text),
            ],
            Some("oid"),
        )
        .relation(
            "publication",
            &[
                ("pid", Integer),
                ("title", Text),
                ("abstract", Text),
                ("year", Integer),
                ("citation_num", Integer),
                ("reference_num", Integer),
                ("cid", Integer),
                ("jid", Integer),
            ],
            Some("pid"),
        )
        .relation(
            "journal",
            &[
                ("jid", Integer),
                ("name", Text),
                ("full_name", Text),
                ("homepage", Text),
            ],
            Some("jid"),
        )
        .relation(
            "conference",
            &[
                ("cid", Integer),
                ("name", Text),
                ("full_name", Text),
                ("homepage", Text),
            ],
            Some("cid"),
        )
        .relation("domain", &[("did", Integer), ("name", Text)], Some("did"))
        .relation(
            "keyword",
            &[("kid", Integer), ("keyword", Text)],
            Some("kid"),
        )
        .relation("writes", &[("aid", Integer), ("pid", Integer)], None)
        .relation("cite", &[("citing", Integer), ("cited", Integer)], None)
        .relation("domain_author", &[("aid", Integer), ("did", Integer)], None)
        .relation(
            "domain_conference",
            &[("cid", Integer), ("did", Integer)],
            None,
        )
        .relation(
            "domain_journal",
            &[("jid", Integer), ("did", Integer)],
            None,
        )
        .relation(
            "domain_keyword",
            &[("kid", Integer), ("did", Integer)],
            None,
        )
        .relation(
            "publication_keyword",
            &[("pid", Integer), ("kid", Integer)],
            None,
        )
        .relation(
            "organization_domain",
            &[("oid", Integer), ("did", Integer)],
            None,
        )
        .relation(
            "conference_series",
            &[
                ("csid", Integer),
                ("name", Text),
                ("full_name", Text),
                ("impact", Float),
            ],
            Some("csid"),
        )
        .relation(
            "research_group",
            &[
                ("rgid", Integer),
                ("name", Text),
                ("homepage", Text),
                ("university", Text),
                ("country", Text),
            ],
            Some("rgid"),
        )
        .foreign_key("author", "oid", "organization", "oid")
        .foreign_key("publication", "cid", "conference", "cid")
        .foreign_key("publication", "jid", "journal", "jid")
        .foreign_key("writes", "aid", "author", "aid")
        .foreign_key("writes", "pid", "publication", "pid")
        .foreign_key("cite", "citing", "publication", "pid")
        .foreign_key("cite", "cited", "publication", "pid")
        .foreign_key("domain_author", "aid", "author", "aid")
        .foreign_key("domain_author", "did", "domain", "did")
        .foreign_key("domain_conference", "cid", "conference", "cid")
        .foreign_key("domain_conference", "did", "domain", "did")
        .foreign_key("domain_journal", "jid", "journal", "jid")
        .foreign_key("domain_journal", "did", "domain", "did")
        .foreign_key("domain_keyword", "kid", "keyword", "kid")
        .foreign_key("domain_keyword", "did", "domain", "did")
        .foreign_key("publication_keyword", "pid", "publication", "pid")
        .foreign_key("publication_keyword", "kid", "keyword", "kid")
        .foreign_key("organization_domain", "oid", "organization", "oid")
        .foreign_key("organization_domain", "did", "domain", "did")
        .build()
}

/// Deterministic synthetic database instance.
pub fn database() -> Database {
    let mut db = Database::new(schema());
    let mut rng = StdRng::seed_from_u64(0x4d41_5321); // "MAS!"

    for (i, name) in ORGANIZATIONS.iter().enumerate() {
        let continent = ["North America", "Europe", "Asia"][i % 3];
        db.insert(
            "organization",
            vec![
                Value::Int(i as i64 + 1),
                Value::from(*name),
                Value::from(continent),
                Value::from(format!("http://{}.example.org", i + 1)),
            ],
        )
        .expect("organization row");
    }
    for (i, name) in AUTHORS.iter().enumerate() {
        db.insert(
            "author",
            vec![
                Value::Int(i as i64 + 1),
                Value::from(*name),
                Value::from(format!("http://people.example.org/{}", i + 1)),
                Value::Int((i % ORGANIZATIONS.len()) as i64 + 1),
            ],
        )
        .expect("author row");
    }
    for (i, name) in JOURNALS.iter().enumerate() {
        db.insert(
            "journal",
            vec![
                Value::Int(i as i64 + 1),
                Value::from(*name),
                Value::from(format!("{name} Full Name")),
                Value::from(format!("http://journal{}.example.org", i + 1)),
            ],
        )
        .expect("journal row");
    }
    for (i, name) in CONFERENCES.iter().enumerate() {
        db.insert(
            "conference",
            vec![
                Value::Int(i as i64 + 1),
                Value::from(*name),
                Value::from(format!("{name} Conference")),
                Value::from(format!("http://conf{}.example.org", i + 1)),
            ],
        )
        .expect("conference row");
    }
    for (i, name) in DOMAINS.iter().enumerate() {
        db.insert("domain", vec![Value::Int(i as i64 + 1), Value::from(*name)])
            .expect("domain row");
    }
    // Keywords: topic keywords plus the domain names themselves (value
    // ambiguity of Example 5).
    let mut keyword_values: Vec<&str> = TOPIC_KEYWORDS.to_vec();
    keyword_values.extend(DOMAINS.iter().copied());
    for (i, kw) in keyword_values.iter().enumerate() {
        db.insert("keyword", vec![Value::Int(i as i64 + 1), Value::from(*kw)])
            .expect("keyword row");
    }
    // Publications.
    let title_topics = [
        "Query Processing",
        "Index Structures",
        "Neural Architectures",
        "Graph Algorithms",
        "Stream Analytics",
        "Secure Protocols",
        "Program Analysis",
        "Vision Transformers",
        "Language Models",
        "Storage Engines",
    ];
    let n_publications = 160;
    for i in 0..n_publications {
        let topic = title_topics[i % title_topics.len()];
        let year = 1985 + (rng.gen_range(0..35) as i64);
        let citation_num = rng.gen_range(0..400) as i64;
        let reference_num = rng.gen_range(5..80) as i64;
        // Even publications appear at conferences, odd ones in journals.
        let (cid, jid) = if i % 2 == 0 {
            (Value::Int((i % CONFERENCES.len()) as i64 + 1), Value::Null)
        } else {
            (Value::Null, Value::Int((i % JOURNALS.len()) as i64 + 1))
        };
        db.insert(
            "publication",
            vec![
                Value::Int(i as i64 + 1),
                Value::from(format!("Advances in {topic} {}", i + 1)),
                Value::from(format!("We study {topic} at scale.")),
                Value::Int(year),
                Value::Int(citation_num),
                Value::Int(reference_num),
                cid,
                jid,
            ],
        )
        .expect("publication row");
    }
    // Link tables (plausible but not load-bearing for the experiments).
    for i in 0..n_publications {
        let pid = i as i64 + 1;
        db.insert(
            "writes",
            vec![Value::Int((i % AUTHORS.len()) as i64 + 1), Value::Int(pid)],
        )
        .expect("writes row");
        db.insert(
            "writes",
            vec![
                Value::Int(((i + 7) % AUTHORS.len()) as i64 + 1),
                Value::Int(pid),
            ],
        )
        .expect("writes row");
        db.insert(
            "publication_keyword",
            vec![
                Value::Int(pid),
                Value::Int((i % keyword_values.len()) as i64 + 1),
            ],
        )
        .expect("publication_keyword row");
        if i > 0 {
            db.insert(
                "cite",
                vec![Value::Int(pid), Value::Int(((i * 13) % i) as i64 + 1)],
            )
            .expect("cite row");
        }
    }
    for (i, _) in AUTHORS.iter().enumerate() {
        db.insert(
            "domain_author",
            vec![
                Value::Int(i as i64 + 1),
                Value::Int((i % DOMAINS.len()) as i64 + 1),
            ],
        )
        .expect("domain_author row");
    }
    for (i, _) in CONFERENCES.iter().enumerate() {
        db.insert(
            "domain_conference",
            vec![
                Value::Int(i as i64 + 1),
                Value::Int((i % DOMAINS.len()) as i64 + 1),
            ],
        )
        .expect("domain_conference row");
    }
    for (i, _) in JOURNALS.iter().enumerate() {
        db.insert(
            "domain_journal",
            vec![
                Value::Int(i as i64 + 1),
                Value::Int((i % DOMAINS.len()) as i64 + 1),
            ],
        )
        .expect("domain_journal row");
    }
    for (i, _) in keyword_values.iter().enumerate() {
        db.insert(
            "domain_keyword",
            vec![
                Value::Int(i as i64 + 1),
                Value::Int((i % DOMAINS.len()) as i64 + 1),
            ],
        )
        .expect("domain_keyword row");
    }
    for (i, _) in ORGANIZATIONS.iter().enumerate() {
        db.insert(
            "organization_domain",
            vec![
                Value::Int(i as i64 + 1),
                Value::Int((i % DOMAINS.len()) as i64 + 1),
            ],
        )
        .expect("organization_domain row");
    }
    for i in 0..10 {
        db.insert(
            "conference_series",
            vec![
                Value::Int(i as i64 + 1),
                Value::from(format!("Series {}", i + 1)),
                Value::from(format!("Conference Series {}", i + 1)),
                Value::Float(1.0 + i as f64 / 10.0),
            ],
        )
        .expect("conference_series row");
        db.insert(
            "research_group",
            vec![
                Value::Int(i as i64 + 1),
                Value::from(format!("Data Systems Group {}", i + 1)),
                Value::from(format!("http://group{}.example.org", i + 1)),
                Value::from(ORGANIZATIONS[i % ORGANIZATIONS.len()]),
                Value::from(["USA", "Germany", "Japan"][i % 3]),
            ],
        )
        .expect("research_group row");
    }
    db
}

/// The gold join path for publication → domain goes through keywords
/// (Example 1): `publication — publication_keyword — keyword —
/// domain_keyword — domain`.
fn pub_domain_sql(domain: &str, extra_where: &str) -> String {
    format!(
        "SELECT p.title FROM publication p, publication_keyword pk, keyword k, domain_keyword dk, domain d \
         WHERE d.name = '{domain}'{extra_where} AND pk.pid = p.pid AND pk.kid = k.kid AND dk.kid = k.kid AND dk.did = d.did"
    )
}

/// The 194 MAS benchmark cases.
pub fn cases() -> Vec<BenchmarkCase> {
    let mut cases = Vec::new();
    let mut id = 0usize;
    let mut next_id = || {
        let v = id;
        id += 1;
        v
    };

    // T1 — "papers in the {domain} domain": join-path + value ambiguity (24).
    for domain in DOMAINS {
        for phrasing in [
            format!("Find papers in the {domain} domain"),
            format!("Show me the papers in the {domain} area"),
        ] {
            cases.push(case(
                next_id(),
                phrasing,
                vec![
                    select_attr("papers", "publication", "title"),
                    filter_eq(domain, "domain", "name", domain),
                ],
                &pub_domain_sql(domain, ""),
                CaseKind::JoinAmbiguous,
                false,
            ));
        }
    }

    // T2 — "papers after/before {year}": single-table numeric selections (16).
    for (i, year) in [1995, 1998, 2000, 2003, 2005, 2008, 2010, 2012]
        .iter()
        .enumerate()
    {
        let (word, op, sym) = if i % 2 == 0 {
            ("after", BinOp::Gt, ">")
        } else {
            ("before", BinOp::Lt, "<")
        };
        for noun in ["papers", "publications"] {
            cases.push(case(
                next_id(),
                format!("Return the {noun} published {word} {year}"),
                vec![
                    select_attr(noun, "publication", "title"),
                    filter_num(
                        &format!("{word} {year}"),
                        "publication",
                        "year",
                        op,
                        *year as f64,
                    ),
                ],
                &format!("SELECT p.title FROM publication p WHERE p.year {sym} {year}"),
                // "before {year}" keywords are satisfied by many numeric
                // attributes (ids, counts), so they need the log to pick
                // publication.year; "after {year}" thresholds are only
                // satisfiable by year values.
                if op == BinOp::Lt {
                    CaseKind::KeywordAmbiguous
                } else {
                    CaseKind::Simple
                },
                false,
            ));
        }
    }

    // T3 — "papers published in {journal}" (12).
    for journal in JOURNALS {
        cases.push(case(
            next_id(),
            format!("Find papers published in {journal}"),
            vec![
                select_attr("papers", "publication", "title"),
                filter_eq(journal, "journal", "name", journal),
            ],
            &format!(
                "SELECT p.title FROM publication p, journal j WHERE j.name = '{journal}' AND p.jid = j.jid"
            ),
            CaseKind::EasyJoin,
            false,
        ));
    }

    // T4 — "papers in {conference}" (12).
    for conference in CONFERENCES.iter().take(12) {
        cases.push(case(
            next_id(),
            format!("List the papers appearing in {conference}"),
            vec![
                select_attr("papers", "publication", "title"),
                filter_eq(conference, "conference", "name", conference),
            ],
            &format!(
                "SELECT p.title FROM publication p, conference c WHERE c.name = '{conference}' AND p.cid = c.cid"
            ),
            CaseKind::EasyJoin,
            false,
        ));
    }

    // T5 — "papers written by {author}" (15); explicit relation reference
    // ("papers ... by") is the pattern NaLIR's parser struggles with.
    for author in AUTHORS.iter().take(15) {
        cases.push(case(
            next_id(),
            format!("Return the papers written by {author}"),
            vec![
                select_attr("papers", "publication", "title"),
                filter_eq(author, "author", "name", author),
            ],
            &format!(
                "SELECT p.title FROM publication p, writes w, author a \
                 WHERE a.name = '{author}' AND w.pid = p.pid AND w.aid = a.aid"
            ),
            CaseKind::EasyJoin,
            true,
        ));
    }

    // T6 — "authors in the {domain} area" (12): easy join via domain_author.
    for domain in DOMAINS {
        cases.push(case(
            next_id(),
            format!("Which authors work in the {domain} area"),
            vec![
                select_attr("authors", "author", "name"),
                filter_eq(domain, "domain", "name", domain),
            ],
            &format!(
                "SELECT a.name FROM author a, domain_author da, domain d \
                 WHERE d.name = '{domain}' AND da.aid = a.aid AND da.did = d.did"
            ),
            CaseKind::EasyJoin,
            false,
        ));
    }

    // T7 — "papers about {topic}" (16): topic keywords, no domain collision.
    for topic in TOPIC_KEYWORDS {
        cases.push(case(
            next_id(),
            format!("Find papers about {topic}"),
            vec![
                select_attr("papers", "publication", "title"),
                filter_eq(topic, "keyword", "keyword", topic),
            ],
            &format!(
                "SELECT p.title FROM publication p, publication_keyword pk, keyword k \
                 WHERE k.keyword = '{topic}' AND pk.pid = p.pid AND pk.kid = k.kid"
            ),
            CaseKind::EasyJoin,
            false,
        ));
    }

    // T8 — "number of papers by {author}" (12): aggregation.
    for author in AUTHORS.iter().skip(15).take(12) {
        cases.push(case(
            next_id(),
            format!("How many papers were written by {author}"),
            vec![
                select_agg("number of papers", "publication", "pid", Aggregate::Count),
                filter_eq(author, "author", "name", author),
            ],
            &format!(
                "SELECT COUNT(p.pid) FROM publication p, writes w, author a \
                 WHERE a.name = '{author}' AND w.pid = p.pid AND w.aid = a.aid"
            ),
            CaseKind::Aggregate,
            true,
        ));
    }

    // T9 — "papers per author after {year}" (10): aggregation + grouping.
    for year in [1995, 1998, 2000, 2002, 2004, 2006, 2008, 2010, 2012, 2014] {
        cases.push(case(
            next_id(),
            format!("Count the papers of each author after {year}"),
            vec![
                select_group("author", "author", "name"),
                select_agg("papers", "publication", "pid", Aggregate::Count),
                filter_num(
                    &format!("after {year}"),
                    "publication",
                    "year",
                    BinOp::Gt,
                    year as f64,
                ),
            ],
            &format!(
                "SELECT a.name, COUNT(p.pid) FROM author a, writes w, publication p \
                 WHERE p.year > {year} AND w.aid = a.aid AND w.pid = p.pid GROUP BY a.name"
            ),
            CaseKind::Aggregate,
            true,
        ));
    }

    // T10 — "papers written by both {a1} and {a2}" (10): self-joins
    // (Example 7 of the paper).
    for i in 0..10 {
        let a1 = AUTHORS[i];
        let a2 = AUTHORS[i + 10];
        cases.push(case(
            next_id(),
            format!("Find papers written by both {a1} and {a2}"),
            vec![
                select_attr("papers", "publication", "title"),
                filter_eq(a1, "author", "name", a1),
                filter_eq(a2, "author", "name", a2),
            ],
            &format!(
                "SELECT p.title FROM publication p, writes w1, writes w2, author a1, author a2 \
                 WHERE a1.name = '{a1}' AND a2.name = '{a2}' \
                 AND w1.pid = p.pid AND w2.pid = p.pid AND w1.aid = a1.aid AND w2.aid = a2.aid"
            ),
            CaseKind::SelfJoin,
            true,
        ));
    }

    // T11 — "organization of {author}" (12).
    for author in AUTHORS.iter().take(12) {
        cases.push(case(
            next_id(),
            format!("What organization is {author} affiliated with"),
            vec![
                select_attr("organization", "organization", "name"),
                filter_eq(author, "author", "name", author),
            ],
            &format!(
                "SELECT o.name FROM organization o, author a \
                 WHERE a.name = '{author}' AND a.oid = o.oid"
            ),
            CaseKind::EasyJoin,
            false,
        ));
    }

    // T12 — "papers with more than {n} citations" (14).
    for (i, n) in [50, 75, 100, 125, 150, 200, 250].iter().enumerate() {
        for noun in ["papers", "publications"] {
            let _ = i;
            cases.push(case(
                next_id(),
                format!("Show {noun} with more than {n} citations"),
                vec![
                    select_attr(noun, "publication", "title"),
                    filter_num(
                        &format!("more than {n} citations"),
                        "publication",
                        "citation_num",
                        BinOp::Gt,
                        *n as f64,
                    ),
                ],
                &format!("SELECT p.title FROM publication p WHERE p.citation_num > {n}"),
                CaseKind::Simple,
                false,
            ));
        }
    }

    // T13 — "papers with fewer than {n} references" (8).
    for n in [10, 15, 20, 25, 30, 40, 50, 60] {
        cases.push(case(
            next_id(),
            format!("Which papers have fewer than {n} references"),
            vec![
                select_attr("papers", "publication", "title"),
                filter_num(
                    &format!("fewer than {n} references"),
                    "publication",
                    "reference_num",
                    BinOp::Lt,
                    n as f64,
                ),
            ],
            &format!("SELECT p.title FROM publication p WHERE p.reference_num < {n}"),
            CaseKind::Simple,
            false,
        ));
    }

    // T14 — "authors from {organization}" (12).
    for org in ORGANIZATIONS.iter().take(12) {
        cases.push(case(
            next_id(),
            format!("List the authors from {org}"),
            vec![
                select_attr("authors", "author", "name"),
                filter_eq(org, "organization", "name", org),
            ],
            &format!(
                "SELECT a.name FROM author a, organization o \
                 WHERE o.name = '{org}' AND a.oid = o.oid"
            ),
            CaseKind::EasyJoin,
            false,
        ));
    }

    // T15 — "papers in the {domain} field after {year}" (9): combines the
    // domain ambiguity with a numeric filter.
    for domain in DOMAINS.iter().take(3) {
        for year in [2000, 2005, 2010] {
            cases.push(case(
                next_id(),
                format!("Find papers in the {domain} field published after {year}"),
                vec![
                    select_attr("papers", "publication", "title"),
                    filter_eq(domain, "domain", "name", domain),
                    filter_num(
                        &format!("after {year}"),
                        "publication",
                        "year",
                        BinOp::Gt,
                        year as f64,
                    ),
                ],
                &pub_domain_sql(domain, &format!(" AND p.year > {year}")),
                CaseKind::JoinAmbiguous,
                false,
            ));
        }
    }

    cases
}

/// Assemble the MAS dataset.
pub fn dataset() -> Dataset {
    Dataset {
        name: "MAS".to_string(),
        db: Arc::new(database()),
        cases: cases(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_matches_table_ii_statistics() {
        let s = schema();
        assert_eq!(s.relations.len(), 17);
        assert_eq!(s.attribute_count(), 53);
        assert_eq!(s.foreign_keys.len(), 19);
        assert!(s.validate().is_empty());
    }

    #[test]
    fn benchmark_has_194_cases_with_unique_ids() {
        let cases = cases();
        assert_eq!(cases.len(), 194);
        let mut ids: Vec<usize> = cases.iter().map(|c| c.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 194);
    }

    #[test]
    fn every_gold_value_predicate_is_satisfiable() {
        let db = database();
        for case in cases() {
            for pred in case.gold_sql.filter_predicates() {
                let cols = pred.columns();
                let Some(col) = cols.first() else { continue };
                let Some(qualifier) = col.qualifier.as_deref() else {
                    continue;
                };
                let Some(relation) = case.gold_sql.resolve_qualifier(qualifier) else {
                    panic!(
                        "gold SQL of case {} has unresolved qualifier {qualifier}",
                        case.id
                    );
                };
                assert!(
                    db.predicate_nonempty(relation, pred),
                    "case {}: gold predicate `{pred}` selects no rows of {relation}",
                    case.id
                );
            }
        }
    }

    #[test]
    fn gold_relations_exist_in_the_schema() {
        let s = schema();
        for case in cases() {
            for table in &case.gold_sql.from {
                assert!(
                    s.has_relation(&table.table),
                    "case {}: unknown relation {}",
                    case.id,
                    table.table
                );
            }
        }
    }

    #[test]
    fn keyword_texts_are_nonempty_and_mapped() {
        for case in cases() {
            assert!(
                !case.nlq.keywords.is_empty(),
                "case {} has no keywords",
                case.id
            );
            assert_eq!(
                case.nlq.keywords.len(),
                case.nlq.gold_mappings.len(),
                "case {}: gold mappings misaligned",
                case.id
            );
        }
    }

    #[test]
    fn dataset_stats_report_table_ii_numbers() {
        let d = dataset();
        let stats = d.stats();
        assert_eq!(stats.relations, 17);
        assert_eq!(stats.attributes, 53);
        assert_eq!(stats.fk_pk, 19);
        assert_eq!(stats.queries, 194);
        assert!(stats.rows > 500);
    }

    #[test]
    fn benchmark_contains_all_case_kinds() {
        let d = dataset();
        for (kind, count) in d.kind_counts() {
            assert!(count > 0, "no cases of kind {kind:?}");
        }
    }
}
