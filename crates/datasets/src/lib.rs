//! Benchmark datasets: schemas, synthetic data, NLQ-SQL benchmarks and logs.
//!
//! The paper evaluates on three databases (Table II): Microsoft Academic
//! Search (**MAS**, 17 relations / 53 attributes / 19 FK-PK / 194 queries),
//! **Yelp** business reviews (7 / 38 / 7 / 127) and **IMDB** movies
//! (16 / 65 / 20 / 128).  Neither the multi-gigabyte database dumps nor the
//! hand-annotated NLQ-SQL pairs are distributed with the paper, so this crate
//! builds the closest synthetic equivalents (see the substitution table in
//! `DESIGN.md`):
//!
//! * schemas with exactly the relation / attribute / FK-PK counts of
//!   Table II, modelled on the published schema graphs,
//! * deterministic synthetic data whose values make every gold predicate
//!   satisfiable and reproduce the value/attribute ambiguities the paper's
//!   motivating examples rely on, and
//! * generated NLQ-SQL benchmark suites of the same size and query-shape
//!   distribution, each case carrying the gold hand parse (keywords +
//!   metadata + gold mappings) that the paper supplies to the Pipeline
//!   systems.
//!
//! [`benchmark::Dataset::folds`] implements the 4-fold cross-validation
//! protocol of Section VII-A.4: the SQL of the training folds forms the query
//! log, and accuracy is measured on the held-out fold.

pub mod benchmark;
pub mod imdb;
pub mod mas;
pub mod scale;
pub mod yelp;

pub use benchmark::{BenchmarkCase, CaseKind, Dataset, Fold};
pub use scale::scale_log;
