//! The IMDB movie benchmark dataset.
//!
//! 16 relations, 65 attributes, 20 FK-PK relationships, 128 benchmark queries
//! (Table II).  People's names recur across the actor and director relations
//! and release years exist on both movies and TV series, reproducing the
//! value/attribute ambiguities that make IMDB the hardest of the three
//! benchmarks in the paper.

use crate::benchmark::{
    case, filter_eq, filter_num, select_agg, select_attr, BenchmarkCase, CaseKind, Dataset,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use relational::{DataType, Database, Schema, Value};
use sqlparse::{Aggregate, BinOp};
use std::sync::Arc;

/// Actor names.
pub const ACTORS: [&str; 20] = [
    "Harrison Wells",
    "Gloria Chen",
    "Marco Ruiz",
    "Ingrid Svensson",
    "Derek Boateng",
    "Yasmin Farah",
    "Kenji Watanabe",
    "Paula Mendes",
    "Sean Gallagher",
    "Amelia Clarke",
    "Robert Kaminski",
    "Lucia Moretti",
    "Trevor Banks",
    "Naomi Fischer",
    "Victor Osei",
    "Helen Park",
    "Clint Eastwick",
    "Rita Delgado",
    "Samir Nair",
    "Eva Lindqvist",
];

/// Director names; the first six also act (value ambiguity with `actor`).
pub const DIRECTORS: [&str; 12] = [
    "Clint Eastwick",
    "Rita Delgado",
    "Samir Nair",
    "Eva Lindqvist",
    "Harrison Wells",
    "Gloria Chen",
    "Nora Vance",
    "Felix Gruber",
    "Imani Diallo",
    "Oscar Beltran",
    "Greta Holm",
    "Dmitri Sokolov",
];

/// Producer names.
pub const PRODUCERS: [&str; 10] = [
    "Alan Pierce",
    "Bella Nguyen",
    "Carl Weiss",
    "Dina Rahman",
    "Elio Conti",
    "Faye Morrison",
    "Gil Herrera",
    "Hiro Sato",
    "Ida Larsen",
    "Jack Monroe",
];

/// Writer names.
pub const WRITERS: [&str; 10] = [
    "Kate Willis",
    "Leo Abadi",
    "Mona Haddad",
    "Nils Berg",
    "Ona Petrova",
    "Paul Renner",
    "Queenie Zhao",
    "Ray Sandoval",
    "Suki Mori",
    "Tessa Quinn",
];

/// Movie titles referenced by the benchmark.
pub const MOVIES: [&str; 20] = [
    "Midnight Harbor",
    "The Silent Orchard",
    "Crimson Meridian",
    "Glass Horizon",
    "The Last Cartographer",
    "Echoes of Tomorrow",
    "Paper Lanterns",
    "The Iron Garden",
    "Falling Northward",
    "A Study in Amber",
    "The Velvet Divide",
    "Stormlight Station",
    "Hollow Kingdom",
    "The Ninth Parallel",
    "Winter Arcade",
    "The Clockmaker Daughter",
    "Saltwater Letters",
    "The Painted Desert",
    "Second Sunrise",
    "The Quiet Engine",
];

/// TV series titles.
pub const SERIES: [&str; 10] = [
    "Harbor Lights",
    "The Archive",
    "Night Shift Chronicles",
    "Cedar Valley",
    "The Long Con",
    "Orbit City",
    "Whispering Pines",
    "The Ledger",
    "Station Eleven West",
    "Golden Hour",
];

/// Genres.
pub const GENRES: [&str; 14] = [
    "Drama",
    "Comedy",
    "Thriller",
    "Action",
    "Romance",
    "Horror",
    "Documentary",
    "Animation",
    "Science Fiction",
    "Mystery",
    "Western",
    "Musical",
    "Crime",
    "Adventure",
];

/// Production companies.
pub const COMPANIES: [&str; 12] = [
    "Lighthouse Pictures",
    "Redwood Studios",
    "Blue Comet Films",
    "Atlas Entertainment Group",
    "Silverline Productions",
    "Harbor Gate Media",
    "Northstar Cinema",
    "Paper Moon Films",
    "Quartz Pictures",
    "Evergreen Studios",
    "Skylark Productions",
    "Ironwood Films",
];

/// Plot keywords.
pub const PLOT_KEYWORDS: [&str; 10] = [
    "heist",
    "time travel",
    "small town",
    "courtroom",
    "road trip",
    "haunted house",
    "space station",
    "undercover",
    "coming of age",
    "revenge",
];

/// The IMDB schema: 16 relations, 65 attributes, 20 FK-PK edges.
pub fn schema() -> Schema {
    use DataType::{Integer, Text};
    Schema::builder("imdb")
        .relation(
            "movie",
            &[
                ("mid", Integer),
                ("title", Text),
                ("release_year", Integer),
                ("title_aka", Text),
                ("budget", Integer),
                ("gross", Integer),
            ],
            Some("mid"),
        )
        .relation(
            "actor",
            &[
                ("aid", Integer),
                ("name", Text),
                ("nationality", Text),
                ("birth_city", Text),
                ("birth_year", Integer),
                ("gender", Text),
            ],
            Some("aid"),
        )
        .relation(
            "director",
            &[
                ("did", Integer),
                ("name", Text),
                ("nationality", Text),
                ("birth_city", Text),
                ("birth_year", Integer),
            ],
            Some("did"),
        )
        .relation(
            "producer",
            &[
                ("pid", Integer),
                ("name", Text),
                ("nationality", Text),
                ("birth_city", Text),
                ("birth_year", Integer),
            ],
            Some("pid"),
        )
        .relation(
            "writer",
            &[("wid", Integer), ("name", Text), ("nationality", Text)],
            Some("wid"),
        )
        .relation("genre", &[("gid", Integer), ("genre", Text)], Some("gid"))
        .relation(
            "keyword",
            &[("kid", Integer), ("keyword", Text)],
            Some("kid"),
        )
        .relation(
            "company",
            &[("cid", Integer), ("name", Text), ("country_code", Text)],
            Some("cid"),
        )
        .relation(
            "tv_series",
            &[
                ("sid", Integer),
                ("title", Text),
                ("release_year", Integer),
                ("num_of_seasons", Integer),
                ("num_of_episodes", Integer),
            ],
            Some("sid"),
        )
        .relation(
            "cast",
            &[
                ("id", Integer),
                ("msid", Integer),
                ("aid", Integer),
                ("sid", Integer),
                ("role", Text),
            ],
            Some("id"),
        )
        .relation(
            "directed_by",
            &[
                ("id", Integer),
                ("msid", Integer),
                ("did", Integer),
                ("sid", Integer),
            ],
            Some("id"),
        )
        .relation(
            "made_by",
            &[("id", Integer), ("msid", Integer), ("pid", Integer)],
            Some("id"),
        )
        .relation(
            "written_by",
            &[
                ("id", Integer),
                ("msid", Integer),
                ("wid", Integer),
                ("sid", Integer),
            ],
            Some("id"),
        )
        .relation(
            "classification",
            &[
                ("id", Integer),
                ("msid", Integer),
                ("gid", Integer),
                ("sid", Integer),
            ],
            Some("id"),
        )
        .relation(
            "tags",
            &[
                ("id", Integer),
                ("msid", Integer),
                ("kid", Integer),
                ("sid", Integer),
            ],
            Some("id"),
        )
        .relation(
            "copyright",
            &[
                ("id", Integer),
                ("msid", Integer),
                ("cid", Integer),
                ("sid", Integer),
            ],
            Some("id"),
        )
        .foreign_key("cast", "msid", "movie", "mid")
        .foreign_key("cast", "aid", "actor", "aid")
        .foreign_key("cast", "sid", "tv_series", "sid")
        .foreign_key("directed_by", "msid", "movie", "mid")
        .foreign_key("directed_by", "did", "director", "did")
        .foreign_key("directed_by", "sid", "tv_series", "sid")
        .foreign_key("made_by", "msid", "movie", "mid")
        .foreign_key("made_by", "pid", "producer", "pid")
        .foreign_key("written_by", "msid", "movie", "mid")
        .foreign_key("written_by", "wid", "writer", "wid")
        .foreign_key("written_by", "sid", "tv_series", "sid")
        .foreign_key("classification", "msid", "movie", "mid")
        .foreign_key("classification", "gid", "genre", "gid")
        .foreign_key("classification", "sid", "tv_series", "sid")
        .foreign_key("tags", "msid", "movie", "mid")
        .foreign_key("tags", "kid", "keyword", "kid")
        .foreign_key("tags", "sid", "tv_series", "sid")
        .foreign_key("copyright", "msid", "movie", "mid")
        .foreign_key("copyright", "cid", "company", "cid")
        .foreign_key("copyright", "sid", "tv_series", "sid")
        .build()
}

/// Deterministic synthetic database instance.
pub fn database() -> Database {
    let mut db = Database::new(schema());
    let mut rng = StdRng::seed_from_u64(0x494d_4442); // "IMDB"
    let cities = [
        "Los Angeles",
        "London",
        "Toronto",
        "Mumbai",
        "Seoul",
        "Berlin",
    ];
    let nationalities = [
        "American", "British", "Canadian", "Indian", "Korean", "German",
    ];

    for (i, name) in ACTORS.iter().enumerate() {
        db.insert(
            "actor",
            vec![
                Value::Int(i as i64 + 1),
                Value::from(*name),
                Value::from(nationalities[i % nationalities.len()]),
                Value::from(cities[i % cities.len()]),
                Value::Int(1950 + (i as i64 * 2) % 50),
                Value::from(if i % 2 == 0 { "male" } else { "female" }),
            ],
        )
        .expect("actor row");
    }
    for (i, name) in DIRECTORS.iter().enumerate() {
        db.insert(
            "director",
            vec![
                Value::Int(i as i64 + 1),
                Value::from(*name),
                Value::from(nationalities[i % nationalities.len()]),
                Value::from(cities[(i + 2) % cities.len()]),
                Value::Int(1945 + (i as i64 * 3) % 50),
            ],
        )
        .expect("director row");
    }
    for (i, name) in PRODUCERS.iter().enumerate() {
        db.insert(
            "producer",
            vec![
                Value::Int(i as i64 + 1),
                Value::from(*name),
                Value::from(nationalities[i % nationalities.len()]),
                Value::from(cities[(i + 1) % cities.len()]),
                Value::Int(1940 + (i as i64 * 4) % 50),
            ],
        )
        .expect("producer row");
    }
    for (i, name) in WRITERS.iter().enumerate() {
        db.insert(
            "writer",
            vec![
                Value::Int(i as i64 + 1),
                Value::from(*name),
                Value::from(nationalities[i % nationalities.len()]),
            ],
        )
        .expect("writer row");
    }
    for (i, genre) in GENRES.iter().enumerate() {
        db.insert("genre", vec![Value::Int(i as i64 + 1), Value::from(*genre)])
            .expect("genre row");
    }
    for (i, kw) in PLOT_KEYWORDS.iter().enumerate() {
        db.insert("keyword", vec![Value::Int(i as i64 + 1), Value::from(*kw)])
            .expect("keyword row");
    }
    for (i, name) in COMPANIES.iter().enumerate() {
        db.insert(
            "company",
            vec![
                Value::Int(i as i64 + 1),
                Value::from(*name),
                Value::from(["US", "GB", "CA"][i % 3]),
            ],
        )
        .expect("company row");
    }
    for (i, title) in SERIES.iter().enumerate() {
        db.insert(
            "tv_series",
            vec![
                Value::Int(i as i64 + 1),
                Value::from(*title),
                Value::Int(1998 + (i as i64 * 2) % 22),
                Value::Int(1 + (i as i64) % 8),
                Value::Int(8 + (i as i64 * 5) % 100),
            ],
        )
        .expect("tv_series row");
    }
    // Movies (extend beyond the named titles with generated ones).
    let n_movies = 120;
    for i in 0..n_movies {
        let title = match MOVIES.get(i) {
            Some(name) => name.to_string(),
            None => format!("Untitled Project {}", i + 1),
        };
        db.insert(
            "movie",
            vec![
                Value::Int(i as i64 + 1),
                Value::from(title.clone()),
                Value::Int(1975 + (rng.gen_range(0..45) as i64)),
                Value::from(format!("{title} (working title)")),
                Value::Int(rng.gen_range(1..200) as i64 * 1_000_000),
                Value::Int(rng.gen_range(1..900) as i64 * 1_000_000),
            ],
        )
        .expect("movie row");
    }
    // Link tables.  `sid` columns reference a series only for a minority of
    // rows; movie links dominate, mirroring the real data.
    for i in 0..n_movies {
        let mid = i as i64 + 1;
        let sid = Value::Int((i % SERIES.len()) as i64 + 1);
        db.insert(
            "cast",
            vec![
                Value::Int(i as i64 + 1),
                Value::Int(mid),
                Value::Int((i % ACTORS.len()) as i64 + 1),
                sid.clone(),
                Value::from("lead"),
            ],
        )
        .expect("cast row");
        db.insert(
            "directed_by",
            vec![
                Value::Int(i as i64 + 1),
                Value::Int(mid),
                Value::Int((i % DIRECTORS.len()) as i64 + 1),
                sid.clone(),
            ],
        )
        .expect("directed_by row");
        db.insert(
            "made_by",
            vec![
                Value::Int(i as i64 + 1),
                Value::Int(mid),
                Value::Int((i % PRODUCERS.len()) as i64 + 1),
            ],
        )
        .expect("made_by row");
        db.insert(
            "written_by",
            vec![
                Value::Int(i as i64 + 1),
                Value::Int(mid),
                Value::Int((i % WRITERS.len()) as i64 + 1),
                sid.clone(),
            ],
        )
        .expect("written_by row");
        db.insert(
            "classification",
            vec![
                Value::Int(i as i64 + 1),
                Value::Int(mid),
                Value::Int((i % GENRES.len()) as i64 + 1),
                sid.clone(),
            ],
        )
        .expect("classification row");
        db.insert(
            "tags",
            vec![
                Value::Int(i as i64 + 1),
                Value::Int(mid),
                Value::Int((i % PLOT_KEYWORDS.len()) as i64 + 1),
                sid.clone(),
            ],
        )
        .expect("tags row");
        db.insert(
            "copyright",
            vec![
                Value::Int(i as i64 + 1),
                Value::Int(mid),
                Value::Int((i % COMPANIES.len()) as i64 + 1),
                sid,
            ],
        )
        .expect("copyright row");
    }
    db
}

/// The 128 IMDB benchmark cases.
pub fn cases() -> Vec<BenchmarkCase> {
    let mut cases = Vec::new();
    let mut id = 0usize;
    let mut next_id = || {
        let v = id;
        id += 1;
        v
    };

    // I1 — "movies starring {actor}" (16).
    for actor in ACTORS.iter().take(16) {
        cases.push(case(
            next_id(),
            format!("Find movies starring {actor}"),
            vec![
                select_attr("movies", "movie", "title"),
                filter_eq(actor, "actor", "name", actor),
            ],
            &format!(
                "SELECT m.title FROM movie m, cast c, actor a \
                 WHERE a.name = '{actor}' AND c.msid = m.mid AND c.aid = a.aid"
            ),
            CaseKind::EasyJoin,
            false,
        ));
    }

    // I2 — "movies directed by {director}" (12): half the names also occur in
    // the actor relation, so word similarity alone cannot pick the relation.
    for director in DIRECTORS {
        cases.push(case(
            next_id(),
            format!("Find movies directed by {director}"),
            vec![
                select_attr("movies", "movie", "title"),
                filter_eq(director, "director", "name", director),
            ],
            &format!(
                "SELECT m.title FROM movie m, directed_by db, director d \
                 WHERE d.name = '{director}' AND db.msid = m.mid AND db.did = d.did"
            ),
            CaseKind::KeywordAmbiguous,
            true,
        ));
    }

    // I3 — "movies released after {year}" (12): release_year exists on both
    // movie and tv_series, birth_year on people.
    for year in [
        1980, 1985, 1990, 1995, 1998, 2000, 2003, 2005, 2008, 2010, 2013, 2015,
    ] {
        cases.push(case(
            next_id(),
            format!("List movies released after {year}"),
            vec![
                select_attr("movies", "movie", "title"),
                filter_num(
                    &format!("after {year}"),
                    "movie",
                    "release_year",
                    BinOp::Gt,
                    year as f64,
                ),
            ],
            &format!("SELECT m.title FROM movie m WHERE m.release_year > {year}"),
            CaseKind::KeywordAmbiguous,
            false,
        ));
    }

    // I4 — "{genre} movies" (14).
    for genre in GENRES {
        cases.push(case(
            next_id(),
            format!("Show me {genre} movies"),
            vec![
                select_attr("movies", "movie", "title"),
                filter_eq(genre, "genre", "genre", genre),
            ],
            &format!(
                "SELECT m.title FROM movie m, classification c, genre g \
                 WHERE g.genre = '{genre}' AND c.msid = m.mid AND c.gid = g.gid"
            ),
            CaseKind::EasyJoin,
            false,
        ));
    }

    // I5 — "movies produced by {company}" (12).
    for company in COMPANIES {
        cases.push(case(
            next_id(),
            format!("Which movies were released by {company}"),
            vec![
                select_attr("movies", "movie", "title"),
                filter_eq(company, "company", "name", company),
            ],
            &format!(
                "SELECT m.title FROM movie m, copyright cp, company c \
                 WHERE c.name = '{company}' AND cp.msid = m.mid AND cp.cid = c.cid"
            ),
            CaseKind::EasyJoin,
            false,
        ));
    }

    // I6 — "movies about {keyword}" (10).
    for kw in PLOT_KEYWORDS {
        cases.push(case(
            next_id(),
            format!("Find movies about {kw}"),
            vec![
                select_attr("movies", "movie", "title"),
                filter_eq(kw, "keyword", "keyword", kw),
            ],
            &format!(
                "SELECT m.title FROM movie m, tags t, keyword k \
                 WHERE k.keyword = '{kw}' AND t.msid = m.mid AND t.kid = k.kid"
            ),
            CaseKind::EasyJoin,
            false,
        ));
    }

    // I7 — "actors in {movie}" (12).
    for movie in MOVIES.iter().take(12) {
        cases.push(case(
            next_id(),
            format!("Who are the actors in {movie}"),
            vec![
                select_attr("actors", "actor", "name"),
                filter_eq(movie, "movie", "title", movie),
            ],
            &format!(
                "SELECT a.name FROM actor a, cast c, movie m \
                 WHERE m.title = '{movie}' AND c.aid = a.aid AND c.msid = m.mid"
            ),
            CaseKind::EasyJoin,
            true,
        ));
    }

    // I8 — "who directed {movie}" (10).
    for movie in MOVIES.iter().skip(10).take(10) {
        cases.push(case(
            next_id(),
            format!("Who directed the movie {movie}"),
            vec![
                select_attr("director", "director", "name"),
                filter_eq(movie, "movie", "title", movie),
            ],
            &format!(
                "SELECT d.name FROM director d, directed_by db, movie m \
                 WHERE m.title = '{movie}' AND db.did = d.did AND db.msid = m.mid"
            ),
            CaseKind::EasyJoin,
            true,
        ));
    }

    // I9 — "number of movies by {director}" (10): aggregation.
    for director in DIRECTORS.iter().take(10) {
        cases.push(case(
            next_id(),
            format!("How many movies did {director} direct"),
            vec![
                select_agg("number of movies", "movie", "mid", Aggregate::Count),
                filter_eq(director, "director", "name", director),
            ],
            &format!(
                "SELECT COUNT(m.mid) FROM movie m, directed_by db, director d \
                 WHERE d.name = '{director}' AND db.msid = m.mid AND db.did = d.did"
            ),
            CaseKind::Aggregate,
            true,
        ));
    }

    // I10 — "movies with a budget over {n} million" (10): budget vs gross.
    for n in [5, 10, 20, 40, 60, 80, 100, 120, 150, 180] {
        let dollars = n * 1_000_000;
        cases.push(case(
            next_id(),
            format!("Find movies with a budget over {dollars}"),
            vec![
                select_attr("movies", "movie", "title"),
                filter_num(
                    &format!("budget over {dollars}"),
                    "movie",
                    "budget",
                    BinOp::Gt,
                    dollars as f64,
                ),
            ],
            &format!("SELECT m.title FROM movie m WHERE m.budget > {dollars}"),
            CaseKind::Simple,
            false,
        ));
    }

    // I11 — "tv series released after {year}" (10): the release_year must be
    // the series', not the movies'.
    for year in [1998, 1999, 2000, 2002, 2004, 2006, 2008, 2010, 2012, 2014] {
        cases.push(case(
            next_id(),
            format!("Which tv series started after {year}"),
            vec![
                select_attr("series", "tv_series", "title"),
                filter_num(
                    &format!("after {year}"),
                    "tv_series",
                    "release_year",
                    BinOp::Gt,
                    year as f64,
                ),
            ],
            &format!("SELECT s.title FROM tv_series s WHERE s.release_year > {year}"),
            CaseKind::KeywordAmbiguous,
            false,
        ));
    }

    cases
}

/// Assemble the IMDB dataset.
pub fn dataset() -> Dataset {
    Dataset {
        name: "IMDB".to_string(),
        db: Arc::new(database()),
        cases: cases(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_matches_table_ii_statistics() {
        let s = schema();
        assert_eq!(s.relations.len(), 16);
        assert_eq!(s.attribute_count(), 65);
        assert_eq!(s.foreign_keys.len(), 20);
        assert!(s.validate().is_empty());
    }

    #[test]
    fn benchmark_has_128_cases() {
        assert_eq!(cases().len(), 128);
    }

    #[test]
    fn every_gold_value_predicate_is_satisfiable() {
        let db = database();
        for case in cases() {
            for pred in case.gold_sql.filter_predicates() {
                let cols = pred.columns();
                let Some(col) = cols.first() else { continue };
                let Some(qualifier) = col.qualifier.as_deref() else {
                    continue;
                };
                let relation = case
                    .gold_sql
                    .resolve_qualifier(qualifier)
                    .unwrap_or_else(|| panic!("case {}: unresolved {qualifier}", case.id));
                assert!(
                    db.predicate_nonempty(relation, pred),
                    "case {}: gold predicate `{pred}` selects no rows",
                    case.id
                );
            }
        }
    }

    #[test]
    fn some_director_names_also_appear_as_actors() {
        let db = database();
        let shared = DIRECTORS
            .iter()
            .filter(|name| {
                !db.text_search(name, &[])
                    .iter()
                    .filter(|m| m.attribute.relation == "actor")
                    .collect::<Vec<_>>()
                    .is_empty()
            })
            .count();
        assert!(
            shared >= 4,
            "expected actor/director name collisions, got {shared}"
        );
    }

    #[test]
    fn stats_match_table_ii() {
        let stats = dataset().stats();
        assert_eq!(
            (
                stats.relations,
                stats.attributes,
                stats.fk_pk,
                stats.queries
            ),
            (16, 65, 20, 128)
        );
    }
}
