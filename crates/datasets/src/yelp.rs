//! The Yelp business-review benchmark dataset.
//!
//! 7 relations, 38 attributes, 7 FK-PK relationships, 127 benchmark queries
//! (Table II).  The ambiguity structure mirrors what the paper describes for
//! this benchmark: star ratings and review counts exist on several relations
//! (business, review, user), and businesses connect to users through either
//! reviews or tips, so both keyword mapping and join inference need the log.

use crate::benchmark::{
    case, filter_eq, filter_num, select_agg, select_attr, BenchmarkCase, CaseKind, Dataset,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use relational::{DataType, Database, Schema, Value};
use sqlparse::{Aggregate, BinOp};
use std::sync::Arc;

/// Cities used by the benchmark.
pub const CITIES: [&str; 16] = [
    "Phoenix",
    "Las Vegas",
    "Charlotte",
    "Pittsburgh",
    "Madison",
    "Edinburgh",
    "Karlsruhe",
    "Montreal",
    "Waterloo",
    "Urbana",
    "Tempe",
    "Scottsdale",
    "Mesa",
    "Chandler",
    "Henderson",
    "Gilbert",
];

/// States / provinces used by the benchmark.
pub const STATES: [&str; 14] = [
    "AZ", "NV", "NC", "PA", "WI", "IL", "SC", "ON", "QC", "EDH", "BW", "MLN", "FIF", "KHL",
];

/// Business categories.
pub const CATEGORIES: [&str; 16] = [
    "Mexican",
    "Italian",
    "Chinese",
    "Thai",
    "Pizza",
    "Burgers",
    "Sushi",
    "Vegan",
    "Barbeque",
    "Seafood",
    "Steakhouse",
    "Breakfast",
    "Coffee",
    "Bakeries",
    "Nightlife",
    "Indian",
];

/// Business names referenced by the benchmark.
pub const BUSINESSES: [&str; 20] = [
    "Taco Palace",
    "Luigi Trattoria",
    "Golden Dragon",
    "Bangkok Garden",
    "Slice Heaven",
    "Burger Barn",
    "Sakura House",
    "Green Table",
    "Smoky Pit",
    "Harbor Catch",
    "Prime Cut",
    "Sunrise Diner",
    "Bean Scene",
    "Flour Power",
    "Neon Lounge",
    "Curry Corner",
    "Desert Bloom Cafe",
    "Maple Leaf Bistro",
    "Canyon Grill",
    "Riverside Deli",
];

/// The Yelp schema: 7 relations, 38 attributes, 7 FK-PK edges.
pub fn schema() -> Schema {
    use DataType::{Float, Integer, Text};
    Schema::builder("yelp")
        .relation(
            "business",
            &[
                ("business_id", Integer),
                ("name", Text),
                ("full_address", Text),
                ("city", Text),
                ("state", Text),
                ("latitude", Float),
                ("longitude", Float),
                ("review_count", Integer),
                ("stars", Float),
                ("is_open", Integer),
            ],
            Some("business_id"),
        )
        .relation(
            "category",
            &[
                ("id", Integer),
                ("business_id", Integer),
                ("category_name", Text),
            ],
            Some("id"),
        )
        .relation(
            "user",
            &[
                ("user_id", Integer),
                ("name", Text),
                ("review_count", Integer),
                ("fans", Integer),
                ("average_stars", Float),
            ],
            Some("user_id"),
        )
        .relation(
            "review",
            &[
                ("rid", Integer),
                ("business_id", Integer),
                ("user_id", Integer),
                ("stars", Float),
                ("text", Text),
                ("year", Integer),
                ("month", Integer),
            ],
            Some("rid"),
        )
        .relation(
            "checkin",
            &[
                ("cid", Integer),
                ("business_id", Integer),
                ("checkin_count", Integer),
                ("day", Text),
            ],
            Some("cid"),
        )
        .relation(
            "tip",
            &[
                ("tip_id", Integer),
                ("business_id", Integer),
                ("user_id", Integer),
                ("text", Text),
                ("likes", Integer),
                ("year", Integer),
            ],
            Some("tip_id"),
        )
        .relation(
            "neighbourhood",
            &[
                ("id", Integer),
                ("business_id", Integer),
                ("neighbourhood_name", Text),
            ],
            Some("id"),
        )
        .foreign_key("category", "business_id", "business", "business_id")
        .foreign_key("review", "business_id", "business", "business_id")
        .foreign_key("review", "user_id", "user", "user_id")
        .foreign_key("checkin", "business_id", "business", "business_id")
        .foreign_key("tip", "business_id", "business", "business_id")
        .foreign_key("tip", "user_id", "user", "user_id")
        .foreign_key("neighbourhood", "business_id", "business", "business_id")
        .build()
}

/// Deterministic synthetic database instance.
pub fn database() -> Database {
    let mut db = Database::new(schema());
    let mut rng = StdRng::seed_from_u64(0x5945_4c50); // "YELP"
    let user_names = [
        "Alex", "Brooke", "Casey", "Dana", "Eli", "Fran", "Gabe", "Hana", "Iris", "Jon", "Kara",
        "Liam", "Mia", "Noah", "Opal", "Pete", "Quinn", "Rosa", "Sam", "Tara",
    ];
    for (i, name) in BUSINESSES.iter().enumerate() {
        let city = CITIES[i % CITIES.len()];
        let state = STATES[i % STATES.len()];
        db.insert(
            "business",
            vec![
                Value::Int(i as i64 + 1),
                Value::from(*name),
                Value::from(format!("{} Main St, {city}", 100 + i)),
                Value::from(city),
                Value::from(state),
                Value::Float(33.0 + i as f64 / 10.0),
                Value::Float(-112.0 - i as f64 / 10.0),
                Value::Int(rng.gen_range(5..900) as i64),
                // Cycle stars through the full 1.0..5.0 scale so every
                // boundary predicate in the gold SQL (e.g. `stars > 4.5`)
                // is satisfiable regardless of the RNG stream.
                Value::Float(((2 + (i % 9)) as f64) / 2.0),
                Value::Int((i % 2) as i64),
            ],
        )
        .expect("business row");
        db.insert(
            "category",
            vec![
                Value::Int(i as i64 + 1),
                Value::Int(i as i64 + 1),
                Value::from(CATEGORIES[i % CATEGORIES.len()]),
            ],
        )
        .expect("category row");
        db.insert(
            "neighbourhood",
            vec![
                Value::Int(i as i64 + 1),
                Value::Int(i as i64 + 1),
                Value::from(format!("{city} Old Town")),
            ],
        )
        .expect("neighbourhood row");
    }
    for (i, name) in user_names.iter().enumerate() {
        db.insert(
            "user",
            vec![
                Value::Int(i as i64 + 1),
                Value::from(*name),
                Value::Int(rng.gen_range(1..500) as i64),
                Value::Int(rng.gen_range(0..200) as i64),
                Value::Float((rng.gen_range(4..10) as f64) / 2.0),
            ],
        )
        .expect("user row");
    }
    for i in 0..240usize {
        let bid = (i % BUSINESSES.len()) as i64 + 1;
        let uid = (i % user_names.len()) as i64 + 1;
        db.insert(
            "review",
            vec![
                Value::Int(i as i64 + 1),
                Value::Int(bid),
                Value::Int(uid),
                Value::Float((rng.gen_range(2..10) as f64) / 2.0),
                Value::from(format!("Great food and friendly service, visit {}", i + 1)),
                Value::Int(2010 + (i % 8) as i64),
                Value::Int((i % 12) as i64 + 1),
            ],
        )
        .expect("review row");
        if i % 2 == 0 {
            db.insert(
                "tip",
                vec![
                    Value::Int(i as i64 + 1),
                    Value::Int(bid),
                    Value::Int(uid),
                    Value::from(format!("Try the daily special number {}", i + 1)),
                    Value::Int(rng.gen_range(0..50) as i64),
                    Value::Int(2012 + (i % 6) as i64),
                ],
            )
            .expect("tip row");
        }
        if i % 3 == 0 {
            db.insert(
                "checkin",
                vec![
                    Value::Int(i as i64 + 1),
                    Value::Int(bid),
                    Value::Int(rng.gen_range(1..80) as i64),
                    Value::from(["Monday", "Friday", "Saturday"][i % 3]),
                ],
            )
            .expect("checkin row");
        }
    }
    db
}

/// The 127 Yelp benchmark cases.
pub fn cases() -> Vec<BenchmarkCase> {
    let mut cases = Vec::new();
    let mut id = 0usize;
    let mut next_id = || {
        let v = id;
        id += 1;
        v
    };

    // Y1 — "restaurants in {city}" (16).
    for city in CITIES {
        cases.push(case(
            next_id(),
            format!("Find restaurants in {city}"),
            vec![
                select_attr("restaurants", "business", "name"),
                filter_eq(city, "business", "city", city),
            ],
            &format!("SELECT b.name FROM business b WHERE b.city = '{city}'"),
            CaseKind::KeywordAmbiguous,
            false,
        ));
    }

    // Y2 — "businesses in {state}" (14).
    for state in STATES {
        cases.push(case(
            next_id(),
            format!("List businesses in the state {state}"),
            vec![
                select_attr("businesses", "business", "name"),
                filter_eq(state, "business", "state", state),
            ],
            &format!("SELECT b.name FROM business b WHERE b.state = '{state}'"),
            CaseKind::Simple,
            false,
        ));
    }

    // Y3 — "{category} restaurants" (16).
    for category in CATEGORIES {
        cases.push(case(
            next_id(),
            format!("Show me {category} restaurants"),
            vec![
                select_attr("restaurants", "business", "name"),
                filter_eq(category, "category", "category_name", category),
            ],
            &format!(
                "SELECT b.name FROM business b, category c \
                 WHERE c.category_name = '{category}' AND c.business_id = b.business_id"
            ),
            CaseKind::EasyJoin,
            false,
        ));
    }

    // Y4 — "businesses with more than {n} reviews" (12): review_count exists
    // on both business and user.
    for n in [25, 50, 75, 100, 150, 200, 250, 300, 350, 400, 450, 500] {
        cases.push(case(
            next_id(),
            format!("Which businesses have more than {n} reviews"),
            vec![
                select_attr("businesses", "business", "name"),
                filter_num(
                    &format!("more than {n} reviews"),
                    "business",
                    "review_count",
                    BinOp::Gt,
                    n as f64,
                ),
            ],
            &format!("SELECT b.name FROM business b WHERE b.review_count > {n}"),
            CaseKind::KeywordAmbiguous,
            false,
        ));
    }

    // Y5 — "businesses rated above {x} stars" (12): stars exists on business,
    // review and user.average_stars.
    for x in [2.0, 2.5, 3.0, 3.5, 4.0, 4.5] {
        for noun in ["businesses", "places"] {
            cases.push(case(
                next_id(),
                format!("Find {noun} rated above {x} stars"),
                vec![
                    select_attr(noun, "business", "name"),
                    filter_num(
                        &format!("above {x} stars"),
                        "business",
                        "stars",
                        BinOp::Gt,
                        x,
                    ),
                ],
                &format!("SELECT b.name FROM business b WHERE b.stars > {x}"),
                CaseKind::KeywordAmbiguous,
                false,
            ));
        }
    }

    // Y6 — "users who reviewed {business}" (15): business–user reachable via
    // review or tip (equal length), the log prefers review.
    for business in BUSINESSES.iter().take(15) {
        cases.push(case(
            next_id(),
            format!("Which users reviewed {business}"),
            vec![
                select_attr("users", "user", "name"),
                filter_eq(business, "business", "name", business),
            ],
            &format!(
                "SELECT u.name FROM user u, review r, business b \
                 WHERE b.name = '{business}' AND r.user_id = u.user_id AND r.business_id = b.business_id"
            ),
            CaseKind::JoinAmbiguous,
            true,
        ));
    }

    // Y7 — "tips about {business}" (10).
    for business in BUSINESSES.iter().take(10) {
        cases.push(case(
            next_id(),
            format!("Show the tips left for {business}"),
            vec![
                select_attr("tips", "tip", "text"),
                filter_eq(business, "business", "name", business),
            ],
            &format!(
                "SELECT t.text FROM tip t, business b \
                 WHERE b.name = '{business}' AND t.business_id = b.business_id"
            ),
            CaseKind::EasyJoin,
            false,
        ));
    }

    // Y8 — "reviews of {business}" (12).
    for business in BUSINESSES.iter().skip(5).take(12) {
        cases.push(case(
            next_id(),
            format!("Show the reviews of {business}"),
            vec![
                select_attr("reviews", "review", "text"),
                filter_eq(business, "business", "name", business),
            ],
            &format!(
                "SELECT r.text FROM review r, business b \
                 WHERE b.name = '{business}' AND r.business_id = b.business_id"
            ),
            CaseKind::EasyJoin,
            false,
        ));
    }

    // Y9 — "number of reviews for {business}" (10): aggregation.
    for business in BUSINESSES.iter().take(10) {
        cases.push(case(
            next_id(),
            format!("How many reviews does {business} have"),
            vec![
                select_agg("number of reviews", "review", "rid", Aggregate::Count),
                filter_eq(business, "business", "name", business),
            ],
            &format!(
                "SELECT COUNT(r.rid) FROM review r, business b \
                 WHERE b.name = '{business}' AND r.business_id = b.business_id"
            ),
            CaseKind::Aggregate,
            true,
        ));
    }

    // Y10 — "number of checkins at {business}" (10): aggregation.
    for business in BUSINESSES.iter().skip(10).take(10) {
        cases.push(case(
            next_id(),
            format!("Count the checkins at {business}"),
            vec![
                select_agg("checkins", "checkin", "cid", Aggregate::Count),
                filter_eq(business, "business", "name", business),
            ],
            &format!(
                "SELECT COUNT(c.cid) FROM checkin c, business b \
                 WHERE b.name = '{business}' AND c.business_id = b.business_id"
            ),
            CaseKind::Aggregate,
            true,
        ));
    }

    cases
}

/// Assemble the Yelp dataset.
pub fn dataset() -> Dataset {
    Dataset {
        name: "Yelp".to_string(),
        db: Arc::new(database()),
        cases: cases(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_matches_table_ii_statistics() {
        let s = schema();
        assert_eq!(s.relations.len(), 7);
        assert_eq!(s.attribute_count(), 38);
        assert_eq!(s.foreign_keys.len(), 7);
        assert!(s.validate().is_empty());
    }

    #[test]
    fn benchmark_has_127_cases() {
        assert_eq!(cases().len(), 127);
    }

    #[test]
    fn every_gold_value_predicate_is_satisfiable() {
        let db = database();
        for case in cases() {
            for pred in case.gold_sql.filter_predicates() {
                let cols = pred.columns();
                let Some(col) = cols.first() else { continue };
                let Some(qualifier) = col.qualifier.as_deref() else {
                    continue;
                };
                let relation = case
                    .gold_sql
                    .resolve_qualifier(qualifier)
                    .unwrap_or_else(|| panic!("case {}: unresolved {qualifier}", case.id));
                assert!(
                    db.predicate_nonempty(relation, pred),
                    "case {}: gold predicate `{pred}` selects no rows",
                    case.id
                );
            }
        }
    }

    #[test]
    fn stats_match_table_ii() {
        let stats = dataset().stats();
        assert_eq!(
            (
                stats.relations,
                stats.attributes,
                stats.fk_pk,
                stats.queries
            ),
            (7, 38, 7, 127)
        );
    }
}
