//! Property-based coverage for the protocol-v3 binary codec: encode→decode
//! identity over generated request and response bodies — every variant,
//! including `Explanation`-carrying translations and full `MetricsReport`s —
//! plus typed rejection of truncated and oversized frames.
//!
//! The generators deliberately reach the codec's awkward corners: empty and
//! unicode strings, `u64::MAX` bucket bounds (`+Inf`), negative-exponent
//! floats, nested optional structure, and multi-candidate responses.

use nlidb::{Explanation, JoinExplanation, TranslateError};
use proptest::prelude::*;
use templar_api::binary::{
    check_frame_len, decode_request_frame, decode_response_frame, encode_request_frame,
    encode_response_frame, peek_request_id, CodecError, MAX_FRAME_BYTES,
};
use templar_api::{
    ApiError, HistogramBucket, MetricsReport, RequestBody, RequestOverrides, ResponseBody,
    SlowQueryReport, SqlCandidate, StageLatencyReport, TranslateRequest, TranslateResponse,
};
use templar_core::{Keyword, KeywordMetadata, RequestTrace, SearchStats, StageSpan};

// ---------------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------------

/// A fraction in `[0, 1]` with a fixed denominator (round-trip equality is
/// bit-exact either way; the fraction just keeps generated scores plausible).
fn fraction() -> impl Strategy<Value = f64> {
    (0u64..10_001).prop_map(|n| n as f64 / 10_000.0)
}

fn tenant() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,11}"
}

fn keyword_pair() -> impl Strategy<Value = (Keyword, KeywordMetadata)> {
    (
        "[a-z ☃]{1,16}",
        prop_oneof![
            Just(KeywordMetadata::select()),
            Just(KeywordMetadata::filter()),
            Just(KeywordMetadata::from_clause()),
            Just(KeywordMetadata::select().with_group_by()),
        ],
    )
        .prop_map(|(text, meta)| (Keyword::new(text), meta))
}

fn overrides() -> impl Strategy<Value = RequestOverrides> {
    (
        proptest::option::of(fraction()),
        proptest::option::of(any::<bool>()),
        proptest::option::of(1usize..16),
    )
        .prop_map(|(lambda, use_log_joins, top_k)| RequestOverrides {
            lambda,
            use_log_joins,
            top_k,
        })
}

fn translate_request() -> impl Strategy<Value = TranslateRequest> {
    (
        tenant(),
        ".{0,40}",
        proptest::collection::vec(keyword_pair(), 0..5),
        overrides(),
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(
            |(tenant, nlq, keywords, overrides, trace, bypass_cache)| TranslateRequest {
                tenant,
                nlq,
                keywords,
                overrides,
                trace,
                bypass_cache,
            },
        )
}

fn request_body() -> impl Strategy<Value = RequestBody> {
    prop_oneof![
        translate_request().prop_map(RequestBody::Translate),
        (tenant(), ".{0,60}").prop_map(|(tenant, sql)| RequestBody::SubmitSql { tenant, sql }),
        (tenant(), ".{0,60}").prop_map(|(tenant, sql)| RequestBody::Feedback { tenant, sql }),
        tenant().prop_map(|tenant| RequestBody::Metrics { tenant }),
        tenant().prop_map(|tenant| RequestBody::SlowQueries { tenant }),
        proptest::option::of(tenant()).prop_map(|tenant| RequestBody::Prometheus { tenant }),
    ]
}

/// An internally consistent `Explanation`: component scores are generated,
/// the blended scores recomputed with the production arithmetic.
fn explanation() -> impl Strategy<Value = Explanation> {
    (
        fraction(),
        fraction(),
        fraction(),
        fraction(),
        0usize..6,
        (0usize..4, fraction(), any::<bool>()),
        any::<bool>(),
    )
        .prop_map(
            |(lambda, sigma, popularity, dice, pairs, (edges, weight, used_log), exhausted)| {
                let join = JoinExplanation {
                    edges,
                    total_weight: weight * edges as f64,
                    used_log_weights: used_log,
                    score: 0.0,
                };
                let join = JoinExplanation {
                    score: join.recompute_score(),
                    ..join
                };
                let mut e = Explanation {
                    lambda,
                    sigma_score: sigma,
                    log_popularity: popularity,
                    dice_cooccurrence: dice,
                    qfg_pairs: pairs,
                    qfg_score: if pairs == 0 { popularity } else { dice },
                    config_score: 0.0,
                    join,
                    final_score: 0.0,
                    search_budget_exhausted: exhausted,
                };
                e.config_score = e.recompute_config_score();
                e.final_score = e.recompute_final();
                e
            },
        )
}

fn candidate() -> impl Strategy<Value = SqlCandidate> {
    (".{1,50}", explanation()).prop_map(|(sql, explanation)| SqlCandidate {
        sql,
        score: explanation.final_score,
        explanation,
    })
}

fn search_stats() -> impl Strategy<Value = SearchStats> {
    (0u64..5_000, 0u64..5_000, 0u64..100, any::<bool>()).prop_map(
        |(scored, pruned, cutoffs, exhausted)| SearchStats {
            tuples_scored: scored,
            tuples_pruned: pruned,
            bound_cutoffs: cutoffs,
            budget_exhausted: exhausted,
        },
    )
}

fn request_trace() -> impl Strategy<Value = RequestTrace> {
    (
        0u64..10_000_000,
        proptest::collection::vec(
            ("[a-z_]{3,16}", 0u64..1_000_000, 0u64..40).prop_map(|(stage, nanos, calls)| {
                StageSpan {
                    stage,
                    nanos,
                    calls,
                }
            }),
            0..5,
        ),
        0u64..1_000_000,
        0u64..16,
    )
        .prop_map(
            |(total_nanos, stages, worker_nanos, workers)| RequestTrace {
                total_nanos,
                stages,
                search_worker_nanos: worker_nanos,
                search_workers: workers,
            },
        )
}

fn translate_response() -> impl Strategy<Value = TranslateResponse> {
    (
        tenant(),
        proptest::collection::vec(candidate(), 0..4),
        proptest::option::of((request_trace(), search_stats(), any::<bool>())),
    )
        .prop_map(|(tenant, candidates, trace)| TranslateResponse {
            tenant,
            candidates,
            trace: trace.map(|(breakdown, search, cache_hit)| templar_api::TraceReport {
                breakdown,
                search,
                cache_hit,
            }),
        })
}

fn buckets() -> impl Strategy<Value = Vec<HistogramBucket>> {
    proptest::collection::vec(0u64..1_000_000, 0..6).prop_map(|mut bounds| {
        bounds.sort_unstable();
        let mut cumulative = 0;
        let mut out: Vec<HistogramBucket> = bounds
            .into_iter()
            .map(|le_us| {
                cumulative += 1;
                HistogramBucket {
                    le_us,
                    count: cumulative,
                }
            })
            .collect();
        out.push(HistogramBucket {
            le_us: u64::MAX,
            count: cumulative,
        });
        out
    })
}

fn stage_latency() -> impl Strategy<Value = StageLatencyReport> {
    (
        "[a-z_]{3,16}",
        0u64..500,
        0u64..4_096,
        0u64..65_536,
        buckets(),
    )
        .prop_map(|(stage, count, p50, p99, buckets)| StageLatencyReport {
            stage,
            count,
            p50_us: p50,
            p99_us: p99.max(p50),
            mean_us: p50,
            sum_us: count * p50,
            buckets,
        })
}

/// A `MetricsReport` with every scalar field exercised: counters are drawn
/// from one stream and assigned round-robin, so no field is stuck at its
/// default and a field the codec drops cannot hide.
fn metrics_report() -> impl Strategy<Value = MetricsReport> {
    (
        proptest::collection::vec(0u64..1_000_000, 62..63),
        buckets(),
        proptest::collection::vec(stage_latency(), 0..3),
    )
        .prop_map(|(counters, translate_buckets, stage_latencies)| {
            let mut next = counters.into_iter();
            let mut n = move || next.next().expect("enough generated counters");
            MetricsReport {
                translations_served: n(),
                empty_translations: n(),
                search_tuples_scored: n(),
                search_tuples_pruned: n(),
                search_bound_cutoffs: n(),
                search_budget_exhausted: n(),
                translate_p50_us: n(),
                translate_p99_us: n(),
                translate_mean_us: n(),
                translate_sum_us: n(),
                translate_buckets,
                stage_latencies,
                ingest_submitted: n(),
                ingest_rejected: n(),
                ingest_applied: n(),
                ingest_parse_errors: n(),
                log_skipped_statements: n(),
                ingest_lag: n(),
                log_evictions: n(),
                snapshot_swaps: n(),
                feedback_accepted: n(),
                wal_appended: n(),
                wal_fsyncs: n(),
                wal_replayed: n(),
                wal_segments_gc: n(),
                wal_io_errors: n(),
                wal_last_errno: n(),
                health_state: n(),
                degraded_entries_total: n(),
                journal_retries_total: n(),
                journal_heals_total: n(),
                wal_truncated_bytes: n(),
                recovery_peak_batch_bytes: n(),
                snapshot_body_bytes: n(),
                admission_tenant_shed: n(),
                admission_global_shed: n(),
                wal_applied_seq: n(),
                join_cache_hits: n(),
                join_cache_misses: n(),
                join_cache_evictions: n(),
                join_cache_entries: n(),
                qfg_fragments: n(),
                qfg_edges: n(),
                qfg_queries: n(),
                qfg_interned_fragments: n(),
                qfg_csr_edges: n(),
                qfg_pending_deltas: n(),
                qfg_compactions: n(),
                qfg_delta_runs: n(),
                qfg_run_merges: n(),
                translation_cache_hits: n(),
                translation_cache_misses: n(),
                translation_cache_evictions: n(),
                translation_cache_invalidations: n(),
                translation_cache_entries: n(),
                word_memo_hits: n(),
                word_memo_misses: n(),
                phrase_memo_hits: n(),
                phrase_memo_misses: n(),
            }
        })
}

fn slow_query() -> impl Strategy<Value = SlowQueryReport> {
    (
        0u64..10_000,
        ".{0,40}",
        0u64..5_000_000,
        any::<bool>(),
        request_trace(),
        search_stats(),
        any::<bool>(),
    )
        .prop_map(
            |(seq, question, total_us, ok, trace, search, cache_hit)| SlowQueryReport {
                seq,
                question,
                total_us,
                ok,
                trace,
                search,
                cache_hit,
            },
        )
}

fn api_error() -> impl Strategy<Value = ApiError> {
    prop_oneof![
        tenant().prop_map(|tenant| ApiError::UnknownTenant { tenant }),
        ".{0,40}".prop_map(|reason| ApiError::InvalidRequest { reason }),
        (0u32..10, 0u32..10)
            .prop_map(|(expected, found)| ApiError::VersionMismatch { expected, found }),
        ".{0,40}".prop_map(|detail| ApiError::MalformedEnvelope { detail }),
        Just(ApiError::TranslationFailed {
            kind: TranslateError::NoKeywords,
        }),
        Just(ApiError::TranslationFailed {
            kind: TranslateError::NoJoinPath,
        }),
        Just(ApiError::Backpressure),
        Just(ApiError::ShuttingDown),
        ".{0,40}".prop_map(|detail| ApiError::SnapshotIo { detail }),
        ".{0,40}".prop_map(|detail| ApiError::Durability { detail }),
    ]
}

fn response_body() -> impl Strategy<Value = ResponseBody> {
    prop_oneof![
        translate_response().prop_map(ResponseBody::Translated),
        Just(ResponseBody::SqlAccepted),
        Just(ResponseBody::FeedbackAccepted),
        metrics_report().prop_map(|report| ResponseBody::Metrics(Box::new(report))),
        proptest::collection::vec(slow_query(), 0..3).prop_map(ResponseBody::SlowQueries),
        ".{0,200}".prop_map(ResponseBody::Prometheus),
    ]
}

fn outcome() -> impl Strategy<Value = Result<ResponseBody, ApiError>> {
    prop_oneof![response_body().prop_map(Ok), api_error().prop_map(Err),]
}

// ---------------------------------------------------------------------------
// Properties
// ---------------------------------------------------------------------------

proptest! {
    /// Every request body round-trips bit-exactly through a binary frame,
    /// with the correlation id preserved and peekable without a body decode.
    #[test]
    fn request_frames_round_trip(id in any::<u64>(), body in request_body()) {
        let frame = encode_request_frame(id, &body);
        let declared = u32::from_le_bytes(frame[..4].try_into().unwrap()) as usize;
        prop_assert_eq!(declared, frame.len() - 4, "length prefix must cover the payload");
        prop_assert_eq!(peek_request_id(&frame[4..]), Some(id));
        let (decoded_id, decoded) = decode_request_frame(&frame[4..]).unwrap();
        prop_assert_eq!(decoded_id, id);
        prop_assert_eq!(decoded.unwrap(), body);
    }

    /// Every response outcome — success bodies including boxed
    /// `MetricsReport`s and `Explanation`-bearing translations, and every
    /// common error — round-trips bit-exactly.
    #[test]
    fn response_frames_round_trip(id in any::<u64>(), outcome in outcome()) {
        let frame = encode_response_frame(id, &outcome);
        let declared = u32::from_le_bytes(frame[..4].try_into().unwrap()) as usize;
        prop_assert_eq!(declared, frame.len() - 4);
        let (decoded_id, decoded) = decode_response_frame(&frame[4..]).unwrap();
        prop_assert_eq!(decoded_id, id);
        prop_assert_eq!(decoded, outcome);
    }

    /// Chopping a valid frame anywhere yields a typed error — never a
    /// panic, never a silently-wrong decode.
    #[test]
    fn truncated_request_frames_fail_typed(body in request_body(), cut_seed in any::<u64>()) {
        let frame = encode_request_frame(1, &body);
        let payload = &frame[4..];
        let cut = (cut_seed as usize) % payload.len();
        match decode_request_frame(&payload[..cut]) {
            Err(CodecError::Runt { .. }) => prop_assert!(cut < 8),
            Ok((_, Err(CodecError::Truncated { .. })))
            | Ok((_, Err(CodecError::Malformed { .. }))) => prop_assert!(cut >= 8),
            other => prop_assert!(false, "cut {} must fail typed, got {:?}", cut, other),
        }
    }

    /// Same for response frames.
    #[test]
    fn truncated_response_frames_fail_typed(outcome in outcome(), cut_seed in any::<u64>()) {
        let frame = encode_response_frame(1, &outcome);
        let payload = &frame[4..];
        let cut = (cut_seed as usize) % payload.len();
        prop_assert!(
            decode_response_frame(&payload[..cut]).is_err(),
            "cut {} must be rejected", cut
        );
    }

    /// Any announced length above the cap is rejected before buffering.
    #[test]
    fn oversized_lengths_are_rejected(extra in 1usize..1_000_000) {
        prop_assert_eq!(
            check_frame_len(MAX_FRAME_BYTES + extra, MAX_FRAME_BYTES),
            Err(CodecError::Oversized { len: MAX_FRAME_BYTES + extra, max: MAX_FRAME_BYTES })
        );
    }

    /// Flipping the first body byte to an invalid tag is caught.
    #[test]
    fn corrupt_body_tags_fail_typed(body in request_body()) {
        let mut frame = encode_request_frame(1, &body);
        frame[12] = 0xEE; // first body byte: no such tag
        let (_, decoded) = decode_request_frame(&frame[4..]).unwrap();
        prop_assert!(matches!(decoded, Err(CodecError::Malformed { .. })));
    }
}
