//! Protocol v3's length-prefixed binary codec and the connect-time
//! handshake that negotiates it.
//!
//! The JSON line protocol ([`crate::protocol`]) stays the debuggable,
//! `netcat`-able encoding every old client speaks.  The binary codec is the
//! fast path a new client negotiates at connect time:
//!
//! ```text
//! client ──► "TPLR" ┃ version u32 LE ┃ codec u8          (9-byte hello)
//! client ◄── "TPLR" ┃ version u32 LE ┃ codec u8 | 0xFF   (9-byte ack)
//! ```
//!
//! A connection whose first bytes are *not* the magic is a plain JSON-lines
//! session — no handshake, no version gate beyond the per-envelope `version`
//! field.  A binary connection checks the version exactly once, in the
//! handshake, so binary envelopes do not repeat it per message.
//!
//! After a successful binary handshake, each direction carries
//! length-prefixed frames whose header exposes the correlation id *before*
//! the body is decoded — a shedding server can answer an overload without
//! parsing the request:
//!
//! ```text
//! request:  ┃ len u32 LE ┃ id u64 LE ┃ RequestBody value ┃
//! response: ┃ len u32 LE ┃ id u64 LE ┃ status u8 ┃ body value ┃
//! ```
//!
//! `len` counts everything after itself; `status` is 0 for success
//! (`ResponseBody` follows) and 1 for failure (`ApiError` follows).  Values
//! are the [`serde::Value`] data model in a tagged, varint-compressed form —
//! no string escaping, no float formatting, no re-tokenizing on decode.
//!
//! Framing violations are *typed* ([`CodecError`]): truncated buffers,
//! frames above the negotiated size cap, unknown tags, handshake mismatches.
//! The wire-visible projection ([`CodecError::to_api_error`]) keeps the v3
//! taxonomy — no new `ApiError` variants, so mixed-generation JSON peers are
//! unaffected by this codec's existence.

use crate::error::ApiError;
use crate::protocol::{RequestBody, ResponseBody, PROTOCOL_VERSION};
use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// First bytes of a binary-capable client's hello.  Chosen so it can never
/// be confused with a JSON line (which starts with `{` or whitespace).
pub const HANDSHAKE_MAGIC: [u8; 4] = *b"TPLR";

/// Size of hello and ack: magic + version + codec byte.
pub const HANDSHAKE_LEN: usize = 9;

/// The ack's codec byte when the server refuses the hello (version or codec
/// it does not speak).  The connection is closed after the ack.
pub const HANDSHAKE_REJECTED: u8 = 0xFF;

/// Default upper bound on one frame's `len` field (16 MiB).  A frame above
/// the cap is rejected without buffering its body.
pub const MAX_FRAME_BYTES: usize = 16 * 1024 * 1024;

/// Decode-time recursion bound: a hostile frame cannot overflow the stack
/// with deeply-nested sequences.
const MAX_DEPTH: usize = 96;

/// Eager pre-allocation clamp for decoded collections.  A claimed count is
/// only bounded by remaining *bytes* (≥ 1 per element), but each decoded
/// element costs tens of bytes of memory and every nesting level's claim is
/// checked independently — without this clamp a single frame of nested
/// sequence headers could demand `MAX_DEPTH` multiples of huge reservations
/// before ever hitting `Truncated`.  Honest collections past the clamp just
/// grow amortized.
const PREALLOC_ELEMENTS: usize = 4096;

/// The two encodings a connection can speak after the handshake.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireCodec {
    /// Newline-delimited JSON protocol lines (the v3 line protocol).
    Json,
    /// Length-prefixed binary frames.
    Binary,
}

impl WireCodec {
    fn to_byte(self) -> u8 {
        match self {
            WireCodec::Json => 0,
            WireCodec::Binary => 1,
        }
    }

    fn from_byte(byte: u8) -> Result<Self, CodecError> {
        match byte {
            0 => Ok(WireCodec::Json),
            1 => Ok(WireCodec::Binary),
            other => Err(CodecError::UnknownCodec { byte: other }),
        }
    }
}

/// Every way the binary codec can fail, as data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer ended before the announced structure did.
    Truncated {
        /// Bytes the decoder needed next.
        needed: usize,
        /// Bytes it had.
        have: usize,
    },
    /// A frame announced a length above the negotiated cap.
    Oversized {
        /// The announced frame length.
        len: usize,
        /// The cap it violated.
        max: usize,
    },
    /// A frame too short to carry its own header.
    Runt {
        /// The announced frame length.
        len: usize,
        /// The minimum a frame of this kind needs.
        min: usize,
    },
    /// The hello/ack did not start with [`HANDSHAKE_MAGIC`].
    BadMagic {
        /// The four bytes found instead.
        found: [u8; 4],
    },
    /// Handshake protocol-generation mismatch.
    Version {
        /// The generation this build speaks.
        expected: u32,
        /// The generation the peer announced.
        found: u32,
    },
    /// The hello/ack named a codec this build does not implement.
    UnknownCodec {
        /// The codec byte found.
        byte: u8,
    },
    /// The server's ack refused the connection.
    Rejected,
    /// A structurally invalid value body (unknown tag, bad UTF-8, trailing
    /// bytes, nesting past the depth bound).
    Malformed {
        /// The decoder's diagnostic.
        detail: String,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated { needed, have } => {
                write!(
                    f,
                    "truncated frame: needed {needed} more bytes, have {have}"
                )
            }
            CodecError::Oversized { len, max } => {
                write!(f, "frame of {len} bytes exceeds the {max}-byte cap")
            }
            CodecError::Runt { len, min } => {
                write!(
                    f,
                    "runt frame: {len} bytes cannot carry a {min}-byte header"
                )
            }
            CodecError::BadMagic { found } => {
                write!(f, "handshake does not start with TPLR magic: {found:?}")
            }
            CodecError::Version { expected, found } => write!(
                f,
                "handshake version mismatch: peer speaks v{found}, this build speaks v{expected}"
            ),
            CodecError::UnknownCodec { byte } => write!(f, "unknown codec byte {byte:#04x}"),
            CodecError::Rejected => write!(f, "server refused the handshake"),
            CodecError::Malformed { detail } => write!(f, "malformed binary value: {detail}"),
        }
    }
}

impl std::error::Error for CodecError {}

impl CodecError {
    /// Project onto the wire taxonomy a v3 client already understands.
    pub fn to_api_error(&self) -> ApiError {
        match self {
            CodecError::Version { expected, found } => ApiError::VersionMismatch {
                expected: *expected,
                found: *found,
            },
            other => ApiError::MalformedEnvelope {
                detail: other.to_string(),
            },
        }
    }
}

// ---------------------------------------------------------------------------
// Handshake
// ---------------------------------------------------------------------------

/// The client's 9-byte hello for `codec` at this build's protocol version.
pub fn encode_hello(codec: WireCodec) -> [u8; HANDSHAKE_LEN] {
    let mut hello = [0u8; HANDSHAKE_LEN];
    hello[..4].copy_from_slice(&HANDSHAKE_MAGIC);
    hello[4..8].copy_from_slice(&PROTOCOL_VERSION.to_le_bytes());
    hello[8] = codec.to_byte();
    hello
}

/// Parse a client hello.  Returns the codec the client asked for; the
/// version gate fires here, once per connection.
pub fn decode_hello(hello: &[u8; HANDSHAKE_LEN]) -> Result<WireCodec, CodecError> {
    if hello[..4] != HANDSHAKE_MAGIC {
        let mut found = [0u8; 4];
        found.copy_from_slice(&hello[..4]);
        return Err(CodecError::BadMagic { found });
    }
    let version = u32::from_le_bytes(hello[4..8].try_into().expect("four bytes"));
    if version != PROTOCOL_VERSION {
        return Err(CodecError::Version {
            expected: PROTOCOL_VERSION,
            found: version,
        });
    }
    WireCodec::from_byte(hello[8])
}

/// The server's 9-byte ack: the accepted codec, or a rejection byte (the
/// ack still carries the server's version so a mismatched client learns
/// what to speak).
pub fn encode_ack(accepted: Option<WireCodec>) -> [u8; HANDSHAKE_LEN] {
    let mut ack = [0u8; HANDSHAKE_LEN];
    ack[..4].copy_from_slice(&HANDSHAKE_MAGIC);
    ack[4..8].copy_from_slice(&PROTOCOL_VERSION.to_le_bytes());
    ack[8] = accepted.map_or(HANDSHAKE_REJECTED, WireCodec::to_byte);
    ack
}

/// Parse a server ack from the client side.
pub fn decode_ack(ack: &[u8; HANDSHAKE_LEN]) -> Result<WireCodec, CodecError> {
    if ack[..4] != HANDSHAKE_MAGIC {
        let mut found = [0u8; 4];
        found.copy_from_slice(&ack[..4]);
        return Err(CodecError::BadMagic { found });
    }
    let version = u32::from_le_bytes(ack[4..8].try_into().expect("four bytes"));
    if ack[8] == HANDSHAKE_REJECTED {
        // Prefer the version diagnosis when the server speaks another
        // generation — that is what the client must fix.
        if version != PROTOCOL_VERSION {
            return Err(CodecError::Version {
                expected: PROTOCOL_VERSION,
                found: version,
            });
        }
        return Err(CodecError::Rejected);
    }
    if version != PROTOCOL_VERSION {
        return Err(CodecError::Version {
            expected: PROTOCOL_VERSION,
            found: version,
        });
    }
    WireCodec::from_byte(ack[8])
}

// ---------------------------------------------------------------------------
// Value codec
// ---------------------------------------------------------------------------

const TAG_NULL: u8 = 0x00;
const TAG_FALSE: u8 = 0x01;
const TAG_TRUE: u8 = 0x02;
const TAG_I64: u8 = 0x03;
const TAG_U64: u8 = 0x04;
const TAG_F64: u8 = 0x05;
const TAG_STR: u8 = 0x06;
const TAG_SEQ: u8 = 0x07;
const TAG_MAP: u8 = 0x08;

fn put_varint(mut n: u64, out: &mut Vec<u8>) {
    loop {
        let byte = (n & 0x7F) as u8;
        n >>= 7;
        if n == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn zigzag(n: i64) -> u64 {
    ((n << 1) ^ (n >> 63)) as u64
}

fn unzigzag(n: u64) -> i64 {
    ((n >> 1) as i64) ^ -((n & 1) as i64)
}

/// Append one value to `out` in tagged binary form.
pub fn encode_value(value: &Value, out: &mut Vec<u8>) {
    match value {
        Value::Null => out.push(TAG_NULL),
        Value::Bool(false) => out.push(TAG_FALSE),
        Value::Bool(true) => out.push(TAG_TRUE),
        Value::I64(n) => {
            out.push(TAG_I64);
            put_varint(zigzag(*n), out);
        }
        Value::U64(n) => {
            out.push(TAG_U64);
            put_varint(*n, out);
        }
        Value::F64(n) => {
            out.push(TAG_F64);
            out.extend_from_slice(&n.to_le_bytes());
        }
        Value::Str(s) => {
            out.push(TAG_STR);
            put_varint(s.len() as u64, out);
            out.extend_from_slice(s.as_bytes());
        }
        Value::Seq(items) => {
            out.push(TAG_SEQ);
            put_varint(items.len() as u64, out);
            for item in items {
                encode_value(item, out);
            }
        }
        Value::Map(entries) => {
            out.push(TAG_MAP);
            put_varint(entries.len() as u64, out);
            for (key, item) in entries {
                put_varint(key.len() as u64, out);
                out.extend_from_slice(key.as_bytes());
                encode_value(item, out);
            }
        }
    }
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        let have = self.bytes.len() - self.pos;
        if have < n {
            return Err(CodecError::Truncated { needed: n, have });
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn byte(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    fn varint(&mut self) -> Result<u64, CodecError> {
        let mut n = 0u64;
        let mut shift = 0u32;
        loop {
            let byte = self.byte()?;
            if shift >= 64 || (shift == 63 && byte > 1) {
                return Err(CodecError::Malformed {
                    detail: "varint overflows u64".to_string(),
                });
            }
            n |= u64::from(byte & 0x7F) << shift;
            if byte & 0x80 == 0 {
                return Ok(n);
            }
            shift += 7;
        }
    }

    /// A declared collection length, sanity-bounded by the bytes that could
    /// possibly encode that many elements (≥ 1 byte each).  This bounds the
    /// *count*, not the eager pre-allocation: decoded in-memory elements are
    /// far larger than their 1-byte minimum encoding, and nested collections
    /// each pass this check independently while their parents' buffers stay
    /// live — so `with_capacity` callers must additionally clamp to
    /// [`PREALLOC_ELEMENTS`].
    fn length(&mut self) -> Result<usize, CodecError> {
        let n = self.varint()?;
        let remaining = (self.bytes.len() - self.pos) as u64;
        if n > remaining {
            return Err(CodecError::Truncated {
                needed: n as usize,
                have: remaining as usize,
            });
        }
        Ok(n as usize)
    }

    fn utf8(&mut self, len: usize) -> Result<&'a str, CodecError> {
        std::str::from_utf8(self.take(len)?).map_err(|e| CodecError::Malformed {
            detail: format!("invalid utf-8 in string: {e}"),
        })
    }

    fn value(&mut self, depth: usize) -> Result<Value, CodecError> {
        if depth > MAX_DEPTH {
            return Err(CodecError::Malformed {
                detail: format!("nesting exceeds depth bound {MAX_DEPTH}"),
            });
        }
        match self.byte()? {
            TAG_NULL => Ok(Value::Null),
            TAG_FALSE => Ok(Value::Bool(false)),
            TAG_TRUE => Ok(Value::Bool(true)),
            TAG_I64 => Ok(Value::I64(unzigzag(self.varint()?))),
            TAG_U64 => Ok(Value::U64(self.varint()?)),
            TAG_F64 => Ok(Value::F64(f64::from_le_bytes(
                self.take(8)?.try_into().expect("eight bytes"),
            ))),
            TAG_STR => {
                let len = self.length()?;
                Ok(Value::Str(self.utf8(len)?.to_string()))
            }
            TAG_SEQ => {
                let count = self.length()?;
                let mut items = Vec::with_capacity(count.min(PREALLOC_ELEMENTS));
                for _ in 0..count {
                    items.push(self.value(depth + 1)?);
                }
                Ok(Value::Seq(items))
            }
            TAG_MAP => {
                let count = self.length()?;
                let mut entries = Vec::with_capacity(count.min(PREALLOC_ELEMENTS));
                for _ in 0..count {
                    let key_len = self.length()?;
                    let key = self.utf8(key_len)?.to_string();
                    entries.push((key, self.value(depth + 1)?));
                }
                Ok(Value::Map(entries))
            }
            tag => Err(CodecError::Malformed {
                detail: format!("unknown value tag {tag:#04x}"),
            }),
        }
    }
}

/// Decode exactly one value from the whole buffer; trailing bytes are an
/// error (a frame carries one body, nothing else).
pub fn decode_value(bytes: &[u8]) -> Result<Value, CodecError> {
    let mut cursor = Cursor { bytes, pos: 0 };
    let value = cursor.value(0)?;
    if cursor.pos != bytes.len() {
        return Err(CodecError::Malformed {
            detail: format!(
                "{} trailing bytes after the value",
                bytes.len() - cursor.pos
            ),
        });
    }
    Ok(value)
}

// ---------------------------------------------------------------------------
// Frames
// ---------------------------------------------------------------------------

/// Bytes of a request frame's fixed header after the length prefix.
const REQUEST_HEADER: usize = 8;
/// Bytes of a response frame's fixed header after the length prefix: id +
/// status.
const RESPONSE_HEADER: usize = 9;

const STATUS_OK: u8 = 0;
const STATUS_ERR: u8 = 1;

/// Encode one request as a complete frame (length prefix included).
pub fn encode_request_frame(id: u64, body: &RequestBody) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    out.extend_from_slice(&[0; 4]);
    out.extend_from_slice(&id.to_le_bytes());
    encode_value(&body.to_value(), &mut out);
    let len = (out.len() - 4) as u32;
    out[..4].copy_from_slice(&len.to_le_bytes());
    out
}

/// Decode a request frame's payload (everything after the length prefix).
/// The correlation id decodes even when the body does not, so the error
/// response can still be matched to its request.
pub fn decode_request_frame(
    payload: &[u8],
) -> Result<(u64, Result<RequestBody, CodecError>), CodecError> {
    if payload.len() < REQUEST_HEADER {
        return Err(CodecError::Runt {
            len: payload.len(),
            min: REQUEST_HEADER,
        });
    }
    let id = u64::from_le_bytes(payload[..8].try_into().expect("eight bytes"));
    let body = decode_value(&payload[REQUEST_HEADER..]).and_then(|value| {
        RequestBody::from_value(&value).map_err(|e| CodecError::Malformed {
            detail: e.to_string(),
        })
    });
    Ok((id, body))
}

/// Read just the correlation id off a request frame's payload — what a
/// shedding server needs to answer an overload without decoding the body.
pub fn peek_request_id(payload: &[u8]) -> Option<u64> {
    payload
        .get(..8)
        .map(|bytes| u64::from_le_bytes(bytes.try_into().expect("eight bytes")))
}

/// Encode one response as a complete frame (length prefix included).
pub fn encode_response_frame(id: u64, outcome: &Result<ResponseBody, ApiError>) -> Vec<u8> {
    let mut out = Vec::with_capacity(128);
    out.extend_from_slice(&[0; 4]);
    out.extend_from_slice(&id.to_le_bytes());
    match outcome {
        Ok(body) => {
            out.push(STATUS_OK);
            encode_value(&body.to_value(), &mut out);
        }
        Err(err) => {
            out.push(STATUS_ERR);
            encode_value(&err.to_value(), &mut out);
        }
    }
    let len = (out.len() - 4) as u32;
    out[..4].copy_from_slice(&len.to_le_bytes());
    out
}

/// Decode a response frame's payload (everything after the length prefix).
pub fn decode_response_frame(
    payload: &[u8],
) -> Result<(u64, Result<ResponseBody, ApiError>), CodecError> {
    if payload.len() < RESPONSE_HEADER {
        return Err(CodecError::Runt {
            len: payload.len(),
            min: RESPONSE_HEADER,
        });
    }
    let id = u64::from_le_bytes(payload[..8].try_into().expect("eight bytes"));
    let body = &payload[RESPONSE_HEADER..];
    let malformed = |e: serde::Error| CodecError::Malformed {
        detail: e.to_string(),
    };
    let outcome = match payload[8] {
        STATUS_OK => Ok(ResponseBody::from_value(&decode_value(body)?).map_err(malformed)?),
        STATUS_ERR => Err(ApiError::from_value(&decode_value(body)?).map_err(malformed)?),
        status => {
            return Err(CodecError::Malformed {
                detail: format!("unknown response status byte {status:#04x}"),
            })
        }
    };
    Ok((id, outcome))
}

/// Validate a frame's announced length against the cap before buffering its
/// body.
pub fn check_frame_len(len: usize, max: usize) -> Result<(), CodecError> {
    if len > max {
        return Err(CodecError::Oversized { len, max });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::TranslateRequest;
    use templar_core::{Keyword, KeywordMetadata};

    fn sample_request() -> RequestBody {
        RequestBody::Translate(
            TranslateRequest::new(
                "mas",
                "papers after 2000",
                vec![(Keyword::new("papers"), KeywordMetadata::select())],
            )
            .with_lambda(0.4)
            .with_trace(),
        )
    }

    #[test]
    fn varints_round_trip_across_magnitudes() {
        for n in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut out = Vec::new();
            put_varint(n, &mut out);
            let mut cursor = Cursor {
                bytes: &out,
                pos: 0,
            };
            assert_eq!(cursor.varint().unwrap(), n);
            assert_eq!(cursor.pos, out.len());
        }
    }

    #[test]
    fn zigzag_round_trips_extremes() {
        for n in [0i64, -1, 1, i64::MIN, i64::MAX, -300, 300] {
            assert_eq!(unzigzag(zigzag(n)), n);
        }
    }

    #[test]
    fn values_round_trip() {
        let value = Value::Map(vec![
            ("null".into(), Value::Null),
            ("b".into(), Value::Bool(true)),
            ("i".into(), Value::I64(-42)),
            ("u".into(), Value::U64(u64::MAX)),
            ("f".into(), Value::F64(0.25)),
            ("s".into(), Value::Str("snowman ☃".into())),
            (
                "seq".into(),
                Value::Seq(vec![Value::I64(1), Value::Str("two".into())]),
            ),
        ]);
        let mut bytes = Vec::new();
        encode_value(&value, &mut bytes);
        assert_eq!(decode_value(&bytes).unwrap(), value);
    }

    #[test]
    fn request_frames_round_trip() {
        let body = sample_request();
        let frame = encode_request_frame(7, &body);
        let len = u32::from_le_bytes(frame[..4].try_into().unwrap()) as usize;
        assert_eq!(len, frame.len() - 4);
        let (id, decoded) = decode_request_frame(&frame[4..]).unwrap();
        assert_eq!(id, 7);
        assert_eq!(decoded.unwrap(), body);
        assert_eq!(peek_request_id(&frame[4..]), Some(7));
    }

    #[test]
    fn response_frames_round_trip_both_arms() {
        let ok: Result<ResponseBody, ApiError> = Ok(ResponseBody::SqlAccepted);
        let frame = encode_response_frame(9, &ok);
        let (id, outcome) = decode_response_frame(&frame[4..]).unwrap();
        assert_eq!((id, outcome), (9, ok));

        let err: Result<ResponseBody, ApiError> = Err(ApiError::Backpressure);
        let frame = encode_response_frame(10, &err);
        let (id, outcome) = decode_response_frame(&frame[4..]).unwrap();
        assert_eq!(id, 10);
        assert_eq!(outcome, Err(ApiError::Backpressure));
    }

    #[test]
    fn truncation_is_typed_at_every_boundary() {
        let frame = encode_request_frame(3, &sample_request());
        let payload = &frame[4..];
        for cut in REQUEST_HEADER + 1..payload.len() {
            let (_, body) = decode_request_frame(&payload[..cut]).unwrap();
            match body {
                Err(CodecError::Truncated { .. }) | Err(CodecError::Malformed { .. }) => {}
                other => panic!("cut at {cut}: expected typed failure, got {other:?}"),
            }
        }
        // Below the header the id itself is unrecoverable.
        assert!(matches!(
            decode_request_frame(&payload[..4]),
            Err(CodecError::Runt { len: 4, min: 8 })
        ));
    }

    #[test]
    fn oversized_frames_are_rejected_by_length_alone() {
        assert_eq!(
            check_frame_len(MAX_FRAME_BYTES + 1, MAX_FRAME_BYTES),
            Err(CodecError::Oversized {
                len: MAX_FRAME_BYTES + 1,
                max: MAX_FRAME_BYTES
            })
        );
        assert_eq!(check_frame_len(MAX_FRAME_BYTES, MAX_FRAME_BYTES), Ok(()));
    }

    #[test]
    fn hostile_collection_counts_cannot_preallocate() {
        // A seq claiming u64::MAX elements in a 3-byte body must fail as
        // truncated, not attempt a huge Vec::with_capacity.
        let mut bytes = vec![TAG_SEQ];
        put_varint(u64::MAX, &mut bytes);
        assert!(matches!(
            decode_value(&bytes),
            Err(CodecError::Truncated { .. })
        ));
    }

    #[test]
    fn nested_hostile_counts_cannot_multiply_preallocation() {
        // Every nesting level claims a count that individually passes the
        // remaining-bytes bound (~500k elements in a 1 MiB body), so the
        // per-level byte check alone would let MAX_DEPTH live parent Vecs
        // each reserve hundreds of megabytes before the depth bound or
        // Truncated is reached.  With capped pre-allocation this decodes
        // (and fails) in microseconds with trivial memory.
        let mut bytes = Vec::new();
        while bytes.len() < 1024 * 1024 {
            bytes.push(TAG_SEQ);
            put_varint(500_000, &mut bytes);
        }
        assert!(matches!(
            decode_value(&bytes),
            Err(CodecError::Malformed { .. }) // depth bound trips first
        ));
    }

    #[test]
    fn unknown_tags_and_trailing_bytes_are_malformed() {
        assert!(matches!(
            decode_value(&[0x7F]),
            Err(CodecError::Malformed { .. })
        ));
        assert!(matches!(
            decode_value(&[TAG_NULL, TAG_NULL]),
            Err(CodecError::Malformed { .. })
        ));
    }

    #[test]
    fn depth_bound_rejects_hostile_nesting() {
        let mut bytes = Vec::new();
        for _ in 0..(MAX_DEPTH + 2) {
            bytes.push(TAG_SEQ);
            bytes.push(1); // one element each
        }
        bytes.push(TAG_NULL);
        match decode_value(&bytes) {
            Err(CodecError::Malformed { detail }) => assert!(detail.contains("depth")),
            other => panic!("expected depth rejection, got {other:?}"),
        }
    }

    #[test]
    fn handshake_round_trips_and_gates_versions() {
        let hello = encode_hello(WireCodec::Binary);
        assert_eq!(decode_hello(&hello).unwrap(), WireCodec::Binary);
        let hello = encode_hello(WireCodec::Json);
        assert_eq!(decode_hello(&hello).unwrap(), WireCodec::Json);

        let mut old = encode_hello(WireCodec::Binary);
        old[4..8].copy_from_slice(&2u32.to_le_bytes());
        assert_eq!(
            decode_hello(&old),
            Err(CodecError::Version {
                expected: PROTOCOL_VERSION,
                found: 2
            })
        );

        let mut garbage = encode_hello(WireCodec::Binary);
        garbage[..4].copy_from_slice(b"HTTP");
        assert_eq!(
            decode_hello(&garbage),
            Err(CodecError::BadMagic { found: *b"HTTP" })
        );
    }

    #[test]
    fn acks_carry_acceptance_and_rejection() {
        let ack = encode_ack(Some(WireCodec::Binary));
        assert_eq!(decode_ack(&ack).unwrap(), WireCodec::Binary);
        let ack = encode_ack(None);
        assert_eq!(decode_ack(&ack), Err(CodecError::Rejected));
        // A rejecting ack from another generation diagnoses the version.
        let mut ack = encode_ack(None);
        ack[4..8].copy_from_slice(&9u32.to_le_bytes());
        assert_eq!(
            decode_ack(&ack),
            Err(CodecError::Version {
                expected: PROTOCOL_VERSION,
                found: 9
            })
        );
    }

    #[test]
    fn codec_errors_project_onto_the_v3_taxonomy() {
        assert_eq!(
            CodecError::Version {
                expected: 3,
                found: 2
            }
            .to_api_error(),
            ApiError::VersionMismatch {
                expected: 3,
                found: 2
            }
        );
        match (CodecError::Oversized { len: 99, max: 10 }).to_api_error() {
            ApiError::MalformedEnvelope { detail } => assert!(detail.contains("99")),
            other => panic!("expected MalformedEnvelope, got {other:?}"),
        }
    }

    #[test]
    fn binary_encoding_is_denser_than_json_for_real_bodies() {
        let body = sample_request();
        let frame = encode_request_frame(1, &body);
        let json = crate::protocol::encode_request(&crate::protocol::RequestEnvelope::new(1, body));
        assert!(
            frame.len() < json.len(),
            "binary frame ({} B) should undercut the JSON line ({} B)",
            frame.len(),
            json.len()
        );
    }
}
