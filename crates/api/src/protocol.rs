//! The JSON line protocol.
//!
//! One request or response per line, each wrapped in an envelope that
//! carries the protocol version and a client-chosen correlation id:
//!
//! ```text
//! {"version": 5, "id": 7, "body": {"Translate": {...}}}     → request
//! {"version": 5, "id": 7, "ok": {...}, "err": null}          → response
//! ```
//!
//! The version field is checked *before* the body is decoded: an envelope
//! from a different protocol generation is rejected with
//! [`ApiError::VersionMismatch`] without attempting to interpret its body.
//! Anything that fails to parse at all is [`ApiError::MalformedEnvelope`].

use crate::error::ApiError;
use crate::metrics::{HealthReport, MetricsReport, SlowQueryReport};
use crate::request::TranslateRequest;
use crate::response::TranslateResponse;
use serde::{Deserialize, Serialize, Value};

/// The protocol generation this build speaks.
///
/// v5 (degraded serving): the `Health` operation was added (answered even
/// under admission overload, like the other observability reads) with its
/// `HealthReport` payload; `ApiError` gained the `Degraded` variant —
/// returned for `SubmitSql`/`Feedback` when the tenant's durable journal
/// is failing and the service is read-only; and `MetricsReport` gained the
/// health/durability fields (`health_state`, `degraded_entries_total`,
/// `journal_retries_total`, `journal_heals_total`, `wal_last_errno`).
///
/// v4 (translation cache): `TranslateRequest` gained its `bypass_cache`
/// flag (force a recompute past the server's epoch-keyed translation
/// cache — correctness tooling's escape hatch), `TraceReport` and
/// `SlowQueryReport` gained the `cache_hit` marker so operators never
/// chase phantom latencies on cached answers, and `MetricsReport` gained
/// the translation-cache counters (hits / misses / evictions /
/// invalidations / entries) plus the word- and phrase-memo hit/miss
/// counters surfaced from the similarity model.
///
/// v3 (observability): `TranslateRequest` gained its `trace` flag and
/// `TranslateResponse` the matching optional per-stage breakdown;
/// `MetricsReport` gained the latency-histogram fields (`translate_sum_us`
/// / `translate_buckets` / `stage_latencies`); and the `SlowQueries` /
/// `Prometheus` operations were added.  As with v2 (search counters,
/// `search_budget_exhausted` explanations), the new fields are required on
/// decode, so mixed-generation peers are rejected by the version check
/// instead of failing mid-body.
pub const PROTOCOL_VERSION: u32 = 5;

/// Operations a client can request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RequestBody {
    /// Translate one NLQ parse against a tenant.
    Translate(TranslateRequest),
    /// Feed one answered query's SQL back into a tenant's log.
    SubmitSql {
        /// The tenant whose log grows.
        tenant: String,
        /// The SQL text to ingest.
        sql: String,
    },
    /// Close the learning loop: the client *accepted* this SQL (ran it, or
    /// a user approved the translation).  Rides the same durable ingest
    /// path as `SubmitSql` — journaled before it is applied on a durable
    /// tenant — and is counted separately (`feedback_accepted`), so the
    /// loop's close rate is observable.
    Feedback {
        /// The tenant whose log learns from the acceptance.
        tenant: String,
        /// The accepted SQL text.
        sql: String,
    },
    /// Fetch a tenant's serving metrics (latency, ingestion, durability and
    /// columnar data-plane gauges).
    Metrics {
        /// The tenant whose metrics are requested.
        tenant: String,
    },
    /// Fetch a tenant's captured slow queries: the slowest translations
    /// served so far, each with its per-stage latency breakdown.
    SlowQueries {
        /// The tenant whose slow-query ring is read.
        tenant: String,
    },
    /// Fetch metrics in Prometheus text exposition format — one tenant, or
    /// every registered tenant assembled into a single exposition.
    Prometheus {
        /// The tenant to expose, or `None` for all tenants.
        tenant: Option<String>,
    },
    /// Fetch a tenant's write-availability state (healthy vs degraded
    /// read-only).  Exempt from admission control so the question "is this
    /// tenant taking writes?" is answerable during an overload.
    Health {
        /// The tenant whose health is requested.
        tenant: String,
    },
}

impl RequestBody {
    /// The tenant this operation targets, when it names exactly one.
    pub fn tenant(&self) -> Option<&str> {
        match self {
            RequestBody::Translate(request) => Some(&request.tenant),
            RequestBody::SubmitSql { tenant, .. }
            | RequestBody::Feedback { tenant, .. }
            | RequestBody::Metrics { tenant }
            | RequestBody::SlowQueries { tenant }
            | RequestBody::Health { tenant } => Some(tenant),
            RequestBody::Prometheus { tenant } => tenant.as_deref(),
        }
    }

    /// Whether the operation consumes tenant work capacity and therefore
    /// passes through admission control.  Observability reads (metrics,
    /// slow queries, Prometheus scrapes) are exempt: an operator must be
    /// able to see an overloaded tenant's counters *during* the overload.
    pub fn is_admission_controlled(&self) -> bool {
        matches!(
            self,
            RequestBody::Translate(_)
                | RequestBody::SubmitSql { .. }
                | RequestBody::Feedback { .. }
        )
    }
}

/// Success payloads, mirroring [`RequestBody`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ResponseBody {
    /// The ranked, explained translations.
    Translated(TranslateResponse),
    /// The SQL was accepted into the tenant's ingestion queue.
    SqlAccepted,
    /// The feedback was accepted into the tenant's ingestion queue.
    FeedbackAccepted,
    /// The tenant's point-in-time metrics (boxed: the report is an order of
    /// magnitude larger than the other variants, and every response would
    /// otherwise pay its stack size).
    Metrics(Box<MetricsReport>),
    /// The tenant's captured slow queries, slowest first.
    SlowQueries(Vec<SlowQueryReport>),
    /// A Prometheus text-format exposition of the requested tenants.
    Prometheus(String),
    /// The tenant's write-availability state.
    Health(HealthReport),
}

/// A versioned request envelope.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RequestEnvelope {
    /// Protocol version ([`PROTOCOL_VERSION`]).
    pub version: u32,
    /// Client-chosen correlation id, echoed in the response.
    pub id: u64,
    /// The requested operation.
    pub body: RequestBody,
}

impl RequestEnvelope {
    /// Wrap a body at the current protocol version.
    pub fn new(id: u64, body: RequestBody) -> Self {
        RequestEnvelope {
            version: PROTOCOL_VERSION,
            id,
            body,
        }
    }
}

/// A versioned response envelope.  Exactly one of `ok` / `err` is set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResponseEnvelope {
    /// Protocol version ([`PROTOCOL_VERSION`]).
    pub version: u32,
    /// The correlation id of the request this responds to (0 when the
    /// request was too malformed to carry one).
    pub id: u64,
    /// The success payload.
    pub ok: Option<ResponseBody>,
    /// The failure payload.
    pub err: Option<ApiError>,
}

impl ResponseEnvelope {
    /// A success response.
    pub fn success(id: u64, body: ResponseBody) -> Self {
        ResponseEnvelope {
            version: PROTOCOL_VERSION,
            id,
            ok: Some(body),
            err: None,
        }
    }

    /// A failure response.
    pub fn failure(id: u64, err: ApiError) -> Self {
        ResponseEnvelope {
            version: PROTOCOL_VERSION,
            id,
            ok: None,
            err: Some(err),
        }
    }

    /// Collapse the envelope into a `Result`.
    pub fn into_result(self) -> Result<ResponseBody, ApiError> {
        match (self.ok, self.err) {
            (Some(body), None) => Ok(body),
            (None, Some(err)) => Err(err),
            _ => Err(ApiError::MalformedEnvelope {
                detail: "response must set exactly one of ok/err".to_string(),
            }),
        }
    }
}

/// Serialize a request envelope to one protocol line (no trailing newline).
pub fn encode_request(envelope: &RequestEnvelope) -> String {
    serde_json::to_string(envelope).expect("request envelopes always serialize")
}

/// Serialize a response envelope to one protocol line (no trailing newline).
pub fn encode_response(envelope: &ResponseEnvelope) -> String {
    serde_json::to_string(envelope).expect("response envelopes always serialize")
}

/// Check an already-parsed envelope value's version field before decoding
/// the rest: mismatched generations are rejected without interpreting the
/// body, and the correlation id is recovered when present so the error
/// response can still be matched to its request.
fn check_version(value: &Value) -> Result<u64, (u64, ApiError)> {
    let entries = value.as_map().ok_or((
        0,
        ApiError::MalformedEnvelope {
            detail: "envelope must be a JSON object".to_string(),
        },
    ))?;
    let id = entries
        .iter()
        .find(|(k, _)| k == "id")
        .and_then(|(_, v)| v.as_u64())
        .unwrap_or(0);
    let version = entries
        .iter()
        .find(|(k, _)| k == "version")
        .and_then(|(_, v)| v.as_u64())
        .ok_or((
            id,
            ApiError::MalformedEnvelope {
                detail: "envelope is missing its version field".to_string(),
            },
        ))?;
    if version != u64::from(PROTOCOL_VERSION) {
        return Err((
            id,
            ApiError::VersionMismatch {
                expected: PROTOCOL_VERSION,
                found: u32::try_from(version).unwrap_or(u32::MAX),
            },
        ));
    }
    Ok(id)
}

/// Parse one request line.  Returns the typed envelope, or the error to send
/// back (which echoes the line's correlation id when it could be recovered).
pub fn decode_request(line: &str) -> Result<RequestEnvelope, (u64, ApiError)> {
    let value = serde_json::parse_value(line.trim()).map_err(|e| {
        (
            0,
            ApiError::MalformedEnvelope {
                detail: e.to_string(),
            },
        )
    })?;
    let id = check_version(&value)?;
    RequestEnvelope::from_value(&value).map_err(|e| {
        (
            id,
            ApiError::MalformedEnvelope {
                detail: e.to_string(),
            },
        )
    })
}

/// Parse one response line.
pub fn decode_response(line: &str) -> Result<ResponseEnvelope, ApiError> {
    let value = serde_json::parse_value(line.trim()).map_err(|e| ApiError::MalformedEnvelope {
        detail: e.to_string(),
    })?;
    check_version(&value).map_err(|(_, e)| e)?;
    ResponseEnvelope::from_value(&value).map_err(|e| ApiError::MalformedEnvelope {
        detail: e.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use templar_core::{Keyword, KeywordMetadata};

    fn translate_request() -> TranslateRequest {
        TranslateRequest::new(
            "mas",
            "papers after 2000",
            vec![(Keyword::new("papers"), KeywordMetadata::select())],
        )
        .with_lambda(0.4)
    }

    #[test]
    fn request_envelopes_round_trip() {
        let envelope = RequestEnvelope::new(42, RequestBody::Translate(translate_request()));
        let line = encode_request(&envelope);
        assert!(!line.contains('\n'), "a protocol line must be one line");
        let back = decode_request(&line).unwrap();
        assert_eq!(back, envelope);
    }

    #[test]
    fn submit_sql_round_trips() {
        let envelope = RequestEnvelope::new(
            7,
            RequestBody::SubmitSql {
                tenant: "yelp".into(),
                sql: "SELECT b.name FROM business b".into(),
            },
        );
        let back = decode_request(&encode_request(&envelope)).unwrap();
        assert_eq!(back, envelope);
    }

    #[test]
    fn feedback_round_trips() {
        let envelope = RequestEnvelope::new(
            8,
            RequestBody::Feedback {
                tenant: "mas".into(),
                sql: "SELECT p.title FROM publication p WHERE p.year > 2000".into(),
            },
        );
        let back = decode_request(&encode_request(&envelope)).unwrap();
        assert_eq!(back, envelope);
        let response = ResponseEnvelope::success(8, ResponseBody::FeedbackAccepted);
        assert_eq!(
            decode_response(&encode_response(&response)).unwrap(),
            response
        );
    }

    #[test]
    fn metrics_bodies_round_trip() {
        let request = RequestEnvelope::new(
            9,
            RequestBody::Metrics {
                tenant: "mas".into(),
            },
        );
        assert_eq!(decode_request(&encode_request(&request)).unwrap(), request);
        let report = MetricsReport {
            translations_served: 12,
            qfg_interned_fragments: 99,
            qfg_csr_edges: 41,
            log_skipped_statements: 1,
            ..MetricsReport::default()
        };
        let response = ResponseEnvelope::success(9, ResponseBody::Metrics(Box::new(report)));
        let line = encode_response(&response);
        assert_eq!(decode_response(&line).unwrap(), response);
    }

    #[test]
    fn version_mismatch_is_rejected_before_the_body_is_read() {
        // Body is garbage that would fail decoding — the version gate fires
        // first, so the client learns the real problem.
        let line = r#"{"version": 99, "id": 3, "body": {"Nonsense": 1}}"#;
        match decode_request(line) {
            Err((id, ApiError::VersionMismatch { expected, found })) => {
                assert_eq!(id, 3, "the correlation id must survive the rejection");
                assert_eq!(expected, PROTOCOL_VERSION);
                assert_eq!(found, 99);
            }
            other => panic!("expected VersionMismatch, got {other:?}"),
        }
    }

    #[test]
    fn slow_query_and_prometheus_bodies_round_trip() {
        let request = RequestEnvelope::new(
            10,
            RequestBody::SlowQueries {
                tenant: "mas".into(),
            },
        );
        assert_eq!(decode_request(&encode_request(&request)).unwrap(), request);
        for tenant in [None, Some("mas".to_string())] {
            let request = RequestEnvelope::new(11, RequestBody::Prometheus { tenant });
            assert_eq!(decode_request(&encode_request(&request)).unwrap(), request);
        }
        let response = ResponseEnvelope::success(
            11,
            ResponseBody::Prometheus("# TYPE templar_translations_total counter\n".into()),
        );
        assert_eq!(
            decode_response(&encode_response(&response)).unwrap(),
            response
        );
    }

    #[test]
    fn health_bodies_round_trip() {
        let request = RequestEnvelope::new(
            12,
            RequestBody::Health {
                tenant: "mas".into(),
            },
        );
        assert!(
            !request.body.is_admission_controlled(),
            "health must be answerable during an overload"
        );
        assert_eq!(decode_request(&encode_request(&request)).unwrap(), request);
        let response = ResponseEnvelope::success(
            12,
            ResponseBody::Health(HealthReport {
                state: "degraded".into(),
                health_state: 1,
                degraded_entries_total: 3,
                journal_retries_total: 7,
                journal_heals_total: 1,
                wal_io_errors: 2,
                wal_last_errno: 29, // ENOSPC (28) + 1
            }),
        );
        assert_eq!(
            decode_response(&encode_response(&response)).unwrap(),
            response
        );
        let failure = ResponseEnvelope::failure(13, ApiError::Degraded);
        assert_eq!(
            decode_response(&encode_response(&failure)).unwrap(),
            failure
        );
    }

    #[test]
    fn malformed_lines_recover_the_correlation_id_when_present() {
        let line = r#"{"version": 5, "id": 11, "body": {"Nonsense": 1}}"#;
        match decode_request(line) {
            Err((id, ApiError::MalformedEnvelope { .. })) => assert_eq!(id, 11),
            other => panic!("expected MalformedEnvelope with id, got {other:?}"),
        }
        assert!(matches!(
            decode_request("this is not json"),
            Err((0, ApiError::MalformedEnvelope { .. }))
        ));
    }

    #[test]
    fn response_envelopes_round_trip_both_arms() {
        let ok = ResponseEnvelope::success(5, ResponseBody::SqlAccepted);
        assert_eq!(decode_response(&encode_response(&ok)).unwrap(), ok);
        let err = ResponseEnvelope::failure(6, ApiError::Backpressure);
        let back = decode_response(&encode_response(&err)).unwrap();
        assert_eq!(back, err);
        assert_eq!(back.into_result(), Err(ApiError::Backpressure));
    }
}
