//! Translation requests.

use serde::{Deserialize, Serialize};
use templar_core::{Keyword, KeywordMetadata, TemplarConfig};

/// Per-request overrides of a tenant's Templar configuration.
///
/// Only the parameters that are safe to vary per request are exposed: the
/// λ-blend weight, whether join inference uses log-driven edge weights, and
/// how many candidates to return.  Structural parameters (obscurity, κ) stay
/// fixed with the tenant's snapshot — the QFG is built at one obscurity
/// level and cannot be reinterpreted per request.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RequestOverrides {
    /// Override `λ` (must lie in `[0, 1]`; validated server-side).
    pub lambda: Option<f64>,
    /// Override whether join inference uses log-driven edge weights.
    pub use_log_joins: Option<bool>,
    /// Return at most this many ranked candidates (must be ≥ 1).
    pub top_k: Option<usize>,
}

impl RequestOverrides {
    /// True when no override is set.
    pub fn is_empty(&self) -> bool {
        self.lambda.is_none() && self.use_log_joins.is_none() && self.top_k.is_none()
    }

    /// Apply the overrides to a tenant's base configuration.
    pub fn apply(&self, base: &TemplarConfig) -> TemplarConfig {
        let mut config = base.clone();
        if let Some(lambda) = self.lambda {
            config.lambda = lambda;
        }
        if let Some(use_log_joins) = self.use_log_joins {
            config.use_log_joins = use_log_joins;
        }
        config
    }

    /// Validation errors, as a human-readable reason (None when valid).
    pub fn validate(&self) -> Option<String> {
        if let Some(lambda) = self.lambda {
            if !(0.0..=1.0).contains(&lambda) || lambda.is_nan() {
                return Some(format!("lambda override {lambda} outside [0, 1]"));
            }
        }
        if let Some(0) = self.top_k {
            return Some("top_k override must be at least 1".to_string());
        }
        None
    }
}

/// A translation request: one NLQ parse, routed to one tenant.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TranslateRequest {
    /// The tenant (database) this request targets.
    pub tenant: String,
    /// The natural-language question (informational; keyword extraction is
    /// the host NLIDB's job, per Section III-E).
    pub nlq: String,
    /// Keywords with their parser metadata (the `M_k` tuples).
    pub keywords: Vec<(Keyword, KeywordMetadata)>,
    /// Per-request configuration overrides.
    pub overrides: RequestOverrides,
    /// When true, the response carries a per-stage latency breakdown of
    /// this request ([`TranslateResponse::trace`](
    /// crate::TranslateResponse::trace)).  The server traces every request
    /// for its own histograms either way; this flag only controls whether
    /// the breakdown is shipped back.
    pub trace: bool,
    /// When true, the server skips its epoch-keyed translation cache for
    /// this request — no lookup, no insert, no hit/miss accounting — and
    /// recomputes from the live snapshot.  The escape hatch for correctness
    /// tooling proving cached answers byte-identical to fresh ones.
    pub bypass_cache: bool,
}

impl TranslateRequest {
    /// A request with no overrides.
    pub fn new(
        tenant: impl Into<String>,
        nlq: impl Into<String>,
        keywords: Vec<(Keyword, KeywordMetadata)>,
    ) -> Self {
        TranslateRequest {
            tenant: tenant.into(),
            nlq: nlq.into(),
            keywords,
            overrides: RequestOverrides::default(),
            trace: false,
            bypass_cache: false,
        }
    }

    /// Request a per-stage latency breakdown in the response.
    pub fn with_trace(mut self) -> Self {
        self.trace = true;
        self
    }

    /// Skip the server's translation cache for this request.
    pub fn with_bypass_cache(mut self) -> Self {
        self.bypass_cache = true;
        self
    }

    /// Set a per-request λ override.
    pub fn with_lambda(mut self, lambda: f64) -> Self {
        self.overrides.lambda = Some(lambda);
        self
    }

    /// Set a per-request `use_log_joins` override.
    pub fn with_log_joins(mut self, on: bool) -> Self {
        self.overrides.use_log_joins = Some(on);
        self
    }

    /// Set a per-request top-k bound.
    pub fn with_top_k(mut self, top_k: usize) -> Self {
        self.overrides.top_k = Some(top_k);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use templar_core::Keyword;

    #[test]
    fn overrides_apply_onto_a_base_config() {
        let base = TemplarConfig::default();
        let overrides = RequestOverrides {
            lambda: Some(0.25),
            use_log_joins: Some(false),
            top_k: Some(3),
        };
        let applied = overrides.apply(&base);
        assert_eq!(applied.lambda, 0.25);
        assert!(!applied.use_log_joins);
        // Structural parameters are untouched.
        assert_eq!(applied.obscurity, base.obscurity);
        assert_eq!(applied.kappa, base.kappa);
    }

    #[test]
    fn invalid_overrides_are_reported() {
        assert!(RequestOverrides {
            lambda: Some(1.5),
            ..Default::default()
        }
        .validate()
        .is_some());
        assert!(RequestOverrides {
            top_k: Some(0),
            ..Default::default()
        }
        .validate()
        .is_some());
        assert!(RequestOverrides::default().validate().is_none());
    }

    #[test]
    fn requests_round_trip_through_serde() {
        let req = TranslateRequest::new(
            "mas",
            "papers after 2000",
            vec![(Keyword::new("papers"), KeywordMetadata::select())],
        )
        .with_lambda(0.5)
        .with_top_k(2)
        .with_trace()
        .with_bypass_cache();
        assert!(req.trace);
        assert!(req.bypass_cache);
        let back: TranslateRequest =
            serde_json::from_str(&serde_json::to_string(&req).unwrap()).unwrap();
        assert_eq!(back, req);
    }
}
