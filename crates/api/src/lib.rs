//! **templar-api**: the versioned, typed, explainable translation API.
//!
//! The paper's contract with host NLIDBs is exactly two library calls
//! (`MAPKEYWORDS`, `INFERJOINS`).  A production deployment serving many
//! databases needs a *request/response* boundary on top of them:
//!
//! * [`request::TranslateRequest`] — an NLQ parse plus the tenant it targets
//!   and per-request overrides for λ, `use_log_joins` and top-k,
//! * [`response::TranslateResponse`] — ranked SQL where every candidate
//!   carries an [`nlidb::Explanation`] decomposing its score into the
//!   word-similarity, log-popularity and co-occurrence/Dice components of
//!   Section IV's λ-blend, and its join path into schema distance versus
//!   log-evidence weight — the blend is reproducible from the response,
//! * [`error::ApiError`] — the one error taxonomy wire clients see, with
//!   every failure mode as structured data (no `Debug`-string leakage),
//! * [`protocol`] — the JSON line protocol: versioned request/response
//!   envelopes, rejected on protocol-version mismatch.
//!
//! The crate deliberately contains no serving machinery: `templar-service`
//! implements the routing ([`TenantRegistry`](../templar_service/registry/
//! struct.TenantRegistry.html)) against these types.

pub mod binary;
pub mod error;
pub mod metrics;
pub mod protocol;
pub mod request;
pub mod response;

pub use binary::{CodecError, WireCodec, HANDSHAKE_LEN, HANDSHAKE_MAGIC, MAX_FRAME_BYTES};
pub use error::{ApiError, SnapshotRejection};
pub use metrics::{
    HealthReport, HistogramBucket, MetricsReport, SlowQueryReport, StageLatencyReport,
};
pub use protocol::{
    decode_request, decode_response, encode_request, encode_response, RequestBody, RequestEnvelope,
    ResponseBody, ResponseEnvelope, PROTOCOL_VERSION,
};
pub use request::{RequestOverrides, TranslateRequest};
pub use response::{SqlCandidate, TraceReport, TranslateResponse};
