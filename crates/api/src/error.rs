//! The API error taxonomy.
//!
//! Every failure a wire client can observe is one [`ApiError`] variant with
//! structured payloads — tenant names, version numbers, obscurity levels —
//! rather than stringified `Debug` output, so clients can match on failure
//! modes and the errors round-trip losslessly through the JSON protocol.

use nlidb::TranslateError;
use serde::{Deserialize, Serialize};
use std::fmt;
use templar_core::{Obscurity, TemplarError};

/// Why a persisted snapshot was rejected (the wire form of the service's
/// `SnapshotError`, minus the unserializable `io::Error` payload).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SnapshotRejection {
    /// The file does not start with the snapshot magic.
    BadMagic,
    /// The snapshot format version is not supported by the serving build.
    UnsupportedVersion {
        /// Version found in the file header.
        found: u32,
        /// Version the serving build supports.
        supported: u32,
    },
    /// The snapshot was produced at a different obscurity level than the
    /// tenant's configuration expects.
    ObscurityMismatch {
        /// The level the configuration asks for.
        expected: Obscurity,
        /// The level the snapshot was captured at.
        found: Obscurity,
    },
    /// The snapshot body failed to parse.
    Corrupt {
        /// The parser's diagnostic.
        detail: String,
    },
}

impl fmt::Display for SnapshotRejection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotRejection::BadMagic => write!(f, "not a Templar snapshot (bad magic)"),
            SnapshotRejection::UnsupportedVersion { found, supported } => write!(
                f,
                "unsupported snapshot version {found} (this build supports {supported})"
            ),
            SnapshotRejection::ObscurityMismatch { expected, found } => write!(
                f,
                "snapshot obscurity level {} does not match configured {}",
                found.name(),
                expected.name()
            ),
            SnapshotRejection::Corrupt { detail } => write!(f, "corrupt snapshot: {detail}"),
        }
    }
}

/// Every error the translation API can return to a client.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ApiError {
    /// The request named a tenant the registry does not host.
    UnknownTenant {
        /// The tenant id that failed to resolve.
        tenant: String,
    },
    /// The request was structurally valid JSON but semantically invalid
    /// (e.g. a λ override outside `[0, 1]`, an empty keyword list).
    InvalidRequest {
        /// What was wrong.
        reason: String,
    },
    /// The envelope carried a different protocol version than this build
    /// speaks.
    VersionMismatch {
        /// The version this build speaks.
        expected: u32,
        /// The version the envelope carried.
        found: u32,
    },
    /// The envelope was not parseable at all.
    MalformedEnvelope {
        /// The decoder's diagnostic.
        detail: String,
    },
    /// Translation ran but produced no SQL.
    TranslationFailed {
        /// Where the pipeline stopped.
        kind: TranslateError,
    },
    /// The tenant's ingestion queue is at capacity; retry later.
    Backpressure,
    /// The tenant is in degraded read-only mode: its durable journal is
    /// failing, so writes (`SubmitSql` / `Feedback`) are refused while
    /// translations and observability keep serving.  Retry later — the
    /// service heals itself once the journal recovers.
    Degraded,
    /// The tenant (or the whole registry) is shutting down.
    ShuttingDown,
    /// The tenant's Templar facade could not be (re)constructed.
    Construction {
        /// The typed core error.
        error: TemplarError,
    },
    /// Snapshot persistence was rejected with a structured reason.
    SnapshotRejected {
        /// Why the snapshot was unusable.
        rejection: SnapshotRejection,
    },
    /// Snapshot persistence failed in the filesystem layer.
    SnapshotIo {
        /// The I/O diagnostic.
        detail: String,
    },
    /// The durable ingest path (write-ahead journal / checkpoint) failed.
    Durability {
        /// The journal or checkpoint diagnostic.
        detail: String,
    },
}

impl fmt::Display for ApiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ApiError::UnknownTenant { tenant } => write!(f, "unknown tenant `{tenant}`"),
            ApiError::InvalidRequest { reason } => write!(f, "invalid request: {reason}"),
            ApiError::VersionMismatch { expected, found } => write!(
                f,
                "protocol version mismatch: peer speaks v{found}, this build speaks v{expected}"
            ),
            ApiError::MalformedEnvelope { detail } => {
                write!(f, "malformed protocol envelope: {detail}")
            }
            ApiError::TranslationFailed { kind } => write!(f, "translation failed: {kind}"),
            ApiError::Backpressure => {
                write!(f, "ingestion queue at capacity (backpressure); retry later")
            }
            ApiError::Degraded => {
                write!(
                    f,
                    "tenant is degraded (read-only): journal is failing; retry later"
                )
            }
            ApiError::ShuttingDown => write!(f, "service is shutting down"),
            ApiError::Construction { error } => write!(f, "construction failed: {error}"),
            ApiError::SnapshotRejected { rejection } => {
                write!(f, "snapshot rejected: {rejection}")
            }
            ApiError::SnapshotIo { detail } => write!(f, "snapshot io error: {detail}"),
            ApiError::Durability { detail } => write!(f, "durability error: {detail}"),
        }
    }
}

impl std::error::Error for ApiError {}

impl From<TranslateError> for ApiError {
    fn from(kind: TranslateError) -> Self {
        ApiError::TranslationFailed { kind }
    }
}

impl From<TemplarError> for ApiError {
    fn from(error: TemplarError) -> Self {
        ApiError::Construction { error }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_variants() -> Vec<ApiError> {
        vec![
            ApiError::UnknownTenant {
                tenant: "nope".into(),
            },
            ApiError::InvalidRequest {
                reason: "lambda override 7 outside [0, 1]".into(),
            },
            ApiError::VersionMismatch {
                expected: 1,
                found: 9,
            },
            ApiError::MalformedEnvelope {
                detail: "expected map".into(),
            },
            ApiError::TranslationFailed {
                kind: TranslateError::NoJoinPath,
            },
            ApiError::Backpressure,
            ApiError::Degraded,
            ApiError::ShuttingDown,
            ApiError::Construction {
                error: TemplarError::ObscurityMismatch {
                    expected: Obscurity::NoConstOp,
                    found: Obscurity::Full,
                },
            },
            ApiError::SnapshotRejected {
                rejection: SnapshotRejection::ObscurityMismatch {
                    expected: Obscurity::NoConstOp,
                    found: Obscurity::NoConst,
                },
            },
            ApiError::SnapshotRejected {
                rejection: SnapshotRejection::Corrupt {
                    detail: "body obscurity disagrees with header".into(),
                },
            },
            ApiError::SnapshotIo {
                detail: "permission denied".into(),
            },
            ApiError::Durability {
                detail: "corrupt journal segment wal-0.seg: CRC mismatch".into(),
            },
        ]
    }

    #[test]
    fn every_variant_round_trips_through_serde() {
        for err in all_variants() {
            let json = serde_json::to_string(&err).unwrap();
            let back: ApiError = serde_json::from_str(&json).unwrap();
            assert_eq!(back, err, "variant failed to round-trip: {json}");
        }
    }

    #[test]
    fn displays_are_structured_not_debug_dumps() {
        for err in all_variants() {
            let text = err.to_string();
            assert!(
                !text.contains("ApiError") && !text.contains("{"),
                "display leaks Debug formatting: {text}"
            );
        }
    }

    #[test]
    fn translate_errors_convert() {
        assert_eq!(
            ApiError::from(TranslateError::NoKeywords),
            ApiError::TranslationFailed {
                kind: TranslateError::NoKeywords
            }
        );
    }
}
