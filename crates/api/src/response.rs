//! Translation responses.

use nlidb::{Explanation, RankedSql};
use serde::{Deserialize, Serialize};
use templar_core::{RequestTrace, SearchStats};

/// One ranked SQL candidate with its complete score decomposition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SqlCandidate {
    /// The SQL text.
    pub sql: String,
    /// The blended final score (larger is better).
    pub score: f64,
    /// The decomposition of `score`: word-similarity, log-popularity and
    /// co-occurrence/Dice components of the configuration score, plus the
    /// join path's schema-distance vs log-evidence breakdown.  The λ-blend
    /// of Section IV is reproducible from these components alone
    /// ([`Explanation::recompute_final`]).
    pub explanation: Explanation,
}

impl From<&RankedSql> for SqlCandidate {
    fn from(ranked: &RankedSql) -> Self {
        SqlCandidate {
            sql: ranked.query.to_string(),
            score: ranked.score,
            explanation: ranked.explanation.clone(),
        }
    }
}

/// The per-request observability payload returned when a
/// [`TranslateRequest`](crate::TranslateRequest) sets its `trace` flag.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceReport {
    /// Per-stage latency breakdown of this request.  Stage durations are
    /// measured on non-overlapping request-thread spans, so they sum to at
    /// most `breakdown.total_nanos` (the measured end-to-end latency).
    pub breakdown: RequestTrace,
    /// The best-first configuration search's work counters for this request.
    pub search: SearchStats,
    /// True when this response was served from the translation cache: the
    /// breakdown then covers only the (tiny) cache lookup, and `search`
    /// reports the work spent when the cached answer was originally
    /// computed.  Operators reading traces should not chase stage latencies
    /// on a hit — there are none.
    pub cache_hit: bool,
}

/// The response to a [`TranslateRequest`](crate::TranslateRequest).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TranslateResponse {
    /// The tenant that served the request.
    pub tenant: String,
    /// Ranked candidates, best first; never empty (failure to translate is
    /// an [`ApiError`](crate::ApiError), not an empty response).
    pub candidates: Vec<SqlCandidate>,
    /// The per-stage breakdown, present iff the request asked for it.
    pub trace: Option<TraceReport>,
}

impl TranslateResponse {
    /// Build a response from ranked translations, keeping at most `top_k`.
    pub fn from_ranked(
        tenant: impl Into<String>,
        ranked: &[RankedSql],
        top_k: Option<usize>,
    ) -> Self {
        let limit = top_k.unwrap_or(usize::MAX).max(1);
        TranslateResponse {
            tenant: tenant.into(),
            candidates: ranked.iter().take(limit).map(SqlCandidate::from).collect(),
            trace: None,
        }
    }

    /// Attach the per-stage breakdown a tracing request asked for.
    pub fn with_trace(mut self, trace: TraceReport) -> Self {
        self.trace = Some(trace);
        self
    }

    /// The best candidate.
    pub fn best(&self) -> Option<&SqlCandidate> {
        self.candidates.first()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nlidb::JoinExplanation;

    fn explanation() -> Explanation {
        let join = JoinExplanation {
            edges: 1,
            total_weight: 0.4,
            used_log_weights: true,
            score: 0.0,
        };
        let join = JoinExplanation {
            score: join.recompute_score(),
            ..join
        };
        let mut e = Explanation {
            lambda: 0.8,
            sigma_score: 0.9,
            log_popularity: 0.1,
            dice_cooccurrence: 0.3,
            qfg_pairs: 1,
            qfg_score: 0.3,
            config_score: 0.0,
            join,
            final_score: 0.0,
            search_budget_exhausted: false,
        };
        e.config_score = e.recompute_config_score();
        e.final_score = e.recompute_final();
        e
    }

    #[test]
    fn responses_round_trip_through_serde() {
        let resp = TranslateResponse {
            tenant: "imdb".to_string(),
            candidates: vec![SqlCandidate {
                sql: "SELECT m.title FROM movie m".to_string(),
                score: 0.72,
                explanation: explanation(),
            }],
            trace: None,
        };
        let back: TranslateResponse =
            serde_json::from_str(&serde_json::to_string(&resp).unwrap()).unwrap();
        assert_eq!(back, resp);
        assert!(back.best().unwrap().explanation.is_consistent(1e-12));
    }

    #[test]
    fn traced_responses_round_trip_through_serde() {
        use std::time::Duration;
        use templar_core::{SearchStats, Stage, TraceSpans};

        let spans = TraceSpans::new();
        spans.add(Stage::CandidatePruning, 9_000);
        spans.add(Stage::ConfigSearch, 120_000);
        let report = TraceReport {
            breakdown: spans.finish(Duration::from_micros(150)),
            search: SearchStats {
                tuples_scored: 40,
                tuples_pruned: 8,
                bound_cutoffs: 2,
                budget_exhausted: false,
            },
            cache_hit: false,
        };
        let resp = TranslateResponse {
            tenant: "mas".to_string(),
            candidates: Vec::new(),
            trace: None,
        }
        .with_trace(report.clone());
        let back: TranslateResponse =
            serde_json::from_str(&serde_json::to_string(&resp).unwrap()).unwrap();
        assert_eq!(back.trace, Some(report));
    }
}
