//! Translation responses.

use nlidb::{Explanation, RankedSql};
use serde::{Deserialize, Serialize};

/// One ranked SQL candidate with its complete score decomposition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SqlCandidate {
    /// The SQL text.
    pub sql: String,
    /// The blended final score (larger is better).
    pub score: f64,
    /// The decomposition of `score`: word-similarity, log-popularity and
    /// co-occurrence/Dice components of the configuration score, plus the
    /// join path's schema-distance vs log-evidence breakdown.  The λ-blend
    /// of Section IV is reproducible from these components alone
    /// ([`Explanation::recompute_final`]).
    pub explanation: Explanation,
}

impl From<&RankedSql> for SqlCandidate {
    fn from(ranked: &RankedSql) -> Self {
        SqlCandidate {
            sql: ranked.query.to_string(),
            score: ranked.score,
            explanation: ranked.explanation.clone(),
        }
    }
}

/// The response to a [`TranslateRequest`](crate::TranslateRequest).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TranslateResponse {
    /// The tenant that served the request.
    pub tenant: String,
    /// Ranked candidates, best first; never empty (failure to translate is
    /// an [`ApiError`](crate::ApiError), not an empty response).
    pub candidates: Vec<SqlCandidate>,
}

impl TranslateResponse {
    /// Build a response from ranked translations, keeping at most `top_k`.
    pub fn from_ranked(
        tenant: impl Into<String>,
        ranked: &[RankedSql],
        top_k: Option<usize>,
    ) -> Self {
        let limit = top_k.unwrap_or(usize::MAX).max(1);
        TranslateResponse {
            tenant: tenant.into(),
            candidates: ranked.iter().take(limit).map(SqlCandidate::from).collect(),
        }
    }

    /// The best candidate.
    pub fn best(&self) -> Option<&SqlCandidate> {
        self.candidates.first()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nlidb::JoinExplanation;

    fn explanation() -> Explanation {
        let join = JoinExplanation {
            edges: 1,
            total_weight: 0.4,
            used_log_weights: true,
            score: 0.0,
        };
        let join = JoinExplanation {
            score: join.recompute_score(),
            ..join
        };
        let mut e = Explanation {
            lambda: 0.8,
            sigma_score: 0.9,
            log_popularity: 0.1,
            dice_cooccurrence: 0.3,
            qfg_pairs: 1,
            qfg_score: 0.3,
            config_score: 0.0,
            join,
            final_score: 0.0,
            search_budget_exhausted: false,
        };
        e.config_score = e.recompute_config_score();
        e.final_score = e.recompute_final();
        e
    }

    #[test]
    fn responses_round_trip_through_serde() {
        let resp = TranslateResponse {
            tenant: "imdb".to_string(),
            candidates: vec![SqlCandidate {
                sql: "SELECT m.title FROM movie m".to_string(),
                score: 0.72,
                explanation: explanation(),
            }],
        };
        let back: TranslateResponse =
            serde_json::from_str(&serde_json::to_string(&resp).unwrap()).unwrap();
        assert_eq!(back, resp);
        assert!(back.best().unwrap().explanation.is_consistent(1e-12));
    }
}
