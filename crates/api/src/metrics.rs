//! The wire form of a tenant's service metrics.
//!
//! `templar-service` owns the live counters ([`MetricsSnapshot`](
//! ../templar_service/metrics/struct.MetricsSnapshot.html)); this is the
//! serializable projection a registry client receives from a `Metrics`
//! request.  Field-for-field identical to the service-side snapshot so
//! nothing is lost at the boundary — including the columnar data-plane
//! gauges (interner / CSR sizes, compactions) and the skipped-statement
//! count that makes malformed bootstrap logs observable.

use serde::{Deserialize, Serialize};
use templar_core::{RequestTrace, SearchStats};

/// One cumulative histogram bucket: how many observations were `≤ le_us`
/// microseconds.  `le_us == u64::MAX` is the `+Inf` bucket and always equals
/// the histogram's total count — the same cumulative-bucket contract as
/// Prometheus' `le` label, so expositions can be assembled from the wire
/// form without re-aggregation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramBucket {
    /// Inclusive upper bound of the bucket, in microseconds (`u64::MAX` for
    /// `+Inf`).
    pub le_us: u64,
    /// Observations at or below the bound (cumulative).
    pub count: u64,
}

/// One pipeline stage's accumulated latency distribution across every
/// translation the tenant served.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageLatencyReport {
    /// The stage's stable name (`templar_core::Stage::name`).
    pub stage: String,
    /// Timed calls recorded for the stage.
    pub count: u64,
    /// Approximate quantiles (power-of-two bucket upper bounds), µs.
    pub p50_us: u64,
    pub p99_us: u64,
    /// Exact mean and sum of the recorded durations, µs.
    pub mean_us: u64,
    pub sum_us: u64,
    /// Cumulative buckets (trailing-empty buckets trimmed; the final entry
    /// is always `+Inf`).
    pub buckets: Vec<HistogramBucket>,
}

/// One captured slow query: the full per-stage breakdown of one of the
/// slowest translations the tenant has served, kept in a bounded ring.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SlowQueryReport {
    /// Monotonic capture sequence number (later captures have larger
    /// values; survives evictions from the ring).
    pub seq: u64,
    /// The natural-language question as received.
    pub question: String,
    /// End-to-end latency, µs.
    pub total_us: u64,
    /// Whether the translation produced SQL.
    pub ok: bool,
    /// The per-stage breakdown recorded while serving the request.
    pub trace: RequestTrace,
    /// The configuration search's work counters for the request.
    pub search: SearchStats,
    /// True when the request was served from the translation cache; its
    /// breakdown then covers only the lookup, and `search` reports the
    /// original computation's counters.
    pub cache_hit: bool,
}

/// One tenant's write-availability state, answered by the `Health` request
/// — served even under admission overload (like the other observability
/// reads), so an operator can always ask "is this tenant taking writes?".
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct HealthReport {
    /// `"healthy"` (full read/write) or `"degraded"` (read-only: the
    /// durable journal is failing and writes are refused).
    pub state: String,
    /// Gauge form of `state`: 0 = healthy, 1 = degraded.
    pub health_state: u64,
    /// Write entries refused while degraded, since start.
    pub degraded_entries_total: u64,
    /// In-line journal sync retries after a failure, since start.
    pub journal_retries_total: u64,
    /// Degraded episodes healed (staged tail replayed, writes restored).
    pub journal_heals_total: u64,
    /// Journal filesystem failures absorbed, since start.
    pub wal_io_errors: u64,
    /// First OS errno of the most recent journal failure episode, encoded
    /// as `errno + 1` (0 = none recorded).
    pub wal_last_errno: u64,
}

/// A point-in-time view of one tenant's serving health.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct MetricsReport {
    /// Translations served since start, and how many produced no SQL.
    pub translations_served: u64,
    pub empty_translations: u64,
    /// Best-first configuration-search counters, summed over every
    /// translation: configurations scored / provably pruned without
    /// scoring / prefix subtrees cut by the admissible bound, plus how
    /// many requests ran out of their search budget (best-effort rather
    /// than provably exact rankings).
    pub search_tuples_scored: u64,
    pub search_tuples_pruned: u64,
    pub search_bound_cutoffs: u64,
    pub search_budget_exhausted: u64,
    /// Approximate translation latency quantiles (power-of-two bucket upper
    /// bounds) and exact mean/sum, in microseconds.
    pub translate_p50_us: u64,
    pub translate_p99_us: u64,
    pub translate_mean_us: u64,
    pub translate_sum_us: u64,
    /// Cumulative end-to-end latency buckets (Prometheus `le` semantics;
    /// final entry is `+Inf`).
    pub translate_buckets: Vec<HistogramBucket>,
    /// Per-stage latency distributions, one entry per pipeline stage in
    /// execution order.
    pub stage_latencies: Vec<StageLatencyReport>,
    /// Ingestion counters: accepted into the queue / rejected at capacity /
    /// applied to the QFG / failed to parse on the live path.
    pub ingest_submitted: u64,
    pub ingest_rejected: u64,
    pub ingest_applied: u64,
    pub ingest_parse_errors: u64,
    /// Statements skipped as unparsable while assembling the service's
    /// query log from raw SQL text.
    pub log_skipped_statements: u64,
    /// Entries accepted but not yet applied.
    pub ingest_lag: u64,
    /// Log entries evicted under the retention bound.
    pub log_evictions: u64,
    /// Snapshots published since start.
    pub snapshot_swaps: u64,
    /// Accepted-SQL feedback entries received over the `Feedback` request
    /// (a subset of `ingest_submitted`).
    pub feedback_accepted: u64,
    /// Write-ahead journal counters (0 on a non-durable tenant): records
    /// appended / fsyncs issued / records replayed at recovery / segments
    /// garbage-collected / filesystem failures absorbed, plus the sequence
    /// number of the last journal record applied (the next checkpoint's
    /// watermark).
    pub wal_appended: u64,
    pub wal_fsyncs: u64,
    pub wal_replayed: u64,
    pub wal_segments_gc: u64,
    pub wal_io_errors: u64,
    /// First OS errno of the current (or most recent) journal failure
    /// episode, encoded as `errno + 1` (0 = none recorded) — tells
    /// operators `ENOSPC` (29) from `EIO` (6) straight from the report.
    pub wal_last_errno: u64,
    /// Write-availability state: 0 = healthy, 1 = degraded read-only
    /// (journal failing; `SubmitSql`/`Feedback` refused with `Degraded`).
    pub health_state: u64,
    /// Write entries refused while degraded.
    pub degraded_entries_total: u64,
    /// In-line journal sync retries after a failure.
    pub journal_retries_total: u64,
    /// Degraded episodes healed (staged tail replayed, writes restored).
    pub journal_heals_total: u64,
    /// Bytes cut off a torn journal tail at recovery (bounded data loss:
    /// acknowledged-but-unsynced entries that did not survive a crash).
    pub wal_truncated_bytes: u64,
    /// Largest decoded WAL batch the last recovery materialized — the
    /// bounded-memory replay's high-water mark, at most
    /// `max(recovery_batch_bytes, largest single record)`.
    pub recovery_peak_batch_bytes: u64,
    /// On-disk size of the last snapshot written or recovered from, bytes.
    pub snapshot_body_bytes: u64,
    /// Admission-control sheds: requests rejected with `Backpressure`
    /// before any work was queued — at the tenant's own in-flight quota,
    /// and at the serving plane's global in-flight cap (attributed to the
    /// tenant whose request was turned away).
    pub admission_tenant_shed: u64,
    pub admission_global_shed: u64,
    pub wal_applied_seq: u64,
    /// Join-cache statistics of the current snapshot.
    pub join_cache_hits: u64,
    pub join_cache_misses: u64,
    pub join_cache_evictions: u64,
    pub join_cache_entries: u64,
    /// Query Fragment Graph size (live fragments / edges / queries).
    pub qfg_fragments: u64,
    pub qfg_edges: u64,
    pub qfg_queries: u64,
    /// Columnar data-plane gauges: interner table size, compacted CSR
    /// edges, pending delta pairs, compactions performed.
    pub qfg_interned_fragments: u64,
    pub qfg_csr_edges: u64,
    pub qfg_pending_deltas: u64,
    pub qfg_compactions: u64,
    /// Tiered-compaction gauges of the ingest plane: sorted delta runs
    /// resident in the master graph and geometric run merges performed.
    pub qfg_delta_runs: u64,
    pub qfg_run_merges: u64,
    /// Epoch-keyed translation-cache counters: requests answered from the
    /// cache / requests that had to compute (and seeded it) / entries
    /// dropped at the capacity bound / wholesale invalidations on snapshot
    /// publish, plus the current entry gauge.  Bypassed requests touch
    /// neither hits nor misses.
    pub translation_cache_hits: u64,
    pub translation_cache_misses: u64,
    pub translation_cache_evictions: u64,
    pub translation_cache_invalidations: u64,
    pub translation_cache_entries: u64,
    /// Similarity-model memo counters sampled from the current snapshot's
    /// `WordModel`: single-word and phrase vector cache hits/misses since
    /// the model instance was built.
    pub word_memo_hits: u64,
    pub word_memo_misses: u64,
    pub phrase_memo_hits: u64,
    pub phrase_memo_misses: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metrics_reports_round_trip_through_serde() {
        let report = MetricsReport {
            translations_served: 7,
            search_tuples_scored: 19,
            search_tuples_pruned: 100,
            search_bound_cutoffs: 6,
            search_budget_exhausted: 1,
            qfg_interned_fragments: 42,
            qfg_csr_edges: 17,
            qfg_compactions: 3,
            log_skipped_statements: 2,
            feedback_accepted: 4,
            wal_appended: 9,
            wal_fsyncs: 2,
            wal_replayed: 5,
            wal_segments_gc: 1,
            wal_applied_seq: 9,
            translate_sum_us: 900,
            translate_buckets: vec![
                HistogramBucket { le_us: 0, count: 0 },
                HistogramBucket { le_us: 1, count: 2 },
                HistogramBucket {
                    le_us: u64::MAX,
                    count: 7,
                },
            ],
            stage_latencies: vec![StageLatencyReport {
                stage: "config_search".to_string(),
                count: 7,
                p50_us: 128,
                p99_us: 256,
                mean_us: 120,
                sum_us: 840,
                buckets: vec![HistogramBucket {
                    le_us: u64::MAX,
                    count: 7,
                }],
            }],
            ..MetricsReport::default()
        };
        let back: MetricsReport =
            serde_json::from_str(&serde_json::to_string(&report).unwrap()).unwrap();
        assert_eq!(back, report);
    }
}
