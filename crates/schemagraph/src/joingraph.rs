//! The join graph: a relation-instance-level view of the schema graph.
//!
//! Join path inference works over *instances* of relations rather than
//! relations themselves, because a query may reference the same relation
//! twice (self-joins, Example 7 of the paper).  [`JoinGraph::fork`]
//! implements Algorithm 4: it clones a relation instance together with the
//! sub-graph reachable against the FK direction, stopping (and connecting
//! back to the original graph) when a forward FK-PK edge is reached.

use crate::graph::SchemaGraph;
use relational::ForeignKey;
use std::collections::{BTreeMap, BTreeSet};

/// Identifier of a node (relation instance) in the join graph.
pub type NodeId = usize;

/// A relation instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinNode {
    /// The relation name.
    pub relation: String,
    /// Instance number: 0 for the original schema-graph vertex, 1.. for
    /// clones created by forking.
    pub instance: usize,
}

impl JoinNode {
    /// A display label such as `author` or `author#2`.
    pub fn label(&self) -> String {
        if self.instance == 0 {
            self.relation.clone()
        } else {
            format!("{}#{}", self.relation, self.instance + 1)
        }
    }
}

/// An edge between two relation instances, annotated with the FK that
/// induces it.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinEdge {
    /// The node on the foreign-key side of the edge.
    pub fk_node: NodeId,
    /// The node on the primary-key side of the edge.
    pub pk_node: NodeId,
    /// The foreign key inducing the edge.
    pub fk: ForeignKey,
    /// The edge weight (default 1, lowered by log-driven weighting).
    pub weight: f64,
}

impl JoinEdge {
    /// The node at the other end of the edge.
    pub fn other(&self, node: NodeId) -> NodeId {
        if node == self.fk_node {
            self.pk_node
        } else {
            self.fk_node
        }
    }

    /// True when the edge is incident to the node.
    pub fn touches(&self, node: NodeId) -> bool {
        self.fk_node == node || self.pk_node == node
    }
}

/// The join graph.
#[derive(Debug, Clone)]
pub struct JoinGraph {
    nodes: Vec<JoinNode>,
    edges: Vec<JoinEdge>,
    /// Per-node incident edge indices, maintained on every edge insertion so
    /// the Dijkstra relaxations inside path enumeration read a slice instead
    /// of scanning the full edge list per node.
    adjacency: Vec<Vec<usize>>,
}

impl JoinGraph {
    /// Build the join graph from a schema graph: one node per relation, one
    /// edge per FK-PK relationship, with weights taken from the schema
    /// graph's weight function.
    pub fn from_schema_graph(graph: &SchemaGraph) -> Self {
        Self::build(graph, |fk| {
            graph.relation_weight(&fk.from_relation, &fk.to_relation)
        })
    }

    /// Build the join graph with unit edge weights, ignoring any custom
    /// weights on the schema graph.  This is the starting point for join
    /// inference, which then either keeps the paper's default weight
    /// function or applies log-driven weights via
    /// [`JoinGraph::set_weights`] — without cloning the schema graph.
    pub fn unweighted(graph: &SchemaGraph) -> Self {
        Self::build(graph, |_| 1.0)
    }

    fn build(graph: &SchemaGraph, weight: impl Fn(&ForeignKey) -> f64) -> Self {
        let schema = graph.schema();
        let mut nodes = Vec::new();
        let mut index: BTreeMap<String, NodeId> = BTreeMap::new();
        for rel in &schema.relations {
            index.insert(rel.name.to_lowercase(), nodes.len());
            nodes.push(JoinNode {
                relation: rel.name.clone(),
                instance: 0,
            });
        }
        let mut result = JoinGraph {
            adjacency: vec![Vec::new(); nodes.len()],
            nodes,
            edges: Vec::new(),
        };
        for fk in &schema.foreign_keys {
            let (Some(&from), Some(&to)) = (
                index.get(&fk.from_relation.to_lowercase()),
                index.get(&fk.to_relation.to_lowercase()),
            ) else {
                continue;
            };
            result.push_edge(JoinEdge {
                fk_node: from,
                pk_node: to,
                fk: fk.clone(),
                weight: weight(fk),
            });
        }
        result
    }

    /// Append an edge, keeping the incident-edge index in sync.
    fn push_edge(&mut self, edge: JoinEdge) {
        let id = self.edges.len();
        self.adjacency[edge.fk_node].push(id);
        if edge.pk_node != edge.fk_node {
            self.adjacency[edge.pk_node].push(id);
        }
        self.edges.push(edge);
    }

    /// All nodes.
    pub fn nodes(&self) -> &[JoinNode] {
        &self.nodes
    }

    /// All edges.
    pub fn edges(&self) -> &[JoinEdge] {
        &self.edges
    }

    /// The node for the original (instance 0) occurrence of a relation.
    pub fn node_of(&self, relation: &str) -> Option<NodeId> {
        self.nodes
            .iter()
            .position(|n| n.relation.eq_ignore_ascii_case(relation) && n.instance == 0)
    }

    /// All instances (original + clones) of a relation, in creation order.
    pub fn instances_of(&self, relation: &str) -> Vec<NodeId> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.relation.eq_ignore_ascii_case(relation))
            .map(|(i, _)| i)
            .collect()
    }

    /// The node data for an id.
    pub fn node(&self, id: NodeId) -> &JoinNode {
        &self.nodes[id]
    }

    /// Edges incident to a node, in insertion (id) order.  A slice into the
    /// maintained adjacency index — no per-call scan or allocation.
    pub fn incident_edges(&self, node: NodeId) -> &[usize] {
        &self.adjacency[node]
    }

    /// Re-assign edge weights with a per-relation-pair weight function.
    pub fn set_weights<F>(&mut self, weight: F)
    where
        F: Fn(&str, &str) -> f64,
    {
        // Collect first to avoid borrowing issues with self.nodes inside the loop.
        let pairs: Vec<(String, String)> = self
            .edges
            .iter()
            .map(|e| {
                (
                    self.nodes[e.fk_node].relation.clone(),
                    self.nodes[e.pk_node].relation.clone(),
                )
            })
            .collect();
        for (edge, (a, b)) in self.edges.iter_mut().zip(pairs) {
            edge.weight = weight(&a, &b).clamp(0.0, 1.0);
        }
    }

    /// Dijkstra shortest path between two nodes.  Returns the edge indices of
    /// the path, or `None` when the nodes are disconnected.  Ties are broken
    /// deterministically by node id.
    pub fn shortest_path(&self, from: NodeId, to: NodeId) -> Option<(f64, Vec<usize>)> {
        if from == to {
            return Some((0.0, Vec::new()));
        }
        let n = self.nodes.len();
        let mut dist = vec![f64::INFINITY; n];
        let mut prev_edge: Vec<Option<usize>> = vec![None; n];
        let mut visited = vec![false; n];
        dist[from] = 0.0;
        for _ in 0..n {
            // pick the unvisited node with minimal distance (deterministic).
            let mut current = None;
            let mut best = f64::INFINITY;
            for (i, &d) in dist.iter().enumerate() {
                if !visited[i] && d < best {
                    best = d;
                    current = Some(i);
                }
            }
            let Some(u) = current else { break };
            if u == to {
                break;
            }
            visited[u] = true;
            for &ei in self.incident_edges(u) {
                let e = &self.edges[ei];
                let v = e.other(u);
                // Use a small per-hop epsilon so that among equal-weight
                // alternatives, paths with fewer edges win.
                let cand = dist[u] + e.weight.max(1e-6);
                if cand + 1e-12 < dist[v] {
                    dist[v] = cand;
                    prev_edge[v] = Some(ei);
                }
            }
        }
        if dist[to].is_infinite() {
            return None;
        }
        // Reconstruct.
        let mut path = Vec::new();
        let mut cur = to;
        while cur != from {
            let ei = prev_edge[cur]?;
            path.push(ei);
            cur = self.edges[ei].other(cur);
        }
        path.reverse();
        Some((dist[to], path))
    }

    /// Fork the graph for a duplicated terminal relation (Algorithm 4).
    ///
    /// A clone of `relation` is added; the traversal follows edges *against*
    /// the FK direction (relations whose foreign keys reference the cloned
    /// relation are cloned too, recursively), and stops at edges followed
    /// *along* the FK direction, which are attached from the clone to the
    /// original target node.  Returns the id of the new clone of `relation`.
    pub fn fork(&mut self, relation: &str) -> Option<NodeId> {
        let original = self.node_of(relation)?;
        let mut visited: BTreeSet<NodeId> = BTreeSet::new();
        // stack of (original node, its clone)
        let mut stack: Vec<(NodeId, NodeId)> = Vec::new();
        let root_clone = self.clone_node(original);
        stack.push((original, root_clone));
        while let Some((old, new)) = stack.pop() {
            visited.insert(old);
            // The incident list is snapshotted because the loop body appends
            // edges (which would otherwise alias the adjacency index).
            let incident: Vec<usize> = self.incident_edges(old).to_vec();
            for ei in incident {
                let edge = self.edges[ei].clone();
                let conn = edge.other(old);
                // Ignore edges to clones created during this fork.
                if conn >= self.nodes.len() || self.nodes[conn].instance != 0 {
                    continue;
                }
                if visited.contains(&conn) {
                    continue;
                }
                if edge.fk_node == old {
                    // Forward FK-PK edge (old holds the foreign key): attach
                    // the clone to the original target and stop traversal.
                    self.push_edge(JoinEdge {
                        fk_node: new,
                        pk_node: conn,
                        fk: edge.fk.clone(),
                        weight: edge.weight,
                    });
                } else {
                    // Edge against the FK direction: clone the neighbour and
                    // keep traversing.
                    let cloned = self.clone_node(conn);
                    self.push_edge(JoinEdge {
                        fk_node: cloned,
                        pk_node: new,
                        fk: edge.fk.clone(),
                        weight: edge.weight,
                    });
                    stack.push((conn, cloned));
                }
            }
        }
        Some(root_clone)
    }

    fn clone_node(&mut self, node: NodeId) -> NodeId {
        let relation = self.nodes[node].relation.clone();
        let instance = self.nodes.iter().filter(|n| n.relation == relation).count();
        let id = self.nodes.len();
        self.nodes.push(JoinNode { relation, instance });
        self.adjacency.push(Vec::new());
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relational::{DataType, Schema};

    fn academic_schema() -> Schema {
        Schema::builder("academic")
            .relation(
                "author",
                &[("aid", DataType::Integer), ("name", DataType::Text)],
                Some("aid"),
            )
            .relation(
                "writes",
                &[("aid", DataType::Integer), ("pid", DataType::Integer)],
                None,
            )
            .relation(
                "publication",
                &[
                    ("pid", DataType::Integer),
                    ("title", DataType::Text),
                    ("jid", DataType::Integer),
                ],
                Some("pid"),
            )
            .relation(
                "journal",
                &[("jid", DataType::Integer), ("name", DataType::Text)],
                Some("jid"),
            )
            .foreign_key("writes", "aid", "author", "aid")
            .foreign_key("writes", "pid", "publication", "pid")
            .foreign_key("publication", "jid", "journal", "jid")
            .build()
    }

    fn graph() -> JoinGraph {
        JoinGraph::from_schema_graph(&SchemaGraph::from_schema(&academic_schema()))
    }

    #[test]
    fn builds_one_node_per_relation_and_edge_per_fk() {
        let g = graph();
        assert_eq!(g.nodes().len(), 4);
        assert_eq!(g.edges().len(), 3);
    }

    #[test]
    fn shortest_path_counts_hops_with_unit_weights() {
        let g = graph();
        let author = g.node_of("author").unwrap();
        let journal = g.node_of("journal").unwrap();
        let (cost, path) = g.shortest_path(author, journal).unwrap();
        assert_eq!(path.len(), 3); // author - writes - publication - journal
        assert!((cost - 3.0).abs() < 1e-3);
    }

    #[test]
    fn shortest_path_to_self_is_empty() {
        let g = graph();
        let a = g.node_of("author").unwrap();
        assert_eq!(g.shortest_path(a, a).unwrap().1.len(), 0);
    }

    #[test]
    fn shortest_path_prefers_lower_weights() {
        let schema = Schema::builder("tri")
            .relation(
                "a",
                &[
                    ("id", DataType::Integer),
                    ("bid", DataType::Integer),
                    ("cid", DataType::Integer),
                ],
                Some("id"),
            )
            .relation(
                "b",
                &[("id", DataType::Integer), ("cid", DataType::Integer)],
                Some("id"),
            )
            .relation("c", &[("id", DataType::Integer)], Some("id"))
            .foreign_key("a", "bid", "b", "id")
            .foreign_key("a", "cid", "c", "id")
            .foreign_key("b", "cid", "c", "id")
            .build();
        let mut sg = SchemaGraph::from_schema(&schema);
        // direct edge a-c is expensive; a-b and b-c are cheap
        sg.set_relation_weight("a", "c", 0.9);
        sg.set_relation_weight("a", "b", 0.1);
        sg.set_relation_weight("b", "c", 0.1);
        let g = JoinGraph::from_schema_graph(&sg);
        let a = g.node_of("a").unwrap();
        let c = g.node_of("c").unwrap();
        let (_, path) = g.shortest_path(a, c).unwrap();
        assert_eq!(path.len(), 2, "should detour through b");
    }

    #[test]
    fn fork_clones_author_and_writes_but_not_publication() {
        // Figure 4 of the paper: forking `author` clones `author` and
        // `writes`, and attaches the cloned `writes` to the original
        // `publication`.
        let mut g = graph();
        let clone = g.fork("author").unwrap();
        assert_eq!(g.node(clone).relation, "author");
        assert_eq!(g.node(clone).instance, 1);
        assert_eq!(g.instances_of("author").len(), 2);
        assert_eq!(g.instances_of("writes").len(), 2);
        assert_eq!(g.instances_of("publication").len(), 1);
        assert_eq!(g.instances_of("journal").len(), 1);
        // The cloned writes connects to the original publication.
        let writes_clone = g.instances_of("writes")[1];
        let publication = g.node_of("publication").unwrap();
        let connects = g
            .incident_edges(writes_clone)
            .iter()
            .any(|&ei| g.edges()[ei].touches(publication));
        assert!(connects);
    }

    #[test]
    fn fork_twice_creates_three_instances() {
        let mut g = graph();
        g.fork("author").unwrap();
        g.fork("author").unwrap();
        assert_eq!(g.instances_of("author").len(), 3);
        assert_eq!(g.instances_of("writes").len(), 3);
        assert_eq!(g.instances_of("publication").len(), 1);
    }

    #[test]
    fn set_weights_applies_to_all_edges() {
        let mut g = graph();
        g.set_weights(|a, b| {
            if a == "publication" || b == "publication" {
                0.2
            } else {
                1.0
            }
        });
        for e in g.edges() {
            let rels = [
                g.node(e.fk_node).relation.as_str(),
                g.node(e.pk_node).relation.as_str(),
            ];
            if rels.contains(&"publication") {
                assert!((e.weight - 0.2).abs() < 1e-9);
            } else {
                assert!((e.weight - 1.0).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn unweighted_ignores_custom_schema_weights() {
        let mut sg = SchemaGraph::from_schema(&academic_schema());
        sg.set_relation_weight("publication", "journal", 0.05);
        let weighted = JoinGraph::from_schema_graph(&sg);
        assert!(weighted
            .edges()
            .iter()
            .any(|e| (e.weight - 0.05).abs() < 1e-12));
        let unit = JoinGraph::unweighted(&sg);
        assert!(unit.edges().iter().all(|e| (e.weight - 1.0).abs() < 1e-12));
        assert_eq!(unit.nodes().len(), weighted.nodes().len());
        assert_eq!(unit.edges().len(), weighted.edges().len());
    }

    #[test]
    fn adjacency_index_stays_consistent_across_forks() {
        let mut g = graph();
        g.fork("author").unwrap();
        g.fork("publication").unwrap();
        for node in 0..g.nodes().len() {
            let scanned: Vec<usize> = g
                .edges()
                .iter()
                .enumerate()
                .filter(|(_, e)| e.touches(node))
                .map(|(i, _)| i)
                .collect();
            assert_eq!(
                g.incident_edges(node),
                scanned.as_slice(),
                "adjacency of node {node} diverged from an edge scan"
            );
        }
    }

    #[test]
    fn disconnected_nodes_have_no_path() {
        let schema = Schema::builder("disc")
            .relation("a", &[("id", DataType::Integer)], Some("id"))
            .relation("b", &[("id", DataType::Integer)], Some("id"))
            .build();
        let g = JoinGraph::from_schema_graph(&SchemaGraph::from_schema(&schema));
        let a = g.node_of("a").unwrap();
        let b = g.node_of("b").unwrap();
        assert!(g.shortest_path(a, b).is_none());
    }
}
