//! Schema graph and join-path inference substrate.
//!
//! This crate implements the graph machinery behind Section VI of the paper:
//!
//! * the **schema graph** of Definition 1 (relation and attribute vertices,
//!   projection and FK-PK join edges, a weight function on edges),
//! * the **join graph**, a relation-instance-level view of the schema graph
//!   on which join paths are computed,
//! * the **Kou–Markowsky–Berman Steiner tree approximation** \[21\] used to
//!   find minimum-weight join paths spanning a set of terminal relations,
//! * **schema-graph forking** for self-joins (Algorithm 4 / Figure 4), and
//! * **join path scoring** (`Score_j = Σ w / |E_j|²`).
//!
//! Weight assignment is a pluggable function so that Templar's log-driven
//! weights (`w_L = 1 − Dice`) and the default unit weights of the baselines
//! both run on the same machinery.

pub mod graph;
pub mod joingraph;
pub mod joinpath;
pub mod steiner;

pub use graph::{SchemaGraph, VertexKind};
pub use joingraph::{JoinEdge, JoinGraph, NodeId};
pub use joinpath::{join_path_score, JoinCondition, JoinPath};
pub use steiner::steiner_tree;
