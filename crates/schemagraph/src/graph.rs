//! The schema graph of Definition 1.
//!
//! Vertices are either relations or attributes; edges are either projection
//! edges (relation → attribute) or FK-PK join edges (foreign-key attribute →
//! primary-key attribute).  The join path machinery works on the
//! relation-instance level ([`crate::joingraph::JoinGraph`]); this module is
//! the faithful representation used to build it and to report schema
//! statistics.

use relational::{AttributeRef, ForeignKey, Schema};
use std::collections::HashMap;

/// The kind of a schema graph vertex.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum VertexKind {
    /// A relation vertex.
    Relation(String),
    /// An attribute vertex.
    Attribute(AttributeRef),
}

impl VertexKind {
    /// The relation this vertex belongs to (itself for relation vertices).
    pub fn relation(&self) -> &str {
        match self {
            VertexKind::Relation(r) => r,
            VertexKind::Attribute(a) => &a.relation,
        }
    }

    /// True for relation vertices.
    pub fn is_relation(&self) -> bool {
        matches!(self, VertexKind::Relation(_))
    }
}

/// An edge of the schema graph.
#[derive(Debug, Clone, PartialEq)]
pub enum SchemaEdge {
    /// A projection edge from a relation to one of its attributes.
    Projection {
        /// The relation.
        relation: String,
        /// The attribute.
        attribute: AttributeRef,
    },
    /// A FK-PK join edge from the foreign-key attribute to the primary-key
    /// attribute it references.
    JoinFkPk(ForeignKey),
}

/// The schema graph (Definition 1).
#[derive(Debug, Clone)]
pub struct SchemaGraph {
    schema: Schema,
    vertices: Vec<VertexKind>,
    edges: Vec<SchemaEdge>,
    /// Optional per-relation-pair weights, overriding the default weight of 1.
    weights: HashMap<(String, String), f64>,
}

impl SchemaGraph {
    /// Build the schema graph of a database schema.
    pub fn from_schema(schema: &Schema) -> Self {
        let mut vertices = Vec::new();
        let mut edges = Vec::new();
        for rel in &schema.relations {
            vertices.push(VertexKind::Relation(rel.name.clone()));
            for attr in &rel.attributes {
                let aref = AttributeRef::new(rel.name.clone(), attr.name.clone());
                vertices.push(VertexKind::Attribute(aref.clone()));
                edges.push(SchemaEdge::Projection {
                    relation: rel.name.clone(),
                    attribute: aref,
                });
            }
        }
        for fk in &schema.foreign_keys {
            edges.push(SchemaEdge::JoinFkPk(fk.clone()));
        }
        SchemaGraph {
            schema: schema.clone(),
            vertices,
            edges,
            weights: HashMap::new(),
        }
    }

    /// The underlying schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// All vertices.
    pub fn vertices(&self) -> &[VertexKind] {
        &self.vertices
    }

    /// All edges.
    pub fn edges(&self) -> &[SchemaEdge] {
        &self.edges
    }

    /// Number of relation vertices.
    pub fn relation_count(&self) -> usize {
        self.vertices.iter().filter(|v| v.is_relation()).count()
    }

    /// Number of attribute vertices.
    pub fn attribute_count(&self) -> usize {
        self.vertices.len() - self.relation_count()
    }

    /// Number of FK-PK join edges.
    pub fn join_edge_count(&self) -> usize {
        self.edges
            .iter()
            .filter(|e| matches!(e, SchemaEdge::JoinFkPk(_)))
            .count()
    }

    /// Set the weight of the join edges between two relations (symmetric).
    /// The default weight of every edge is 1.
    pub fn set_relation_weight(&mut self, a: &str, b: &str, weight: f64) {
        let key = Self::weight_key(a, b);
        self.weights.insert(key, weight.clamp(0.0, 1.0));
    }

    /// Clear all custom weights (restoring the default weight function).
    pub fn clear_weights(&mut self) {
        self.weights.clear();
    }

    /// The weight of the join edges between two relations: the custom weight
    /// if one was set, else 1 (the paper's default weight function).
    pub fn relation_weight(&self, a: &str, b: &str) -> f64 {
        self.weights
            .get(&Self::weight_key(a, b))
            .copied()
            .unwrap_or(1.0)
    }

    fn weight_key(a: &str, b: &str) -> (String, String) {
        let a = a.to_lowercase();
        let b = b.to_lowercase();
        if a <= b {
            (a, b)
        } else {
            (b, a)
        }
    }

    /// The foreign keys connecting two relations (in either direction).
    pub fn foreign_keys_between(&self, a: &str, b: &str) -> Vec<&ForeignKey> {
        self.schema
            .foreign_keys
            .iter()
            .filter(|fk| {
                (fk.from_relation.eq_ignore_ascii_case(a) && fk.to_relation.eq_ignore_ascii_case(b))
                    || (fk.from_relation.eq_ignore_ascii_case(b)
                        && fk.to_relation.eq_ignore_ascii_case(a))
            })
            .collect()
    }

    /// Relations directly joinable with `relation` (distinct, sorted).
    pub fn neighbours(&self, relation: &str) -> Vec<String> {
        let mut out: Vec<String> = self
            .schema
            .foreign_keys
            .iter()
            .filter_map(|fk| {
                if fk.from_relation.eq_ignore_ascii_case(relation) {
                    Some(fk.to_relation.clone())
                } else if fk.to_relation.eq_ignore_ascii_case(relation) {
                    Some(fk.from_relation.clone())
                } else {
                    None
                }
            })
            .collect();
        out.sort();
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relational::DataType;

    fn mini_schema() -> Schema {
        Schema::builder("mini")
            .relation(
                "publication",
                &[
                    ("pid", DataType::Integer),
                    ("title", DataType::Text),
                    ("jid", DataType::Integer),
                ],
                Some("pid"),
            )
            .relation(
                "journal",
                &[("jid", DataType::Integer), ("name", DataType::Text)],
                Some("jid"),
            )
            .relation(
                "writes",
                &[("aid", DataType::Integer), ("pid", DataType::Integer)],
                None,
            )
            .relation(
                "author",
                &[("aid", DataType::Integer), ("name", DataType::Text)],
                Some("aid"),
            )
            .foreign_key("publication", "jid", "journal", "jid")
            .foreign_key("writes", "pid", "publication", "pid")
            .foreign_key("writes", "aid", "author", "aid")
            .build()
    }

    #[test]
    fn graph_has_expected_vertex_and_edge_counts() {
        let g = SchemaGraph::from_schema(&mini_schema());
        assert_eq!(g.relation_count(), 4);
        assert_eq!(g.attribute_count(), 9);
        assert_eq!(g.join_edge_count(), 3);
        // projection edges = one per attribute
        assert_eq!(g.edges().len(), 9 + 3);
    }

    #[test]
    fn default_weight_is_one_and_can_be_overridden() {
        let mut g = SchemaGraph::from_schema(&mini_schema());
        assert_eq!(g.relation_weight("publication", "journal"), 1.0);
        g.set_relation_weight("journal", "publication", 0.25);
        assert_eq!(g.relation_weight("publication", "journal"), 0.25);
        assert_eq!(g.relation_weight("Publication", "JOURNAL"), 0.25);
        g.clear_weights();
        assert_eq!(g.relation_weight("publication", "journal"), 1.0);
    }

    #[test]
    fn neighbours_follow_fk_edges_both_ways() {
        let g = SchemaGraph::from_schema(&mini_schema());
        assert_eq!(g.neighbours("publication"), vec!["journal", "writes"]);
        assert_eq!(g.neighbours("author"), vec!["writes"]);
        assert!(g.neighbours("journal").contains(&"publication".to_string()));
    }

    #[test]
    fn foreign_keys_between_is_symmetric() {
        let g = SchemaGraph::from_schema(&mini_schema());
        assert_eq!(g.foreign_keys_between("writes", "author").len(), 1);
        assert_eq!(g.foreign_keys_between("author", "writes").len(), 1);
        assert!(g.foreign_keys_between("author", "journal").is_empty());
    }
}
