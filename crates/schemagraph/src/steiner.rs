//! The Kou–Markowsky–Berman Steiner tree approximation \[21\].
//!
//! Join path inference is modelled as a Steiner tree problem (Section VI-A of
//! the paper): find a minimum-weight tree in the join graph spanning all
//! terminal relations.  KMB gives a 2(1 − 1/ℓ)-approximation and is the
//! algorithm the paper cites; it proceeds by
//!
//! 1. building the metric closure over the terminals (all-pairs shortest
//!    paths),
//! 2. taking a minimum spanning tree of that closure,
//! 3. expanding every closure edge back into its underlying shortest path,
//! 4. taking a minimum spanning tree of the expanded subgraph, and
//! 5. pruning non-terminal leaves.
//!
//! All tie-breaking is deterministic (by node / edge index) so experiments
//! are reproducible.

use crate::joingraph::{JoinGraph, NodeId};
use crate::joinpath::JoinPath;
use std::collections::{BTreeMap, BTreeSet};

/// Compute an (approximately) minimum-weight join path spanning `terminals`.
///
/// Returns `None` when the terminals cannot all be connected (disconnected
/// schema graph) or when `terminals` is empty.
pub fn steiner_tree(graph: &JoinGraph, terminals: &[NodeId]) -> Option<JoinPath> {
    steiner_tree_excluding(graph, terminals, &BTreeSet::new())
}

/// [`steiner_tree`], ignoring the edges whose indices appear in `excluded`.
/// Used to enumerate alternative join paths.
pub fn steiner_tree_excluding(
    graph: &JoinGraph,
    terminals: &[NodeId],
    excluded: &BTreeSet<usize>,
) -> Option<JoinPath> {
    let mut terms: Vec<NodeId> = terminals.to_vec();
    terms.sort_unstable();
    terms.dedup();
    if terms.is_empty() {
        return None;
    }
    if terms.len() == 1 {
        return Some(JoinPath::single(terms[0]));
    }

    // Step 1: shortest paths between every pair of terminals.
    let mut pair_paths: BTreeMap<(NodeId, NodeId), (f64, Vec<usize>)> = BTreeMap::new();
    for (i, &a) in terms.iter().enumerate() {
        for &b in terms.iter().skip(i + 1) {
            let (cost, path) = shortest_path_excluding(graph, a, b, excluded)?;
            pair_paths.insert((a, b), (cost, path));
        }
    }

    // Step 2: MST over the terminal metric closure (Prim, deterministic).
    let mut in_tree: BTreeSet<NodeId> = BTreeSet::new();
    in_tree.insert(terms[0]);
    let mut closure_edges: Vec<(NodeId, NodeId)> = Vec::new();
    while in_tree.len() < terms.len() {
        let mut best: Option<(f64, NodeId, NodeId)> = None;
        for &a in &in_tree {
            for &b in &terms {
                if in_tree.contains(&b) {
                    continue;
                }
                let key = if a < b { (a, b) } else { (b, a) };
                let cost = pair_paths[&key].0;
                let candidate = (cost, a, b);
                if best.map(|bst| candidate < bst).unwrap_or(true) {
                    best = Some(candidate);
                }
            }
        }
        let (_, a, b) = best?;
        closure_edges.push(if a < b { (a, b) } else { (b, a) });
        in_tree.insert(a);
        in_tree.insert(b);
    }

    // Step 3: expand closure edges into the underlying graph edges.
    let mut sub_edges: BTreeSet<usize> = BTreeSet::new();
    for (a, b) in &closure_edges {
        for &ei in &pair_paths[&(*a, *b)].1 {
            sub_edges.insert(ei);
        }
    }

    // Step 4: MST of the expanded subgraph (Kruskal with union-find).
    let mut nodes: BTreeSet<NodeId> = terms.iter().copied().collect();
    for &ei in &sub_edges {
        let e = &graph.edges()[ei];
        nodes.insert(e.fk_node);
        nodes.insert(e.pk_node);
    }
    let mut sorted_edges: Vec<usize> = sub_edges.iter().copied().collect();
    sorted_edges.sort_by(|&a, &b| {
        graph.edges()[a]
            .weight
            .partial_cmp(&graph.edges()[b].weight)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    let mut parent: BTreeMap<NodeId, NodeId> = nodes.iter().map(|&n| (n, n)).collect();
    fn find(parent: &mut BTreeMap<NodeId, NodeId>, x: NodeId) -> NodeId {
        let p = parent[&x];
        if p == x {
            x
        } else {
            let root = find(parent, p);
            parent.insert(x, root);
            root
        }
    }
    let mut mst_edges: Vec<usize> = Vec::new();
    for ei in sorted_edges {
        let e = &graph.edges()[ei];
        let (ra, rb) = (find(&mut parent, e.fk_node), find(&mut parent, e.pk_node));
        if ra != rb {
            parent.insert(ra, rb);
            mst_edges.push(ei);
        }
    }

    // Step 5: prune non-terminal leaves repeatedly.
    let term_set: BTreeSet<NodeId> = terms.iter().copied().collect();
    loop {
        let mut degree: BTreeMap<NodeId, usize> = BTreeMap::new();
        for &ei in &mst_edges {
            let e = &graph.edges()[ei];
            *degree.entry(e.fk_node).or_insert(0) += 1;
            *degree.entry(e.pk_node).or_insert(0) += 1;
        }
        let before = mst_edges.len();
        mst_edges.retain(|&ei| {
            let e = &graph.edges()[ei];
            let fk_prunable = degree[&e.fk_node] == 1 && !term_set.contains(&e.fk_node);
            let pk_prunable = degree[&e.pk_node] == 1 && !term_set.contains(&e.pk_node);
            !(fk_prunable || pk_prunable)
        });
        if mst_edges.len() == before {
            break;
        }
    }

    // Assemble the result.
    let mut final_nodes: BTreeSet<NodeId> = term_set.clone();
    let mut total = 0.0;
    for &ei in &mst_edges {
        let e = &graph.edges()[ei];
        final_nodes.insert(e.fk_node);
        final_nodes.insert(e.pk_node);
        total += e.weight;
    }
    let path = JoinPath {
        nodes: final_nodes.into_iter().collect(),
        edges: mst_edges,
        terminals: terms,
        total_weight: total,
    };
    if path.is_valid_tree(graph) {
        Some(path)
    } else {
        None
    }
}

/// Enumerate up to `k` distinct join paths spanning `terminals`, best first.
///
/// The first entry is the KMB tree; alternatives are produced by excluding
/// each edge of already-found trees and re-solving, a standard "spur"
/// strategy that is sufficient to surface the shortest-but-wrong and the
/// longer-but-common paths the experiments compare.
pub fn k_best_join_paths(graph: &JoinGraph, terminals: &[NodeId], k: usize) -> Vec<JoinPath> {
    let mut results: Vec<JoinPath> = Vec::new();
    let Some(best) = steiner_tree(graph, terminals) else {
        return results;
    };
    let mut frontier: Vec<BTreeSet<usize>> = vec![BTreeSet::new()];
    results.push(best);
    let mut seen_edge_sets: BTreeSet<Vec<usize>> = results
        .iter()
        .map(|p| {
            let mut e = p.edges.clone();
            e.sort_unstable();
            e
        })
        .collect();
    let mut round = 0;
    while results.len() < k && round < results.len() {
        let base = results[round].clone();
        let base_exclusions = frontier.get(round).cloned().unwrap_or_default();
        for &ei in &base.edges {
            let mut excl = base_exclusions.clone();
            excl.insert(ei);
            if let Some(alt) = steiner_tree_excluding(graph, terminals, &excl) {
                let mut key = alt.edges.clone();
                key.sort_unstable();
                if seen_edge_sets.insert(key) {
                    results.push(alt);
                    frontier.push(excl);
                    if results.len() >= k {
                        break;
                    }
                }
            }
        }
        round += 1;
    }
    results.sort_by(|a, b| {
        b.score()
            .partial_cmp(&a.score())
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.edges.len().cmp(&b.edges.len()))
    });
    results.truncate(k);
    results
}

/// Dijkstra shortest path that skips excluded edges.
fn shortest_path_excluding(
    graph: &JoinGraph,
    from: NodeId,
    to: NodeId,
    excluded: &BTreeSet<usize>,
) -> Option<(f64, Vec<usize>)> {
    if excluded.is_empty() {
        return graph.shortest_path(from, to);
    }
    if from == to {
        return Some((0.0, Vec::new()));
    }
    let n = graph.nodes().len();
    let mut dist = vec![f64::INFINITY; n];
    let mut prev_edge: Vec<Option<usize>> = vec![None; n];
    let mut visited = vec![false; n];
    dist[from] = 0.0;
    for _ in 0..n {
        let mut current = None;
        let mut best = f64::INFINITY;
        for (i, &d) in dist.iter().enumerate() {
            if !visited[i] && d < best {
                best = d;
                current = Some(i);
            }
        }
        let Some(u) = current else { break };
        visited[u] = true;
        for &ei in graph.incident_edges(u) {
            if excluded.contains(&ei) {
                continue;
            }
            let e = &graph.edges()[ei];
            let v = e.other(u);
            let cand = dist[u] + e.weight.max(1e-6);
            if cand + 1e-12 < dist[v] {
                dist[v] = cand;
                prev_edge[v] = Some(ei);
            }
        }
    }
    if dist[to].is_infinite() {
        return None;
    }
    let mut path = Vec::new();
    let mut cur = to;
    while cur != from {
        let ei = prev_edge[cur]?;
        path.push(ei);
        cur = graph.edges()[ei].other(cur);
    }
    path.reverse();
    Some((dist[to], path))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::SchemaGraph;
    use relational::{DataType, Schema};

    /// A miniature version of the MAS schema from Figure 1: publication can
    /// reach domain either through conference (2 hops) or through
    /// keyword (3 hops via publication_keyword, keyword, domain_keyword).
    fn mas_like_schema() -> Schema {
        Schema::builder("mas_mini")
            .relation(
                "publication",
                &[
                    ("pid", DataType::Integer),
                    ("title", DataType::Text),
                    ("cid", DataType::Integer),
                ],
                Some("pid"),
            )
            .relation(
                "conference",
                &[("cid", DataType::Integer), ("name", DataType::Text)],
                Some("cid"),
            )
            .relation(
                "domain_conference",
                &[("cid", DataType::Integer), ("did", DataType::Integer)],
                None,
            )
            .relation(
                "domain",
                &[("did", DataType::Integer), ("name", DataType::Text)],
                Some("did"),
            )
            .relation(
                "publication_keyword",
                &[("pid", DataType::Integer), ("kid", DataType::Integer)],
                None,
            )
            .relation(
                "keyword",
                &[("kid", DataType::Integer), ("keyword", DataType::Text)],
                Some("kid"),
            )
            .relation(
                "domain_keyword",
                &[("kid", DataType::Integer), ("did", DataType::Integer)],
                None,
            )
            .foreign_key("publication", "cid", "conference", "cid")
            .foreign_key("domain_conference", "cid", "conference", "cid")
            .foreign_key("domain_conference", "did", "domain", "did")
            .foreign_key("publication_keyword", "pid", "publication", "pid")
            .foreign_key("publication_keyword", "kid", "keyword", "kid")
            .foreign_key("domain_keyword", "kid", "keyword", "kid")
            .foreign_key("domain_keyword", "did", "domain", "did")
            .build()
    }

    fn graph() -> JoinGraph {
        JoinGraph::from_schema_graph(&SchemaGraph::from_schema(&mas_like_schema()))
    }

    #[test]
    fn single_terminal_yields_trivial_path() {
        let g = graph();
        let p = steiner_tree(&g, &[g.node_of("publication").unwrap()]).unwrap();
        assert!(p.is_empty());
        assert_eq!(p.nodes.len(), 1);
    }

    #[test]
    fn empty_terminals_yield_none() {
        let g = graph();
        assert!(steiner_tree(&g, &[]).is_none());
    }

    #[test]
    fn default_weights_pick_the_shortest_path() {
        // With unit weights, publication -> domain goes through conference
        // (3 edges) rather than through keyword (4 edges): exactly the
        // unintended behaviour of Example 2 in the paper.
        let g = graph();
        let terminals = [
            g.node_of("publication").unwrap(),
            g.node_of("domain").unwrap(),
        ];
        let p = steiner_tree(&g, &terminals).unwrap();
        let names = p.relation_names(&g);
        assert!(
            names.contains(&"conference".to_string()),
            "path was {names:?}"
        );
        assert!(!names.contains(&"keyword".to_string()));
        assert_eq!(p.edges.len(), 3);
        assert!(p.is_valid_tree(&g));
    }

    #[test]
    fn log_weights_can_prefer_the_longer_keyword_path() {
        // Lowering the weights along the keyword path (as the query log does
        // in Example 3) makes the 4-edge path cheaper than the 3-edge one.
        let sg = {
            let mut sg = SchemaGraph::from_schema(&mas_like_schema());
            sg.set_relation_weight("publication", "publication_keyword", 0.1);
            sg.set_relation_weight("publication_keyword", "keyword", 0.1);
            sg.set_relation_weight("keyword", "domain_keyword", 0.1);
            sg.set_relation_weight("domain_keyword", "domain", 0.1);
            sg
        };
        let g = JoinGraph::from_schema_graph(&sg);
        let terminals = [
            g.node_of("publication").unwrap(),
            g.node_of("domain").unwrap(),
        ];
        let p = steiner_tree(&g, &terminals).unwrap();
        let names = p.relation_names(&g);
        assert!(names.contains(&"keyword".to_string()), "path was {names:?}");
        assert!(!names.contains(&"conference".to_string()));
        assert!(p.is_valid_tree(&g));
    }

    #[test]
    fn three_terminals_form_a_tree() {
        let g = graph();
        let terminals = [
            g.node_of("publication").unwrap(),
            g.node_of("domain").unwrap(),
            g.node_of("keyword").unwrap(),
        ];
        let p = steiner_tree(&g, &terminals).unwrap();
        assert!(p.is_valid_tree(&g));
        for t in terminals {
            assert!(p.nodes.contains(&t));
        }
    }

    #[test]
    fn k_best_returns_distinct_paths_in_score_order() {
        let g = graph();
        let terminals = [
            g.node_of("publication").unwrap(),
            g.node_of("domain").unwrap(),
        ];
        let paths = k_best_join_paths(&g, &terminals, 3);
        assert!(paths.len() >= 2, "expected at least two alternative paths");
        for w in paths.windows(2) {
            assert!(w[0].score() >= w[1].score());
        }
        // All paths are valid trees spanning the terminals.
        for p in &paths {
            assert!(p.is_valid_tree(&g));
        }
        // The best path and the runner-up differ.
        assert_ne!(paths[0].edges, paths[1].edges);
    }

    #[test]
    fn disconnected_terminals_return_none() {
        let schema = Schema::builder("disc")
            .relation("a", &[("id", DataType::Integer)], Some("id"))
            .relation("b", &[("id", DataType::Integer)], Some("id"))
            .build();
        let g = JoinGraph::from_schema_graph(&SchemaGraph::from_schema(&schema));
        let t = [g.node_of("a").unwrap(), g.node_of("b").unwrap()];
        assert!(steiner_tree(&g, &t).is_none());
        assert!(k_best_join_paths(&g, &t, 3).is_empty());
    }

    #[test]
    fn steiner_on_forked_graph_spans_both_instances() {
        // Example 7: two author instances plus publication.
        let schema = Schema::builder("selfjoin")
            .relation(
                "author",
                &[("aid", DataType::Integer), ("name", DataType::Text)],
                Some("aid"),
            )
            .relation(
                "writes",
                &[("aid", DataType::Integer), ("pid", DataType::Integer)],
                None,
            )
            .relation(
                "publication",
                &[("pid", DataType::Integer), ("title", DataType::Text)],
                Some("pid"),
            )
            .foreign_key("writes", "aid", "author", "aid")
            .foreign_key("writes", "pid", "publication", "pid")
            .build();
        let mut g = JoinGraph::from_schema_graph(&SchemaGraph::from_schema(&schema));
        let author2 = g.fork("author").unwrap();
        let terminals = [
            g.node_of("author").unwrap(),
            author2,
            g.node_of("publication").unwrap(),
        ];
        let p = steiner_tree(&g, &terminals).unwrap();
        assert!(p.is_valid_tree(&g));
        let names = p.relation_names(&g);
        assert_eq!(
            names,
            vec!["author", "author", "publication", "writes", "writes"]
        );
    }
}
