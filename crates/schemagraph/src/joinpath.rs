//! Join paths (Definition 2) and their scoring.

use crate::joingraph::{JoinGraph, NodeId};
use std::collections::BTreeSet;

/// The similarity-oriented join-path score used everywhere a path is ranked
/// or explained: 1 for a single-relation path, otherwise
/// `1 / (1 + Σw/√|E| + 0.1·|E|)` — the paper's cost-like `Σw / |E|²` turned
/// into a larger-is-better value in `(0, 1]`.  The one definition shared by
/// [`JoinPath::score`] and the wire-facing explanation recomputation, so
/// tuning it can never silently desynchronise the two.
pub fn join_path_score(total_weight: f64, edges: usize) -> f64 {
    if edges == 0 {
        return 1.0;
    }
    let e = edges as f64;
    1.0 / (1.0 + total_weight / e.sqrt() + 0.1 * e)
}

/// A join condition between two relation instances, ready to be rendered as
/// `left.attr = right.attr` in a WHERE clause.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinCondition {
    /// The relation instance on the foreign-key side.
    pub fk_node: NodeId,
    /// The foreign-key attribute.
    pub fk_attr: String,
    /// The relation instance on the primary-key side.
    pub pk_node: NodeId,
    /// The primary-key attribute.
    pub pk_attr: String,
}

/// A join path: a tree of relation instances spanning a set of terminals
/// (Definition 2 of the paper).
#[derive(Debug, Clone, PartialEq)]
pub struct JoinPath {
    /// The relation instances in the tree (sorted, deduplicated).
    pub nodes: Vec<NodeId>,
    /// Indices of the join-graph edges forming the tree.
    pub edges: Vec<usize>,
    /// The terminal nodes the tree was required to span.
    pub terminals: Vec<NodeId>,
    /// Total weight of the tree's edges.
    pub total_weight: f64,
}

impl JoinPath {
    /// A trivial join path over a single relation instance (no joins).
    pub fn single(node: NodeId) -> Self {
        JoinPath {
            nodes: vec![node],
            edges: Vec::new(),
            terminals: vec![node],
            total_weight: 0.0,
        }
    }

    /// The paper's join path score: `Score_j = (Σ w) / |E_j|²`, normalised to
    /// 1 for a single-relation path (no join edges).
    ///
    /// Lower total weight and fewer edges both increase the score ranking
    /// position (the paper divides by `|E_j|²` precisely to prefer simpler
    /// paths); since the score is used for ranking candidates and combined
    /// with keyword-mapping scores, we return `1 / (1 + Σw)` scaled by the
    /// size normalisation so the value stays in `(0, 1]` and *larger is
    /// better*, matching how every other score in the system is oriented.
    pub fn score(&self) -> f64 {
        join_path_score(self.total_weight, self.edges.len())
    }

    /// The literal `Σ w / |E_j|²` value from the paper (kept for analysis and
    /// tests; not used directly for ranking because all other scores in the
    /// pipeline are similarity-oriented).
    pub fn raw_cost(&self) -> f64 {
        if self.edges.is_empty() {
            return 0.0;
        }
        self.total_weight / (self.edges.len() as f64).powi(2)
    }

    /// Number of join edges.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// True when the path involves a single relation instance.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// The join conditions of the path.
    pub fn join_conditions(&self, graph: &JoinGraph) -> Vec<JoinCondition> {
        self.edges
            .iter()
            .map(|&ei| {
                let e = &graph.edges()[ei];
                JoinCondition {
                    fk_node: e.fk_node,
                    fk_attr: e.fk.from_attribute.clone(),
                    pk_node: e.pk_node,
                    pk_attr: e.fk.to_attribute.clone(),
                }
            })
            .collect()
    }

    /// The relation instances of the path with their display labels, in node
    /// order.
    pub fn relation_labels(&self, graph: &JoinGraph) -> Vec<(NodeId, String)> {
        self.nodes
            .iter()
            .map(|&n| (n, graph.node(n).label()))
            .collect()
    }

    /// The relation names (with multiplicity) used by the path, sorted.
    pub fn relation_names(&self, graph: &JoinGraph) -> Vec<String> {
        let mut names: Vec<String> = self
            .nodes
            .iter()
            .map(|&n| graph.node(n).relation.clone())
            .collect();
        names.sort();
        names
    }

    /// Check structural validity: the edge set is acyclic, connected, covers
    /// exactly `nodes`, and spans every terminal.  Used by tests and debug
    /// assertions.
    pub fn is_valid_tree(&self, graph: &JoinGraph) -> bool {
        let node_set: BTreeSet<NodeId> = self.nodes.iter().copied().collect();
        if !self.terminals.iter().all(|t| node_set.contains(t)) {
            return false;
        }
        // A tree over n nodes has n-1 edges.
        if self.nodes.len() != self.edges.len() + 1 {
            return false;
        }
        // Connectivity check via union-find.
        let mut parent: Vec<usize> = (0..graph.nodes().len()).collect();
        fn find(parent: &mut Vec<usize>, x: usize) -> usize {
            if parent[x] != x {
                let root = find(parent, parent[x]);
                parent[x] = root;
            }
            parent[x]
        }
        for &ei in &self.edges {
            let e = &graph.edges()[ei];
            if !node_set.contains(&e.fk_node) || !node_set.contains(&e.pk_node) {
                return false;
            }
            let (a, b) = (find(&mut parent, e.fk_node), find(&mut parent, e.pk_node));
            if a == b {
                return false; // cycle
            }
            parent[a] = b;
        }
        let Some(&first) = self.nodes.first() else {
            return false;
        };
        let root = find(&mut parent, first);
        self.nodes.iter().all(|&n| find(&mut parent, n) == root)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::SchemaGraph;
    use relational::{DataType, Schema};

    fn chain_graph() -> JoinGraph {
        let schema = Schema::builder("chain")
            .relation("a", &[("id", DataType::Integer)], Some("id"))
            .relation(
                "b",
                &[("id", DataType::Integer), ("aid", DataType::Integer)],
                Some("id"),
            )
            .relation(
                "c",
                &[("id", DataType::Integer), ("bid", DataType::Integer)],
                Some("id"),
            )
            .foreign_key("b", "aid", "a", "id")
            .foreign_key("c", "bid", "b", "id")
            .build();
        JoinGraph::from_schema_graph(&SchemaGraph::from_schema(&schema))
    }

    fn chain_path(_g: &JoinGraph) -> JoinPath {
        JoinPath {
            nodes: vec![0, 1, 2],
            edges: vec![0, 1],
            terminals: vec![0, 2],
            total_weight: 2.0,
        }
    }

    #[test]
    fn single_relation_path_scores_one() {
        let p = JoinPath::single(3);
        assert_eq!(p.score(), 1.0);
        assert_eq!(p.raw_cost(), 0.0);
        assert!(p.is_empty());
    }

    #[test]
    fn join_conditions_follow_fk_orientation() {
        let g = chain_graph();
        let p = chain_path(&g);
        let conds = p.join_conditions(&g);
        assert_eq!(conds.len(), 2);
        assert_eq!(conds[0].fk_attr, "aid");
        assert_eq!(conds[0].pk_attr, "id");
    }

    #[test]
    fn raw_cost_matches_paper_formula() {
        let g = chain_graph();
        let p = chain_path(&g);
        assert!((p.raw_cost() - 2.0 / 4.0).abs() < 1e-9);
    }

    #[test]
    fn shorter_paths_score_higher() {
        let long = JoinPath {
            nodes: vec![0, 1, 2, 3, 4],
            edges: vec![0, 1, 2, 3],
            terminals: vec![0, 4],
            total_weight: 4.0,
        };
        let short = JoinPath {
            nodes: vec![0, 1],
            edges: vec![0],
            terminals: vec![0, 1],
            total_weight: 1.0,
        };
        assert!(short.score() > long.score());
    }

    #[test]
    fn lower_weight_scores_higher_at_equal_length() {
        let heavy = JoinPath {
            nodes: vec![0, 1, 2],
            edges: vec![0, 1],
            terminals: vec![0, 2],
            total_weight: 2.0,
        };
        let light = JoinPath {
            nodes: vec![0, 1, 2],
            edges: vec![0, 1],
            terminals: vec![0, 2],
            total_weight: 0.4,
        };
        assert!(light.score() > heavy.score());
    }

    #[test]
    fn validity_detects_bad_trees() {
        let g = chain_graph();
        let good = chain_path(&g);
        assert!(good.is_valid_tree(&g));
        let missing_terminal = JoinPath {
            nodes: vec![0, 1],
            edges: vec![0],
            terminals: vec![0, 2],
            total_weight: 1.0,
        };
        assert!(!missing_terminal.is_valid_tree(&g));
        let wrong_edge_count = JoinPath {
            nodes: vec![0, 1, 2],
            edges: vec![0],
            terminals: vec![0],
            total_weight: 1.0,
        };
        assert!(!wrong_edge_count.is_valid_tree(&g));
    }
}
