//! End-to-end loopback tests: real TCP round trips against a live
//! [`TemplarServer`], over both codecs, compared against the in-process
//! [`RegistryClient`] path — plus the admission ladder observed from the
//! wire.

use relational::{DataType, Database, Schema};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use templar_api::binary::{self, CodecError, WireCodec};
use templar_api::{
    decode_response, encode_request, ApiError, RequestBody, RequestEnvelope, TranslateRequest,
};
use templar_core::{Keyword, KeywordMetadata, QueryLog, TemplarConfig};
use templar_server::{ClientError, ServerConfig, TcpClient, TemplarServer};
use templar_service::{RegistryClient, ServiceConfig, TemplarService, TenantRegistry};

fn academic_db() -> Arc<Database> {
    let schema = Schema::builder("academic")
        .relation(
            "publication",
            &[
                ("pid", DataType::Integer),
                ("title", DataType::Text),
                ("year", DataType::Integer),
                ("jid", DataType::Integer),
            ],
            Some("pid"),
        )
        .relation(
            "journal",
            &[("jid", DataType::Integer), ("name", DataType::Text)],
            Some("jid"),
        )
        .foreign_key("publication", "jid", "journal", "jid")
        .build();
    let mut db = Database::new(schema);
    db.insert(
        "publication",
        vec![1.into(), "Query Processing".into(), 2003.into(), 1.into()],
    )
    .unwrap();
    db.insert("journal", vec![1.into(), "TKDE".into()]).unwrap();
    Arc::new(db)
}

fn registry_with(config: ServiceConfig) -> Arc<TenantRegistry> {
    let registry = Arc::new(TenantRegistry::new());
    let service = TemplarService::spawn(
        academic_db(),
        &QueryLog::new(),
        TemplarConfig::paper_defaults(),
        config,
    )
    .unwrap();
    registry.register("academic", service);
    registry
}

fn papers_request() -> TranslateRequest {
    TranslateRequest::new(
        "academic",
        "return the papers",
        vec![(Keyword::new("papers"), KeywordMetadata::select())],
    )
}

#[test]
fn both_codecs_match_the_in_process_client_byte_for_byte() {
    let registry = registry_with(ServiceConfig::default());
    let server = TemplarServer::start(Arc::clone(&registry), ServerConfig::default()).unwrap();
    let addr = server.local_addr();

    let in_process = RegistryClient::new(&registry);
    let expected = in_process.translate(papers_request()).unwrap();

    let mut json = TcpClient::connect_json(addr).unwrap();
    let mut binary = TcpClient::connect_binary(addr).unwrap();
    assert_eq!(binary.codec(), WireCodec::Binary);
    let via_json = json.translate(papers_request()).unwrap();
    let via_binary = binary.translate(papers_request()).unwrap();

    // The three transports must agree on the entire explained response —
    // scores, explanations, everything (f64s survive both codecs exactly).
    assert_eq!(expected, via_json);
    assert_eq!(expected, via_binary);
    assert!(!expected.candidates.is_empty(), "fixture should translate");

    // The write path and observability surface round-trip too.
    binary
        .submit_sql("academic", "SELECT p.title FROM publication p")
        .unwrap();
    json.feedback(
        "academic",
        "SELECT p.title FROM publication p WHERE p.year > 2000",
    )
    .unwrap();
    let report = binary.metrics("academic").unwrap();
    assert!(report.translations_served >= 1);
    let slow = json.slow_queries("academic").unwrap();
    assert!(slow.len() <= 32);
    let prom = binary.prometheus(Some("academic")).unwrap();
    assert!(prom.contains("templar_translations_total"));

    let stats = server.stats();
    assert!(stats.json_requests >= 2 && stats.binary_requests >= 3);
    assert_eq!(stats.connections_accepted, 2);
}

#[test]
fn negotiated_json_session_matches_the_binary_one() {
    let registry = registry_with(ServiceConfig::default());
    let server = TemplarServer::start(Arc::clone(&registry), ServerConfig::default()).unwrap();

    // Cross-negotiation: the handshake machinery granting JSON must yield
    // the same responses as a binary session on the same server.
    let mut negotiated =
        TcpClient::connect_negotiated(server.local_addr(), WireCodec::Json).unwrap();
    assert_eq!(negotiated.codec(), WireCodec::Json);
    let mut binary = TcpClient::connect_binary(server.local_addr()).unwrap();

    let a = negotiated.translate(papers_request()).unwrap();
    let b = binary.translate(papers_request()).unwrap();
    assert_eq!(a, b);
}

#[test]
fn pipelined_requests_complete_out_of_order_under_their_ids() {
    let registry = registry_with(ServiceConfig::default());
    let server = TemplarServer::start(Arc::clone(&registry), ServerConfig::default()).unwrap();

    let mut client = TcpClient::connect_binary(server.local_addr()).unwrap();
    let ids: Vec<u64> = (0..6)
        .map(|_| {
            client
                .send(RequestBody::Translate(papers_request()))
                .unwrap()
        })
        .collect();
    // Collect newest-first: every response must still land on its own id.
    for id in ids.iter().rev() {
        match client.recv(*id).unwrap() {
            templar_api::ResponseBody::Translated(response) => {
                assert!(!response.candidates.is_empty())
            }
            other => panic!("wrong body for id {id}: {other:?}"),
        }
    }
}

#[test]
fn netcat_style_json_lines_need_no_handshake() {
    let registry = registry_with(ServiceConfig::default());
    let server = TemplarServer::start(Arc::clone(&registry), ServerConfig::default()).unwrap();

    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    // A malformed line gets a typed error envelope, not a hangup.
    stream.write_all(b"this is not json\n").unwrap();
    let line = read_line(&mut stream);
    let envelope = decode_response(&line).unwrap();
    assert!(matches!(
        envelope.into_result(),
        Err(ApiError::MalformedEnvelope { .. })
    ));

    // The same connection still serves a well-formed request afterwards.
    let request = encode_request(&RequestEnvelope::new(
        7,
        RequestBody::Metrics {
            tenant: "academic".to_string(),
        },
    ));
    stream.write_all(request.as_bytes()).unwrap();
    stream.write_all(b"\n").unwrap();
    let envelope = decode_response(&read_line(&mut stream)).unwrap();
    assert_eq!(envelope.id, 7);
    assert!(envelope.into_result().is_ok());
}

#[test]
fn version_mismatch_hello_gets_a_rejecting_ack_and_a_close() {
    let registry = registry_with(ServiceConfig::default());
    let server = TemplarServer::start(Arc::clone(&registry), ServerConfig::default()).unwrap();

    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    let mut hello = binary::encode_hello(WireCodec::Binary);
    hello[4..8].copy_from_slice(&99u32.to_le_bytes());
    stream.write_all(&hello).unwrap();

    let mut ack = [0u8; binary::HANDSHAKE_LEN];
    stream.read_exact(&mut ack).unwrap();
    assert_eq!(binary::decode_ack(&ack), Err(CodecError::Rejected));
    let mut rest = Vec::new();
    stream.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty(), "server closes after rejecting the hello");

    // The client constructor surfaces the same outcome typed.
    let mut bad_hello_client = TcpClient::connect_binary(server.local_addr());
    assert!(bad_hello_client.is_ok(), "well-formed hello still accepted");
    let response = bad_hello_client.as_mut().unwrap().metrics("academic");
    assert!(response.is_ok());
}

#[test]
fn tenant_quota_sheds_typed_backpressure_visible_in_prometheus() {
    let registry = registry_with(ServiceConfig::default().with_max_inflight(1));
    let server = TemplarServer::start(Arc::clone(&registry), ServerConfig::default()).unwrap();
    let mut client = TcpClient::connect_binary(server.local_addr()).unwrap();

    // Fill the tenant's single-slot quota from the side, deterministically.
    let service = registry.get("academic").unwrap();
    let permit = service.try_admit().expect("quota starts empty");

    let err = client.submit_sql("academic", "SELECT p.title FROM publication p");
    match err {
        Err(ClientError::Api(ApiError::Backpressure)) => {}
        other => panic!("expected typed Backpressure over the wire, got {other:?}"),
    }

    // Observability stays readable while the quota is full…
    let prom = client.prometheus(Some("academic")).unwrap();
    assert!(
        prom.contains("templar_admission_tenant_shed_total{tenant=\"academic\"} 1"),
        "shed counter must be exported:\n{prom}"
    );

    // …and the slot frees on permit drop.
    drop(permit);
    client
        .submit_sql("academic", "SELECT p.title FROM publication p")
        .unwrap();
}

#[test]
fn health_is_answered_while_admission_is_shedding() {
    let registry = registry_with(ServiceConfig::default().with_max_inflight(1));
    let server = TemplarServer::start(Arc::clone(&registry), ServerConfig::default()).unwrap();
    let mut client = TcpClient::connect_binary(server.local_addr()).unwrap();

    let service = registry.get("academic").unwrap();
    let permit = service.try_admit().expect("quota starts empty");

    // Admission-controlled work is shed…
    match client.submit_sql("academic", "SELECT p.title FROM publication p") {
        Err(ClientError::Api(ApiError::Backpressure)) => {}
        other => panic!("expected typed Backpressure over the wire, got {other:?}"),
    }

    // …but Health is exempt: an operator diagnosing the overload must be
    // able to see the state that explains it.
    let report = client.health("academic").unwrap();
    assert_eq!(report.state, "healthy");
    assert_eq!(report.health_state, 0);
    assert_eq!(report.degraded_entries_total, 0);
    drop(permit);
}

#[test]
fn global_inflight_cap_sheds_under_concurrent_load() {
    let registry = registry_with(ServiceConfig::default());
    let config = ServerConfig::default()
        .with_workers(4)
        .with_max_global_inflight(1);
    let server = TemplarServer::start(Arc::clone(&registry), config).unwrap();
    let addr = server.local_addr();

    let mut sheds = 0u64;
    let mut successes = 0u64;
    for _round in 0..10 {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(move || {
                    let mut client = TcpClient::connect_binary(addr).unwrap();
                    let mut ok = 0u64;
                    let mut shed = 0u64;
                    let ids: Vec<u64> = (0..16)
                        .map(|_| {
                            client
                                .send(RequestBody::Translate(papers_request()))
                                .unwrap()
                        })
                        .collect();
                    for id in ids {
                        match client.recv(id) {
                            Ok(_) => ok += 1,
                            Err(ClientError::Api(ApiError::Backpressure)) => shed += 1,
                            Err(other) => panic!("unexpected failure: {other:?}"),
                        }
                    }
                    (ok, shed)
                })
            })
            .collect();
        for handle in handles {
            let (ok, shed) = handle.join().unwrap();
            successes += ok;
            sheds += shed;
        }
        if sheds > 0 {
            break;
        }
    }
    assert!(successes > 0, "the plane must keep serving under overload");
    assert!(
        sheds > 0,
        "4 workers against a global cap of 1 must shed some requests"
    );
    assert_eq!(server.stats().global_sheds, sheds);

    // Global sheds are attributed to the tenant they targeted.
    let prom = TcpClient::connect_json(addr)
        .unwrap()
        .prometheus(Some("academic"))
        .unwrap();
    let line = prom
        .lines()
        .find(|l| l.starts_with("templar_admission_global_shed_total"))
        .expect("global shed family exported");
    assert_eq!(
        line,
        &format!("templar_admission_global_shed_total{{tenant=\"academic\"}} {sheds}")
    );
}

#[test]
fn connection_cap_rejects_at_accept_time() {
    let registry = registry_with(ServiceConfig::default());
    let config = ServerConfig::default().with_max_connections(1);
    let server = TemplarServer::start(Arc::clone(&registry), config).unwrap();

    let mut first = TcpClient::connect_json(server.local_addr()).unwrap();
    first.metrics("academic").unwrap();

    let mut second = TcpStream::connect(server.local_addr()).unwrap();
    let mut turned_away = String::new();
    second.read_to_string(&mut turned_away).unwrap();
    let envelope = decode_response(turned_away.trim()).unwrap();
    assert_eq!(envelope.id, 0, "no request was read, so no id to echo");
    assert!(matches!(
        envelope.into_result(),
        Err(ApiError::Backpressure)
    ));

    // The admitted connection is unaffected.
    first.metrics("academic").unwrap();
    let stats = server.stats();
    assert_eq!(stats.connections_rejected, 1);
    assert_eq!(stats.connections_accepted, 1);
}

#[test]
fn oversized_binary_frame_is_answered_then_closed() {
    let registry = registry_with(ServiceConfig::default());
    let server = TemplarServer::start(Arc::clone(&registry), ServerConfig::default()).unwrap();

    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    stream
        .write_all(&binary::encode_hello(WireCodec::Binary))
        .unwrap();
    let mut ack = [0u8; binary::HANDSHAKE_LEN];
    stream.read_exact(&mut ack).unwrap();

    // Announce a frame bigger than the cap; the body never needs to exist.
    let huge = (binary::MAX_FRAME_BYTES as u32) + 1;
    stream.write_all(&huge.to_le_bytes()).unwrap();

    let mut len = [0u8; 4];
    stream.read_exact(&mut len).unwrap();
    let mut payload = vec![0u8; u32::from_le_bytes(len) as usize];
    stream.read_exact(&mut payload).unwrap();
    let (id, outcome) = binary::decode_response_frame(&payload).unwrap();
    assert_eq!(id, 0);
    assert!(matches!(outcome, Err(ApiError::MalformedEnvelope { .. })));

    let mut rest = Vec::new();
    stream.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty(), "connection closes after the typed answer");
}

#[test]
fn silent_connection_is_reaped_by_the_greeting_timeout() {
    let registry = registry_with(ServiceConfig::default());
    let config = ServerConfig::default().with_greeting_timeout_ms(100);
    let server = TemplarServer::start(Arc::clone(&registry), config).unwrap();

    // Connect and send nothing: a slowloris socket must not hold its
    // connection slot forever.
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(10)))
        .unwrap();
    let mut buf = [0u8; 1];
    let outcome = stream.read(&mut buf);
    assert!(
        matches!(outcome, Ok(0) | Err(_)),
        "server should close the never-greeting connection, got {outcome:?}"
    );
    let stats = server.stats();
    assert_eq!(stats.connections_timed_out, 1);
    assert_eq!(stats.connections_closed, 1);
}

#[test]
fn idle_greeted_connection_is_reaped_while_active_ones_survive() {
    let registry = registry_with(ServiceConfig::default());
    let config = ServerConfig::default()
        .with_greeting_timeout_ms(5_000)
        .with_idle_timeout_ms(250);
    let server = TemplarServer::start(Arc::clone(&registry), config).unwrap();

    let mut idle = TcpClient::connect_binary(server.local_addr()).unwrap();
    idle.metrics("academic").unwrap();

    // A second connection keeps talking through the idle window and must
    // be untouched by the sweep that reaps the quiet one.
    let mut active = TcpClient::connect_binary(server.local_addr()).unwrap();
    for _ in 0..8 {
        std::thread::sleep(std::time::Duration::from_millis(100));
        active.metrics("academic").unwrap();
    }

    assert!(
        idle.metrics("academic").is_err(),
        "idle connection should have been closed"
    );
    active.metrics("academic").unwrap();
    assert_eq!(server.stats().connections_timed_out, 1);
}

#[test]
fn poll_fallback_backend_serves_identically() {
    let registry = registry_with(ServiceConfig::default());
    let config = ServerConfig::default().with_force_poll(true);
    let server = TemplarServer::start(Arc::clone(&registry), config).unwrap();
    assert!(server.is_poll_fallback());

    let mut client = TcpClient::connect_binary(server.local_addr()).unwrap();
    let response = client.translate(papers_request()).unwrap();
    assert!(!response.candidates.is_empty());
}

#[test]
fn shutdown_closes_connections_and_joins_threads() {
    let registry = registry_with(ServiceConfig::default());
    let mut server = TemplarServer::start(Arc::clone(&registry), ServerConfig::default()).unwrap();
    let addr = server.local_addr();

    let mut client = TcpClient::connect_binary(addr).unwrap();
    client.metrics("academic").unwrap();

    server.shutdown();
    server.shutdown(); // idempotent

    // The old connection is gone and nothing new is accepted.
    let dead = client.metrics("academic");
    assert!(dead.is_err(), "socket must be closed after shutdown");
    assert!(
        TcpStream::connect(addr).is_err() || {
            let mut probe = TcpStream::connect(addr).unwrap();
            let mut buf = [0u8; 1];
            probe.write_all(b"\n").ok();
            matches!(probe.read(&mut buf), Ok(0) | Err(_))
        }
    );
}

fn read_line(stream: &mut TcpStream) -> String {
    let mut line = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        stream.read_exact(&mut byte).unwrap();
        if byte[0] == b'\n' {
            break;
        }
        line.push(byte[0]);
    }
    String::from_utf8(line).unwrap()
}
