//! **templar-server**: the network serving plane.
//!
//! `templar-service` ends at an in-process boundary: [`TenantRegistry`]
//! serves decoded requests and [`RegistryClient`] drives it through the
//! wire *encoding* but never an actual wire.  This crate puts real sockets
//! in front of that boundary, hand-rolled on the platform's own syscalls
//! (the workspace builds without crates.io):
//!
//! * [`poller`] *(internal)* — readiness over raw fds: `epoll` on Linux, a
//!   portable `poll` fallback elsewhere (and under
//!   [`ServerConfig::force_poll`], so the fallback stays exercised),
//! * [`server::TemplarServer`] — one reactor thread owning every socket
//!   (accept loop + per-connection state machines), a worker pool
//!   executing requests against the registry, completions flowing back
//!   through a wake pipe; connections multiplex and pipeline, responses
//!   complete out of order under their correlation ids,
//! * per-connection codec negotiation — a `TPLR` hello selects the
//!   length-prefixed binary codec or JSON; first bytes that are not the
//!   magic fall back to a bare JSON-lines session, so `nc` keeps working,
//! * layered admission control — accept-time connection cap, server-wide
//!   in-flight cap, the registry's per-tenant quota, and per-connection
//!   pipeline backpressure; every shed is a typed
//!   [`ApiError::Backpressure`](templar_api::ApiError::Backpressure)
//!   *before* work is queued, counted in the tenant's metrics and visible
//!   in the Prometheus exposition,
//! * [`client::TcpClient`] — the blocking socket client mirroring
//!   `RegistryClient`, with `send`/`recv` primitives for pipelining.
//!
//! [`TenantRegistry`]: templar_service::TenantRegistry
//! [`RegistryClient`]: templar_service::RegistryClient
//! [`ServerConfig::force_poll`]: server::ServerConfig

// The serving plane must never panic on a hostile peer or a failing disk:
// production code paths return typed errors instead of unwrapping.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod client;
mod conn;
mod poller;
pub mod server;

pub use client::{is_retryable, retry_with_deadline, ClientError, TcpClient};
pub use server::{ServerConfig, ServerStatsSnapshot, TemplarServer};
