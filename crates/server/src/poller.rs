//! Readiness polling over raw file descriptors — `epoll` on Linux, POSIX
//! `poll` everywhere else (and on Linux when explicitly forced, so the
//! fallback stays tested on the platform that never needs it).
//!
//! The syscalls are declared directly (`std` already links the platform's C
//! library, so no crate is needed): this keeps the serving plane
//! vendored-zero-dep like the rest of the workspace.  The surface is the
//! small readiness-API subset the reactor uses — level-triggered waits over
//! `(fd, token)` registrations, with read/write interest flipped as a
//! connection's buffers fill and drain.

use std::io;
use std::os::unix::io::RawFd;

/// One readiness notification.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Event {
    /// The registration's caller-chosen token.
    pub token: u64,
    /// The fd is readable (or has pending data before a hangup).
    pub readable: bool,
    /// The fd is writable.
    pub writable: bool,
    /// Error or peer hangup: the connection is finished either way.
    pub hangup: bool,
}

/// Readiness interest of one registration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Interest {
    pub readable: bool,
    pub writable: bool,
}

impl Interest {
    pub(crate) const READ: Interest = Interest {
        readable: true,
        writable: false,
    };
}

pub(crate) enum Poller {
    #[cfg(target_os = "linux")]
    Epoll(epoll::Epoll),
    Poll(fallback::PollSet),
}

impl Poller {
    /// Open a poller: `epoll` where available unless `force_poll` asks for
    /// the portable fallback.
    pub(crate) fn new(force_poll: bool) -> io::Result<Poller> {
        #[cfg(target_os = "linux")]
        {
            if !force_poll {
                return Ok(Poller::Epoll(epoll::Epoll::new()?));
            }
        }
        let _ = force_poll;
        Ok(Poller::Poll(fallback::PollSet::default()))
    }

    /// True when backed by the `poll` fallback (observable so tests can
    /// assert `force_poll` took effect).
    pub(crate) fn is_fallback(&self) -> bool {
        matches!(self, Poller::Poll(_))
    }

    pub(crate) fn register(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        match self {
            #[cfg(target_os = "linux")]
            Poller::Epoll(e) => e.ctl(epoll::EPOLL_CTL_ADD, fd, token, interest),
            Poller::Poll(p) => {
                p.entries.push(fallback::Entry {
                    fd,
                    token,
                    interest,
                });
                Ok(())
            }
        }
    }

    pub(crate) fn reregister(
        &mut self,
        fd: RawFd,
        token: u64,
        interest: Interest,
    ) -> io::Result<()> {
        match self {
            #[cfg(target_os = "linux")]
            Poller::Epoll(e) => e.ctl(epoll::EPOLL_CTL_MOD, fd, token, interest),
            Poller::Poll(p) => {
                for entry in &mut p.entries {
                    if entry.fd == fd {
                        entry.token = token;
                        entry.interest = interest;
                    }
                }
                Ok(())
            }
        }
    }

    pub(crate) fn deregister(&mut self, fd: RawFd) {
        match self {
            #[cfg(target_os = "linux")]
            Poller::Epoll(e) => {
                // Best-effort: the fd is being closed either way.
                let _ = e.ctl(epoll::EPOLL_CTL_DEL, fd, 0, Interest::READ);
            }
            Poller::Poll(p) => p.entries.retain(|entry| entry.fd != fd),
        }
    }

    /// Block up to `timeout_ms` for readiness, appending into `events`
    /// (cleared first).  A timeout simply leaves `events` empty.
    pub(crate) fn wait(&mut self, events: &mut Vec<Event>, timeout_ms: i32) -> io::Result<()> {
        events.clear();
        match self {
            #[cfg(target_os = "linux")]
            Poller::Epoll(e) => e.wait(events, timeout_ms),
            Poller::Poll(p) => p.wait(events, timeout_ms),
        }
    }
}

#[cfg(target_os = "linux")]
mod epoll {
    use super::{Event, Interest};
    use std::io;
    use std::os::unix::io::RawFd;

    pub(crate) const EPOLL_CTL_ADD: i32 = 1;
    pub(crate) const EPOLL_CTL_DEL: i32 = 2;
    pub(crate) const EPOLL_CTL_MOD: i32 = 3;

    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;

    /// The kernel's `struct epoll_event`.  On x86-64 the kernel ABI packs
    /// it (no padding between `events` and `data`); other architectures use
    /// natural alignment.
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout_ms: i32) -> i32;
        fn close(fd: i32) -> i32;
    }

    const EPOLL_CLOEXEC: i32 = 0o2000000;

    pub(crate) struct Epoll {
        epfd: RawFd,
        buf: Vec<EpollEvent>,
    }

    impl Epoll {
        pub(crate) fn new() -> io::Result<Epoll> {
            let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Epoll {
                epfd,
                buf: Vec::with_capacity(256),
            })
        }

        pub(crate) fn ctl(
            &mut self,
            op: i32,
            fd: RawFd,
            token: u64,
            interest: Interest,
        ) -> io::Result<()> {
            let mut mask = EPOLLRDHUP;
            if interest.readable {
                mask |= EPOLLIN;
            }
            if interest.writable {
                mask |= EPOLLOUT;
            }
            let mut event = EpollEvent {
                events: mask,
                data: token,
            };
            let rc = unsafe { epoll_ctl(self.epfd, op, fd, &mut event) };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        pub(crate) fn wait(&mut self, events: &mut Vec<Event>, timeout_ms: i32) -> io::Result<()> {
            self.buf.clear();
            let capacity = self.buf.capacity() as i32;
            let n = unsafe { epoll_wait(self.epfd, self.buf.as_mut_ptr(), capacity, timeout_ms) };
            if n < 0 {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    return Ok(());
                }
                return Err(err);
            }
            // SAFETY: the kernel initialized the first `n` entries.
            unsafe { self.buf.set_len(n as usize) };
            for raw in &self.buf {
                // Copy out of the (possibly packed) struct by value; never
                // take references into it.
                let mask = raw.events;
                let token = raw.data;
                events.push(Event {
                    token,
                    readable: mask & (EPOLLIN | EPOLLRDHUP | EPOLLHUP) != 0,
                    writable: mask & EPOLLOUT != 0,
                    hangup: mask & (EPOLLERR | EPOLLHUP) != 0,
                });
            }
            Ok(())
        }
    }

    impl Drop for Epoll {
        fn drop(&mut self) {
            unsafe { close(self.epfd) };
        }
    }
}

mod fallback {
    use super::{Event, Interest};
    use std::io;
    use std::os::raw::c_ulong;
    use std::os::unix::io::RawFd;

    const POLLIN: i16 = 0x001;
    const POLLOUT: i16 = 0x004;
    const POLLERR: i16 = 0x008;
    const POLLHUP: i16 = 0x010;

    /// POSIX `struct pollfd`.
    #[repr(C)]
    struct PollFd {
        fd: i32,
        events: i16,
        revents: i16,
    }

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: c_ulong, timeout_ms: i32) -> i32;
    }

    pub(crate) struct Entry {
        pub fd: RawFd,
        pub token: u64,
        pub interest: Interest,
    }

    #[derive(Default)]
    pub(crate) struct PollSet {
        pub entries: Vec<Entry>,
    }

    impl PollSet {
        pub(crate) fn wait(&mut self, events: &mut Vec<Event>, timeout_ms: i32) -> io::Result<()> {
            let mut fds: Vec<PollFd> = self
                .entries
                .iter()
                .map(|entry| {
                    let mut mask = 0i16;
                    if entry.interest.readable {
                        mask |= POLLIN;
                    }
                    if entry.interest.writable {
                        mask |= POLLOUT;
                    }
                    PollFd {
                        fd: entry.fd,
                        events: mask,
                        revents: 0,
                    }
                })
                .collect();
            let n = unsafe { poll(fds.as_mut_ptr(), fds.len() as c_ulong, timeout_ms) };
            if n < 0 {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    return Ok(());
                }
                return Err(err);
            }
            for (entry, fd) in self.entries.iter().zip(&fds) {
                let revents = fd.revents;
                if revents == 0 {
                    continue;
                }
                events.push(Event {
                    token: entry.token,
                    readable: revents & (POLLIN | POLLHUP) != 0,
                    writable: revents & POLLOUT != 0,
                    hangup: revents & (POLLERR | POLLHUP) != 0,
                });
            }
            Ok(())
        }
    }
}
