//! A blocking TCP client for the serving plane — the socket counterpart of
//! [`templar_service::RegistryClient`], speaking either codec.
//!
//! [`TcpClient::connect_json`] opens a bare JSON-lines session (what a
//! human with netcat gets); [`TcpClient::connect_binary`] and
//! [`TcpClient::connect_negotiated`] perform the `TPLR` handshake first.
//! The typed methods mirror `RegistryClient` one-for-one.  For pipelining,
//! [`send`](TcpClient::send) and [`recv`](TcpClient::recv) are exposed
//! directly: issue several sends, then collect each response by its
//! correlation id — responses arriving out of order are parked until their
//! id is asked for.

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};
use templar_api::binary::{self, CodecError, WireCodec, HANDSHAKE_LEN};
use templar_api::{
    decode_response, encode_request, ApiError, HealthReport, MetricsReport, RequestBody,
    RequestEnvelope, ResponseBody, SlowQueryReport, TranslateRequest, TranslateResponse,
};

/// Is this a transient serving condition worth retrying?  True for the
/// typed flow-control refusals — [`ApiError::Backpressure`] (queue or
/// admission pressure) and [`ApiError::Degraded`] (journal failing,
/// writes refused while reads keep serving).  Transport and codec errors
/// are *not* retryable on the same connection: the stream position is
/// gone.
pub fn is_retryable(error: &ClientError) -> bool {
    matches!(
        error,
        ClientError::Api(ApiError::Backpressure) | ClientError::Api(ApiError::Degraded)
    )
}

/// Run `op` until it succeeds, fails non-transiently, or `deadline`
/// elapses.  Sleeps with exponential backoff from `base` between attempts
/// (doubling, capped at one second, clipped to the remaining deadline);
/// the terminal error is the last observed one, so an expired deadline
/// still explains what the server kept answering.
pub fn retry_with_deadline<T>(
    deadline: Duration,
    base: Duration,
    mut op: impl FnMut() -> Result<T, ClientError>,
) -> Result<T, ClientError> {
    let started = Instant::now();
    let mut backoff = base.max(Duration::from_micros(100));
    loop {
        match op() {
            Ok(value) => return Ok(value),
            Err(error) if !is_retryable(&error) => return Err(error),
            Err(error) => {
                let elapsed = started.elapsed();
                if elapsed >= deadline {
                    return Err(error);
                }
                std::thread::sleep(backoff.min(deadline - elapsed));
                backoff = (backoff * 2).min(Duration::from_secs(1));
            }
        }
    }
}

/// Everything that can go wrong between a typed call and its typed answer.
#[derive(Debug)]
pub enum ClientError {
    /// The socket failed (includes a server that closed mid-response).
    Io(io::Error),
    /// The peer's bytes did not decode in the negotiated codec.
    Codec(CodecError),
    /// The server answered with a typed protocol error.
    Api(ApiError),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport failed: {e}"),
            ClientError::Codec(e) => write!(f, "undecodable response: {e}"),
            ClientError::Api(e) => write!(f, "server error: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

impl From<CodecError> for ClientError {
    fn from(e: CodecError) -> ClientError {
        ClientError::Codec(e)
    }
}

impl From<ApiError> for ClientError {
    fn from(e: ApiError) -> ClientError {
        ClientError::Api(e)
    }
}

/// A blocking protocol client over one TCP connection.
pub struct TcpClient {
    stream: TcpStream,
    codec: WireCodec,
    next_id: u64,
    /// Responses read while waiting for a different correlation id.
    parked: HashMap<u64, Result<ResponseBody, ApiError>>,
    inbuf: Vec<u8>,
}

impl TcpClient {
    /// Connect without a handshake: a bare JSON-lines session, exactly the
    /// bytes `nc` would exchange.
    pub fn connect_json(addr: impl ToSocketAddrs) -> Result<TcpClient, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(TcpClient {
            stream,
            codec: WireCodec::Json,
            next_id: 1,
            parked: HashMap::new(),
            inbuf: Vec::new(),
        })
    }

    /// Connect and negotiate the binary codec.
    pub fn connect_binary(addr: impl ToSocketAddrs) -> Result<TcpClient, ClientError> {
        Self::connect_negotiated(addr, WireCodec::Binary)
    }

    /// Connect and negotiate `codec` through the `TPLR` hello/ack
    /// handshake.  Fails with a typed [`CodecError`] when the server
    /// rejects the hello (e.g. a protocol-version mismatch).
    pub fn connect_negotiated(
        addr: impl ToSocketAddrs,
        codec: WireCodec,
    ) -> Result<TcpClient, ClientError> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        stream.write_all(&binary::encode_hello(codec))?;
        let mut ack = [0u8; HANDSHAKE_LEN];
        stream.read_exact(&mut ack)?;
        let granted = binary::decode_ack(&ack)?;
        Ok(TcpClient {
            stream,
            codec: granted,
            next_id: 1,
            parked: HashMap::new(),
            inbuf: Vec::new(),
        })
    }

    /// The codec this connection settled on.
    pub fn codec(&self) -> WireCodec {
        self.codec
    }

    /// Send one request without waiting for its response; returns the
    /// correlation id to [`recv`](Self::recv) later.  The pipelining
    /// primitive.
    pub fn send(&mut self, body: RequestBody) -> Result<u64, ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        match self.codec {
            WireCodec::Json => {
                let mut line = encode_request(&RequestEnvelope::new(id, body)).into_bytes();
                line.push(b'\n');
                self.stream.write_all(&line)?;
            }
            WireCodec::Binary => {
                self.stream
                    .write_all(&binary::encode_request_frame(id, &body))?;
            }
        }
        Ok(id)
    }

    /// Block until the response with correlation id `id` arrives.  Other
    /// responses read along the way are parked for their own `recv` calls
    /// — out-of-order completion is expected on a pipelined connection.
    pub fn recv(&mut self, id: u64) -> Result<ResponseBody, ClientError> {
        loop {
            if let Some(outcome) = self.parked.remove(&id) {
                return outcome.map_err(ClientError::Api);
            }
            let (got, outcome) = self.read_response()?;
            if got == id {
                return outcome.map_err(ClientError::Api);
            }
            self.parked.insert(got, outcome);
        }
    }

    fn roundtrip(&mut self, body: RequestBody) -> Result<ResponseBody, ClientError> {
        let id = self.send(body)?;
        self.recv(id)
    }

    fn read_response(&mut self) -> Result<(u64, Result<ResponseBody, ApiError>), ClientError> {
        match self.codec {
            WireCodec::Json => {
                let line = self.read_line()?;
                let envelope = decode_response(&line).map_err(ClientError::Api)?;
                Ok((envelope.id, envelope.into_result()))
            }
            WireCodec::Binary => {
                while self.inbuf.len() < 4 {
                    self.fill()?;
                }
                let len = u32::from_le_bytes([
                    self.inbuf[0],
                    self.inbuf[1],
                    self.inbuf[2],
                    self.inbuf[3],
                ]) as usize;
                binary::check_frame_len(len, binary::MAX_FRAME_BYTES)?;
                while self.inbuf.len() < 4 + len {
                    self.fill()?;
                }
                let payload: Vec<u8> = self.inbuf.drain(..4 + len).skip(4).collect();
                Ok(binary::decode_response_frame(&payload)?)
            }
        }
    }

    fn read_line(&mut self) -> Result<String, ClientError> {
        loop {
            if let Some(pos) = self.inbuf.iter().position(|&b| b == b'\n') {
                let line: Vec<u8> = self.inbuf.drain(..=pos).collect();
                let line = String::from_utf8(line).map_err(|e| {
                    ClientError::Codec(CodecError::Malformed {
                        detail: format!("response line is not utf-8: {e}"),
                    })
                })?;
                return Ok(line.trim_end().to_string());
            }
            self.fill()?;
        }
    }

    fn fill(&mut self) -> Result<(), ClientError> {
        let mut chunk = [0u8; 8 * 1024];
        let n = self.stream.read(&mut chunk)?;
        if n == 0 {
            return Err(ClientError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection mid-response",
            )));
        }
        self.inbuf.extend_from_slice(&chunk[..n]);
        Ok(())
    }

    // -- typed methods, mirroring `templar_service::RegistryClient` --------

    /// Translate one request over the wire.
    pub fn translate(
        &mut self,
        request: TranslateRequest,
    ) -> Result<TranslateResponse, ClientError> {
        match self.roundtrip(RequestBody::Translate(request))? {
            ResponseBody::Translated(response) => Ok(response),
            other => Err(unexpected("Translate", &other)),
        }
    }

    /// Submit answered SQL to a tenant's log.
    pub fn submit_sql(&mut self, tenant: &str, sql: &str) -> Result<(), ClientError> {
        match self.roundtrip(RequestBody::SubmitSql {
            tenant: tenant.to_string(),
            sql: sql.to_string(),
        })? {
            ResponseBody::SqlAccepted => Ok(()),
            other => Err(unexpected("SubmitSql", &other)),
        }
    }

    /// Report accepted SQL back to a tenant's learning loop.
    pub fn feedback(&mut self, tenant: &str, sql: &str) -> Result<(), ClientError> {
        match self.roundtrip(RequestBody::Feedback {
            tenant: tenant.to_string(),
            sql: sql.to_string(),
        })? {
            ResponseBody::FeedbackAccepted => Ok(()),
            other => Err(unexpected("Feedback", &other)),
        }
    }

    /// Submit answered SQL, retrying Backpressure/Degraded refusals with
    /// exponential backoff until `deadline` elapses.
    pub fn submit_sql_with_deadline(
        &mut self,
        tenant: &str,
        sql: &str,
        deadline: Duration,
        base_backoff: Duration,
    ) -> Result<(), ClientError> {
        retry_with_deadline(deadline, base_backoff, || self.submit_sql(tenant, sql))
    }

    /// Fetch a tenant's health report — answered even when the server is
    /// shedding admission-controlled work, so probes stay honest under
    /// overload and in degraded read-only mode.
    pub fn health(&mut self, tenant: &str) -> Result<HealthReport, ClientError> {
        match self.roundtrip(RequestBody::Health {
            tenant: tenant.to_string(),
        })? {
            ResponseBody::Health(report) => Ok(report),
            other => Err(unexpected("Health", &other)),
        }
    }

    /// Fetch a tenant's serving metrics.
    pub fn metrics(&mut self, tenant: &str) -> Result<MetricsReport, ClientError> {
        match self.roundtrip(RequestBody::Metrics {
            tenant: tenant.to_string(),
        })? {
            ResponseBody::Metrics(report) => Ok(*report),
            other => Err(unexpected("Metrics", &other)),
        }
    }

    /// Fetch a tenant's captured slow queries, slowest first.
    pub fn slow_queries(&mut self, tenant: &str) -> Result<Vec<SlowQueryReport>, ClientError> {
        match self.roundtrip(RequestBody::SlowQueries {
            tenant: tenant.to_string(),
        })? {
            ResponseBody::SlowQueries(reports) => Ok(reports),
            other => Err(unexpected("SlowQueries", &other)),
        }
    }

    /// Fetch the Prometheus exposition — one tenant, or all when `None`.
    pub fn prometheus(&mut self, tenant: Option<&str>) -> Result<String, ClientError> {
        match self.roundtrip(RequestBody::Prometheus {
            tenant: tenant.map(str::to_string),
        })? {
            ResponseBody::Prometheus(text) => Ok(text),
            other => Err(unexpected("Prometheus", &other)),
        }
    }
}

fn unexpected(call: &str, body: &ResponseBody) -> ClientError {
    ClientError::Api(ApiError::MalformedEnvelope {
        detail: format!("unexpected response body for {call}: {body:?}"),
    })
}
