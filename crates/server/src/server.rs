//! The serving plane: a single reactor thread multiplexing every connection
//! over [`Poller`], a pool of worker threads executing decoded requests
//! against the [`TenantRegistry`], and layered admission control.
//!
//! ## Threading model
//!
//! The reactor owns all sockets.  It accepts, reads, parses complete
//! protocol units out of each connection's buffer, and hands them to the
//! worker pool through a condvar-signalled job queue — acquiring each
//! unit's global admission slot *at enqueue time*, so the decision to shed
//! is made before any work is queued.  Workers decode, dispatch admitted
//! requests into the registry, encode the response in the connection's
//! negotiated codec, and push the bytes onto a completion queue; a byte
//! written to the wake pipe returns the reactor from `wait` to flush them
//! out.  Responses therefore complete *out of order* across a pipelining
//! connection — correlation ids are the only association, exactly as the
//! protocol documents.
//!
//! ## Admission layers
//!
//! 1. **Connection cap** (`max_connections`): excess accepts get a
//!    best-effort JSON `Backpressure` line and an immediate close, before
//!    any state is allocated.  Idle and never-greeting connections are
//!    reaped on the reactor's wait tick (`greeting_timeout_ms` /
//!    `idle_timeout_ms`), so slowloris-style sockets cannot pin the cap.
//! 2. **Global in-flight cap** (`max_global_inflight`): the reactor
//!    acquires a slot per unit as it queues the job and the worker releases
//!    it on completion, so the count covers queued *and* executing work.  A
//!    unit that misses a slot still reaches a worker, but only to have its
//!    typed [`ApiError::Backpressure`] encoded under its own correlation id
//!    — the registry is never dispatched, and the shed is attributed to the
//!    target tenant's `admission_global_shed` counter.  (Observability
//!    requests execute with or without a slot, so the plane stays
//!    debuggable during overload.)
//! 3. **Per-tenant quota** ([`ServiceConfig::max_inflight`]): enforced
//!    inside the registry via [`TenantRegistry::admit`].  This bounds
//!    *executing* concurrency per tenant — which can never exceed the
//!    worker count — so the quota only sheds when set below `workers`;
//!    queue buildup is the global cap's job.
//! 4. **Pipeline cap** (`max_pipeline`): a connection with too many
//!    unanswered requests stops being read — TCP backpressure, nothing is
//!    shed.  Together with the connection cap this also bounds the job
//!    queue: at most `max_connections × max_pipeline` units can ever be
//!    queued, and admitted (slot-holding) units among them at most
//!    `max_global_inflight`.
//!
//! [`ServiceConfig::max_inflight`]: templar_service::ServiceConfig

use crate::conn::{Conn, Parsed, Proto, Unit};
use crate::poller::{Event, Interest, Poller};
use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use templar_api::binary::{self, WireCodec};
use templar_api::{
    decode_request, encode_response, ApiError, RequestBody, ResponseEnvelope, MAX_FRAME_BYTES,
};
use templar_service::TenantRegistry;

const LISTENER_TOKEN: u64 = 0;
const WAKE_TOKEN: u64 = 1;
const FIRST_CONN_TOKEN: u64 = 2;
const READ_CHUNK: usize = 16 * 1024;
/// Reactor wait timeout — a liveness backstop; shutdown and completions
/// arrive through the wake pipe, not this tick.
const WAIT_MS: i32 = 250;
/// Per-readiness-event read budget, in `READ_CHUNK`s.  A peer that sends
/// faster than the reactor drains must not starve every other connection
/// or grow `inbuf` past the frame cap before the oversize checks run;
/// level-triggered readiness resumes the read on the next tick.
const READ_BURST_CHUNKS: usize = 8;
/// How often the reactor sweeps for timed-out connections (also the
/// precision bound of the two timeouts below).
const SWEEP_INTERVAL: std::time::Duration = std::time::Duration::from_millis(100);

/// Tunables of one serving plane.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port (see
    /// [`TemplarServer::local_addr`]).
    pub addr: String,
    /// Worker threads executing requests.
    pub workers: usize,
    /// Accept-time connection cap (admission layer 1).
    pub max_connections: usize,
    /// Server-wide in-flight request cap (admission layer 2).
    pub max_global_inflight: usize,
    /// Unanswered pipelined requests per connection before reads pause
    /// (admission layer 4 — backpressure, not shedding).
    pub max_pipeline: usize,
    /// Largest accepted frame or line, bytes.
    pub max_frame_bytes: usize,
    /// Use the portable `poll` backend even where `epoll` exists.
    pub force_poll: bool,
    /// A connection that has not completed its greeting within this window
    /// is closed (it holds a `max_connections` slot while deciding
    /// nothing).
    pub greeting_timeout_ms: u64,
    /// A greeted connection with no read or write progress for this long
    /// (and no request in flight) is closed — idle sockets must not pin
    /// the connection cap forever.
    pub idle_timeout_ms: u64,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            max_connections: 1024,
            max_global_inflight: 256,
            max_pipeline: 128,
            max_frame_bytes: MAX_FRAME_BYTES,
            force_poll: false,
            greeting_timeout_ms: 5_000,
            idle_timeout_ms: 300_000,
        }
    }
}

impl ServerConfig {
    pub fn with_addr(mut self, addr: impl Into<String>) -> Self {
        self.addr = addr.into();
        self
    }

    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    pub fn with_max_connections(mut self, cap: usize) -> Self {
        self.max_connections = cap.max(1);
        self
    }

    pub fn with_max_global_inflight(mut self, cap: usize) -> Self {
        self.max_global_inflight = cap.max(1);
        self
    }

    pub fn with_max_pipeline(mut self, cap: usize) -> Self {
        self.max_pipeline = cap.max(1);
        self
    }

    pub fn with_force_poll(mut self, force: bool) -> Self {
        self.force_poll = force;
        self
    }

    pub fn with_greeting_timeout_ms(mut self, ms: u64) -> Self {
        self.greeting_timeout_ms = ms.max(1);
        self
    }

    pub fn with_idle_timeout_ms(mut self, ms: u64) -> Self {
        self.idle_timeout_ms = ms.max(1);
        self
    }
}

/// Serving-plane counters (the transport layer's own observability; tenant
/// metrics live in [`templar_service::ServiceMetrics`]).
#[derive(Debug, Default)]
struct ServerStats {
    connections_accepted: AtomicU64,
    connections_rejected: AtomicU64,
    connections_closed: AtomicU64,
    connections_timed_out: AtomicU64,
    requests_served: AtomicU64,
    global_sheds: AtomicU64,
    json_requests: AtomicU64,
    binary_requests: AtomicU64,
    bytes_read: AtomicU64,
    bytes_written: AtomicU64,
}

/// A point-in-time copy of the serving plane's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerStatsSnapshot {
    /// Connections admitted past the accept-time cap.
    pub connections_accepted: u64,
    /// Connections turned away at accept time (layer-1 shedding).
    pub connections_rejected: u64,
    /// Admitted connections since closed (either side).
    pub connections_closed: u64,
    /// Closures forced by the greeting or idle timeout (a subset of
    /// `connections_closed`).
    pub connections_timed_out: u64,
    /// Responses written back, successes and typed failures alike.
    pub requests_served: u64,
    /// Requests shed by the global in-flight cap (layer 2).
    pub global_sheds: u64,
    /// Requests that arrived on JSON-lines connections.
    pub json_requests: u64,
    /// Requests that arrived on binary connections.
    pub binary_requests: u64,
    pub bytes_read: u64,
    pub bytes_written: u64,
}

impl ServerStats {
    fn snapshot(&self) -> ServerStatsSnapshot {
        ServerStatsSnapshot {
            connections_accepted: self.connections_accepted.load(Ordering::Relaxed),
            connections_rejected: self.connections_rejected.load(Ordering::Relaxed),
            connections_closed: self.connections_closed.load(Ordering::Relaxed),
            connections_timed_out: self.connections_timed_out.load(Ordering::Relaxed),
            requests_served: self.requests_served.load(Ordering::Relaxed),
            global_sheds: self.global_sheds.load(Ordering::Relaxed),
            json_requests: self.json_requests.load(Ordering::Relaxed),
            binary_requests: self.binary_requests.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
        }
    }
}

/// One parsed-but-undecoded protocol unit bound for a worker.
struct Job {
    token: u64,
    codec: WireCodec,
    unit: Unit,
    /// Whether the reactor won a global in-flight slot for this unit at
    /// enqueue time.  `false` means the worker only decodes far enough to
    /// answer `Backpressure` under the unit's own correlation id (unless
    /// the request turns out to be observability, which always executes).
    admitted_global: bool,
}

/// One encoded response bound for a connection's write buffer.
struct Completion {
    token: u64,
    bytes: Vec<u8>,
}

/// State shared between the reactor, the workers, and the handle.
struct Shared {
    registry: Arc<TenantRegistry>,
    config: ServerConfig,
    stats: ServerStats,
    shutdown: AtomicBool,
    /// Units holding a global admission slot: queued jobs plus executing
    /// requests (acquired by the reactor at enqueue time, released by the
    /// worker on completion).
    global_inflight: AtomicU64,
    /// Job queue (std primitives: the vendored `parking_lot` has no
    /// condvar, and the queue needs one to park idle workers).
    jobs: std::sync::Mutex<VecDeque<Job>>,
    jobs_ready: std::sync::Condvar,
    completions: Mutex<Vec<Completion>>,
    /// Writing one byte returns the reactor from its poll wait.
    wake_tx: Mutex<UnixStream>,
}

impl Shared {
    fn wake(&self) {
        // A full pipe already guarantees a pending wakeup.
        let _ = self.wake_tx.lock().write(&[1]);
    }
}

/// A running serving plane.  Dropping the handle shuts it down.
pub struct TemplarServer {
    shared: Arc<Shared>,
    local_addr: std::net::SocketAddr,
    poll_fallback: bool,
    reactor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl TemplarServer {
    /// Bind, spawn the reactor and worker threads, and start serving.
    pub fn start(registry: Arc<TenantRegistry>, config: ServerConfig) -> io::Result<TemplarServer> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;

        let (wake_tx, wake_rx) = UnixStream::pair()?;
        wake_tx.set_nonblocking(true)?;
        wake_rx.set_nonblocking(true)?;

        let mut poller = Poller::new(config.force_poll)?;
        let poll_fallback = poller.is_fallback();
        poller.register(listener.as_raw_fd(), LISTENER_TOKEN, Interest::READ)?;
        poller.register(wake_rx.as_raw_fd(), WAKE_TOKEN, Interest::READ)?;

        let shared = Arc::new(Shared {
            registry,
            config: config.clone(),
            stats: ServerStats::default(),
            shutdown: AtomicBool::new(false),
            global_inflight: AtomicU64::new(0),
            jobs: std::sync::Mutex::new(VecDeque::new()),
            jobs_ready: std::sync::Condvar::new(),
            completions: Mutex::new(Vec::new()),
            wake_tx: Mutex::new(wake_tx),
        });

        let workers = (0..config.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("templar-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
            })
            .collect::<io::Result<Vec<_>>>()?;

        let reactor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("templar-reactor".to_string())
                .spawn(move || {
                    Reactor {
                        shared,
                        poller,
                        listener,
                        wake_rx,
                        conns: HashMap::new(),
                        next_token: FIRST_CONN_TOKEN,
                        last_sweep: std::time::Instant::now(),
                    }
                    .run()
                })?
        };

        Ok(TemplarServer {
            shared,
            local_addr,
            poll_fallback,
            reactor: Some(reactor),
            workers,
        })
    }

    /// The bound address — the port to connect to when the config asked
    /// for an ephemeral one.
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.local_addr
    }

    /// Serving-plane counters.
    pub fn stats(&self) -> ServerStatsSnapshot {
        self.shared.stats.snapshot()
    }

    /// Whether the reactor runs on the portable `poll` fallback.
    pub fn is_poll_fallback(&self) -> bool {
        self.poll_fallback
    }

    /// Stop accepting, close every connection, and join all threads.
    /// Idempotent.
    pub fn shutdown(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.wake();
        self.shared.jobs_ready.notify_all();
        if let Some(handle) = self.reactor.take() {
            let _ = handle.join();
        }
        for handle in self.workers.drain(..) {
            self.shared.jobs_ready.notify_all();
            let _ = handle.join();
        }
    }
}

impl Drop for TemplarServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

// ---------------------------------------------------------------------------
// Reactor
// ---------------------------------------------------------------------------

struct Reactor {
    shared: Arc<Shared>,
    poller: Poller,
    listener: TcpListener,
    wake_rx: UnixStream,
    conns: HashMap<u64, Conn>,
    /// Monotonic, never reused — a stale completion for a closed
    /// connection can never hit its token's successor.
    next_token: u64,
    /// Last idle/greeting-timeout sweep.
    last_sweep: std::time::Instant,
}

impl Reactor {
    fn run(mut self) {
        let mut events: Vec<Event> = Vec::new();
        while !self.shared.shutdown.load(Ordering::SeqCst) {
            if self.poller.wait(&mut events, WAIT_MS).is_err() {
                break;
            }
            for event in &events {
                match event.token {
                    LISTENER_TOKEN => self.accept_ready(),
                    WAKE_TOKEN => self.drain_wake(),
                    token => self.conn_ready(token, event),
                }
            }
            self.apply_completions();
            self.sweep_timeouts();
        }
    }

    /// Reap connections whose activity clock went stale: still greeting
    /// past `greeting_timeout_ms`, or greeted but making no read/write
    /// progress for `idle_timeout_ms`.  Connections with requests in
    /// flight are never reaped — a quiet socket waiting on a slow request
    /// is not idle.
    fn sweep_timeouts(&mut self) {
        let now = std::time::Instant::now();
        if now.duration_since(self.last_sweep) < SWEEP_INTERVAL {
            return;
        }
        self.last_sweep = now;
        let greeting = std::time::Duration::from_millis(self.shared.config.greeting_timeout_ms);
        let idle = std::time::Duration::from_millis(self.shared.config.idle_timeout_ms);
        let expired: Vec<u64> = self
            .conns
            .iter()
            .filter_map(|(&token, conn)| {
                if conn.inflight > 0 {
                    return None;
                }
                let limit = if conn.proto == Proto::Greeting {
                    greeting
                } else {
                    idle
                };
                (now.duration_since(conn.last_activity) >= limit).then_some(token)
            })
            .collect();
        for token in expired {
            self.shared
                .stats
                .connections_timed_out
                .fetch_add(1, Ordering::Relaxed);
            self.close(token);
        }
    }

    fn accept_ready(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => self.admit_connection(stream),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
    }

    fn admit_connection(&mut self, stream: TcpStream) {
        if self.conns.len() >= self.shared.config.max_connections {
            // Layer-1 shedding: answer before any state is allocated.  The
            // codec is unknown this early, so the reply is the JSON form —
            // debuggable from any client.
            self.shared
                .stats
                .connections_rejected
                .fetch_add(1, Ordering::Relaxed);
            let mut line =
                encode_response(&ResponseEnvelope::failure(0, ApiError::Backpressure)).into_bytes();
            line.push(b'\n');
            let mut stream = stream;
            let _ = stream.set_nonblocking(true);
            let _ = stream.write(&line);
            return;
        }
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        let _ = stream.set_nodelay(true);
        let token = self.next_token;
        self.next_token += 1;
        if self
            .poller
            .register(stream.as_raw_fd(), token, Interest::READ)
            .is_err()
        {
            return;
        }
        self.conns.insert(token, Conn::new(stream));
        self.shared
            .stats
            .connections_accepted
            .fetch_add(1, Ordering::Relaxed);
    }

    fn drain_wake(&mut self) {
        let mut sink = [0u8; 64];
        while matches!(self.wake_rx.read(&mut sink), Ok(n) if n > 0) {}
    }

    fn conn_ready(&mut self, token: u64, event: &Event) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        if event.hangup {
            self.close(token);
            return;
        }
        let mut dead = false;
        if event.writable {
            dead |= flush(conn, &self.shared.stats).is_err();
        }
        if event.readable && !conn.read_paused && !conn.closing {
            dead |= self.read_ready(token);
        }
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        if dead || (conn.closing && conn.outbuf.is_empty() && conn.inflight == 0) {
            self.close(token);
        } else {
            self.update_interest(token);
        }
    }

    /// Read a bounded burst, parse, acquire admission slots, enqueue jobs.
    /// Returns true when the connection is finished.
    fn read_ready(&mut self, token: u64) -> bool {
        let Some(conn) = self.conns.get_mut(&token) else {
            // The caller looked the token up, but a racing close between the
            // two lookups must not panic the reactor thread.
            return true;
        };
        let mut chunk = [0u8; READ_CHUNK];
        let mut budget = READ_BURST_CHUNKS;
        // Stop at the burst budget or once the buffer could already hold
        // the largest legal unit (prefix included) — a faster-than-drained
        // peer must not starve the reactor or grow `inbuf` unboundedly.
        // Level-triggered readiness resumes the read on the next tick.
        let inbuf_high_water = self.shared.config.max_frame_bytes.saturating_add(4);
        loop {
            if budget == 0 || conn.inbuf.len() > inbuf_high_water {
                break;
            }
            match conn.stream.read(&mut chunk) {
                Ok(0) => {
                    // Peer sent FIN; serve what is already buffered, then
                    // let the flush path close.
                    conn.closing = true;
                    break;
                }
                Ok(n) => {
                    budget -= 1;
                    self.shared
                        .stats
                        .bytes_read
                        .fetch_add(n as u64, Ordering::Relaxed);
                    conn.inbuf.extend_from_slice(&chunk[..n]);
                    conn.last_activity = std::time::Instant::now();
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return true,
            }
        }
        match conn.parse(self.shared.config.max_frame_bytes) {
            Parsed::Units(units) => {
                let codec = conn.codec();
                if !units.is_empty() {
                    conn.inflight += units.len();
                    let mut jobs = self
                        .shared
                        .jobs
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    for unit in units {
                        // Admission layer 2, decided before the job is
                        // queued (the slot covers queue residency too).
                        let admitted_global = try_acquire_global(
                            &self.shared.global_inflight,
                            self.shared.config.max_global_inflight as u64,
                        );
                        jobs.push_back(Job {
                            token,
                            codec,
                            unit,
                            admitted_global,
                        });
                        self.shared.jobs_ready.notify_one();
                    }
                }
                if conn.inflight >= self.shared.config.max_pipeline {
                    conn.read_paused = true;
                }
                false
            }
            Parsed::Fatal { reply, error } => {
                if let Some(reply) = reply {
                    conn.outbuf.extend(reply);
                } else {
                    // Answer in the connection's own codec so the peer
                    // sees *why* before the close (correlation id 0: the
                    // failed unit never had one recovered).
                    let api_error = error.to_api_error();
                    match conn.codec() {
                        WireCodec::Json => {
                            let mut line =
                                encode_response(&ResponseEnvelope::failure(0, api_error))
                                    .into_bytes();
                            line.push(b'\n');
                            conn.outbuf.extend(line);
                        }
                        WireCodec::Binary => {
                            conn.outbuf
                                .extend(binary::encode_response_frame(0, &Err(api_error)));
                        }
                    }
                }
                conn.closing = true;
                flush(conn, &self.shared.stats).is_err()
            }
        }
    }

    /// Move worker results into their connections' write buffers.
    fn apply_completions(&mut self) {
        let completions = std::mem::take(&mut *self.shared.completions.lock());
        let mut touched: Vec<u64> = Vec::with_capacity(completions.len());
        for Completion { token, bytes } in completions {
            let Some(conn) = self.conns.get_mut(&token) else {
                continue; // connection died while the request ran
            };
            conn.inflight = conn.inflight.saturating_sub(1);
            conn.outbuf.extend(bytes);
            if conn.read_paused && conn.inflight < self.shared.config.max_pipeline {
                conn.read_paused = false;
            }
            self.shared
                .stats
                .requests_served
                .fetch_add(1, Ordering::Relaxed);
            touched.push(token);
        }
        for token in touched {
            // Write eagerly: most responses fit the socket buffer, saving
            // a poll round-trip per response.
            let finished = match self.conns.get_mut(&token) {
                Some(conn) => {
                    flush(conn, &self.shared.stats).is_err()
                        || (conn.closing && conn.outbuf.is_empty() && conn.inflight == 0)
                }
                None => continue,
            };
            if finished {
                self.close(token);
            } else {
                self.update_interest(token);
            }
        }
    }

    fn update_interest(&mut self, token: u64) {
        let Some(conn) = self.conns.get(&token) else {
            return;
        };
        let interest = Interest {
            readable: !conn.read_paused && !conn.closing,
            writable: !conn.outbuf.is_empty(),
        };
        let _ = self
            .poller
            .reregister(conn.stream.as_raw_fd(), token, interest);
    }

    fn close(&mut self, token: u64) {
        if let Some(conn) = self.conns.remove(&token) {
            self.poller.deregister(conn.stream.as_raw_fd());
            self.shared
                .stats
                .connections_closed
                .fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Write as much of `outbuf` as the socket takes.  `Err(())` means the
/// connection is gone.
fn flush(conn: &mut Conn, stats: &ServerStats) -> Result<(), ()> {
    while !conn.outbuf.is_empty() {
        let (front, _) = conn.outbuf.as_slices();
        match conn.stream.write(front) {
            Ok(0) => return Err(()),
            Ok(n) => {
                stats.bytes_written.fetch_add(n as u64, Ordering::Relaxed);
                conn.outbuf.drain(..n);
                conn.last_activity = std::time::Instant::now();
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(()),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return Err(()),
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Workers
// ---------------------------------------------------------------------------

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut jobs = shared
                .jobs
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            loop {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                if let Some(job) = jobs.pop_front() {
                    break job;
                }
                jobs = shared
                    .jobs_ready
                    .wait(jobs)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        };
        // Release the enqueue-time slot when the request finishes, even on
        // unwind — a leaked slot would shrink the cap forever.
        let _slot = job
            .admitted_global
            .then(|| GlobalSlotRelease(&shared.global_inflight));
        let bytes = serve_unit(shared, &job);
        shared.completions.lock().push(Completion {
            token: job.token,
            bytes,
        });
        shared.wake();
    }
}

/// Decode → admit → dispatch → encode, in the connection's codec.
fn serve_unit(shared: &Shared, job: &Job) -> Vec<u8> {
    match (&job.unit, job.codec) {
        (Unit::JsonLine(line), _) => {
            shared.stats.json_requests.fetch_add(1, Ordering::Relaxed);
            let envelope = match decode_request(line) {
                Ok(envelope) => envelope,
                Err((id, err)) => return json_response(id, Err(err)),
            };
            json_response(
                envelope.id,
                execute(shared, &envelope.body, job.admitted_global),
            )
        }
        (Unit::BinaryFrame(frame), _) => {
            shared.stats.binary_requests.fetch_add(1, Ordering::Relaxed);
            match binary::decode_request_frame(frame) {
                Err(err) => binary::encode_response_frame(0, &Err(err.to_api_error())),
                Ok((id, Err(err))) => binary::encode_response_frame(id, &Err(err.to_api_error())),
                Ok((id, Ok(body))) => {
                    binary::encode_response_frame(id, &execute(shared, &body, job.admitted_global))
                }
            }
        }
    }
}

fn json_response(id: u64, outcome: Result<templar_api::ResponseBody, ApiError>) -> Vec<u8> {
    let envelope = match outcome {
        Ok(body) => ResponseEnvelope::success(id, body),
        Err(err) => ResponseEnvelope::failure(id, err),
    };
    let mut line = encode_response(&envelope).into_bytes();
    line.push(b'\n');
    line
}

/// The admission ladder in front of the registry: the enqueue-time global
/// slot decision sheds work-consuming requests first (attributed to the
/// target tenant), then the registry enforces the per-tenant quota and
/// dispatches.
fn execute(
    shared: &Shared,
    body: &RequestBody,
    admitted_global: bool,
) -> Result<templar_api::ResponseBody, ApiError> {
    if !body.is_admission_controlled() {
        // Observability must stay readable during overload, slot or not.
        return shared.registry.dispatch(body);
    }
    if !admitted_global {
        shared.stats.global_sheds.fetch_add(1, Ordering::Relaxed);
        if let Some(tenant) = body.tenant() {
            shared.registry.record_global_shed(tenant);
        }
        return Err(ApiError::Backpressure);
    }
    shared.registry.admit_and_dispatch(body)
}

/// Try to take one slot of the server-wide in-flight cap (released via
/// [`GlobalSlotRelease`] when the worker finishes the unit).
fn try_acquire_global(counter: &AtomicU64, cap: u64) -> bool {
    let mut current = counter.load(Ordering::Relaxed);
    loop {
        if current >= cap {
            return false;
        }
        match counter.compare_exchange_weak(
            current,
            current + 1,
            Ordering::AcqRel,
            Ordering::Relaxed,
        ) {
            Ok(_) => return true,
            Err(observed) => current = observed,
        }
    }
}

/// RAII release of a slot acquired with [`try_acquire_global`].
struct GlobalSlotRelease<'a>(&'a AtomicU64);

impl Drop for GlobalSlotRelease<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::AcqRel);
    }
}
