//! Per-connection state machine: codec sniffing at connect time, then
//! incremental extraction of complete protocol units (JSON lines or binary
//! frames) from the read buffer.
//!
//! A connection starts in `Greeting`: the first bytes decide what it
//! speaks.  Bytes matching a prefix of the `TPLR` magic wait for the full
//! 9-byte hello (a negotiating client); anything else — `{`, whitespace, a
//! telnet user — is a plain JSON-lines session, with the bytes already read
//! re-interpreted as the first line's beginning.  A JSON envelope can never
//! start with `T`, so the sniff is unambiguous.

use std::collections::VecDeque;
use std::net::TcpStream;
use std::time::Instant;
use templar_api::binary::{self, CodecError, WireCodec, HANDSHAKE_LEN};

/// What the connection speaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Proto {
    /// Still sniffing the first bytes.
    Greeting,
    /// Newline-delimited JSON protocol lines.
    JsonLines,
    /// Length-prefixed binary frames.
    Binary,
}

/// One complete protocol unit extracted from the read buffer, ready for a
/// worker.
#[derive(Debug, PartialEq)]
pub(crate) enum Unit {
    JsonLine(String),
    BinaryFrame(Vec<u8>),
}

/// The outcome of feeding newly-read bytes through the state machine.
#[derive(Debug, PartialEq)]
pub(crate) enum Parsed {
    /// Extracted units (possibly none yet — more bytes needed).
    Units(Vec<Unit>),
    /// Protocol-fatal condition: send `reply` (if any), flush, close.
    Fatal {
        reply: Option<Vec<u8>>,
        error: CodecError,
    },
}

pub(crate) struct Conn {
    pub stream: TcpStream,
    pub proto: Proto,
    /// Bytes read but not yet parsed into complete units.
    pub inbuf: Vec<u8>,
    /// Bytes queued to write (responses, handshake ack).
    pub outbuf: VecDeque<u8>,
    /// Pipelined requests handed to workers and not yet answered.
    pub inflight: usize,
    /// Reading is paused at the pipeline cap (TCP backpressure: the socket
    /// buffer fills and the peer's sends block — nothing is shed).
    pub read_paused: bool,
    /// Flush `outbuf`, then close.
    pub closing: bool,
    /// Last successful read or write — the idle sweep reaps connections
    /// whose clock goes stale (slowloris sockets would otherwise pin
    /// `max_connections` forever).
    pub last_activity: Instant,
}

impl Conn {
    pub(crate) fn new(stream: TcpStream) -> Conn {
        Conn {
            stream,
            proto: Proto::Greeting,
            inbuf: Vec::new(),
            outbuf: VecDeque::new(),
            inflight: 0,
            read_paused: false,
            closing: false,
            last_activity: Instant::now(),
        }
    }

    /// The codec a worker should encode this connection's responses in.
    pub(crate) fn codec(&self) -> WireCodec {
        match self.proto {
            Proto::Binary => WireCodec::Binary,
            _ => WireCodec::Json,
        }
    }

    /// Run the state machine over the current `inbuf`: resolve the greeting
    /// if still pending, then extract every complete unit.
    pub(crate) fn parse(&mut self, max_unit_bytes: usize) -> Parsed {
        if self.proto == Proto::Greeting {
            match self.resolve_greeting() {
                Greeted::NeedMore => return Parsed::Units(Vec::new()),
                Greeted::Decided => {}
                Greeted::Fatal { reply, error } => return Parsed::Fatal { reply, error },
            }
        }
        match self.proto {
            Proto::JsonLines => self.parse_json_lines(max_unit_bytes),
            Proto::Binary => self.parse_binary_frames(max_unit_bytes),
            Proto::Greeting => unreachable!("greeting resolved above"),
        }
    }

    fn resolve_greeting(&mut self) -> Greeted {
        if self.inbuf.is_empty() {
            // No bytes yet — a spurious readable event must not decide the
            // protocol, or a later valid TPLR hello would be misparsed as a
            // JSON line and close the connection.
            return Greeted::NeedMore;
        }
        let magic_prefix = self
            .inbuf
            .iter()
            .zip(binary::HANDSHAKE_MAGIC.iter())
            .take_while(|(a, b)| a == b)
            .count();
        let full_prefix = magic_prefix == self.inbuf.len().min(binary::HANDSHAKE_MAGIC.len());
        if !full_prefix {
            // Not a negotiating client: a bare JSON-lines session, first
            // bytes included.
            self.proto = Proto::JsonLines;
            return Greeted::Decided;
        }
        if self.inbuf.len() < HANDSHAKE_LEN {
            return Greeted::NeedMore;
        }
        let mut hello = [0u8; HANDSHAKE_LEN];
        hello.copy_from_slice(&self.inbuf[..HANDSHAKE_LEN]);
        match binary::decode_hello(&hello) {
            Ok(codec) => {
                self.inbuf.drain(..HANDSHAKE_LEN);
                self.outbuf.extend(binary::encode_ack(Some(codec)));
                self.proto = match codec {
                    WireCodec::Binary => Proto::Binary,
                    WireCodec::Json => Proto::JsonLines,
                };
                Greeted::Decided
            }
            Err(error) => Greeted::Fatal {
                // The rejecting ack still carries our version, so a
                // mismatched client learns what to speak.
                reply: Some(binary::encode_ack(None).to_vec()),
                error,
            },
        }
    }

    fn parse_json_lines(&mut self, max_unit_bytes: usize) -> Parsed {
        let mut units = Vec::new();
        let mut start = 0usize;
        while let Some(offset) = self.inbuf[start..].iter().position(|&b| b == b'\n') {
            let line_bytes = &self.inbuf[start..start + offset];
            start += offset + 1;
            match std::str::from_utf8(line_bytes) {
                Ok(line) => {
                    let trimmed = line.trim();
                    if !trimmed.is_empty() {
                        units.push(Unit::JsonLine(trimmed.to_string()));
                    }
                }
                Err(e) => {
                    self.inbuf.drain(..start);
                    return Parsed::Fatal {
                        reply: None,
                        error: CodecError::Malformed {
                            detail: format!("invalid utf-8 on a JSON-lines connection: {e}"),
                        },
                    };
                }
            }
        }
        self.inbuf.drain(..start);
        if self.inbuf.len() > max_unit_bytes {
            // A "line" growing past the frame cap without a newline can
            // only exhaust memory; treat it like an oversized frame.
            return Parsed::Fatal {
                reply: None,
                error: CodecError::Oversized {
                    len: self.inbuf.len(),
                    max: max_unit_bytes,
                },
            };
        }
        Parsed::Units(units)
    }

    fn parse_binary_frames(&mut self, max_unit_bytes: usize) -> Parsed {
        let mut units = Vec::new();
        let mut start = 0usize;
        loop {
            let rest = &self.inbuf[start..];
            if rest.len() < 4 {
                break;
            }
            let len = u32::from_le_bytes([rest[0], rest[1], rest[2], rest[3]]) as usize;
            if let Err(error) = binary::check_frame_len(len, max_unit_bytes) {
                // The frame cannot be buffered, and without its body the
                // stream position is lost: connection-fatal.
                self.inbuf.clear();
                return Parsed::Fatal { reply: None, error };
            }
            if rest.len() < 4 + len {
                break;
            }
            units.push(Unit::BinaryFrame(rest[4..4 + len].to_vec()));
            start += 4 + len;
        }
        self.inbuf.drain(..start);
        Parsed::Units(units)
    }
}

enum Greeted {
    NeedMore,
    Decided,
    Fatal {
        reply: Option<Vec<u8>>,
        error: CodecError,
    },
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};
    use templar_api::protocol::PROTOCOL_VERSION;

    /// A connected socket pair for state-machine tests (the stream itself
    /// is never read or written here).
    fn test_conn() -> Conn {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let stream = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        Conn::new(stream)
    }

    #[test]
    fn json_first_byte_skips_the_handshake() {
        let mut conn = test_conn();
        conn.inbuf.extend(b"{\"version\":3}\n{\"ver");
        match conn.parse(1024) {
            Parsed::Units(units) => {
                assert_eq!(units, vec![Unit::JsonLine("{\"version\":3}".into())]);
            }
            other => panic!("expected one line, got {other:?}"),
        }
        assert_eq!(conn.proto, Proto::JsonLines);
        assert_eq!(conn.inbuf, b"{\"ver", "partial line stays buffered");
        assert!(conn.outbuf.is_empty(), "no ack on a bare JSON session");
    }

    #[test]
    fn empty_buffer_leaves_the_greeting_undecided() {
        let mut conn = test_conn();
        // A spurious readable event parses before any bytes arrive…
        assert_eq!(conn.parse(1024), Parsed::Units(Vec::new()));
        assert_eq!(conn.proto, Proto::Greeting, "no bytes: no decision");

        // …and a valid binary hello afterwards still negotiates.
        conn.inbuf.extend(binary::encode_hello(WireCodec::Binary));
        assert_eq!(conn.parse(1024), Parsed::Units(Vec::new()));
        assert_eq!(conn.proto, Proto::Binary);
    }

    #[test]
    fn magic_prefix_waits_for_the_full_hello() {
        let mut conn = test_conn();
        conn.inbuf.extend(b"TPL");
        assert_eq!(conn.parse(1024), Parsed::Units(Vec::new()));
        assert_eq!(conn.proto, Proto::Greeting, "3 magic bytes: undecided");

        conn.inbuf.clear();
        conn.inbuf.extend(binary::encode_hello(WireCodec::Binary));
        assert_eq!(conn.parse(1024), Parsed::Units(Vec::new()));
        assert_eq!(conn.proto, Proto::Binary);
        let ack: Vec<u8> = conn.outbuf.iter().copied().collect();
        let ack: [u8; HANDSHAKE_LEN] = ack.as_slice().try_into().unwrap();
        assert_eq!(binary::decode_ack(&ack).unwrap(), WireCodec::Binary);
    }

    #[test]
    fn negotiated_json_still_speaks_lines() {
        let mut conn = test_conn();
        conn.inbuf.extend(binary::encode_hello(WireCodec::Json));
        conn.inbuf.extend(b"{\"id\":1}\n");
        match conn.parse(1024) {
            Parsed::Units(units) => assert_eq!(units, vec![Unit::JsonLine("{\"id\":1}".into())]),
            other => panic!("{other:?}"),
        }
        assert_eq!(conn.proto, Proto::JsonLines);
        assert_eq!(conn.outbuf.len(), HANDSHAKE_LEN, "ack queued");
    }

    #[test]
    fn version_mismatch_greeting_is_fatal_with_a_rejecting_ack() {
        let mut conn = test_conn();
        let mut hello = binary::encode_hello(WireCodec::Binary);
        hello[4..8].copy_from_slice(&9u32.to_le_bytes());
        conn.inbuf.extend(hello);
        match conn.parse(1024) {
            Parsed::Fatal { reply, error } => {
                assert_eq!(
                    error,
                    CodecError::Version {
                        expected: PROTOCOL_VERSION,
                        found: 9
                    }
                );
                let ack: [u8; HANDSHAKE_LEN] = reply.unwrap().as_slice().try_into().unwrap();
                assert_eq!(binary::decode_ack(&ack), Err(CodecError::Rejected));
            }
            other => panic!("expected fatal, got {other:?}"),
        }
    }

    #[test]
    fn binary_frames_extract_incrementally_and_pipeline() {
        let mut conn = test_conn();
        conn.proto = Proto::Binary;
        let frame_a = [&3u32.to_le_bytes()[..], b"abc"].concat();
        let frame_b = [&2u32.to_le_bytes()[..], b"xy"].concat();
        conn.inbuf.extend(&frame_a);
        conn.inbuf.extend(&frame_b[..4]); // second frame's body missing
        match conn.parse(1024) {
            Parsed::Units(units) => assert_eq!(units, vec![Unit::BinaryFrame(b"abc".to_vec())]),
            other => panic!("{other:?}"),
        }
        conn.inbuf.extend(&frame_b[4..]);
        match conn.parse(1024) {
            Parsed::Units(units) => assert_eq!(units, vec![Unit::BinaryFrame(b"xy".to_vec())]),
            other => panic!("{other:?}"),
        }
        assert!(conn.inbuf.is_empty());
    }

    #[test]
    fn oversized_frame_is_fatal_by_length_alone() {
        let mut conn = test_conn();
        conn.proto = Proto::Binary;
        conn.inbuf.extend(100_000u32.to_le_bytes());
        match conn.parse(1024) {
            Parsed::Fatal { error, .. } => assert_eq!(
                error,
                CodecError::Oversized {
                    len: 100_000,
                    max: 1024
                }
            ),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn runaway_json_line_is_fatal() {
        let mut conn = test_conn();
        conn.proto = Proto::JsonLines;
        conn.inbuf.extend(vec![b'x'; 2048]);
        assert!(matches!(
            conn.parse(1024),
            Parsed::Fatal {
                error: CodecError::Oversized { .. },
                ..
            }
        ));
    }
}
