//! Property-based tests for the SQL parser: printing then re-parsing an AST
//! must reproduce the AST, and canonicalization must be stable.

use proptest::prelude::*;
use sqlparse::{
    canonicalize, parse_query, Aggregate, BinOp, ColumnRef, Expr, Literal, Predicate, Query,
    SelectItem, TableRef,
};

fn ident_strategy() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,8}".prop_filter("not a keyword", |s| !sqlparse::token::is_keyword(s))
}

fn literal_strategy() -> impl Strategy<Value = Literal> {
    prop_oneof![
        (0i64..100_000).prop_map(|n| Literal::Number(n as f64)),
        "[A-Za-z][A-Za-z0-9 ]{0,10}".prop_map(Literal::String),
    ]
}

fn column_strategy() -> impl Strategy<Value = ColumnRef> {
    (ident_strategy(), ident_strategy(), any::<bool>()).prop_map(|(q, c, qualified)| {
        if qualified {
            ColumnRef::qualified(q, c)
        } else {
            ColumnRef::new(c)
        }
    })
}

fn expr_strategy() -> impl Strategy<Value = Expr> {
    prop_oneof![
        column_strategy().prop_map(Expr::Column),
        (
            prop_oneof![
                Just(Aggregate::Count),
                Just(Aggregate::Sum),
                Just(Aggregate::Avg),
                Just(Aggregate::Min),
                Just(Aggregate::Max)
            ],
            any::<bool>(),
            proptest::option::of(column_strategy())
        )
            .prop_map(|(func, distinct, arg)| Expr::Aggregate {
                func,
                // COUNT(DISTINCT *) is not valid SQL in our subset
                distinct: distinct && arg.is_some(),
                arg,
            }),
    ]
}

fn predicate_strategy() -> impl Strategy<Value = Predicate> {
    let op = prop_oneof![
        Just(BinOp::Eq),
        Just(BinOp::NotEq),
        Just(BinOp::Lt),
        Just(BinOp::LtEq),
        Just(BinOp::Gt),
        Just(BinOp::GtEq),
    ];
    prop_oneof![
        (column_strategy(), op, literal_strategy()).prop_map(|(c, op, l)| Predicate::Compare {
            left: Expr::Column(c),
            op,
            right: Expr::Literal(l),
        }),
        (column_strategy(), column_strategy()).prop_map(|(a, b)| Predicate::Compare {
            left: Expr::Column(a),
            op: BinOp::Eq,
            right: Expr::Column(b),
        }),
        (column_strategy(), literal_strategy(), literal_strategy()).prop_map(|(c, lo, hi)| {
            Predicate::Between {
                col: c,
                low: lo,
                high: hi,
            }
        }),
        (
            column_strategy(),
            proptest::collection::vec(literal_strategy(), 1..4),
            any::<bool>()
        )
            .prop_map(|(c, values, negated)| Predicate::In {
                col: c,
                values,
                negated,
            }),
        (column_strategy(), any::<bool>())
            .prop_map(|(c, negated)| Predicate::IsNull { col: c, negated }),
    ]
}

fn table_strategy() -> impl Strategy<Value = TableRef> {
    (ident_strategy(), proptest::option::of(ident_strategy()))
        .prop_map(|(t, a)| TableRef { table: t, alias: a })
}

fn query_strategy() -> impl Strategy<Value = Query> {
    (
        any::<bool>(),
        proptest::collection::vec(
            prop_oneof![
                Just(SelectItem::Wildcard),
                expr_strategy().prop_map(SelectItem::Expr)
            ],
            1..4,
        ),
        proptest::collection::vec(table_strategy(), 1..4),
        proptest::collection::vec(predicate_strategy(), 0..5),
        proptest::collection::vec(column_strategy(), 0..3),
        proptest::option::of(0u64..1000),
    )
        .prop_map(
            |(distinct, select, from, predicates, group_by, limit)| Query {
                distinct,
                select,
                from,
                predicates,
                group_by,
                having: Vec::new(),
                order_by: Vec::new(),
                limit,
            },
        )
}

proptest! {
    /// Rendering an AST to SQL and parsing it back yields the same AST.
    #[test]
    fn print_parse_roundtrip(q in query_strategy()) {
        let sql = q.to_string();
        let reparsed = parse_query(&sql)
            .unwrap_or_else(|e| panic!("failed to reparse `{sql}`: {e}"));
        prop_assert_eq!(q, reparsed);
    }

    /// Canonicalization is idempotent.
    #[test]
    fn canonicalization_idempotent(q in query_strategy()) {
        let once = canonicalize(&q);
        let twice = canonicalize(&once);
        prop_assert_eq!(once, twice);
    }

    /// A canonicalized query still parses (it is valid SQL).
    #[test]
    fn canonical_form_is_valid_sql(q in query_strategy()) {
        let canon = canonicalize(&q);
        let sql = canon.to_string();
        prop_assert!(parse_query(&sql).is_ok(), "canonical SQL did not parse: {}", sql);
    }

    /// The lexer never panics on arbitrary input.
    #[test]
    fn lexer_never_panics(input in ".{0,200}") {
        let _ = sqlparse::Lexer::tokenize(&input);
    }
}
