//! Canonicalization of queries for equivalence checking.
//!
//! The evaluation harness marks a translated query as correct only when it is
//! equivalent to the gold SQL (Section VII-A.5).  Since NLIDBs are free to
//! pick different alias names, list FROM relations in a different order, or
//! reorder conjuncts, we compare queries after canonicalization:
//!
//! 1. every alias is rewritten to a deterministic name derived from its
//!    relation (`publication` -> `publication_1`, a second instance of the
//!    same relation -> `publication_2`, ...), with instance numbers assigned
//!    by the relation's first appearance over a *canonical ordering* of the
//!    query's structure rather than the textual FROM order,
//! 2. identifiers are lower-cased,
//! 3. the FROM list, WHERE conjunction, GROUP BY list and SELECT list are
//!    sorted by their canonical rendering,
//! 4. symmetric predicates (`a = b`) order their operands lexicographically.
//!
//! Two queries are considered equivalent when their canonical forms are
//! structurally equal.  This is a conservative approximation of semantic
//! equivalence: it never equates two queries with different meanings, and it
//! handles every alias / ordering variation the NLIDBs in this repository can
//! produce.  Self-joins are the only subtle case: instance numbering is made
//! deterministic by ordering relation instances by the multiset of
//! non-join predicates that mention them.

use crate::ast::*;
use std::collections::HashMap;

/// Produce the canonical form of a query.
pub fn canonicalize(query: &Query) -> Query {
    let mut q = query.clone();
    lowercase_query(&mut q);
    let rename = alias_renaming(&q);
    apply_renaming(&mut q, &rename);
    qualify_unqualified_columns(&mut q);
    order_symmetric_predicates(&mut q);
    sort_clauses(&mut q);
    q
}

/// True when two queries are equivalent modulo aliases and clause ordering.
pub fn equivalent(a: &Query, b: &Query) -> bool {
    canonicalize(a) == canonicalize(b)
}

fn lowercase_ident(s: &str) -> String {
    s.to_lowercase()
}

fn lowercase_column(c: &mut ColumnRef) {
    c.column = lowercase_ident(&c.column);
    if let Some(q) = &c.qualifier {
        c.qualifier = Some(lowercase_ident(q));
    }
}

fn lowercase_expr(e: &mut Expr) {
    match e {
        Expr::Column(c) => lowercase_column(c),
        Expr::Aggregate { arg, .. } => {
            if let Some(c) = arg {
                lowercase_column(c);
            }
        }
        Expr::Literal(_) => {}
    }
}

fn lowercase_predicate(p: &mut Predicate) {
    match p {
        Predicate::Compare { left, right, .. } => {
            lowercase_expr(left);
            lowercase_expr(right);
        }
        Predicate::In { col, .. }
        | Predicate::Between { col, .. }
        | Predicate::IsNull { col, .. } => lowercase_column(col),
    }
}

fn lowercase_query(q: &mut Query) {
    for t in &mut q.from {
        t.table = lowercase_ident(&t.table);
        if let Some(a) = &t.alias {
            t.alias = Some(lowercase_ident(a));
        }
    }
    for s in &mut q.select {
        if let SelectItem::Expr(e) = s {
            lowercase_expr(e);
        }
    }
    for p in &mut q.predicates {
        lowercase_predicate(p);
    }
    for c in &mut q.group_by {
        lowercase_column(c);
    }
    for p in &mut q.having {
        lowercase_predicate(p);
    }
    for o in &mut q.order_by {
        lowercase_expr(&mut o.expr);
    }
}

/// A stable signature of a relation instance: the sorted renderings of the
/// non-join predicates and select items that mention its binding.  Used to
/// disambiguate multiple instances of the same relation (self-joins).
fn instance_signature(q: &Query, binding: &str) -> String {
    let mut parts: Vec<String> = Vec::new();
    let mentions = |col: &ColumnRef| {
        col.qualifier
            .as_deref()
            .map(|qu| qu.eq_ignore_ascii_case(binding))
            .unwrap_or(false)
    };
    for p in q.filter_predicates() {
        if p.columns().iter().any(|c| mentions(c)) {
            parts.push(strip_qualifiers_pred(p));
        }
    }
    for item in &q.select {
        if let SelectItem::Expr(e) = item {
            if e.column().map(mentions).unwrap_or(false) {
                parts.push(format!("select:{}", strip_qualifiers_expr(e)));
            }
        }
    }
    parts.sort();
    parts.join("|")
}

fn strip_qualifiers_expr(e: &Expr) -> String {
    let mut e = e.clone();
    match &mut e {
        Expr::Column(c) => c.qualifier = None,
        Expr::Aggregate { arg, .. } => {
            if let Some(c) = arg {
                c.qualifier = None;
            }
        }
        Expr::Literal(_) => {}
    }
    e.to_string()
}

fn strip_qualifiers_pred(p: &Predicate) -> String {
    let mut p = p.clone();
    match &mut p {
        Predicate::Compare { left, right, .. } => {
            if let Expr::Column(c) = left {
                c.qualifier = None;
            }
            if let Expr::Column(c) = right {
                c.qualifier = None;
            }
            if let Expr::Aggregate { arg: Some(c), .. } = left {
                c.qualifier = None;
            }
            if let Expr::Aggregate { arg: Some(c), .. } = right {
                c.qualifier = None;
            }
        }
        Predicate::In { col, .. }
        | Predicate::Between { col, .. }
        | Predicate::IsNull { col, .. } => col.qualifier = None,
    }
    p.to_string()
}

/// Refine per-binding signatures by propagating neighbour signatures along
/// join conditions (two rounds of Weisfeiler-Lehman-style colouring).  This
/// distinguishes intermediate relation instances in self-joins (e.g. the two
/// `writes` instances of Example 7) by the value predicates of the relations
/// they connect to.
fn refined_signatures(q: &Query) -> HashMap<String, String> {
    let mut sigs: HashMap<String, String> = q
        .from
        .iter()
        .map(|t| {
            (
                t.binding().to_string(),
                format!("{}#{}", t.table, instance_signature(q, t.binding())),
            )
        })
        .collect();
    // adjacency over join conditions
    let mut adj: HashMap<String, Vec<String>> = HashMap::new();
    for p in q.join_conditions() {
        let cols = p.columns();
        if cols.len() == 2 {
            if let (Some(a), Some(b)) = (cols[0].qualifier.clone(), cols[1].qualifier.clone()) {
                adj.entry(a.clone()).or_default().push(b.clone());
                adj.entry(b).or_default().push(a);
            }
        }
    }
    for _ in 0..2 {
        let mut next = HashMap::new();
        for (binding, sig) in &sigs {
            let mut neighbour_sigs: Vec<String> = adj
                .get(binding)
                .map(|ns| {
                    ns.iter()
                        .filter_map(|n| sigs.get(n).cloned())
                        .collect::<Vec<_>>()
                })
                .unwrap_or_default();
            neighbour_sigs.sort();
            next.insert(
                binding.clone(),
                format!("{sig}~[{}]", neighbour_sigs.join(";")),
            );
        }
        sigs = next;
    }
    sigs
}

/// Compute the canonical alias for every binding in the FROM clause.
fn alias_renaming(q: &Query) -> HashMap<String, String> {
    let sigs = refined_signatures(q);
    // Group FROM entries by relation name.
    let mut groups: HashMap<String, Vec<&TableRef>> = HashMap::new();
    for t in &q.from {
        groups.entry(t.table.clone()).or_default().push(t);
    }
    let mut rename = HashMap::new();
    for (table, mut refs) in groups {
        // Order instances by their refined signature (then by original
        // binding for full determinism) so that equivalent queries number
        // their self-join instances identically regardless of FROM order.
        refs.sort_by_key(|t| {
            (
                sigs.get(t.binding()).cloned().unwrap_or_default(),
                t.binding().to_string(),
            )
        });
        for (i, t) in refs.iter().enumerate() {
            let canonical = if refs.len() == 1 {
                format!("{table}_1")
            } else {
                format!("{}_{}", table, i + 1)
            };
            rename.insert(t.binding().to_string(), canonical);
        }
        // Unqualified references to the bare table name should also resolve.
        rename.entry(table.clone()).or_insert(format!("{table}_1"));
    }
    rename
}

fn rename_column(c: &mut ColumnRef, rename: &HashMap<String, String>) {
    if let Some(q) = &c.qualifier {
        if let Some(new) = rename.get(q) {
            c.qualifier = Some(new.clone());
        }
    }
}

fn rename_expr(e: &mut Expr, rename: &HashMap<String, String>) {
    match e {
        Expr::Column(c) => rename_column(c, rename),
        Expr::Aggregate { arg, .. } => {
            if let Some(c) = arg {
                rename_column(c, rename);
            }
        }
        Expr::Literal(_) => {}
    }
}

fn rename_predicate(p: &mut Predicate, rename: &HashMap<String, String>) {
    match p {
        Predicate::Compare { left, right, .. } => {
            rename_expr(left, rename);
            rename_expr(right, rename);
        }
        Predicate::In { col, .. }
        | Predicate::Between { col, .. }
        | Predicate::IsNull { col, .. } => rename_column(col, rename),
    }
}

fn apply_renaming(q: &mut Query, rename: &HashMap<String, String>) {
    for t in &mut q.from {
        let binding = t.binding().to_string();
        if let Some(new) = rename.get(&binding) {
            t.alias = Some(new.clone());
        }
    }
    for s in &mut q.select {
        if let SelectItem::Expr(e) = s {
            rename_expr(e, rename);
        }
    }
    for p in &mut q.predicates {
        rename_predicate(p, rename);
    }
    for c in &mut q.group_by {
        rename_column(c, rename);
    }
    for p in &mut q.having {
        rename_predicate(p, rename);
    }
    for o in &mut q.order_by {
        rename_expr(&mut o.expr, rename);
    }
}

/// When the query reads from a single relation, unqualified column references
/// are unambiguous; qualify them with the relation's canonical binding so that
/// `SELECT title FROM publication` and `SELECT p.title FROM publication p`
/// canonicalize identically.
fn qualify_unqualified_columns(q: &mut Query) {
    if q.from.len() != 1 {
        return;
    }
    let binding = q.from[0].binding().to_string();
    let fix = |c: &mut ColumnRef| {
        if c.qualifier.is_none() {
            c.qualifier = Some(binding.clone());
        }
    };
    let fix_expr = |e: &mut Expr| match e {
        Expr::Column(c) if c.qualifier.is_none() => {
            c.qualifier = Some(binding.clone());
        }
        Expr::Aggregate { arg: Some(c), .. } if c.qualifier.is_none() => {
            c.qualifier = Some(binding.clone());
        }
        _ => {}
    };
    for s in &mut q.select {
        if let SelectItem::Expr(e) = s {
            fix_expr(e);
        }
    }
    for p in &mut q.predicates {
        match p {
            Predicate::Compare { left, right, .. } => {
                fix_expr(left);
                fix_expr(right);
            }
            Predicate::In { col, .. }
            | Predicate::Between { col, .. }
            | Predicate::IsNull { col, .. } => fix(col),
        }
    }
    for c in &mut q.group_by {
        fix(c);
    }
    for p in &mut q.having {
        match p {
            Predicate::Compare { left, right, .. } => {
                fix_expr(left);
                fix_expr(right);
            }
            Predicate::In { col, .. }
            | Predicate::Between { col, .. }
            | Predicate::IsNull { col, .. } => fix(col),
        }
    }
    for o in &mut q.order_by {
        fix_expr(&mut o.expr);
    }
}

/// For symmetric operators (`=`, `!=`) over two columns, order the operands
/// lexicographically so `a.x = b.y` and `b.y = a.x` canonicalize identically.
fn order_symmetric_predicates(q: &mut Query) {
    for p in &mut q.predicates {
        if let Predicate::Compare { left, op, right } = p {
            if matches!(op, BinOp::Eq | BinOp::NotEq) {
                if let (Expr::Column(a), Expr::Column(b)) = (&left.clone(), &right.clone()) {
                    if b.to_string() < a.to_string() {
                        std::mem::swap(left, right);
                    }
                }
            }
        }
    }
}

fn sort_clauses(q: &mut Query) {
    q.from.sort_by_key(|t| t.to_string());
    q.predicates.sort_by_key(|p| p.to_string());
    q.group_by.sort_by_key(|c| c.to_string());
    q.having.sort_by_key(|p| p.to_string());
    q.select.sort_by_key(|s| s.to_string());
    // ORDER BY is semantically ordered; leave it alone.
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;

    fn canon_str(sql: &str) -> String {
        canonicalize(&parse_query(sql).unwrap()).to_string()
    }

    #[test]
    fn alias_names_do_not_matter() {
        let a = "SELECT p.title FROM publication p WHERE p.year > 2000";
        let b = "SELECT pub.title FROM publication pub WHERE pub.year > 2000";
        assert_eq!(canon_str(a), canon_str(b));
    }

    #[test]
    fn from_and_where_order_do_not_matter() {
        let a = "SELECT p.title FROM journal j, publication p \
                 WHERE j.name = 'TKDE' AND p.year > 1995 AND j.jid = p.jid";
        let b = "SELECT p.title FROM publication p, journal j \
                 WHERE p.year > 1995 AND p.jid = j.jid AND j.name = 'TKDE'";
        assert_eq!(canon_str(a), canon_str(b));
    }

    #[test]
    fn unqualified_and_qualified_single_table_queries_match() {
        let a = "SELECT title FROM publication WHERE year > 2000";
        let b = "SELECT p.title FROM publication p WHERE p.year > 2000";
        assert_eq!(canon_str(a), canon_str(b));
    }

    #[test]
    fn different_relations_do_not_match() {
        let a = "SELECT j.name FROM journal j";
        let b = "SELECT p.title FROM publication p";
        assert_ne!(canon_str(a), canon_str(b));
    }

    #[test]
    fn different_join_paths_do_not_match() {
        let a = "SELECT p.title FROM publication p, conference c, domain_conference dc, domain d \
                 WHERE d.name = 'Databases' AND p.cid = c.cid AND c.cid = dc.cid AND dc.did = d.did";
        let b = "SELECT p.title FROM publication p, publication_keyword pk, keyword k, domain_keyword dk, domain d \
                 WHERE d.name = 'Databases' AND p.pid = pk.pid AND k.kid = pk.kid AND dk.kid = k.kid AND dk.did = d.did";
        assert_ne!(canon_str(a), canon_str(b));
    }

    #[test]
    fn self_join_alias_swap_is_equivalent() {
        let a = "SELECT p.title FROM author a1, author a2, publication p, writes w1, writes w2 \
                 WHERE a1.name = 'John' AND a2.name = 'Jane' \
                 AND a1.aid = w1.aid AND a2.aid = w2.aid AND p.pid = w1.pid AND p.pid = w2.pid";
        let b = "SELECT p.title FROM author x, author y, publication p, writes u, writes v \
                 WHERE y.name = 'John' AND x.name = 'Jane' \
                 AND y.aid = u.aid AND x.aid = v.aid AND p.pid = u.pid AND p.pid = v.pid";
        // The two author instances are distinguished by their value
        // predicates ('John' vs 'Jane'), so renaming is stable under swapping.
        assert_eq!(canon_str(a), canon_str(b));
    }

    #[test]
    fn self_join_with_swapped_intermediates_is_equivalent() {
        // Same as above but the `writes` instances are wired the other way
        // around; the WL-refined signatures must still line the instances up.
        let a = "SELECT p.title FROM author a1, author a2, publication p, writes w1, writes w2 \
                 WHERE a1.name = 'John' AND a2.name = 'Jane' \
                 AND a1.aid = w1.aid AND a2.aid = w2.aid AND p.pid = w1.pid AND p.pid = w2.pid";
        let b = "SELECT p.title FROM author x, author y, publication p, writes u, writes v \
                 WHERE y.name = 'John' AND x.name = 'Jane' \
                 AND y.aid = v.aid AND x.aid = u.aid AND p.pid = u.pid AND p.pid = v.pid";
        assert_eq!(canon_str(a), canon_str(b));
    }

    #[test]
    fn equivalent_helper_matches_canonical_equality() {
        let a = parse_query("SELECT title FROM movie WHERE year = 2010").unwrap();
        let b = parse_query("SELECT m.title FROM movie m WHERE m.year = 2010").unwrap();
        let c = parse_query("SELECT m.title FROM movie m WHERE m.year = 2011").unwrap();
        assert!(equivalent(&a, &b));
        assert!(!equivalent(&a, &c));
    }

    #[test]
    fn case_differences_do_not_matter() {
        let a = "SELECT P.Title FROM Publication P WHERE P.Year > 2000";
        let b = "select p.title from publication p where p.year > 2000";
        assert_eq!(canon_str(a), canon_str(b));
    }

    #[test]
    fn canonicalization_is_idempotent() {
        let q = parse_query(
            "SELECT p.title FROM journal j, publication p WHERE j.jid = p.jid AND j.name = 'TKDE'",
        )
        .unwrap();
        let once = canonicalize(&q);
        let twice = canonicalize(&once);
        assert_eq!(once, twice);
    }
}
