//! Parse error types.

use std::fmt;

/// Result alias for parser operations.
pub type ParseResult<T> = Result<T, ParseError>;

/// An error produced while lexing or parsing SQL.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Human-readable description of what went wrong.
    pub message: String,
    /// Byte offset in the input where the error was detected.
    pub offset: usize,
}

impl ParseError {
    /// Create a new parse error at the given byte offset.
    pub fn new(message: impl Into<String>, offset: usize) -> Self {
        ParseError {
            message: message.into(),
            offset,
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SQL parse error at offset {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_offset_and_message() {
        let e = ParseError::new("unexpected token", 12);
        assert!(e.to_string().contains("offset 12"));
        assert!(e.to_string().contains("unexpected token"));
    }
}
