//! A SQL lexer, parser and canonicalizer for the Templar query-log subset.
//!
//! Templar consumes SQL twice: once when it **mines the query log** (every
//! logged query is parsed and decomposed into query fragments, Section IV of
//! the paper) and once when the evaluation harness **compares the SQL
//! produced by an NLIDB against the gold translation** (Section VII).  Both
//! uses require a real parser; no suitable offline Rust SQL parser was
//! available, so this crate implements one from scratch for the SQL subset
//! that appears in the MAS / Yelp / IMDB benchmarks:
//!
//! * `SELECT [DISTINCT] <items>` with column references, `*`, and the
//!   aggregates `COUNT` / `SUM` / `AVG` / `MIN` / `MAX` (including
//!   `COUNT(DISTINCT x)` and `COUNT(*)`),
//! * `FROM` lists with table aliases (including self-joins via repeated
//!   relations with distinct aliases),
//! * `WHERE` conjunctions of comparison predicates, `LIKE`, `IN`,
//!   `BETWEEN`, and FK-PK join conditions,
//! * `GROUP BY`, `HAVING`, `ORDER BY ... [ASC|DESC]`, `LIMIT`.
//!
//! The [`canon`] module normalises alias names and predicate order so that
//! two semantically identical queries render to the same canonical string —
//! this is what the evaluation harness uses for the *full query* (FQ)
//! accuracy metric.

pub mod ast;
pub mod canon;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod token;

pub use ast::{
    Aggregate, BinOp, ColumnRef, Expr, Literal, OrderBy, OrderDir, Predicate, Query, SelectItem,
    TableRef,
};
pub use canon::canonicalize;
pub use error::{ParseError, ParseResult};
pub use lexer::Lexer;
pub use parser::{parse_query, Parser};
pub use token::{Token, TokenKind};
