//! Lexical tokens of the SQL subset.

use std::fmt;

/// The kind of a SQL token.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// A SQL keyword (`SELECT`, `FROM`, ...), stored upper-cased.
    Keyword(String),
    /// An identifier (relation, attribute or alias name), stored as written
    /// but compared case-insensitively by the parser.
    Ident(String),
    /// A quoted string literal, with quotes removed.
    StringLit(String),
    /// A numeric literal.
    NumberLit(f64),
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `*`
    Star,
    /// `=`
    Eq,
    /// `!=` or `<>`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
    /// `;`
    Semicolon,
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Keyword(k) => write!(f, "{k}"),
            TokenKind::Ident(i) => write!(f, "{i}"),
            TokenKind::StringLit(s) => write!(f, "'{s}'"),
            TokenKind::NumberLit(n) => write!(f, "{n}"),
            TokenKind::Comma => write!(f, ","),
            TokenKind::Dot => write!(f, "."),
            TokenKind::LParen => write!(f, "("),
            TokenKind::RParen => write!(f, ")"),
            TokenKind::Star => write!(f, "*"),
            TokenKind::Eq => write!(f, "="),
            TokenKind::NotEq => write!(f, "!="),
            TokenKind::Lt => write!(f, "<"),
            TokenKind::LtEq => write!(f, "<="),
            TokenKind::Gt => write!(f, ">"),
            TokenKind::GtEq => write!(f, ">="),
            TokenKind::Semicolon => write!(f, ";"),
            TokenKind::Eof => write!(f, "<eof>"),
        }
    }
}

/// A token together with its byte offset in the input (for error messages).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token kind and payload.
    pub kind: TokenKind,
    /// Byte offset of the first character of the token in the input string.
    pub offset: usize,
}

/// The reserved words recognised as keywords by the lexer.
pub const KEYWORDS: &[&str] = &[
    "SELECT", "DISTINCT", "FROM", "WHERE", "AND", "OR", "NOT", "GROUP", "BY", "HAVING", "ORDER",
    "ASC", "DESC", "LIMIT", "COUNT", "SUM", "AVG", "MIN", "MAX", "LIKE", "IN", "BETWEEN", "IS",
    "NULL", "AS",
];

/// True when `word` (any case) is a reserved keyword.
pub fn is_keyword(word: &str) -> bool {
    let upper = word.to_uppercase();
    KEYWORDS.iter().any(|k| *k == upper)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_detection_is_case_insensitive() {
        assert!(is_keyword("select"));
        assert!(is_keyword("SELECT"));
        assert!(is_keyword("Between"));
        assert!(!is_keyword("publication"));
    }

    #[test]
    fn token_display_round_trips_symbols() {
        assert_eq!(TokenKind::LtEq.to_string(), "<=");
        assert_eq!(TokenKind::StringLit("TKDE".into()).to_string(), "'TKDE'");
    }
}
